//! End-to-end tests for the serving front end: a real `DeepSketch` behind a
//! real TCP server, hammered by concurrent clients.

use std::sync::Arc;
use std::time::Duration;

use ds_core::builder::SketchBuilder;
use ds_core::store::SketchStore;
use ds_query::parser::parse_query;
use ds_query::workloads::imdb_predicate_columns;
use ds_serve::{Client, ErrorCode, Response, ServeConfig, Server};
use ds_storage::catalog::Database;
use ds_storage::gen::{imdb_database, ImdbConfig};

fn tiny_sketch(db: &Database, seed: u64) -> ds_core::sketch::DeepSketch {
    SketchBuilder::new(db, imdb_predicate_columns(db))
        .training_queries(120)
        .epochs(2)
        .sample_size(8)
        .hidden_units(8)
        .seed(seed)
        .build()
        .expect("tiny sketch")
}

fn fixture() -> (Arc<Database>, Arc<SketchStore>) {
    let db = Arc::new(imdb_database(&ImdbConfig::tiny(42)));
    let store = Arc::new(SketchStore::new());
    store.insert("imdb", tiny_sketch(&db, 7)).unwrap();
    (db, store)
}

const WORKLOAD: &[&str] = &[
    "SELECT COUNT(*) FROM title",
    "SELECT COUNT(*) FROM title WHERE title.kind_id = 1",
    "SELECT COUNT(*) FROM title WHERE title.production_year > 1990",
    "SELECT COUNT(*) FROM title WHERE title.production_year > 2000",
    "SELECT COUNT(*) FROM title t, movie_keyword mk \
     WHERE mk.movie_id = t.id AND mk.keyword_id = 11",
    "SELECT COUNT(*) FROM title t, movie_keyword mk \
     WHERE mk.movie_id = t.id AND t.production_year > 1995",
];

/// The tentpole guarantee: 64 concurrent clients, coalesced on the server,
/// every answer bit-identical to a local per-query `estimate_one`.
#[test]
fn concurrent_coalesced_estimates_match_estimate_one() {
    let (db, store) = fixture();
    let sketch = store.get("imdb").unwrap();
    let expected: Vec<f64> = WORKLOAD
        .iter()
        .map(|sql| sketch.estimate_one(&parse_query(&db, sql).unwrap()))
        .collect();

    let server = Server::start(
        Arc::clone(&db),
        Arc::clone(&store),
        ServeConfig::builder()
            .workers(4)
            .max_batch(32)
            .request_timeout(Duration::from_secs(30))
            .build()
            .unwrap(),
    )
    .unwrap();
    let addr = server.local_addr();

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..64)
            .map(|i| {
                let expected = &expected;
                s.spawn(move || {
                    let mut client =
                        Client::connect_timeout(addr, Duration::from_secs(60)).unwrap();
                    // Each client walks the workload from a different offset
                    // so distinct queries are in flight simultaneously.
                    for k in 0..WORKLOAD.len() {
                        let j = (i + k) % WORKLOAD.len();
                        let got = client.estimate_value("imdb", WORKLOAD[j]).unwrap();
                        assert_eq!(
                            got.to_bits(),
                            expected[j].to_bits(),
                            "client {i} query {j}: {got} != {}",
                            expected[j]
                        );
                    }
                    client.quit().unwrap();
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    });

    let snap = server.shutdown();
    assert_eq!(snap.ok, 64 * WORKLOAD.len() as u64);
    assert_eq!(snap.errors, 0);
    // With 64 clients against 4 workers, coalescing must have kicked in:
    // strictly fewer forward passes than requests.
    assert!(snap.batches > 0);
    assert!(
        snap.batches < snap.ok,
        "no coalescing: {} batches for {} requests",
        snap.batches,
        snap.ok
    );
    assert!(snap.max_batch > 1);
}

#[test]
fn protocol_commands_and_typed_errors() {
    let (db, store) = fixture();
    let server = Server::start(db, store, ServeConfig::default()).unwrap();
    let mut c = Client::connect_timeout(server.local_addr(), Duration::from_secs(10)).unwrap();

    // LIST names the sketch and its status.
    match c.list().unwrap() {
        Response::Text(t) => assert!(t.contains("imdb=Ready"), "{t}"),
        other => panic!("{other:?}"),
    }
    // INFO returns the summary card.
    match c.info("imdb").unwrap() {
        Response::Text(t) => assert!(!t.is_empty()),
        other => panic!("{other:?}"),
    }
    // METRICS is parseable key=value.
    match c.metrics().unwrap() {
        Response::Text(t) => assert!(t.contains("requests=") && t.contains("p99_us="), "{t}"),
        other => panic!("{other:?}"),
    }

    // Typed errors, one per failure class — and the connection survives
    // every one of them.
    match c.estimate("nope", "SELECT COUNT(*) FROM title").unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownSketch),
        other => panic!("{other:?}"),
    }
    match c
        .estimate("imdb", "SELECT COUNT(*) FROM bogus_table")
        .unwrap()
    {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Parse),
        other => panic!("{other:?}"),
    }
    match c.info("nope").unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnknownSketch),
        other => panic!("{other:?}"),
    }
    for raw in ["FROBNICATE", "ESTIMATE", "ESTIMATE imdb", "INFO", "???"] {
        let line = c.send_raw(raw).unwrap();
        assert!(line.starts_with("ERR proto "), "{raw:?} -> {line}");
    }
    // Still alive after all that abuse.
    match c.estimate("imdb", "SELECT COUNT(*) FROM title").unwrap() {
        Response::Estimate(v) => assert!(v.is_finite() && v >= 1.0),
        other => panic!("{other:?}"),
    }
    c.quit().unwrap();
    let snap = server.shutdown();
    assert!(snap.errors >= 8);
}

/// A zero-length deadline forces every request down the timeout path; the
/// server answers `ERR timeout` instead of hanging or panicking.
#[test]
fn zero_deadline_requests_time_out_cleanly() {
    let (db, store) = fixture();
    let server = Server::start(
        db,
        store,
        ServeConfig::builder()
            .request_timeout(Duration::from_nanos(1))
            .build()
            .unwrap(),
    )
    .unwrap();
    let mut c = Client::connect_timeout(server.local_addr(), Duration::from_secs(10)).unwrap();
    match c.estimate("imdb", "SELECT COUNT(*) FROM title").unwrap() {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::Timeout),
        other => panic!("{other:?}"),
    }
    c.quit().unwrap();
    let snap = server.shutdown();
    assert_eq!(snap.timeouts, 1);
    assert_eq!(snap.ok, 0);
}

/// Beyond `max_connections`, new connections get one `BUSY` line.
#[test]
fn connection_cap_sheds_with_busy() {
    let (db, store) = fixture();
    let server = Server::start(
        db,
        store,
        ServeConfig::builder().max_connections(2).build().unwrap(),
    )
    .unwrap();
    let addr = server.local_addr();
    let a = Client::connect_timeout(addr, Duration::from_secs(10)).unwrap();
    let b = Client::connect_timeout(addr, Duration::from_secs(10)).unwrap();
    // The two admitted connections occupy the cap; the third is shed. Give
    // the acceptor a moment to register both.
    std::thread::sleep(Duration::from_millis(100));
    let mut shed = Client::connect_timeout(addr, Duration::from_secs(10)).unwrap();
    let line = shed
        .send_raw("LIST")
        .unwrap_or_else(|e| format!("ERR io {e}"));
    assert!(
        line.starts_with("BUSY") || line.starts_with("ERR io"),
        "expected shed, got {line}"
    );
    drop(a);
    drop(b);
    let snap = server.shutdown();
    assert!(snap.shed >= 1);
}

/// The store stays consistent under concurrent insert/estimate/remove from
/// many threads (the serving scenario: queries racing retraining swaps).
#[test]
fn sketch_store_survives_concurrent_mutation() {
    let db = Arc::new(imdb_database(&ImdbConfig::tiny(11)));
    let store = Arc::new(SketchStore::new());
    store.insert("stable", tiny_sketch(&db, 1)).unwrap();
    let churn_sketch = tiny_sketch(&db, 2);
    let q = parse_query(&db, "SELECT COUNT(*) FROM title WHERE title.kind_id = 1").unwrap();

    std::thread::scope(|s| {
        // Readers hammer the stable sketch and the churning one.
        for _ in 0..4 {
            let store = Arc::clone(&store);
            let q = q.clone();
            s.spawn(move || {
                for _ in 0..200 {
                    assert!(store.estimate("stable", &q).unwrap() >= 1.0);
                    // "churn" may or may not exist right now — either a
                    // value or a typed error, never a panic.
                    match store.estimate("churn", &q) {
                        Ok(v) => assert!(v >= 1.0),
                        Err(e) => {
                            let _ = e.to_string();
                        }
                    }
                    let _ = store.list();
                }
            });
        }
        // One writer inserts and removes "churn" in a loop.
        let store2 = Arc::clone(&store);
        s.spawn(move || {
            for _ in 0..50 {
                let _ = store2.insert("churn", churn_sketch.clone());
                std::thread::yield_now();
                store2.remove("churn");
            }
        });
    });
    assert!(store.estimate("stable", &q).unwrap() >= 1.0);
}

/// The observability surface end to end: STATS exposition, TRACE stage
/// decomposition, typed client accessors, and the FEEDBACK ↔ ESTIMATE
/// bit-identity.
#[test]
fn stats_trace_and_feedback_expose_the_request_timeline() {
    let (db, store) = fixture();
    let server = Server::start(
        Arc::clone(&db),
        Arc::clone(&store),
        ServeConfig::builder()
            .request_timeout(Duration::from_secs(30))
            // Keep every request as a TRACE exemplar.
            .slow_threshold(Duration::ZERO)
            .build()
            .unwrap(),
    )
    .unwrap();
    let mut c = Client::connect_timeout(server.local_addr(), Duration::from_secs(30)).unwrap();

    // FEEDBACK answers through the same batcher path as ESTIMATE: the
    // returned estimate is bit-identical.
    let joined = WORKLOAD[4];
    let est = c.estimate_value("imdb", joined).unwrap();
    let fed = c.feedback_value("imdb", 123, joined).unwrap();
    assert_eq!(est.to_bits(), fed.to_bits());
    for sql in WORKLOAD {
        c.estimate_value("imdb", sql).unwrap();
    }
    let answered = 2 + WORKLOAD.len() as u64;

    // Typed METRICS and INFO.
    let snap = c.metrics_snapshot().unwrap();
    assert_eq!(snap.ok, answered);
    assert_eq!(snap.errors, 0);
    let card = c.info_card("imdb").unwrap();
    assert_eq!(card.tables, 6);
    assert!(card.model_params > 0 && card.footprint_mib > 0.0);

    // STATS: the Prometheus exposition carries the counters, the stage
    // summaries, and the feedback monitor's rolling q-error histogram.
    let samples = c.stats().unwrap();
    let value = |name: &str| {
        samples
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.value)
            .unwrap_or_else(|| panic!("missing sample {name}"))
    };
    assert_eq!(value("ds_serve_ok"), answered as f64);
    assert!(value("ds_serve_requests") >= answered as f64);
    for stage in ["parse", "queue", "batch_wait", "forward", "write"] {
        let count = value(&format!("ds_serve_stage_{stage}_us_count"));
        assert_eq!(count, answered as f64, "stage {stage}");
    }
    assert!(samples.iter().any(|s| {
        s.name == "ds_serve_stage_forward_us"
            && s.labels.iter().any(|(k, v)| k == "quantile" && v == "0.95")
    }));
    assert_eq!(value("ds_feedback_imdb_qerror_scaled_count"), 1.0);

    // TRACE: every exemplar's stages sum to its wall time within 5%
    // (plus sub-µs truncation slack per stage).
    let traces = c.trace().unwrap();
    assert_eq!(traces.len(), answered as usize);
    for t in &traces {
        assert_eq!(t.sketch, "imdb");
        assert!(!t.template.is_empty());
        let diff = t.stage_sum_us().abs_diff(t.total_us) as f64;
        assert!(
            diff <= 0.05 * t.total_us as f64 + 6.0,
            "stages {} vs total {} in {t:?}",
            t.stage_sum_us(),
            t.total_us
        );
    }
    // Templates are structural: the joined query names both tables and
    // elides literals.
    let tpl = &traces
        .iter()
        .find(|t| t.template.contains("movie_keyword"))
        .expect("joined-query exemplar")
        .template;
    assert!(
        tpl.contains("title") && tpl.contains('?') && !tpl.contains('1'),
        "{tpl}"
    );

    c.quit().unwrap();
    server.shutdown();
}

/// Timelines can be switched off entirely — the baseline side of the
/// traced-overhead budget — without touching the wire responses.
#[test]
fn timeline_off_serves_identically_but_records_no_stages() {
    let (db, store) = fixture();
    let server = Server::start(
        db,
        store,
        ServeConfig::builder()
            .timeline(false)
            .request_timeout(Duration::from_secs(30))
            .build()
            .unwrap(),
    )
    .unwrap();
    let mut c = Client::connect_timeout(server.local_addr(), Duration::from_secs(30)).unwrap();
    assert!(c.estimate_value("imdb", WORKLOAD[0]).unwrap() >= 1.0);
    assert!(c.trace().unwrap().is_empty());
    let samples = c.stats().unwrap();
    let forward_count = samples
        .iter()
        .find(|s| s.name == "ds_serve_stage_forward_us_count")
        .map(|s| s.value);
    assert_eq!(forward_count, Some(0.0));
    // FEEDBACK still grades the estimate — the monitor works without
    // timelines.
    c.feedback_value("imdb", 50, WORKLOAD[1]).unwrap();
    assert_eq!(server.monitors().get("imdb").unwrap().samples(), 1);
    c.quit().unwrap();
    server.shutdown();
}

/// Satellite 3: replaying FEEDBACK with actuals from a shifted-skew,
/// grown database drives the rolling q-error window away from the
/// training-time holdout baseline and raises the staleness signal; the
/// same replay with stationary actuals stays silent.
#[test]
fn injected_drift_fires_and_stationary_feedback_stays_silent() {
    use ds_core::advisor::recommend_retraining;
    use ds_core::maintain::{accuracy_drift, DEFAULT_DRIFT_RATIO, DEFAULT_MIN_SAMPLES};
    use ds_est::oracle::TrueCardinalityOracle;
    use ds_query::sqlgen::to_sql;
    use ds_query::{GeneratorConfig, QueryGenerator};

    let db = Arc::new(imdb_database(&ImdbConfig::tiny(42)));
    let store = Arc::new(SketchStore::new());
    store.insert("imdb", tiny_sketch(&db, 7)).unwrap();
    let sketch = store.get("imdb").unwrap();
    let baseline = sketch
        .baseline()
        .expect("builder attaches the holdout baseline")
        .clone();

    // Feedback queries drawn from the same uniform generator family the
    // builder trains on, so a stationary replay matches the holdout.
    let mut generator =
        QueryGenerator::new(&db, GeneratorConfig::new(imdb_predicate_columns(&db), 4242));
    let queries = generator.generate_batch(60);
    let sqls: Vec<String> = queries.iter().map(|q| to_sql(&db, q)).collect();
    let stationary_oracle = TrueCardinalityOracle::new(&db);
    // The drifted world: 10x the movies, a third of the keywords — the
    // sketch still answers from its training-time snapshot.
    let evolved = imdb_database(&ImdbConfig {
        movies: 5000,
        keywords: 40,
        companies: 40,
        persons: 300,
        seed: 777,
    });
    let evolved_oracle = TrueCardinalityOracle::new(&evolved);

    let server = Server::start(
        Arc::clone(&db),
        Arc::clone(&store),
        ServeConfig::builder()
            .request_timeout(Duration::from_secs(30))
            .build()
            .unwrap(),
    )
    .unwrap();
    let monitors = server.monitors();
    let mut c = Client::connect_timeout(server.local_addr(), Duration::from_secs(30)).unwrap();

    // Phase 1: stationary — actuals from the database the sketch was
    // trained on. The drift detector must stay silent.
    for (q, sql) in queries.iter().zip(&sqls) {
        let actual = stationary_oracle.cardinality(q).unwrap();
        c.feedback_value("imdb", actual, sql).unwrap();
    }
    let monitor = monitors.get("imdb").expect("feedback created a monitor");
    let drift = accuracy_drift(&baseline, &monitor.rolling()).expect("baseline present");
    assert!(drift.samples >= DEFAULT_MIN_SAMPLES);
    assert!(
        !drift.is_stale(DEFAULT_DRIFT_RATIO, DEFAULT_MIN_SAMPLES),
        "stationary feedback must not raise staleness: {drift}"
    );
    assert!(
        recommend_retraining(&store, &monitors, DEFAULT_DRIFT_RATIO, DEFAULT_MIN_SAMPLES)
            .is_empty()
    );

    // Phase 2: the database evolves under the sketch. Same queries, but
    // the observed actuals now come from the evolved data.
    monitor.reset();
    for (q, sql) in queries.iter().zip(&sqls) {
        let actual = evolved_oracle.cardinality(q).unwrap();
        c.feedback_value("imdb", actual, sql).unwrap();
    }
    let drift = accuracy_drift(&baseline, &monitor.rolling()).expect("baseline present");
    assert!(
        drift.is_stale(DEFAULT_DRIFT_RATIO, DEFAULT_MIN_SAMPLES),
        "injected drift must raise staleness: {drift}"
    );
    let advice = recommend_retraining(&store, &monitors, DEFAULT_DRIFT_RATIO, DEFAULT_MIN_SAMPLES);
    assert_eq!(advice.len(), 1, "{advice:?}");
    assert_eq!(advice[0].sketch, "imdb");
    assert!(advice[0].drift.severity() > DEFAULT_DRIFT_RATIO);

    c.quit().unwrap();
    server.shutdown();
}

/// Regression test for the remove/swap-during-batch race: while clients
/// hammer "churn" through the server's coalescing path, a writer keeps
/// removing it and re-inserting alternating model versions. Batches are
/// keyed by store generation (plus an `Arc::ptr_eq` sweep guard), so every
/// answer must be bit-identical to ONE of the two versions' local
/// estimates — a mixed batch would hand version A's request to version B.
#[test]
fn estimates_stay_version_consistent_under_store_churn() {
    let db = Arc::new(imdb_database(&ImdbConfig::tiny(11)));
    let store = Arc::new(SketchStore::new());
    let version_a = tiny_sketch(&db, 1);
    let version_b = tiny_sketch(&db, 2);
    let sql = "SELECT COUNT(*) FROM title WHERE title.kind_id = 1";
    let q = parse_query(&db, sql).unwrap();
    let bits_a = version_a.estimate_one(&q).to_bits();
    let bits_b = version_b.estimate_one(&q).to_bits();
    assert_ne!(bits_a, bits_b, "fixture must distinguish the versions");
    store.insert("churn", version_a.clone()).unwrap();

    let server = Server::start(
        Arc::clone(&db),
        Arc::clone(&store),
        ServeConfig::builder()
            .workers(2)
            .max_batch(16)
            .request_timeout(Duration::from_secs(30))
            .build()
            .unwrap(),
    )
    .unwrap();
    let addr = server.local_addr();

    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(move || {
                let mut c = Client::connect_timeout(addr, Duration::from_secs(30)).unwrap();
                for _ in 0..100 {
                    match c.estimate("churn", sql).unwrap() {
                        Response::Estimate(v) => {
                            let bits = v.to_bits();
                            assert!(
                                bits == bits_a || bits == bits_b,
                                "answer {v} from neither model version"
                            );
                        }
                        // Mid-swap the name can briefly be missing; typed
                        // errors are fine, mixed models are not.
                        Response::Error { code, .. } => {
                            assert!(
                                matches!(code, ErrorCode::UnknownSketch | ErrorCode::NotReady),
                                "{code:?}"
                            );
                        }
                        other => panic!("{other:?}"),
                    }
                }
                c.quit().unwrap();
            });
        }
        let store = Arc::clone(&store);
        s.spawn(move || {
            for i in 0..50 {
                store.remove("churn");
                std::thread::yield_now();
                let next = if i % 2 == 0 {
                    version_b.clone()
                } else {
                    version_a.clone()
                };
                store.insert("churn", next).unwrap();
                std::thread::yield_now();
            }
        });
    });
    server.shutdown();
}

/// Graceful shutdown: requests in flight when shutdown starts still get
/// answers; the queue drains rather than drops.
#[test]
fn shutdown_drains_in_flight_work() {
    let (db, store) = fixture();
    let server = Server::start(
        db,
        store,
        ServeConfig::builder()
            .workers(1)
            .request_timeout(Duration::from_secs(30))
            .build()
            .unwrap(),
    )
    .unwrap();
    let addr = server.local_addr();
    let answered = std::thread::spawn(move || {
        let mut c = Client::connect_timeout(addr, Duration::from_secs(30)).unwrap();
        let mut n = 0;
        for _ in 0..20 {
            if c.estimate_value("imdb", "SELECT COUNT(*) FROM title")
                .is_ok()
            {
                n += 1;
            } else {
                break;
            }
        }
        n
    });
    std::thread::sleep(Duration::from_millis(50));
    let snap = server.shutdown();
    let n = answered.join().unwrap();
    // Every request the server acknowledged with OK was really answered.
    assert_eq!(snap.ok, n);
}
