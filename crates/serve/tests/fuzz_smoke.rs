//! Deterministic structure-aware fuzz smoke (ISSUE satellite b): a seeded
//! in-repo mutator — no external fuzzing deps — hammers the two
//! untrusted-input decoders with mutated corpus entries:
//!
//! * [`ds_serve::protocol`]'s `parse_request` / `parse_response`, which
//!   face raw socket lines;
//! * [`ds_core::snapshot::decode_snapshot`], which faces whatever bytes a
//!   crash left on disk.
//!
//! Neither may ever panic, and anything they *accept* must re-serialize
//! canonically (parse → format → parse is a fixed point). The corpus under
//! `tests/corpus/` is committed; mutation is xorshift-seeded so every run
//! (local and CI) explores the identical input set. `FUZZ_ITERS` scales
//! the budget.

use std::path::PathBuf;

use ds_core::snapshot::{decode_snapshot, encode_snapshot};
use ds_serve::protocol::{
    format_request, format_response, parse_request, parse_response, Response,
};

fn fuzz_iters(default: usize) -> usize {
    std::env::var("FUZZ_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn corpus_dir(sub: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/corpus")
        .join(sub)
}

/// Deterministic xorshift64* (same constants as the serve fault injector).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Values a length-prefixed format is most likely to mishandle.
const INTERESTING_U64: [u64; 8] = [
    0,
    1,
    7,
    8,
    u32::MAX as u64,
    u64::MAX,
    1 << 62,
    (1 << 31) + 1,
];

/// One structure-aware mutation round: pick a seed, apply 1–4 mutations
/// drawn from byte flips, truncations, insertions, slice duplication,
/// cross-seed splicing, and interesting-integer overwrites.
fn mutate(rng: &mut Rng, seeds: &[Vec<u8>]) -> Vec<u8> {
    let mut out = seeds[rng.below(seeds.len())].clone();
    for _ in 0..1 + rng.below(4) {
        match rng.below(7) {
            0 if !out.is_empty() => {
                let i = rng.below(out.len());
                out[i] ^= 1 << rng.below(8);
            }
            1 if !out.is_empty() => out.truncate(rng.below(out.len() + 1)),
            2 => {
                let at = rng.below(out.len() + 1);
                for _ in 0..1 + rng.below(8) {
                    out.insert(at, (rng.next() & 0xff) as u8);
                }
            }
            3 if out.len() >= 2 => {
                let start = rng.below(out.len());
                let end = start + 1 + rng.below(out.len() - start);
                let slice = out[start..end].to_vec();
                let at = rng.below(out.len() + 1);
                out.splice(at..at, slice);
            }
            4 => {
                let other = &seeds[rng.below(seeds.len())];
                let cut_a = rng.below(out.len() + 1);
                let cut_b = rng.below(other.len() + 1);
                out.truncate(cut_a);
                out.extend_from_slice(&other[cut_b..]);
            }
            5 if out.len() >= 8 => {
                let at = rng.below(out.len() - 7);
                let v = INTERESTING_U64[rng.below(INTERESTING_U64.len())];
                out[at..at + 8].copy_from_slice(&v.to_le_bytes());
            }
            _ if !out.is_empty() => {
                // ASCII mangling: case flips and digit swaps keep text
                // inputs roughly token-shaped so mutants reach deeper
                // branches than raw byte noise would.
                let i = rng.below(out.len());
                let b = out[i];
                out[i] = match b {
                    b'a'..=b'z' | b'A'..=b'Z' => b ^ 0x20,
                    b'0'..=b'9' => b'0' + ((b - b'0' + 1 + rng.below(9) as u8) % 10),
                    _ => b' ',
                };
            }
            _ => {}
        }
    }
    out
}

fn load_lines(file: &str) -> Vec<Vec<u8>> {
    let path = corpus_dir("protocol").join(file);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("committed corpus missing at {}: {e}", path.display()));
    text.lines().map(|l| l.as_bytes().to_vec()).collect()
}

fn load_bins() -> Vec<Vec<u8>> {
    let dir = corpus_dir("snapshot");
    let mut seeds: Vec<(PathBuf, Vec<u8>)> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("committed corpus missing at {}: {e}", dir.display()))
        .flatten()
        .filter(|e| e.path().extension().is_some_and(|x| x == "bin"))
        .map(|e| (e.path(), std::fs::read(e.path()).expect("corpus seed")))
        .collect();
    seeds.sort_by(|a, b| a.0.cmp(&b.0)); // deterministic seed order
    seeds.into_iter().map(|(_, b)| b).collect()
}

/// NaN-tolerant response equality: values must match bit-for-bit except
/// that any NaN matches any NaN (`-nan` loses its sign through `{:?}`).
fn responses_equivalent(a: &Response, b: &Response) -> bool {
    match (a, b) {
        (Response::Estimate(x), Response::Estimate(y))
        | (Response::Degraded(x), Response::Degraded(y)) => {
            x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan())
        }
        _ => a == b,
    }
}

/// Wire lines arrive through `read_line`, so a mutant is fed only up to
/// its first line break.
fn as_wire_line(bytes: &[u8]) -> String {
    let text = String::from_utf8_lossy(bytes);
    text.split(['\n', '\r']).next().unwrap_or("").to_string()
}

/// End-to-end half of the protocol property: every corpus request line —
/// including the `IN`/`LIKE` entries with malformed lists, unterminated
/// string literals, and `%`-pattern edge cases — plus a budget of seeded
/// mutants goes through a **live server**. Every line must be answered
/// with a typed protocol line (`OK`/`ERR <code>`/`BUSY`/`BYE`); the server
/// must never panic and must keep serving afterwards.
#[test]
fn fuzz_live_server_answers_every_corpus_line_with_a_typed_response() {
    use std::sync::Arc;
    use std::time::Duration;

    use ds_serve::{Client, ServeConfig, Server};

    let db = Arc::new(ds_storage::gen::imdb_database(
        &ds_storage::gen::ImdbConfig::tiny(42),
    ));
    let sketch =
        ds_core::builder::SketchBuilder::new(&db, ds_query::workloads::imdb_predicate_columns(&db))
            .training_queries(120)
            .epochs(2)
            .sample_size(8)
            .hidden_units(8)
            .seed(7)
            .build()
            .expect("tiny sketch");
    let store = Arc::new(ds_core::store::SketchStore::new());
    store.insert("imdb", sketch).unwrap();
    let server = Server::start(
        Arc::clone(&db),
        store,
        ServeConfig::builder()
            .request_timeout(Duration::from_secs(30))
            .build()
            .unwrap(),
    )
    .unwrap();
    let connect = || Client::connect_timeout(server.local_addr(), Duration::from_secs(30)).unwrap();
    let mut client = connect();

    let seeds = load_lines("requests.txt");
    let mut rng = Rng(0x0011_ab5e_4ded_5eed);
    let mutants: Vec<String> = (0..fuzz_iters(400))
        .map(|_| as_wire_line(&mutate(&mut rng, &seeds)))
        .collect();
    let lines = seeds
        .iter()
        .map(|s| as_wire_line(s))
        .chain(mutants)
        .filter(|l| !l.trim().is_empty());

    for line in lines {
        let reply = match client.send_raw(&line) {
            Ok(reply) => reply,
            // QUIT/EXIT mutants close the connection mid-conversation;
            // reconnect and keep going — the *server* must survive.
            Err(_) => {
                client = connect();
                continue;
            }
        };
        let typed = reply.starts_with("OK ")
            || reply == "OK"
            || reply.starts_with("BUSY")
            || reply == "BYE"
            || reply
                .strip_prefix("ERR ")
                .is_some_and(|rest| !rest.split_whitespace().next().unwrap_or("").is_empty());
        assert!(typed, "untyped reply '{reply}' to line '{line}'");
        if reply == "BYE" {
            client = connect();
        }
    }

    // The server is still healthy: a well-formed extended-operator line
    // round-trips after the whole barrage.
    let ok = client
        .send_raw(
            "ESTIMATE imdb SELECT COUNT(*) FROM title \
             WHERE title.kind_id IN (1, 2) AND title.production_year LIKE '19%'",
        )
        .unwrap();
    assert!(ok.starts_with("OK "), "server unhealthy after fuzz: {ok}");
    server.shutdown();
}

#[test]
fn fuzz_protocol_parsers_never_panic_and_accepted_lines_are_canonical() {
    let mut seeds = load_lines("requests.txt");
    seeds.extend(load_lines("responses.txt"));
    assert!(seeds.len() >= 20, "protocol corpus unexpectedly small");
    let mut rng = Rng(0x0000_ddc0_ffee_5eed);
    let (mut req_ok, mut resp_ok) = (0usize, 0usize);
    for _ in 0..fuzz_iters(4000) {
        let line = as_wire_line(&mutate(&mut rng, &seeds));

        if let Ok(req) = parse_request(&line) {
            req_ok += 1;
            let wire = format_request(&req);
            assert_eq!(
                parse_request(&wire).expect("canonical request must reparse"),
                req,
                "request round-trip diverged for mutant '{line}'"
            );
        }
        for estimate in [true, false] {
            if let Ok(resp) = parse_response(&line, estimate) {
                resp_ok += 1;
                let wire = format_response(&resp);
                let reparsed = parse_response(&wire, estimate)
                    .unwrap_or_else(|e| panic!("canonical response must reparse: {e}"));
                assert!(
                    responses_equivalent(&resp, &reparsed),
                    "response round-trip diverged for mutant '{line}': \
                     {resp:?} vs {reparsed:?}"
                );
            }
        }
    }
    // The mutator must keep producing *valid* inputs too, or the round-trip
    // half of the property never executes.
    assert!(req_ok > 0, "no mutant parsed as a request");
    assert!(resp_ok > 0, "no mutant parsed as a response");
}

#[test]
fn fuzz_snapshot_decoder_never_panics_and_accepts_only_canonical_bytes() {
    let mut seeds = load_bins();
    assert!(seeds.len() >= 4, "snapshot corpus unexpectedly small");
    // One fully-valid seed built at runtime (a real trained sketch would
    // bloat the committed corpus): without it no mutant could ever reach
    // the accept path, and the canonical-bytes half of the property would
    // be vacuous.
    let db = ds_storage::gen::imdb_database(&ds_storage::gen::ImdbConfig::tiny(42));
    let sketch =
        ds_core::builder::SketchBuilder::new(&db, ds_query::workloads::imdb_predicate_columns(&db))
            .training_queries(120)
            .epochs(2)
            .sample_size(8)
            .hidden_units(8)
            .seed(7)
            .build()
            .expect("tiny sketch");
    let valid = encode_snapshot("imdb", 1, &sketch, None);
    assert!(
        decode_snapshot(&valid).is_ok(),
        "runtime seed must be valid"
    );
    seeds.push(valid);

    let mut rng = Rng(0x005a_a9d5_4b17_c0de);
    let mut accepted = 0usize;
    for _ in 0..fuzz_iters(2500) {
        let mut bytes = mutate(&mut rng, &seeds);
        // Structure-aware half: a quarter of the mutants get their FNV
        // trailer recomputed, so corruption *behind* a valid checksum
        // stresses the structural validation and the sketch decoder
        // instead of stopping at the cheap checksum gate.
        if bytes.len() >= 16 && rng.below(4) == 0 {
            let body_len = bytes.len() - 8;
            let sum = ds_core::snapshot::checksum(&bytes[..body_len]);
            bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        }
        // Must return, never panic; accepted bytes must be the canonical
        // encoding of what they decode to.
        if let Ok(snap) = decode_snapshot(&bytes) {
            accepted += 1;
            let re = encode_snapshot(
                &snap.name,
                snap.generation,
                &snap.sketch,
                snap.monitor.as_ref(),
            );
            assert_eq!(re, bytes, "decoder accepted non-canonical bytes");
        }
    }
    assert!(
        accepted > 0,
        "no mutant ever decoded — the accept path went unexercised"
    );
}

/// The harvested-set decoder (`DSHV`) faces whatever bytes a crash left
/// next to the snapshots, so it gets the same treatment: mutants must
/// never panic, and accepted bytes must be canonical — decode → encode is
/// the identity, so a warm restart re-persists exactly what it read.
#[test]
fn fuzz_harvest_decoder_never_panics_and_accepts_only_canonical_bytes() {
    use ds_core::lifecycle::HarvestSet;

    const CAPACITY: usize = 1024;
    // Runtime-built seeds: a populated set (varied key/SQL/actual shapes,
    // including the dedup-refresh path bumping sequence numbers) and the
    // valid-but-empty edge.
    let mut set = HarvestSet::new(CAPACITY);
    for i in 0..24u64 {
        set.observe(
            &format!("tmpl-{}#{}", i % 5, i),
            &format!("SELECT COUNT(*) FROM title WHERE title.kind_id = {i}"),
            i * 31 + 1,
        );
    }
    set.observe("tmpl-0#0", "SELECT COUNT(*) FROM title", u64::MAX);
    let mut seeds = vec![set.encode(), HarvestSet::new(CAPACITY).encode()];
    for seed in &seeds {
        assert!(
            HarvestSet::decode(seed, CAPACITY).is_ok(),
            "runtime harvest seed must be valid"
        );
    }
    // Plus raw garbage so the magic/version gates see non-DSHV noise.
    seeds.push(b"DSHV".to_vec());
    seeds.push(vec![0xff; 64]);

    let mut rng = Rng(0x00d5_11f3_c1e5_eed5);
    let mut accepted = 0usize;
    for _ in 0..fuzz_iters(2500) {
        let mut bytes = mutate(&mut rng, &seeds);
        // Structure-aware half: recompute the FNV trailer on a quarter of
        // the mutants so corruption behind a valid checksum stresses the
        // length-field bounds checks and the per-entry validation instead
        // of stopping at the cheap checksum gate.
        if bytes.len() >= 24 && rng.below(4) == 0 {
            let body_len = bytes.len() - 8;
            let sum = ds_core::snapshot::checksum(&bytes[..body_len]);
            bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        }
        if let Ok(decoded) = HarvestSet::decode(&bytes, CAPACITY) {
            accepted += 1;
            assert_eq!(
                decoded.encode(),
                bytes,
                "harvest decoder accepted non-canonical bytes"
            );
        }
    }
    assert!(
        accepted > 0,
        "no mutant ever decoded — the harvest accept path went unexercised"
    );
}
