//! Fleet observability end to end: three real `ds_shard` processes plus a
//! real `ds_fleetmon` aggregator process.
//!
//! A [`FleetClient`] routes traced `ESTIMATE`s (v3 `trace=` tokens) into
//! the fleet, one replica is SIGKILLed so a traced request fails over
//! across process boundaries, and the aggregator's merged views are then
//! checked against ground truth scraped shard-by-shard:
//!
//! * `TRACE` — the failover request's exemplar stitches into a single
//!   causal tree under the client's root span (client span → server span
//!   → batch span), exemplars from *different* shards appear in one
//!   payload grouped by trace id, and every traced exemplar's stage spans
//!   decompose its wall time within 5%;
//! * `STATS` — merged counters equal the per-shard sums and the merged
//!   latency histogram equals the bucket-wise sum of the per-shard
//!   histograms (the `LogHistogram::merge` identity), with the
//!   aggregator's own `fleet/…` scrape counters folded into the same
//!   document.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ds_core::builder::SketchBuilder;
use ds_core::snapshot::encode_snapshot;
use ds_obs::{FamilyKind, PromFamily, TraceContext};
use ds_query::parser::parse_query;
use ds_query::workloads::imdb_predicate_columns;
use ds_serve::{Client, Connection, FleetClient, FleetTopology, RequestTimeline, SyncAck};
use ds_storage::catalog::Database;
use ds_storage::gen::{imdb_database, ImdbConfig};

const SQL: &str = "SELECT COUNT(*) FROM title WHERE title.kind_id = 1";

/// One spawned server process (`ds_shard` or `ds_fleetmon`); killed on
/// drop so a failing test never leaks servers.
struct Proc {
    child: Child,
    addr: SocketAddr,
}

impl Proc {
    /// Spawns `bin` with `args` and reads the `ADDR` banner it prints
    /// once listening.
    fn spawn(bin: &str, args: &[String]) -> Proc {
        let mut child = Command::new(bin)
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn server process");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read ADDR line");
        let addr = line
            .trim()
            .strip_prefix("ADDR ")
            .unwrap_or_else(|| panic!("bad banner {line:?}"))
            .parse()
            .expect("parse server addr");
        Proc { child, addr }
    }

    fn kill(&mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
    }
}

impl Drop for Proc {
    fn drop(&mut self) {
        self.kill();
    }
}

fn tiny_sketch(db: &Database) -> ds_core::sketch::DeepSketch {
    SketchBuilder::new(db, imdb_predicate_columns(db))
        .training_queries(120)
        .epochs(2)
        .sample_size(8)
        .hidden_units(8)
        .seed(7)
        .build()
        .expect("tiny sketch")
}

fn connect(addr: SocketAddr) -> Connection {
    Connection::connect_timeout(addr, Duration::from_secs(30)).expect("connect")
}

fn client(addr: SocketAddr) -> Client {
    Client::connect_timeout(addr, Duration::from_secs(30)).expect("typed client")
}

/// The single scalar sample of a counter/gauge family, or 0 when the
/// family is absent from this exposition.
fn scalar(families: &[PromFamily], name: &str) -> f64 {
    families
        .iter()
        .find(|f| f.name == name)
        .and_then(|f| f.scalar())
        .unwrap_or(0.0)
}

/// The `(le, cumulative-count)` buckets of a histogram family, in
/// emission (ascending-`le`) order; `+Inf` parses as `u64::MAX`.
fn buckets(families: &[PromFamily], name: &str) -> Vec<(u64, f64)> {
    let fam = families
        .iter()
        .find(|f| f.name == name && f.kind == FamilyKind::Histogram)
        .unwrap_or_else(|| panic!("missing histogram family {name}"));
    fam.samples
        .iter()
        .filter(|s| s.name.ends_with("_bucket"))
        .map(|s| {
            let le = s
                .labels
                .iter()
                .find(|(k, _)| k == "le")
                .map(|(_, v)| v.as_str())
                .expect("bucket has le label");
            let le = if le == "+Inf" {
                u64::MAX
            } else {
                le.parse().expect("numeric le")
            };
            (le, s.value)
        })
        .collect()
}

/// Cumulative count at `le` of a sparse cumulative bucket list: the value
/// of the last emitted bucket at or below `le` (0 before the first one).
/// Exact because every exposition places its boundaries on the same
/// power-of-two grid — it merely skips the empty ones.
fn cumulative_at(buckets: &[(u64, f64)], le: u64) -> f64 {
    buckets
        .iter()
        .take_while(|(b, _)| *b <= le)
        .last()
        .map_or(0.0, |(_, v)| *v)
}

/// Stage spans decompose the exemplar's wall time within 5% (plus sub-µs
/// truncation slack per stage) — the PR 4 invariant, now asserted on
/// timelines that crossed a process boundary through the aggregator.
fn assert_decomposes(t: &RequestTimeline) {
    let diff = t.stage_sum_us().abs_diff(t.total_us) as f64;
    assert!(
        diff <= 5.0 + t.total_us as f64 * 0.05,
        "stages {} vs total {} for {}",
        t.stage_sum_us(),
        t.total_us,
        t.template
    );
}

#[test]
fn fleetmon_stitches_traces_and_merges_stats_across_processes() {
    let db = Arc::new(imdb_database(&ImdbConfig::tiny(42)));
    let sketch = tiny_sketch(&db);
    let expected = sketch.estimate_one(&parse_query(&db, SQL).unwrap());
    let blob = encode_snapshot("imdb", 1, &sketch, None);

    let mut shards: Vec<Proc> = (0..3)
        .map(|_| Proc::spawn(env!("CARGO_BIN_EXE_ds_shard"), &[]))
        .collect();
    let topology = FleetTopology::new(shards.iter().map(|s| s.addr).collect(), 2);
    let replicas = topology.replicas("imdb");
    assert_eq!(replicas.len(), 2);
    let bystander = (0..3).find(|s| !replicas.contains(s)).expect("third shard");

    // Seed every shard (the bystander too — it gets direct traced
    // traffic below so the aggregator has exemplars from two live
    // shards to group).
    for shard in &shards {
        let mut conn = connect(shard.addr);
        assert_eq!(
            conn.sync_snapshot("imdb", 1, &blob).expect("SYNC"),
            SyncAck::Adopted(1)
        );
    }

    // Routed, traced estimates. The first success pins affinity, so all
    // three land on the same replica.
    let mut fleet = FleetClient::new(topology.clone());
    for _ in 0..3 {
        let (v, degraded) = fleet.estimate("imdb", SQL).expect("routed estimate");
        assert!(!degraded);
        assert_eq!(v.to_bits(), expected.to_bits());
    }
    assert!(fleet.last_trace().is_some(), "client mints a root trace");

    // SIGKILL the affinity replica, then route one more traced request:
    // it must fail over to the surviving replica, carrying the same root
    // trace across both process attempts.
    let victim = fleet.candidates("imdb")[0];
    assert!(replicas.contains(&victim));
    let survivor = replicas.iter().copied().find(|&r| r != victim).unwrap();
    shards[victim].kill();
    let deadline = Instant::now() + Duration::from_secs(60);
    let (v, _) = fleet
        .estimate_with_deadline("imdb", SQL, deadline)
        .expect("failover estimate");
    assert_eq!(v.to_bits(), expected.to_bits());
    assert!(fleet.counters().failovers.get() >= 1);
    let root = fleet.last_trace().expect("root trace of the failover");

    // A second live shard contributes its own traced exemplar, so the
    // aggregator has cross-shard timelines to group by trace id.
    let side_trace = TraceContext {
        trace_id: root.trace_id ^ 0x5eed,
        span_id: root.span_id,
    };
    let resp = connect(shards[bystander].addr)
        .roundtrip(
            &ds_serve::Request::Estimate {
                sketch: "imdb".to_string(),
                sql: SQL.to_string(),
                trace: Some(side_trace),
            },
            true,
        )
        .expect("direct traced estimate");
    assert!(matches!(resp, ds_serve::Response::Estimate(_)), "{resp:?}");

    // Ground truth, shard by shard, after all traffic has stopped.
    let live = [survivor, bystander];
    let mut shard_families: Vec<Vec<PromFamily>> = Vec::new();
    let mut shard_timelines: Vec<RequestTimeline> = Vec::new();
    for &s in &live {
        let mut c = client(shards[s].addr);
        shard_families.push(c.stats_families().expect("shard STATS"));
        shard_timelines.extend(c.trace().expect("shard TRACE"));
        c.quit().ok();
    }

    // Now the aggregator: scraping two live shards and one corpse.
    let mut args: Vec<String> = Vec::new();
    for shard in &shards {
        args.push("--shard".to_string());
        args.push(shard.addr.to_string());
    }
    args.push("--interval-ms".to_string());
    args.push("200".to_string());
    let fleetmon = Proc::spawn(env!("CARGO_BIN_EXE_ds_fleetmon"), &args);

    let mut mon = client(fleetmon.addr);
    let merged = mon.stats_families().expect("fleetmon STATS");
    let stitched = mon.trace().expect("fleetmon TRACE");
    mon.quit().ok();

    // Counters merge by summation. `serve/ok` is driven only by the
    // estimate traffic above, so the identity is exact no matter when
    // each side scraped.
    let ok_sum: f64 = shard_families
        .iter()
        .map(|f| scalar(f, "ds_serve_ok"))
        .sum();
    // The failover landed on the survivor, the direct request on the
    // bystander; the three affinity-pinned estimates died with the victim.
    assert!(ok_sum >= 2.0, "both live shards answered estimates");
    assert_eq!(scalar(&merged, "ds_serve_ok"), ok_sum);

    // Histograms merge bucket-wise — cumulative counts add, which is
    // exactly `LogHistogram::merge` after exposition. Expositions skip
    // empty buckets, so each shard emits its own sparse layout; the
    // identity is checked per boundary via the cumulative reading, at
    // every boundary any shard emitted. Then the _count and _sum series
    // must equal the per-shard sums.
    let shard_buckets: Vec<_> = shard_families
        .iter()
        .map(|f| buckets(f, "ds_serve_latency_us_hist"))
        .collect();
    let merged_buckets = buckets(&merged, "ds_serve_latency_us_hist");
    for le in shard_buckets
        .iter()
        .flatten()
        .map(|(le, _)| *le)
        .chain(merged_buckets.iter().map(|(le, _)| *le))
    {
        let sum: f64 = shard_buckets.iter().map(|b| cumulative_at(b, le)).sum();
        assert_eq!(cumulative_at(&merged_buckets, le), sum, "bucket le={le}");
    }
    fn hist(fams: &[PromFamily]) -> &PromFamily {
        fams.iter()
            .find(|f| f.name == "ds_serve_latency_us_hist")
            .expect("latency histogram family")
    }
    for suffix in ["count", "sum"] {
        let sum: f64 = shard_families
            .iter()
            .map(|f| hist(f).suffixed(suffix).expect("histogram series"))
            .sum();
        assert_eq!(
            hist(&merged).suffixed(suffix).expect("merged series"),
            sum,
            "_{suffix}"
        );
    }

    // The aggregator folds its own fleet counters into the same document:
    // it swept three shards and found one corpse.
    assert!(scalar(&merged, "ds_fleet_routed") >= 1.0);
    assert!(scalar(&merged, "ds_fleet_sweep_failures") >= 1.0);

    // The stitched TRACE covers every live shard's exemplars...
    assert_eq!(stitched.len(), shard_timelines.len());
    assert!(
        stitched.iter().any(|t| t.trace_id == side_trace.trace_id),
        "bystander shard's exemplar made it into the stitched view"
    );
    // ...grouped by trace id so each tree's records are adjacent.
    let ids: Vec<u128> = stitched.iter().map(|t| t.trace_id).collect();
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    assert_eq!(ids, sorted, "stitched output groups records by trace id");

    // The failover request is a single stitched tree: every record of its
    // trace parents directly under the client's root span and rode a
    // minted batch span. The victim died mid-sweep, so the tree's server
    // spans all come from the survivor — exactly one answered.
    let tree: Vec<_> = stitched
        .iter()
        .filter(|t| t.trace_id == root.trace_id)
        .collect();
    assert_eq!(tree.len(), 1, "one answered span for the failover trace");
    for t in &tree {
        assert_eq!(t.parent_span, root.span_id, "parented under the client");
        assert_ne!(t.span_id, 0, "server minted its own span");
        assert_ne!(t.batch_span, 0, "traced requests ride a traced batch");
        assert_ne!(t.span_id, t.batch_span);
    }
    // Every traced exemplar that crossed the aggregator still decomposes.
    for t in stitched.iter().filter(|t| t.trace_id != 0) {
        assert_decomposes(t);
    }
}
