//! Hot-swap integration tests: a live server whose sketch is atomically
//! replaced via [`SketchStore::swap`] mid-traffic, proving that
//!
//! * `ESTIMATE` lines for an unchanged template are byte-identical across
//!   the swap when the incoming model carries the same weights — the swap
//!   machinery itself perturbs nothing;
//! * the estimate cache is invalidated structurally by the generation
//!   bump: the first post-swap request is a counted miss, never a stale
//!   hit from the previous generation;
//! * a storm of concurrent clients hammering across repeated swaps sees
//!   zero dropped and zero incorrect responses.

use std::sync::Arc;
use std::time::Duration;

use ds_core::builder::SketchBuilder;
use ds_core::store::SketchStore;
use ds_query::parser::parse_query;
use ds_query::workloads::imdb_predicate_columns;
use ds_serve::{Client, ServeConfig, Server};
use ds_storage::catalog::Database;
use ds_storage::gen::{imdb_database, ImdbConfig};

const SQL: &str = "SELECT COUNT(*) FROM title WHERE title.kind_id = 1";

fn tiny_sketch(db: &Database, seed: u64) -> ds_core::sketch::DeepSketch {
    SketchBuilder::new(db, imdb_predicate_columns(db))
        .training_queries(120)
        .epochs(2)
        .sample_size(8)
        .hidden_units(8)
        .seed(seed)
        .build()
        .expect("tiny sketch")
}

fn fixture() -> (Arc<Database>, Arc<SketchStore>) {
    let db = Arc::new(imdb_database(&ImdbConfig::tiny(42)));
    let store = Arc::new(SketchStore::new());
    store.insert("imdb", tiny_sketch(&db, 7)).unwrap();
    (db, store)
}

fn stat(c: &mut Client, name: &str) -> f64 {
    c.stats()
        .unwrap()
        .iter()
        .find(|s| s.name == name)
        .map(|s| s.value)
        .unwrap_or_else(|| panic!("missing sample {name}"))
}

/// Swapping in a model with identical weights must be invisible in the
/// answer bytes — and visible in the cache counters: the generation bump
/// turns the first post-swap request into a miss, never a stale hit.
#[test]
fn estimates_stay_bit_identical_across_swap_and_cache_invalidates() {
    let (db, store) = fixture();
    let expected = store
        .get("imdb")
        .unwrap()
        .estimate_one(&parse_query(&db, SQL).unwrap());
    let server = Server::start(
        Arc::clone(&db),
        Arc::clone(&store),
        ServeConfig::builder()
            .request_timeout(Duration::from_secs(30))
            .build()
            .unwrap(),
    )
    .unwrap();
    let mut c = Client::connect_timeout(server.local_addr(), Duration::from_secs(30)).unwrap();

    let cold = c.send_raw(&format!("ESTIMATE imdb {SQL}")).unwrap();
    assert_eq!(cold, format!("OK {expected:?}"), "cold line");
    let warm = c.send_raw(&format!("ESTIMATE imdb {SQL}")).unwrap();
    assert_eq!(warm, cold, "warm (cached) line");
    assert_eq!(stat(&mut c, "ds_serve_cache_misses"), 1.0);
    assert_eq!(stat(&mut c, "ds_serve_cache_hits"), 1.0);

    // Hot-swap in a clone with the same weights: answers must not move by
    // a single bit, but the cache entry keyed to the old generation is
    // structurally dead.
    let clone = store.get("imdb").unwrap().as_ref().clone();
    let outcome = store.swap("imdb", Arc::new(clone)).unwrap();
    assert!(outcome.generation > outcome.previous_generation);
    let post = c.send_raw(&format!("ESTIMATE imdb {SQL}")).unwrap();
    assert_eq!(post, cold, "post-swap line must be byte-identical");
    assert_eq!(
        stat(&mut c, "ds_serve_cache_misses"),
        2.0,
        "the generation bump must force a fresh miss"
    );
    let rewarm = c.send_raw(&format!("ESTIMATE imdb {SQL}")).unwrap();
    assert_eq!(rewarm, cold);
    assert_eq!(
        stat(&mut c, "ds_serve_cache_hits"),
        2.0,
        "the new generation re-warms normally"
    );

    c.quit().unwrap();
    server.shutdown();
}

/// Concurrent clients hammering one template across repeated hot swaps:
/// every single response arrives and carries the expected bits — no
/// drops, no mixed-generation garbage, no errors.
#[test]
fn concurrent_hammer_sees_zero_dropped_or_incorrect_responses() {
    let (db, store) = fixture();
    let expected = store
        .get("imdb")
        .unwrap()
        .estimate_one(&parse_query(&db, SQL).unwrap());
    let expected_line = format!("OK {expected:?}");
    let server = Server::start(
        Arc::clone(&db),
        Arc::clone(&store),
        ServeConfig::builder()
            .request_timeout(Duration::from_secs(30))
            .build()
            .unwrap(),
    )
    .unwrap();
    let addr = server.local_addr();

    const CLIENTS: usize = 4;
    const REQUESTS: usize = 50;
    let hammers: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let expected_line = expected_line.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect_timeout(addr, Duration::from_secs(30)).unwrap();
                for i in 0..REQUESTS {
                    let line = c.send_raw(&format!("ESTIMATE imdb {SQL}")).unwrap();
                    assert_eq!(line, expected_line, "request {i}");
                }
                c.quit().unwrap();
                REQUESTS
            })
        })
        .collect();

    // Swap continuously while the hammer runs; identical weights keep the
    // correct answer constant, so any mixed-up response is detectable.
    let swapper = {
        let store = Arc::clone(&store);
        std::thread::spawn(move || {
            for _ in 0..20 {
                let clone = store.get("imdb").unwrap().as_ref().clone();
                store.swap("imdb", Arc::new(clone)).unwrap();
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    };

    let mut answered = 0;
    for h in hammers {
        answered += h.join().expect("hammer thread");
    }
    swapper.join().expect("swapper thread");
    assert_eq!(answered, CLIENTS * REQUESTS, "every request answered");

    let m = server.shutdown();
    assert_eq!(m.errors, 0, "zero errors during swaps");
    assert_eq!(m.ok, (CLIENTS * REQUESTS) as u64);
}
