//! Multi-process fleet smoke test: three real `ds_shard` processes, R=2
//! replication seeded over the wire, one shard killed with a real signal,
//! traffic surviving via failover, and the respawned shard re-seeded from
//! the survivor at the original generation.
//!
//! This is the genuinely-separate-address-space counterpart of the
//! in-process `fleet_failover` suite; the CI fleet-smoke job runs exactly
//! this test under a watchdog `timeout`.

use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ds_core::builder::SketchBuilder;
use ds_core::snapshot::encode_snapshot;
use ds_query::parser::parse_query;
use ds_query::workloads::imdb_predicate_columns;
use ds_serve::{Connection, FleetClient, FleetTopology, SyncAck};
use ds_storage::catalog::Database;
use ds_storage::gen::{imdb_database, ImdbConfig};

const SQL: &str = "SELECT COUNT(*) FROM title WHERE title.kind_id = 1";

/// One spawned shard process; killed on drop so a failing test never
/// leaks servers.
struct ShardProc {
    child: Child,
    addr: SocketAddr,
}

impl ShardProc {
    /// Spawns `ds_shard` (optionally on a fixed address for respawn) and
    /// reads the `ADDR` line it prints once listening.
    fn spawn(addr: Option<SocketAddr>) -> ShardProc {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_ds_shard"));
        if let Some(addr) = addr {
            cmd.arg("--addr").arg(addr.to_string());
        }
        let mut child = cmd
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn ds_shard");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read ADDR line");
        let addr = line
            .trim()
            .strip_prefix("ADDR ")
            .unwrap_or_else(|| panic!("bad banner {line:?}"))
            .parse()
            .expect("parse shard addr");
        ShardProc { child, addr }
    }

    /// SIGKILL — the real thing, no graceful shutdown.
    fn kill(&mut self) {
        self.child.kill().ok();
        self.child.wait().ok();
    }
}

impl Drop for ShardProc {
    fn drop(&mut self) {
        self.kill();
    }
}

fn tiny_sketch(db: &Database) -> ds_core::sketch::DeepSketch {
    SketchBuilder::new(db, imdb_predicate_columns(db))
        .training_queries(120)
        .epochs(2)
        .sample_size(8)
        .hidden_units(8)
        .seed(7)
        .build()
        .expect("tiny sketch")
}

fn connect(addr: SocketAddr) -> Connection {
    Connection::connect_timeout(addr, Duration::from_secs(30)).expect("connect to shard")
}

#[test]
fn fleet_of_processes_survives_sigkill_and_reseeds_the_replacement() {
    // The shards generate the same tiny catalog from the default seed, so
    // the sketch we train here parses and answers identically over there.
    let db = Arc::new(imdb_database(&ImdbConfig::tiny(42)));
    let sketch = tiny_sketch(&db);
    let expected = sketch.estimate_one(&parse_query(&db, SQL).unwrap());
    let blob = encode_snapshot("imdb", 1, &sketch, None);

    let mut shards: Vec<ShardProc> = (0..3).map(|_| ShardProc::spawn(None)).collect();
    let topology = FleetTopology::new(shards.iter().map(|s| s.addr).collect(), 2);
    let replicas = topology.replicas("imdb");
    assert_eq!(replicas.len(), 2);

    // Handshake: every shard speaks protocol v3 and advertises `fleet`
    // plus `trace` (cross-process trace propagation).
    for shard in &shards {
        let mut conn = connect(shard.addr);
        let hs = conn.hello().expect("HELLO");
        assert_eq!(hs.version, 3);
        assert!(hs.has_feature("fleet"), "{:?}", hs.features);
        assert!(hs.has_feature("trace"), "{:?}", hs.features);
    }

    // Seed both replicas over the wire, exactly as a deployer would.
    for &r in &replicas {
        let mut conn = connect(shards[r].addr);
        assert_eq!(
            conn.sync_snapshot("imdb", 1, &blob).expect("SYNC"),
            SyncAck::Adopted(1)
        );
    }

    let mut client = FleetClient::new(topology.clone());
    let (v, degraded) = client.estimate("imdb", SQL).expect("routed estimate");
    assert!(!degraded);
    assert_eq!(v.to_bits(), expected.to_bits());

    // SIGKILL one replica. Traffic must keep succeeding via the survivor —
    // the zero-failed-forever contract, across real process boundaries.
    let victim = replicas[0];
    shards[victim].kill();
    let deadline = Instant::now() + Duration::from_secs(60);
    for _ in 0..5 {
        let (v, _) = client
            .estimate_with_deadline("imdb", SQL, deadline)
            .expect("failover estimate");
        assert_eq!(v.to_bits(), expected.to_bits());
    }
    assert!(client.counters().failovers.get() >= 1);

    // Respawn on the same address (the topology is fixed), then re-seed it
    // from the survivor: fetch the snapshot over one wire, sync it over
    // the other. Bind retry loop — the OS may lag releasing the port.
    let addr = shards[victim].addr;
    let respawned = {
        let mut attempt = 0;
        loop {
            attempt += 1;
            let mut proc = ShardProc::spawn(Some(addr));
            match proc.child.try_wait() {
                Ok(None) => break proc,
                _ if attempt < 50 => std::thread::sleep(Duration::from_millis(100)),
                _ => panic!("could not rebind shard on {addr}"),
            }
        }
    };
    shards[victim] = respawned;

    let survivor = replicas[1];
    let (generation, shipped) = connect(shards[survivor].addr)
        .fetch_snapshot("imdb")
        .expect("fetch from survivor");
    assert_eq!(generation, 1, "no generation lost to the kill");
    assert_eq!(shipped, blob, "survivor ships the original bytes");
    assert_eq!(
        connect(shards[victim].addr)
            .sync_snapshot("imdb", generation, &shipped)
            .expect("re-seed replacement"),
        SyncAck::Adopted(1)
    );

    // The replacement answers bit-identically on its own wire: R restored.
    let mut conn = connect(shards[victim].addr);
    let resp = conn
        .roundtrip(
            &ds_serve::Request::Estimate {
                sketch: "imdb".to_string(),
                sql: SQL.to_string(),
                trace: None,
            },
            true,
        )
        .expect("estimate on replacement");
    match resp {
        ds_serve::Response::Estimate(v) => assert_eq!(v.to_bits(), expected.to_bits()),
        other => panic!("unexpected response {other:?}"),
    }
    conn.quit().ok();
}
