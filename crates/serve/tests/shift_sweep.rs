//! The shift-sweep drill: a live server fed `FEEDBACK` from controlled
//! CEB-style workload sweeps ([`ds_query::shift`]).
//!
//! The contract under test:
//!
//! * a **stationary** sweep point — templates and literals drawn from the
//!   training distribution — must leave the drift advisor **silent**;
//! * a **shifted** sweep point (operator-granularity coarsening into
//!   `IN`/`LIKE`, plus selectivity migration into the distribution tails)
//!   must make [`ds_core::advisor::recommend_retraining`] **fire** for the
//!   served sketch;
//! * a schema-v2 sketch trained with the extended operator vocabulary
//!   answers an `IN`/`LIKE`-bearing holdout over the wire with a median
//!   q-error within 1.5× of its comparison-only holdout — the new
//!   operators ride along without wrecking accuracy.
//!
//! Everything is seeded: databases, sketches, sweeps. The drill is a
//! deterministic artifact, not a flaky sample.

use std::sync::Arc;
use std::time::Duration;

use ds_core::advisor::recommend_retraining;
use ds_core::builder::SketchBuilder;
use ds_core::store::SketchStore;
use ds_query::query::Query;
use ds_query::shift::{ShiftKind, ShiftSweep, SweepConfig};
use ds_query::sqlgen::to_sql;
use ds_query::workloads::imdb_predicate_columns;
use ds_query::{GeneratorConfig, QueryGenerator};
use ds_serve::{Client, ServeConfig, Server};
use ds_storage::catalog::Database;
use ds_storage::gen::{imdb_database, ImdbConfig};
use ds_storage::predicate::PredOpKind;

/// Advisor knobs for the drill: fire when either rolling q-error quantile
/// exceeds 3× its training baseline over at least 24 graded queries.
const DRIFT_RATIO: f64 = 3.0;
const DRIFT_MIN_SAMPLES: u64 = 24;

/// True cardinalities for a workload, floored at 1 (the estimate floor).
fn true_counts(db: &Database, queries: &[Query]) -> Vec<u64> {
    let execs: Vec<_> = queries.iter().map(Query::to_exec).collect();
    ds_storage::exec::count_batch(db, &execs, 1)
        .expect("workload executes")
        .into_iter()
        .map(|c| c.max(1))
        .collect()
}

/// Grades one sweep point through the server: a `FEEDBACK` line per query
/// with its true cardinality. Every line must be answered `OK`.
fn feedback_point(c: &mut Client, db: &Database, queries: &[Query]) {
    let counts = true_counts(db, queries);
    for (q, actual) in queries.iter().zip(counts) {
        let line = c
            .send_raw(&format!("FEEDBACK imdb {actual} {}", to_sql(db, q)))
            .expect("feedback answered");
        assert!(line.starts_with("OK "), "feedback line: {line}");
    }
}

/// Predicate vocabulary for the drift drill: a narrow, low-cardinality
/// column set on which the bitmap-less paper model trains *tight*
/// (stationary median q-error < 2). A tight baseline is what makes the
/// drill honest — operator-granularity shift must register as *relative*
/// degradation, and a sloppy baseline would absorb it.
fn drill_columns(db: &Database) -> Vec<ds_storage::catalog::ColRef> {
    [
        "title.kind_id",
        "title.production_year",
        "movie_companies.company_type_id",
        "cast_info.role_id",
    ]
    .iter()
    .map(|q| db.resolve(q).expect("drill column"))
    .collect()
}

#[test]
fn advisor_fires_under_shift_and_stays_silent_when_stationary() {
    let db = Arc::new(imdb_database(&ImdbConfig::tiny(77)));
    let sketch = SketchBuilder::new(&db, drill_columns(&db))
        .training_queries(4000)
        .epochs(20)
        .sample_size(64)
        .hidden_units(64)
        .use_bitmaps(false)
        .seed(3)
        .build()
        .expect("drill sketch");
    assert!(sketch.baseline().is_some(), "drift needs a baseline");
    let store = Arc::new(SketchStore::new());
    store.insert("imdb", sketch).unwrap();

    let server = Server::start(
        Arc::clone(&db),
        Arc::clone(&store),
        ServeConfig::builder()
            .request_timeout(Duration::from_secs(30))
            .build()
            .unwrap(),
    )
    .unwrap();
    let monitors = server.monitors();
    let mut c = Client::connect_timeout(server.local_addr(), Duration::from_secs(30)).unwrap();

    let sweep = ShiftSweep::new(&db, drill_columns(&db), 12, 31);

    // Phase A — stationary: the sweep reproduces the training
    // distribution, so the rolling q-error window must stay within the
    // training baseline and the advisor must stay silent.
    let stationary =
        sweep.instantiate(&SweepConfig::new(ShiftKind::Stationary, 0.0, 5).queries(60));
    feedback_point(&mut c, &db, &stationary);
    let advice = recommend_retraining(&store, &monitors, DRIFT_RATIO, DRIFT_MIN_SAMPLES);
    assert!(
        advice.is_empty(),
        "stationary sweep must not trigger the advisor: {advice:?}"
    );

    // Phase B — shift: operator granularity coarsens into IN/LIKE (a
    // vocabulary this v1 sketch never trained on) and selectivity
    // migrates into the tails. The advisor must fire for the sketch.
    for cfg in [
        SweepConfig::new(ShiftKind::Selectivity, 1.0, 7).queries(60),
        SweepConfig::new(ShiftKind::Granularity, 1.0, 6).queries(200),
    ] {
        feedback_point(&mut c, &db, &sweep.instantiate(&cfg));
    }
    let advice = recommend_retraining(&store, &monitors, DRIFT_RATIO, DRIFT_MIN_SAMPLES);
    assert_eq!(advice.len(), 1, "shifted sweep must trigger the advisor");
    assert_eq!(advice[0].sketch, "imdb");
    assert!(
        advice[0].drift.is_stale(DRIFT_RATIO, DRIFT_MIN_SAMPLES),
        "{}",
        advice[0].drift
    );
    println!("shift-sweep drift evidence: {}", advice[0].drift);

    let m = server.shutdown();
    assert_eq!(m.errors, 0, "every sweep line must be answered OK");
}

#[test]
fn v2_sketch_answers_in_like_holdout_within_budget_over_the_wire() {
    let db = Arc::new(imdb_database(&ImdbConfig::tiny(78)));
    let sketch = SketchBuilder::new(&db, imdb_predicate_columns(&db))
        .training_queries(1500)
        .epochs(10)
        .sample_size(48)
        .hidden_units(48)
        .extended_ops(0.25, 0.25)
        .feature_schema_v2(16)
        .seed(9)
        .build()
        .expect("v2 sketch");
    let store = Arc::new(SketchStore::new());
    store.insert("imdb", sketch).unwrap();
    let server = Server::start(
        Arc::clone(&db),
        Arc::clone(&store),
        ServeConfig::builder()
            .request_timeout(Duration::from_secs(30))
            .build()
            .unwrap(),
    )
    .unwrap();
    let mut c = Client::connect_timeout(server.local_addr(), Duration::from_secs(30)).unwrap();

    // Held-out workload from the same extended-operator distribution but a
    // disjoint seed; split into the IN/LIKE-bearing part and the
    // comparison-only part.
    let mut gen_cfg = GeneratorConfig::new(imdb_predicate_columns(&db), 0xBEEF).with_extended_ops();
    gen_cfg.max_in_list = 4;
    let holdout = QueryGenerator::new(&db, gen_cfg).generate_batch(300);
    let (ext, cmp): (Vec<Query>, Vec<Query>) = holdout.into_iter().partition(|q| {
        q.predicates
            .iter()
            .any(|(_, p)| matches!(p.op_kind(), PredOpKind::In | PredOpKind::Like))
    });
    assert!(ext.len() >= 40, "holdout must carry IN/LIKE: {}", ext.len());
    assert!(cmp.len() >= 40, "holdout must carry cmp: {}", cmp.len());

    let median_qerror = |queries: &[Query], c: &mut Client| -> f64 {
        let truths = true_counts(&db, queries);
        let mut qs: Vec<f64> = queries
            .iter()
            .zip(truths)
            .map(|(q, t)| {
                let e = c
                    .estimate_value("imdb", &to_sql(&db, q))
                    .expect("estimate over the wire");
                let t = t as f64;
                (e / t).max(t / e)
            })
            .collect();
        qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        qs[qs.len() / 2]
    };
    let ext_median = median_qerror(&ext, &mut c);
    let cmp_median = median_qerror(&cmp, &mut c);
    println!(
        "holdout medians: IN/LIKE={ext_median:.3} ({} queries), cmp-only={cmp_median:.3} ({} queries)",
        ext.len(),
        cmp.len()
    );
    assert!(
        ext_median <= cmp_median * 1.5,
        "IN/LIKE holdout median {ext_median:.3} exceeds 1.5x of cmp-only median {cmp_median:.3}"
    );

    let m = server.shutdown();
    assert_eq!(m.errors, 0);
}
