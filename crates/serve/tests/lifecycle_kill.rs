//! Nightly long-soak kill drill: a real server with the lifecycle daemon
//! enabled is `kill -9`ed mid-retrain, and a warm restart must come up
//! clean — the recovered store serves the last durable generation, the
//! in-flight candidate is abandoned (its training thread died with the
//! process and nothing of it was published), the persisted harvest set
//! still decodes, and the quarantine never grows.
//!
//! The parent/child split follows the crash drill in
//! `ds-core/tests/crash_recovery.rs`: the `#[ignore]`d child test is
//! spawned from the current test binary by exact name, driven over env
//! vars, and killed at a staggered point after it signals (via a marker
//! file) that a retrain has started.
//!
//! `DS_LIFECYCLE_KILL_ITERS` scales the loop (nightly CI raises it).

use std::sync::Arc;
use std::time::{Duration, Instant};

use ds_core::builder::SketchBuilder;
use ds_core::lifecycle::{HarvestSet, LifecycleConfig};
use ds_core::store::SketchStore;
use ds_query::generator::{GeneratorConfig, QueryGenerator};
use ds_query::sqlgen::to_sql;
use ds_query::workloads::imdb_predicate_columns;
use ds_serve::{Client, ServeConfig, Server};
use ds_storage::catalog::Database;
use ds_storage::gen::{imdb_database, ImdbConfig};

const DRIFT_FACTOR: u64 = 64;
const PROBE_SQL: &str = "SELECT COUNT(*) FROM title WHERE title.kind_id = 1";

fn iterations() -> usize {
    std::env::var("DS_LIFECYCLE_KILL_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
}

fn tiny_sketch(db: &Database, seed: u64) -> ds_core::sketch::DeepSketch {
    SketchBuilder::new(db, imdb_predicate_columns(db))
        .training_queries(120)
        .epochs(2)
        .sample_size(8)
        .hidden_units(8)
        .seed(seed)
        .build()
        .expect("tiny sketch")
}

fn drill_lifecycle_config() -> LifecycleConfig {
    LifecycleConfig {
        harvest_capacity: 256,
        min_harvest: 12,
        drift_ratio: 2.0,
        drift_min_samples: 8,
        shadow_min_samples: 6,
        shadow_gate_ratio: 2.0,
        guard_min_samples: 6,
        guard_ratio: 3.0,
        // Deliberately heavy epochs: the kill should land while the
        // candidate is still training.
        train_epochs: 64,
        train_threads: 1,
        seed: 0x50AC,
        tick_interval: Duration::from_millis(25),
        poison_candidates: false,
    }
}

/// Deterministic drill workload with drift-shifted actuals (see
/// `lifecycle_soak.rs`); both parent and child derive it identically from
/// the seeded database.
fn drifted_workload(db: &Database, want: usize) -> Vec<(String, u64)> {
    let mut generator =
        QueryGenerator::new(db, GeneratorConfig::new(imdb_predicate_columns(db), 9));
    let mut by_sql = std::collections::BTreeMap::new();
    while by_sql.len() < want {
        for q in generator.generate_batch(16) {
            by_sql.entry(to_sql(db, &q)).or_insert(q);
        }
    }
    let (sqls, queries): (Vec<String>, Vec<_>) = by_sql.into_iter().unzip();
    let execs: Vec<_> = queries.iter().map(|q| q.to_exec()).collect();
    let counts = ds_storage::exec::count_batch(db, &execs, 1).expect("count workload");
    sqls.into_iter()
        .zip(counts)
        .map(|(sql, c)| (sql, c.max(1).saturating_mul(DRIFT_FACTOR)))
        .collect()
}

/// Child half: recovers the store from `DS_LC_KILL_DIR`, starts a
/// lifecycle-enabled server persisting into the same directory, drives
/// drift-shifted feedback until a retrain starts, drops the marker file
/// the parent waits for, and keeps serving until SIGKILL. Ignored so plain
/// `cargo test` never runs it; exits immediately without the env contract.
#[test]
#[ignore = "spawned as a crash child by kill_nine_mid_retrain_restarts_clean"]
fn lifecycle_kill_child_server() {
    let Ok(dir) = std::env::var("DS_LC_KILL_DIR") else {
        return;
    };
    let dir = std::path::PathBuf::from(dir);
    let db = Arc::new(imdb_database(&ImdbConfig::tiny(42)));
    let (store, _monitors, report) = SketchStore::open_dir(&dir).expect("child: recover store");
    assert!(
        report.loaded.iter().any(|(n, _)| n == "imdb"),
        "child: seeded sketch must recover"
    );
    let server = Server::start(
        Arc::clone(&db),
        Arc::new(store),
        ServeConfig::builder()
            .request_timeout(Duration::from_secs(30))
            .snapshot_dir(Some(dir.clone()))
            .lifecycle(Some(drill_lifecycle_config()))
            .build()
            .unwrap(),
    )
    .expect("child: server");
    let manager = server.lifecycle().expect("child: lifecycle enabled");
    let workload = drifted_workload(&db, 16);
    let mut c = Client::connect_timeout(server.local_addr(), Duration::from_secs(30)).unwrap();
    let mut marked = false;
    loop {
        for (sql, actual) in &workload {
            let _ = c.send_raw(&format!("FEEDBACK imdb {actual} {sql}"));
        }
        if !marked && manager.counters().retrains_started >= 1 {
            std::fs::write(dir.join("retrain.marker"), b"training").expect("child: marker");
            marked = true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Kills the child on drop so an assertion failure in the parent never
/// leaks the child's infinite serve loop.
struct ChildGuard(std::process::Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Parent half: seed a durable generation, spawn the child server, wait
/// for its retrain marker, `kill -9` at a staggered point, then assert a
/// warm restart is clean — recovered store serves, candidate abandoned,
/// harvest decodes, quarantine empty.
#[cfg(unix)]
#[test]
fn kill_nine_mid_retrain_restarts_clean() {
    let db = Arc::new(imdb_database(&ImdbConfig::tiny(42)));
    let sketch = tiny_sketch(&db, 7);
    let root = std::env::temp_dir().join(format!("ds_lc_kill_{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let exe = std::env::current_exe().expect("test binary path");
    let cfg = drill_lifecycle_config();

    for iter in 0..iterations().clamp(1, 50) {
        let dir = root.join(format!("iter{iter:03}"));
        std::fs::create_dir_all(&dir).unwrap();
        // Seed the durable generation the child recovers from.
        {
            let store = SketchStore::new();
            store.insert("imdb", sketch.clone()).unwrap();
            store.save_snapshot(&dir, "imdb", None).unwrap();
        }

        let mut child = ChildGuard(
            std::process::Command::new(&exe)
                .args([
                    "lifecycle_kill_child_server",
                    "--ignored",
                    "--exact",
                    "--nocapture",
                ])
                .env("DS_LC_KILL_DIR", &dir)
                .stdout(std::process::Stdio::null())
                .stderr(std::process::Stdio::null())
                .spawn()
                .expect("spawn child server"),
        );

        // Wait for the child to reach the retrain, then land the SIGKILL
        // at a staggered point inside training/shadow.
        let marker = dir.join("retrain.marker");
        let deadline = Instant::now() + Duration::from_secs(120);
        while !marker.exists() {
            assert!(
                Instant::now() < deadline,
                "iter {iter}: child never reached a retrain"
            );
            if let Ok(Some(status)) = child.0.try_wait() {
                panic!("iter {iter}: child exited early: {status}");
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        std::thread::sleep(Duration::from_millis((iter as u64 * 13) % 80));
        child.0.kill().expect("kill -9 child");
        let _ = child.0.wait();

        // Recovery: the last durable generation loads, nothing is
        // quarantined (no torn snapshot was published), and any persisted
        // harvest still decodes canonically.
        let (store, _monitors, report) =
            SketchStore::open_dir(&dir).unwrap_or_else(|e| panic!("iter {iter}: recovery: {e}"));
        assert!(
            report.loaded.iter().any(|(n, _)| n == "imdb"),
            "iter {iter}: {report:?}"
        );
        assert!(
            report.quarantined.is_empty(),
            "iter {iter}: kill -9 must never grow the quarantine: {report:?}"
        );
        let harvested = HarvestSet::load(&dir, "imdb", cfg.harvest_capacity)
            .unwrap_or_else(|e| panic!("iter {iter}: persisted harvest must decode: {e:?}"));
        if let Some(set) = &harvested {
            assert!(!set.is_empty(), "iter {iter}: persisted harvest is empty");
        }

        // Warm restart: the same directory boots a serving,
        // lifecycle-enabled server again; the dead child's candidate was
        // abandoned with the process and nothing of it was published.
        let server = Server::start(
            Arc::clone(&db),
            Arc::new(store),
            ServeConfig::builder()
                .request_timeout(Duration::from_secs(30))
                .snapshot_dir(Some(dir.clone()))
                .lifecycle(Some(drill_lifecycle_config()))
                .build()
                .unwrap(),
        )
        .unwrap_or_else(|e| panic!("iter {iter}: warm restart: {e}"));
        let manager = server.lifecycle().expect("lifecycle enabled");
        if harvested.is_some() {
            assert!(
                manager.status("imdb").harvested > 0,
                "iter {iter}: warm restart must reload the persisted harvest"
            );
        }
        let mut c = Client::connect_timeout(server.local_addr(), Duration::from_secs(30)).unwrap();
        let line = c.send_raw(&format!("ESTIMATE imdb {PROBE_SQL}")).unwrap();
        assert!(line.starts_with("OK "), "iter {iter}: {line}");
        c.quit().unwrap();
        let m = server.shutdown();
        assert_eq!(m.errors, 0, "iter {iter}: warm restart must serve cleanly");
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(&root).ok();
}
