//! The lifecycle soak drill: a live server with the retrain-and-hot-swap
//! daemon enabled, driven through a deterministic, seeded drift injection
//! (every observed cardinality shifts by a constant factor mid-run, the
//! "data grew under the model" scenario).
//!
//! Phase A asserts the full happy path — drift fires the advisor, a
//! candidate trains off the hot path on the harvested queries, shadow
//! scoring on mirrored traffic passes the gate, the store hot-swaps under
//! a fresh generation, and the post-swap guard promotes — while a
//! background `ESTIMATE` hammer sees zero dropped or failed responses.
//!
//! Phase B arms the poison hook (a deliberately corrupted candidate that
//! passes the gate) and asserts the post-swap guard rolls back to the
//! previous model with bit-identical answers restored.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ds_core::builder::SketchBuilder;
use ds_core::lifecycle::{LifecycleConfig, LifecycleManager};
use ds_core::store::SketchStore;
use ds_query::generator::{GeneratorConfig, QueryGenerator};
use ds_query::sqlgen::to_sql;
use ds_query::workloads::imdb_predicate_columns;
use ds_serve::{Client, ServeConfig, Server};
use ds_storage::catalog::Database;
use ds_storage::gen::{imdb_database, ImdbConfig};

/// The injected correlation shift: every observed true cardinality is the
/// executed count times this factor, so the live model (trained pre-shift)
/// is ~64x off while a candidate trained on the shifted labels is not.
const DRIFT_FACTOR: u64 = 64;

const PROBE_SQL: &str = "SELECT COUNT(*) FROM title WHERE title.kind_id = 1";

fn tiny_sketch(db: &Database, seed: u64) -> ds_core::sketch::DeepSketch {
    SketchBuilder::new(db, imdb_predicate_columns(db))
        .training_queries(120)
        .epochs(2)
        .sample_size(8)
        .hidden_units(8)
        .seed(seed)
        .build()
        .expect("tiny sketch")
}

fn drill_lifecycle_config(poison: bool) -> LifecycleConfig {
    LifecycleConfig {
        harvest_capacity: 256,
        min_harvest: 12,
        drift_ratio: 2.0,
        drift_min_samples: 8,
        shadow_min_samples: 6,
        shadow_gate_ratio: 2.0,
        guard_min_samples: 6,
        guard_ratio: 3.0,
        train_epochs: 6,
        train_threads: 1,
        seed: 0x50AC,
        tick_interval: Duration::from_millis(25),
        poison_candidates: poison,
    }
}

/// Distinct drill queries with their *shifted* true cardinalities: the
/// executed count times [`DRIFT_FACTOR`]. Deterministic (seeded generator,
/// seeded database).
fn drifted_workload(db: &Database, want: usize) -> Vec<(String, u64)> {
    let mut generator =
        QueryGenerator::new(db, GeneratorConfig::new(imdb_predicate_columns(db), 9));
    let mut by_sql = BTreeMap::new();
    while by_sql.len() < want {
        for q in generator.generate_batch(16) {
            by_sql.entry(to_sql(db, &q)).or_insert(q);
        }
    }
    let (sqls, queries): (Vec<String>, Vec<_>) = by_sql.into_iter().unzip();
    let execs: Vec<_> = queries.iter().map(|q| q.to_exec()).collect();
    let counts = ds_storage::exec::count_batch(db, &execs, 1).expect("count workload");
    sqls.into_iter()
        .zip(counts)
        .map(|(sql, c)| (sql, c.max(1).saturating_mul(DRIFT_FACTOR)))
        .collect()
}

/// Sends one round of `FEEDBACK` for every drill query. Every line must be
/// answered (`OK …`, possibly the degraded-free happy path only — any ERR
/// or BUSY fails the drill).
fn feedback_round(c: &mut Client, workload: &[(String, u64)]) {
    for (sql, actual) in workload {
        let line = c
            .send_raw(&format!("FEEDBACK imdb {actual} {sql}"))
            .expect("feedback answered");
        assert!(line.starts_with("OK "), "feedback line: {line}");
    }
}

/// Drives feedback rounds until `done` observes the manager state it
/// waits for, or the deadline passes.
fn drive_until(
    c: &mut Client,
    workload: &[(String, u64)],
    manager: &LifecycleManager,
    what: &str,
    done: impl Fn(&LifecycleManager) -> bool,
) {
    let deadline = Instant::now() + Duration::from_secs(120);
    while !done(manager) {
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}; status={:?} counters={:?}",
            manager.status("imdb"),
            manager.counters(),
        );
        feedback_round(c, workload);
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn drift_is_detected_retrained_shadow_gated_and_hot_swapped() {
    let db = Arc::new(imdb_database(&ImdbConfig::tiny(42)));
    let store = Arc::new(SketchStore::new());
    store.insert("imdb", tiny_sketch(&db, 7)).unwrap();
    let snap_dir = std::env::temp_dir().join(format!("ds_lc_soak_{}", std::process::id()));
    std::fs::create_dir_all(&snap_dir).unwrap();

    let server = Server::start(
        Arc::clone(&db),
        Arc::clone(&store),
        ServeConfig::builder()
            .request_timeout(Duration::from_secs(30))
            .snapshot_dir(Some(snap_dir.clone()))
            .lifecycle(Some(drill_lifecycle_config(false)))
            .build()
            .unwrap(),
    )
    .unwrap();
    let addr = server.local_addr();
    let manager = server.lifecycle().expect("lifecycle enabled");
    let workload = drifted_workload(&db, 16);

    // Background hammer: uninterrupted ESTIMATE traffic across the swap.
    // Zero drops, zero errors — every line is answered with an OK payload.
    let stop = Arc::new(AtomicBool::new(false));
    let hammer = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut c = Client::connect_timeout(addr, Duration::from_secs(30)).unwrap();
            let mut answered = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let line = c
                    .send_raw(&format!("ESTIMATE imdb {PROBE_SQL}"))
                    .expect("estimate answered during swap");
                assert!(line.starts_with("OK "), "estimate line: {line}");
                answered += 1;
            }
            c.quit().unwrap();
            answered
        })
    };

    let mut c = Client::connect_timeout(addr, Duration::from_secs(30)).unwrap();
    // Drift → advisor fires → candidate trains on the harvested queries.
    drive_until(&mut c, &workload, &manager, "retrain to start", |m| {
        m.counters().retrains_started >= 1
    });
    // Shadow scoring on mirrored traffic → gate → snapshot-then-swap.
    drive_until(&mut c, &workload, &manager, "hot swap", |m| {
        m.counters().swaps >= 1
    });
    // Post-swap guard window closes clean: promotion, never rollback.
    drive_until(&mut c, &workload, &manager, "promotion", |m| {
        m.counters().promotions >= 1
    });

    stop.store(true, Ordering::Relaxed);
    let answered = hammer.join().expect("hammer thread");
    assert!(answered > 0, "hammer must have run during the drill");

    let counters = manager.counters();
    assert_eq!(counters.rollbacks, 0, "happy path must not roll back");
    assert_eq!(counters.retrains_failed, 0);
    assert!(
        store.generation("imdb").unwrap() > 1,
        "the swap must bump the serving generation"
    );
    // The pre-swap model was snapshotted before being replaced.
    assert!(
        std::fs::read_dir(&snap_dir)
            .unwrap()
            .flatten()
            .any(|e| e.path().extension().is_some_and(|x| x == "snap")),
        "swap must leave a durable rollback snapshot"
    );

    // The wire status reflects the drill's end state.
    let line = c.send_raw("LIFECYCLE imdb").unwrap();
    assert!(
        line.starts_with("OK LIFECYCLE imdb phase="),
        "status line: {line}"
    );
    assert!(line.contains("rollbacks=0"), "status line: {line}");

    let m = server.shutdown();
    assert_eq!(m.errors, 0, "zero failed responses across the whole drill");
    let _ = std::fs::remove_dir_all(&snap_dir);
}

#[test]
fn poisoned_candidate_is_rolled_back_with_answers_restored() {
    let db = Arc::new(imdb_database(&ImdbConfig::tiny(42)));
    let store = Arc::new(SketchStore::new());
    store.insert("imdb", tiny_sketch(&db, 7)).unwrap();

    let server = Server::start(
        Arc::clone(&db),
        Arc::clone(&store),
        ServeConfig::builder()
            .request_timeout(Duration::from_secs(30))
            .lifecycle(Some(drill_lifecycle_config(true)))
            .build()
            .unwrap(),
    )
    .unwrap();
    let manager = server.lifecycle().expect("lifecycle enabled");
    assert!(manager.poison_armed(), "drill arms the poison hook");
    let workload = drifted_workload(&db, 16);

    let mut c = Client::connect_timeout(server.local_addr(), Duration::from_secs(30)).unwrap();
    let before = c.send_raw(&format!("ESTIMATE imdb {PROBE_SQL}")).unwrap();
    assert!(before.starts_with("OK "), "pre-drill line: {before}");

    // The poisoned candidate passes the shadow gate (it is corrupted only
    // after the gate — modeling a bad model the gate failed to catch), is
    // swapped in, regresses against live feedback, and the guard rolls
    // back to the previous model.
    drive_until(
        &mut c,
        &workload,
        &manager,
        "swap of the poisoned candidate",
        |m| m.counters().swaps >= 1,
    );
    drive_until(&mut c, &workload, &manager, "rollback", |m| {
        m.counters().rollbacks >= 1
    });

    let counters = manager.counters();
    assert_eq!(
        counters.promotions, 0,
        "the poisoned candidate must not be promoted"
    );

    // Rollback restored the exact previous model: the probe answer is
    // byte-identical to what it was before the drill started.
    let after = c.send_raw(&format!("ESTIMATE imdb {PROBE_SQL}")).unwrap();
    assert_eq!(after, before, "rollback must restore bit-identical answers");

    let m = server.shutdown();
    assert_eq!(
        m.errors, 0,
        "zero failed responses across the rollback drill"
    );
}
