//! Degradation-chain integration tests: a real server with a fallback
//! estimator and a deterministic fault plan, proving that
//!
//! * a healthy sketch's wire responses are byte-identical whether or not
//!   degradation is configured (the fallback adds zero bytes to the happy
//!   path);
//! * a poisoned sketch answers through the fallback with the `degraded`
//!   wire flag, trips its circuit breaker, and recovers after healing;
//! * health failures without a fallback surface typed errors and an open
//!   circuit short-circuits with `not-ready`;
//! * an injected forward stall blows the deadline and degrades too.
//!
//! Fault-dependent tests are compiled only under `debug_assertions`: the
//! injector is deliberately inert in release builds, so there is nothing to
//! test there beyond the happy path (covered below unconditionally).

use std::sync::Arc;
use std::time::Duration;

use ds_core::builder::SketchBuilder;
use ds_core::store::SketchStore;
use ds_est::postgres::PostgresEstimator;
use ds_est::CardinalityEstimator;
use ds_query::parser::parse_query;
use ds_query::workloads::imdb_predicate_columns;
use ds_serve::{Client, ServeConfig, Server, SharedEstimator};
use ds_storage::catalog::Database;
use ds_storage::gen::{imdb_database, ImdbConfig};

const SQL: &str = "SELECT COUNT(*) FROM title WHERE title.kind_id = 1";

fn tiny_sketch(db: &Database, seed: u64) -> ds_core::sketch::DeepSketch {
    SketchBuilder::new(db, imdb_predicate_columns(db))
        .training_queries(120)
        .epochs(2)
        .sample_size(8)
        .hidden_units(8)
        .seed(seed)
        .build()
        .expect("tiny sketch")
}

fn fixture() -> (Arc<Database>, Arc<SketchStore>) {
    let db = Arc::new(imdb_database(&ImdbConfig::tiny(42)));
    let store = Arc::new(SketchStore::new());
    store.insert("imdb", tiny_sketch(&db, 7)).unwrap();
    (db, store)
}

/// Configuring a fallback must not perturb healthy responses by a single
/// byte: the raw `ESTIMATE` line is exactly `OK <v:?>` with the same bits a
/// local `estimate_one` produces. This is the wire-compatibility guarantee
/// degradation rides on — old clients parse new servers.
#[test]
fn healthy_wire_responses_are_byte_identical_with_degradation_configured() {
    let (db, store) = fixture();
    let expected = store
        .get("imdb")
        .unwrap()
        .estimate_one(&parse_query(&db, SQL).unwrap());
    let fallback: SharedEstimator = Arc::new(PostgresEstimator::build(&db));
    let server = Server::start(
        Arc::clone(&db),
        store,
        ServeConfig::builder()
            .fallback(Some(fallback))
            .request_timeout(Duration::from_secs(30))
            .build()
            .unwrap(),
    )
    .unwrap();
    let mut c = Client::connect_timeout(server.local_addr(), Duration::from_secs(30)).unwrap();
    let line = c.send_raw(&format!("ESTIMATE imdb {SQL}")).unwrap();
    assert_eq!(line, format!("OK {expected:?}"), "byte-identical wire line");
    let (v, degraded) = c.estimate_flagged("imdb", SQL).unwrap();
    assert!(!degraded, "healthy sketch must not be flagged");
    assert_eq!(v.to_bits(), expected.to_bits());
    assert_eq!(c.metrics_snapshot().unwrap().degraded, 0);
    c.quit().unwrap();
    server.shutdown();
}

#[cfg(debug_assertions)]
mod faulted {
    use super::*;
    use ds_serve::{BreakerConfig, ErrorCode, FaultInjector, Response};

    #[test]
    fn poisoned_sketch_degrades_to_fallback_then_recovers_after_heal() {
        let (db, store) = fixture();
        let query = parse_query(&db, SQL).unwrap();
        let sketch_expected = store.get("imdb").unwrap().estimate_one(&query);
        let fallback_est = PostgresEstimator::build(&db);
        let fallback_expected = fallback_est.try_estimate(&query).unwrap();
        assert_ne!(
            sketch_expected.to_bits(),
            fallback_expected.to_bits(),
            "fixture must distinguish sketch and fallback answers"
        );
        let faults = Arc::new(FaultInjector::new(42));
        let server = Server::start(
            Arc::clone(&db),
            store,
            ServeConfig::builder()
                .fallback(Some(Arc::new(fallback_est)))
                .breaker(BreakerConfig {
                    failure_threshold: 3,
                    cooldown: Duration::from_millis(100),
                })
                .faults(Some(Arc::clone(&faults)))
                .request_timeout(Duration::from_secs(30))
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut c = Client::connect_timeout(server.local_addr(), Duration::from_secs(30)).unwrap();

        // Sanity: healthy first.
        let (v, degraded) = c.estimate_flagged("imdb", SQL).unwrap();
        assert!(!degraded);
        assert_eq!(v.to_bits(), sketch_expected.to_bits());

        // Poison the model: every answer is the fallback's, flagged.
        faults.poison("imdb");
        for i in 0..5 {
            let (v, degraded) = c.estimate_flagged("imdb", SQL).unwrap();
            assert!(degraded, "request {i} after poison must be degraded");
            assert_eq!(v.to_bits(), fallback_expected.to_bits(), "request {i}");
        }
        let breaker = server.breaker("imdb");
        assert!(breaker.is_open(), "3 consecutive failures must trip it");
        assert_eq!(breaker.opened(), 1);
        assert!(
            breaker.short_circuits() >= 2,
            "requests beyond the threshold short-circuit: {}",
            breaker.short_circuits()
        );
        // The raw wire line carries the flag as a trailing token.
        let line = c.send_raw(&format!("ESTIMATE imdb {SQL}")).unwrap();
        assert!(line.ends_with(" degraded"), "{line}");
        let snap = c.metrics_snapshot().unwrap();
        assert!(snap.degraded >= 6, "degraded counter: {}", snap.degraded);

        // Heal and wait out the cooldown: the half-open probe succeeds,
        // the breaker closes, and answers are bit-identical to the sketch
        // again.
        faults.heal("imdb");
        std::thread::sleep(Duration::from_millis(150));
        let (v, degraded) = c.estimate_flagged("imdb", SQL).unwrap();
        assert!(!degraded, "probe after heal must serve from the sketch");
        assert_eq!(v.to_bits(), sketch_expected.to_bits());
        assert_eq!(breaker.state_name(), "closed");
        let (v, degraded) = c.estimate_flagged("imdb", SQL).unwrap();
        assert!(!degraded);
        assert_eq!(v.to_bits(), sketch_expected.to_bits());

        c.quit().unwrap();
        server.shutdown();
    }

    #[test]
    fn decode_flips_without_fallback_surface_typed_errors_then_open_circuit() {
        let (db, store) = fixture();
        let faults = Arc::new(FaultInjector::new(7));
        faults.flip_decode("imdb", 1.0);
        let server = Server::start(
            db,
            store,
            ServeConfig::builder()
                .breaker(BreakerConfig {
                    failure_threshold: 2,
                    cooldown: Duration::from_secs(300),
                })
                .faults(Some(Arc::clone(&faults)))
                .request_timeout(Duration::from_secs(30))
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut c = Client::connect_timeout(server.local_addr(), Duration::from_secs(30)).unwrap();

        // Two decode failures reach the client as typed errors and count
        // toward the breaker.
        for i in 0..2 {
            match c.estimate("imdb", SQL).unwrap() {
                Response::Error { code, .. } => {
                    assert_eq!(code, ErrorCode::Decode, "request {i}")
                }
                other => panic!("request {i}: {other:?}"),
            }
        }
        // The circuit is open and there is no fallback: not-ready, with a
        // message naming the open circuit.
        match c.estimate("imdb", SQL).unwrap() {
            Response::Error { code, message } => {
                assert_eq!(code, ErrorCode::NotReady);
                assert!(message.contains("circuit open"), "{message}");
            }
            other => panic!("{other:?}"),
        }
        assert!(server.breaker("imdb").is_open());

        // STATS exposes the per-sketch breaker counters and state gauge.
        let samples = c.stats().unwrap();
        let value = |name: &str| {
            samples
                .iter()
                .find(|s| s.name == name)
                .map(|s| s.value)
                .unwrap_or_else(|| panic!("missing sample {name}"))
        };
        assert_eq!(value("ds_serve_breaker_imdb_opened"), 1.0);
        assert!(value("ds_serve_breaker_imdb_short_circuits") >= 1.0);
        assert_eq!(value("ds_serve_breaker_imdb_open"), 1.0);

        // Clearing the fault plan does not close the breaker by itself —
        // the cooldown gate still short-circuits (no false recovery).
        faults.clear();
        match c.estimate("imdb", SQL).unwrap() {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::NotReady),
            other => panic!("{other:?}"),
        }

        c.quit().unwrap();
        server.shutdown();
    }

    #[test]
    fn stalled_forward_pass_blows_the_deadline_and_degrades() {
        let (db, store) = fixture();
        let fallback: SharedEstimator = Arc::new(PostgresEstimator::build(&db));
        let query = parse_query(&db, SQL).unwrap();
        let fallback_expected = fallback.try_estimate(&query).unwrap();
        let faults = Arc::new(FaultInjector::new(99));
        faults.delay_forwards(Duration::from_millis(300), 1.0);
        let server = Server::start(
            Arc::clone(&db),
            store,
            ServeConfig::builder()
                .fallback(Some(fallback))
                .breaker(BreakerConfig {
                    failure_threshold: 100, // keep the breaker out of this test
                    cooldown: Duration::from_secs(300),
                })
                .faults(Some(Arc::clone(&faults)))
                .request_timeout(Duration::from_millis(50))
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut c = Client::connect_timeout(server.local_addr(), Duration::from_secs(30)).unwrap();
        // The forward pass stalls past the 50ms deadline; the timeout is a
        // health failure, so the fallback answers with the flag instead of
        // surfacing `ERR timeout`.
        let (v, degraded) = c.estimate_flagged("imdb", SQL).unwrap();
        assert!(
            degraded,
            "deadline miss must degrade when a fallback exists"
        );
        assert_eq!(v.to_bits(), fallback_expected.to_bits());
        let snap = c.metrics_snapshot().unwrap();
        assert_eq!(snap.degraded, 1);
        assert_eq!(snap.timeouts, 1, "the underlying timeout is still counted");
        c.quit().unwrap();
        server.shutdown();
    }
}
