//! Estimate-cache integration tests: a real server with the default
//! template-keyed cache, proving that
//!
//! * a warm hit returns the byte-identical wire line a cold estimate
//!   produced (memoization is invisible on the wire);
//! * a sketch swap (remove + re-insert) invalidates: stale generations can
//!   never answer, and the purge is counted;
//! * sustained `FEEDBACK`-detected accuracy drift purges the drifting
//!   template's entries;
//! * degraded responses are never cached, and a warm cache never masks an
//!   unhealthy sketch (fault-dependent, so `debug_assertions`-only).

use std::sync::Arc;
use std::time::Duration;

use ds_core::builder::SketchBuilder;
use ds_core::store::SketchStore;
use ds_query::parser::parse_query;
use ds_query::workloads::imdb_predicate_columns;
use ds_serve::{Client, ServeConfig, Server};
use ds_storage::catalog::Database;
use ds_storage::gen::{imdb_database, ImdbConfig};

const SQL: &str = "SELECT COUNT(*) FROM title WHERE title.kind_id = 1";

fn tiny_sketch(db: &Database, seed: u64) -> ds_core::sketch::DeepSketch {
    SketchBuilder::new(db, imdb_predicate_columns(db))
        .training_queries(120)
        .epochs(2)
        .sample_size(8)
        .hidden_units(8)
        .seed(seed)
        .build()
        .expect("tiny sketch")
}

fn fixture() -> (Arc<Database>, Arc<SketchStore>) {
    let db = Arc::new(imdb_database(&ImdbConfig::tiny(42)));
    let store = Arc::new(SketchStore::new());
    store.insert("imdb", tiny_sketch(&db, 7)).unwrap();
    (db, store)
}

fn stat(c: &mut Client, name: &str) -> f64 {
    c.stats()
        .unwrap()
        .iter()
        .find(|s| s.name == name)
        .map(|s| s.value)
        .unwrap_or_else(|| panic!("missing sample {name}"))
}

/// A cache hit must be invisible on the wire: the second raw `ESTIMATE`
/// line is byte-for-byte the cold line, which itself carries the same bits
/// a local `estimate_one` produces.
#[test]
fn cache_hit_returns_bit_identical_wire_bytes() {
    let (db, store) = fixture();
    let expected = store
        .get("imdb")
        .unwrap()
        .estimate_one(&parse_query(&db, SQL).unwrap());
    let server = Server::start(
        Arc::clone(&db),
        store,
        ServeConfig::builder()
            .request_timeout(Duration::from_secs(30))
            .build()
            .unwrap(),
    )
    .unwrap();
    let mut c = Client::connect_timeout(server.local_addr(), Duration::from_secs(30)).unwrap();

    let cold = c.send_raw(&format!("ESTIMATE imdb {SQL}")).unwrap();
    assert_eq!(cold, format!("OK {expected:?}"), "cold line");
    let warm = c.send_raw(&format!("ESTIMATE imdb {SQL}")).unwrap();
    assert_eq!(warm, cold, "warm line must be byte-identical");

    assert_eq!(stat(&mut c, "ds_serve_cache_misses"), 1.0);
    assert_eq!(stat(&mut c, "ds_serve_cache_hits"), 1.0);
    assert_eq!(stat(&mut c, "ds_serve_cache_len"), 1.0);
    c.quit().unwrap();
    server.shutdown();
}

/// `cache_capacity: 0` disables caching entirely: no counters, every
/// request runs the forward pass, and the wire bytes are unchanged.
#[test]
fn zero_capacity_disables_the_cache() {
    let (db, store) = fixture();
    let expected = store
        .get("imdb")
        .unwrap()
        .estimate_one(&parse_query(&db, SQL).unwrap());
    let server = Server::start(
        Arc::clone(&db),
        store,
        ServeConfig::builder()
            .cache_capacity(0)
            .request_timeout(Duration::from_secs(30))
            .build()
            .unwrap(),
    )
    .unwrap();
    let mut c = Client::connect_timeout(server.local_addr(), Duration::from_secs(30)).unwrap();
    for _ in 0..2 {
        let line = c.send_raw(&format!("ESTIMATE imdb {SQL}")).unwrap();
        assert_eq!(line, format!("OK {expected:?}"));
    }
    assert!(
        !c.stats()
            .unwrap()
            .iter()
            .any(|s| s.name.starts_with("ds_serve_cache")),
        "disabled cache must not export counters"
    );
    c.quit().unwrap();
    server.shutdown();
}

/// Removing and re-inserting a sketch bumps its store generation; the old
/// entries are purged (counted as invalidations) and the next answer comes
/// from the new model, never the stale cache.
#[test]
fn swap_invalidates_stale_generations() {
    let (db, store) = fixture();
    let query = parse_query(&db, SQL).unwrap();
    let old_expected = store.get("imdb").unwrap().estimate_one(&query);
    let replacement = tiny_sketch(&db, 21);
    let new_expected = replacement.estimate_one(&query);
    assert_ne!(
        old_expected.to_bits(),
        new_expected.to_bits(),
        "fixture must distinguish the two models"
    );
    let server = Server::start(
        Arc::clone(&db),
        Arc::clone(&store),
        ServeConfig::builder()
            .request_timeout(Duration::from_secs(30))
            .build()
            .unwrap(),
    )
    .unwrap();
    let mut c = Client::connect_timeout(server.local_addr(), Duration::from_secs(30)).unwrap();

    // Warm the cache against the original model.
    for _ in 0..2 {
        assert_eq!(
            c.estimate_value("imdb", SQL).unwrap().to_bits(),
            old_expected.to_bits()
        );
    }
    assert_eq!(stat(&mut c, "ds_serve_cache_hits"), 1.0);

    // Swap: the live server resolves by name, the generation changes.
    assert!(store.remove("imdb"));
    store.insert("imdb", replacement).unwrap();
    assert_eq!(
        c.estimate_value("imdb", SQL).unwrap().to_bits(),
        new_expected.to_bits(),
        "post-swap answer must come from the new model, not the cache"
    );
    assert!(
        stat(&mut c, "ds_serve_cache_invalidations") >= 1.0,
        "the stale generation's entry must be purged"
    );
    // The new generation caches independently.
    assert_eq!(
        c.estimate_value("imdb", SQL).unwrap().to_bits(),
        new_expected.to_bits()
    );
    assert_eq!(stat(&mut c, "ds_serve_cache_hits"), 2.0);
    c.quit().unwrap();
    server.shutdown();
}

/// Sustained terrible feedback for one template crosses the accuracy-drift
/// threshold and purges that template's cached entries.
#[test]
fn feedback_drift_purges_the_template() {
    let (db, store) = fixture();
    assert!(
        store.get("imdb").unwrap().baseline().is_some(),
        "drift detection needs the training-time baseline"
    );
    let server = Server::start(
        Arc::clone(&db),
        store,
        ServeConfig::builder()
            .request_timeout(Duration::from_secs(30))
            .build()
            .unwrap(),
    )
    .unwrap();
    let mut c = Client::connect_timeout(server.local_addr(), Duration::from_secs(30)).unwrap();

    let v = c.estimate_value("imdb", SQL).unwrap();
    // Report a true cardinality ~10⁶× off: the rolling q-error dwarfs the
    // training baseline once the min-sample gate (50) is met.
    let actual = (v * 1e6).max(1e6) as u64;
    for _ in 0..60 {
        let fb = c.feedback_value("imdb", actual, SQL).unwrap();
        assert_eq!(fb.to_bits(), v.to_bits(), "feedback is served consistently");
    }
    assert!(
        stat(&mut c, "ds_serve_cache_invalidations") >= 1.0,
        "drift past the threshold must purge the template"
    );
    c.quit().unwrap();
    server.shutdown();
}

#[cfg(debug_assertions)]
mod faulted {
    use super::*;
    use ds_est::postgres::PostgresEstimator;
    use ds_est::CardinalityEstimator;
    use ds_serve::{BreakerConfig, FaultInjector, SharedEstimator};

    /// A warm cache must never mask an unhealthy sketch, and degraded
    /// answers must never enter the cache.
    #[test]
    fn degraded_answers_are_never_cached_or_served_from_cache() {
        let (db, store) = fixture();
        let query = parse_query(&db, SQL).unwrap();
        let sketch_expected = store.get("imdb").unwrap().estimate_one(&query);
        let fallback_est = PostgresEstimator::build(&db);
        let fallback_expected = fallback_est.try_estimate(&query).unwrap();
        assert_ne!(sketch_expected.to_bits(), fallback_expected.to_bits());
        let faults = Arc::new(FaultInjector::new(42));
        let server = Server::start(
            Arc::clone(&db),
            store,
            ServeConfig::builder()
                .fallback(Some(Arc::new(fallback_est) as SharedEstimator))
                .breaker(BreakerConfig {
                    // Keep the breaker closed throughout: this test pins the
                    // cache's own behavior under faults, not the breaker's.
                    failure_threshold: 100,
                    cooldown: Duration::from_secs(300),
                })
                .faults(Some(Arc::clone(&faults)))
                .request_timeout(Duration::from_secs(30))
                .build()
                .unwrap(),
        )
        .unwrap();
        let mut c = Client::connect_timeout(server.local_addr(), Duration::from_secs(30)).unwrap();

        // Warm the cache while healthy.
        for _ in 0..2 {
            let (v, degraded) = c.estimate_flagged("imdb", SQL).unwrap();
            assert!(!degraded);
            assert_eq!(v.to_bits(), sketch_expected.to_bits());
        }
        assert_eq!(stat(&mut c, "ds_serve_cache_hits"), 1.0);
        assert_eq!(stat(&mut c, "ds_serve_cache_len"), 1.0);

        // Poison the model: every answer degrades to the fallback even
        // though a warm, bit-correct entry sits in the cache.
        faults.poison("imdb");
        for i in 0..3 {
            let (v, degraded) = c.estimate_flagged("imdb", SQL).unwrap();
            assert!(degraded, "request {i} while poisoned must degrade");
            assert_eq!(v.to_bits(), fallback_expected.to_bits(), "request {i}");
        }
        assert_eq!(
            stat(&mut c, "ds_serve_cache_hits"),
            1.0,
            "poisoned requests must not read the cache"
        );
        assert_eq!(
            stat(&mut c, "ds_serve_cache_len"),
            1.0,
            "degraded answers must not be inserted"
        );

        // Healed: the healthy entry serves again, bit-identically.
        faults.heal("imdb");
        let (v, degraded) = c.estimate_flagged("imdb", SQL).unwrap();
        assert!(!degraded);
        assert_eq!(v.to_bits(), sketch_expected.to_bits());
        assert_eq!(stat(&mut c, "ds_serve_cache_hits"), 2.0);
        c.quit().unwrap();
        server.shutdown();
    }
}
