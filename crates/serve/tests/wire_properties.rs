//! Wire-compatibility property: a sketch trained on the **old** operator
//! vocabulary (`{=, <, >}` only, feature-schema v1) must answer
//! comparison-only workloads **byte-identically** on the wire —
//!
//! * repeated sends of one `ESTIMATE` line return the same bytes (the
//!   canonical cache key added for `IN`/`LIKE` must not perturb
//!   comparison-only keys);
//! * a server loading the sketch from its serialized blob answers every
//!   line with the same bytes as the server holding the original — the
//!   widened `DSKT` format preserves v1 inference bit-exactly.

use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use ds_core::builder::SketchBuilder;
use ds_core::sketch::DeepSketch;
use ds_core::store::SketchStore;
use ds_query::sqlgen::to_sql;
use ds_query::workloads::imdb_predicate_columns;
use ds_query::{GeneratorConfig, QueryGenerator};
use ds_serve::{Client, ServeConfig, Server};
use ds_storage::catalog::Database;
use ds_storage::gen::{imdb_database, ImdbConfig};
use proptest::prelude::*;

struct Fixture {
    db: Arc<Database>,
    original: Mutex<Client>,
    reloaded: Mutex<Client>,
}

/// Two live servers for the whole test process: one holding the freshly
/// trained v1 sketch, one holding its `to_bytes` → `from_bytes` reload.
/// (Leaked deliberately — the process exits when the tests do.)
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let db = Arc::new(imdb_database(&ImdbConfig::tiny(21)));
        let sketch = SketchBuilder::new(&db, imdb_predicate_columns(&db))
            .training_queries(400)
            .epochs(3)
            .sample_size(16)
            .hidden_units(16)
            .seed(5)
            .build()
            .expect("v1 sketch");
        let blob = sketch.to_bytes();
        let reloaded = DeepSketch::from_bytes(&blob).expect("blob decodes");
        assert_eq!(reloaded.to_bytes(), blob, "serialization is a fixed point");

        let serve = |sketch| {
            let store = Arc::new(SketchStore::new());
            store.insert("imdb", sketch).unwrap();
            let server = Server::start(
                Arc::clone(&db),
                store,
                ServeConfig::builder()
                    .request_timeout(Duration::from_secs(30))
                    .build()
                    .unwrap(),
            )
            .unwrap();
            let client =
                Client::connect_timeout(server.local_addr(), Duration::from_secs(30)).unwrap();
            std::mem::forget(server);
            Mutex::new(client)
        };
        let original = serve(sketch);
        let reloaded = serve(reloaded);
        Fixture {
            db,
            original,
            reloaded,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Comparison-only workload batches: every `ESTIMATE` answered with
    /// identical bytes by the original and the reloaded sketch, and a
    /// repeated send (served from the estimate cache) is byte-identical
    /// to the first.
    #[test]
    fn cmp_only_estimates_are_byte_identical(seed in 0u64..u64::MAX) {
        let f = fixture();
        let cfg = GeneratorConfig::new(imdb_predicate_columns(&f.db), seed);
        let batch = QueryGenerator::new(&f.db, cfg).generate_batch(8);
        let mut original = f.original.lock().unwrap();
        let mut reloaded = f.reloaded.lock().unwrap();
        for q in &batch {
            for (_, p) in &q.predicates {
                prop_assert!(p.as_cmp().is_some(), "old vocabulary only");
            }
            let line = format!("ESTIMATE imdb {}", to_sql(&f.db, q));
            let first = original.send_raw(&line).unwrap();
            prop_assert!(first.starts_with("OK "), "estimate answered: {first}");
            let repeat = original.send_raw(&line).unwrap();
            prop_assert_eq!(&first, &repeat, "cache hit must not change bytes");
            let other = reloaded.send_raw(&line).unwrap();
            prop_assert_eq!(&first, &other, "reloaded sketch must answer identically");
        }
    }

    /// `FEEDBACK` grading over the old vocabulary: both servers return the
    /// same bytes (the echoed q-error is computed from bit-identical
    /// estimates).
    #[test]
    fn cmp_only_feedback_is_byte_identical(seed in 0u64..u64::MAX, actual in 1u64..100_000) {
        let f = fixture();
        let cfg = GeneratorConfig::new(imdb_predicate_columns(&f.db), seed.wrapping_add(1));
        let batch = QueryGenerator::new(&f.db, cfg).generate_batch(4);
        let mut original = f.original.lock().unwrap();
        let mut reloaded = f.reloaded.lock().unwrap();
        for q in &batch {
            let line = format!("FEEDBACK imdb {actual} {}", to_sql(&f.db, q));
            let a = original.send_raw(&line).unwrap();
            let b = reloaded.send_raw(&line).unwrap();
            prop_assert!(a.starts_with("OK "), "feedback answered: {a}");
            prop_assert_eq!(&a, &b, "feedback must grade identically");
        }
    }
}
