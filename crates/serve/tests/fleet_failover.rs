//! In-process fleet integration tests: real TCP shards, wire-shipped
//! replication, failover, healing, and corrupt-transfer quarantine.
//!
//! * Deploying a sketch ships a snapshot whose wire bytes are
//!   **bit-identical** to the durable `DSNP` file the store writes — one
//!   format, disk and wire.
//! * Killing a replica mid-traffic fails estimates over to the survivor
//!   with bit-identical answers; restart + heal restores R-way replication
//!   at the same generation.
//! * A corrupt `SYNC` transfer is rejected with a typed decode error and
//!   quarantined on disk — never adopted.

use std::sync::Arc;
use std::time::{Duration, Instant};

use ds_core::builder::SketchBuilder;
use ds_core::snapshot::encode_snapshot;
use ds_core::store::SketchStore;
use ds_query::parser::parse_query;
use ds_query::workloads::imdb_predicate_columns;
use ds_serve::fleet::FleetConfig;
use ds_serve::{Connection, Fleet, ServeConfig, Server, SyncAck};
use ds_storage::catalog::Database;
use ds_storage::gen::{imdb_database, ImdbConfig};

const SQL: &str = "SELECT COUNT(*) FROM title WHERE title.kind_id = 1";

fn tiny_sketch(db: &Database, seed: u64) -> ds_core::sketch::DeepSketch {
    SketchBuilder::new(db, imdb_predicate_columns(db))
        .training_queries(120)
        .epochs(2)
        .sample_size(8)
        .hidden_units(8)
        .seed(seed)
        .build()
        .expect("tiny sketch")
}

fn fleet_config(shards: usize, replication: usize) -> FleetConfig {
    FleetConfig {
        shards,
        replication,
        server: ServeConfig::builder()
            .request_timeout(Duration::from_secs(30))
            .build()
            .unwrap(),
        timeout: Duration::from_secs(30),
    }
}

/// Deploy ships the primary's snapshot to every replica over the wire, and
/// the shipped bytes match the durable `DSNP` file bit for bit.
#[test]
fn deploy_ships_bit_identical_snapshots_to_all_replicas() {
    let db = Arc::new(imdb_database(&ImdbConfig::tiny(42)));
    let sketch = tiny_sketch(&db, 7);
    let expected = sketch.estimate_one(&parse_query(&db, SQL).unwrap());
    let mut fleet = Fleet::start(Arc::clone(&db), fleet_config(3, 2)).unwrap();
    let replicas = fleet.deploy("imdb", sketch).unwrap();
    assert_eq!(replicas.len(), 2, "R=2 must place two copies");

    // Every replica holds the same generation and answers with the same
    // bits, straight over its own wire.
    let mut blobs = Vec::new();
    for &shard in &replicas {
        let store = fleet.store(shard);
        assert_eq!(store.generation("imdb"), Some(1), "shard {shard}");
        let mut conn = fleet.client_connection(shard).unwrap();
        let (generation, bytes) = conn.fetch_snapshot("imdb").unwrap();
        assert_eq!(generation, 1);
        blobs.push(bytes);
    }
    assert_eq!(blobs[0], blobs[1], "replicas must hold identical blobs");

    // Wire blob == durable snapshot file, byte for byte.
    let dir = std::env::temp_dir().join(format!("ds_fleet_ship_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = fleet
        .store(replicas[0])
        .save_snapshot(&dir, "imdb", None)
        .unwrap();
    let on_disk = std::fs::read(&path).unwrap();
    assert_eq!(
        blobs[0], on_disk,
        "the shipped snapshot and the durable file are the same format"
    );
    std::fs::remove_dir_all(&dir).ok();

    // Non-replica shards must NOT hold the sketch.
    for shard in 0..3 {
        if !replicas.contains(&shard) {
            assert_eq!(fleet.store(shard).generation("imdb"), None);
        }
    }

    // The routing client answers bit-identically.
    let mut client = fleet.client();
    let (v, degraded) = client.estimate("imdb", SQL).unwrap();
    assert!(!degraded);
    assert_eq!(v.to_bits(), expected.to_bits());
    fleet.shutdown();
}

/// Killing a replica fails traffic over to the survivor; restart + heal
/// restores R-way replication at the original generation.
#[test]
fn replica_death_fails_over_then_heal_restores_replication() {
    let db = Arc::new(imdb_database(&ImdbConfig::tiny(42)));
    let sketch = tiny_sketch(&db, 7);
    let expected = sketch.estimate_one(&parse_query(&db, SQL).unwrap());
    let mut fleet = Fleet::start(Arc::clone(&db), fleet_config(3, 2)).unwrap();
    let replicas = fleet.deploy("imdb", sketch).unwrap();
    let mut client = fleet.client();

    // Pin affinity to the shard we are about to kill.
    let (v, _) = client.estimate("imdb", SQL).unwrap();
    assert_eq!(v.to_bits(), expected.to_bits());

    // Kill the primary: its store is gone (machine loss, not reboot).
    let victim = replicas[0];
    fleet.kill(victim);
    assert!(!fleet.is_alive(victim));

    // Traffic keeps succeeding, bit-identically: the client's affinity
    // still points at the corpse, so the first request visibly fails over
    // to the survivor.
    let deadline = Instant::now() + Duration::from_secs(30);
    for _ in 0..5 {
        let (v, degraded) = client
            .estimate_with_deadline("imdb", SQL, deadline)
            .unwrap();
        assert!(!degraded);
        assert_eq!(v.to_bits(), expected.to_bits());
    }
    assert!(
        client.counters().failovers.get() >= 1,
        "at least one request must have failed over"
    );

    // Gossip sees the corpse and steers the client away from it, so later
    // requests skip the doomed first attempt entirely.
    let health = fleet.gossip();
    assert!(!health[victim].alive);
    assert!(health[victim].degraded());
    fleet.steer(&mut client);
    let (v, _) = client.estimate("imdb", SQL).unwrap();
    assert_eq!(v.to_bits(), expected.to_bits());

    // Restart empty, heal: the survivor re-ships the snapshot and the
    // original generation is preserved — nothing was lost.
    fleet.restart(victim).unwrap();
    assert_eq!(fleet.store(victim).generation("imdb"), None);
    let restored = fleet.heal().unwrap();
    assert!(restored >= 1, "heal must re-replicate the lost copy");
    assert_eq!(fleet.store(victim).generation("imdb"), Some(1));
    for &shard in &replicas {
        let (v2, _) = fleet.store(shard).get_with_generation("imdb").unwrap();
        let got = v2.estimate_one(&parse_query(&db, SQL).unwrap());
        assert_eq!(got.to_bits(), expected.to_bits(), "shard {shard}");
    }
    // A healed fleet needs no further resyncs.
    assert_eq!(fleet.heal().unwrap(), 0, "second heal must be a no-op");
    fleet.shutdown();
}

/// A corrupt `SYNC` transfer must be rejected with a typed decode error
/// and quarantined on disk, never adopted; the intact bytes then adopt,
/// and a replay of the same generation acks `stale`.
#[test]
fn corrupt_sync_is_quarantined_not_adopted() {
    let db = Arc::new(imdb_database(&ImdbConfig::tiny(42)));
    let sketch = tiny_sketch(&db, 7);
    let good = encode_snapshot("imdb", 1, &sketch, None);

    let dir = std::env::temp_dir().join(format!("ds_fleet_quar_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let store = Arc::new(SketchStore::new());
    let server = Server::start(
        Arc::clone(&db),
        Arc::clone(&store),
        ServeConfig::builder()
            .request_timeout(Duration::from_secs(30))
            .snapshot_dir(Some(dir.clone()))
            .build()
            .unwrap(),
    )
    .unwrap();
    let mut conn =
        Connection::connect_timeout(server.local_addr(), Duration::from_secs(30)).unwrap();

    // Flip one byte in the middle of the payload: the checksum trailer
    // catches it server-side.
    let mut corrupt = good.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x40;
    let err = conn.sync_snapshot("imdb", 1, &corrupt).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "{err}");
    assert_eq!(store.generation("imdb"), None, "corrupt bytes never adopt");

    // The rejected bytes land in quarantine for forensics.
    let quarantine = dir.join("quarantine");
    let rejects: Vec<_> = std::fs::read_dir(&quarantine)
        .expect("quarantine dir must exist")
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(rejects.len(), 1, "{rejects:?}");
    assert_eq!(std::fs::read(&rejects[0]).unwrap(), corrupt);

    // The intact transfer adopts; replaying the same generation is stale.
    assert_eq!(
        conn.sync_snapshot("imdb", 1, &good).unwrap(),
        SyncAck::Adopted(1)
    );
    assert_eq!(store.generation("imdb"), Some(1));
    assert_eq!(
        conn.sync_snapshot("imdb", 1, &good).unwrap(),
        SyncAck::Stale(1)
    );

    conn.quit().unwrap();
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
