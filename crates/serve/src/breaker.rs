//! Per-sketch circuit breakers: the first stage of the degradation chain.
//!
//! A sketch that keeps failing health-style (decode errors, execution
//! failures, deadline misses) stops being asked: after
//! [`BreakerConfig::failure_threshold`] *consecutive* failures the breaker
//! opens and `ESTIMATE` traffic short-circuits to the configured fallback
//! estimator instead of burning a worker on a forward pass that will fail
//! again. After [`BreakerConfig::cooldown`] the breaker half-opens and
//! admits exactly one probe request; a probe success closes it, a probe
//! failure re-opens it for another cooldown.
//!
//! Client-caused errors (malformed SQL, out-of-vocabulary columns,
//! unroutable joins) and load shedding never trip a breaker — they say
//! nothing about the sketch's health. The server makes that classification
//! in `handle_estimate`; the breaker only counts what it is told.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Breaker tuning knobs (shared by every per-sketch breaker of a server).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive health failures that open the breaker.
    pub failure_threshold: u32,
    /// How long an open breaker waits before half-opening for one probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 3,
            cooldown: Duration::from_secs(1),
        }
    }
}

/// The admission decision for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admit {
    /// Send the request to the sketch (closed breaker, or the half-open
    /// probe slot).
    Allow,
    /// Do not touch the sketch; answer via the degradation path.
    ShortCircuit,
}

#[derive(Debug, Clone, Copy)]
enum State {
    /// Healthy; counts consecutive failures toward the threshold.
    Closed { consecutive_failures: u32 },
    /// Tripped; short-circuits until the cooldown elapses.
    Open { since: Instant },
    /// One probe request is in flight; everyone else short-circuits.
    HalfOpen,
}

/// One sketch's breaker. Cheap enough to sit on every estimate: a short
/// mutex hold on admit/record, no allocation.
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: Mutex<State>,
    opened: AtomicU64,
    short_circuits: AtomicU64,
}

impl CircuitBreaker {
    /// Creates a closed breaker.
    pub fn new(cfg: BreakerConfig) -> Self {
        Self {
            cfg: BreakerConfig {
                failure_threshold: cfg.failure_threshold.max(1),
                ..cfg
            },
            state: Mutex::new(State::Closed {
                consecutive_failures: 0,
            }),
            opened: AtomicU64::new(0),
            short_circuits: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Decides whether a request may reach the sketch. Transitions
    /// `Open → HalfOpen` when the cooldown has elapsed, handing the `Allow`
    /// to exactly one caller as the probe.
    pub fn admit(&self) -> Admit {
        let mut st = self.lock();
        match *st {
            State::Closed { .. } => Admit::Allow,
            State::Open { since } => {
                if since.elapsed() >= self.cfg.cooldown {
                    *st = State::HalfOpen;
                    Admit::Allow
                } else {
                    self.short_circuits.fetch_add(1, Ordering::Relaxed);
                    Admit::ShortCircuit
                }
            }
            State::HalfOpen => {
                self.short_circuits.fetch_add(1, Ordering::Relaxed);
                Admit::ShortCircuit
            }
        }
    }

    /// Records a healthy answer: closes the breaker and zeroes the
    /// consecutive-failure count.
    pub fn record_success(&self) {
        *self.lock() = State::Closed {
            consecutive_failures: 0,
        };
    }

    /// Records a health failure: counts toward the threshold when closed,
    /// re-opens immediately when it was the half-open probe.
    pub fn record_failure(&self) {
        let mut st = self.lock();
        match *st {
            State::Closed {
                consecutive_failures,
            } => {
                let failures = consecutive_failures + 1;
                if failures >= self.cfg.failure_threshold {
                    *st = State::Open {
                        since: Instant::now(),
                    };
                    self.opened.fetch_add(1, Ordering::Relaxed);
                } else {
                    *st = State::Closed {
                        consecutive_failures: failures,
                    };
                }
            }
            State::HalfOpen => {
                *st = State::Open {
                    since: Instant::now(),
                };
                self.opened.fetch_add(1, Ordering::Relaxed);
            }
            // Short-circuited requests never reach the sketch, so failures
            // while open can only come from racing stragglers; the breaker
            // is already open, keep the original cooldown clock.
            State::Open { .. } => {}
        }
    }

    /// Stable name of the current state: `closed`, `open`, or `half-open`.
    pub fn state_name(&self) -> &'static str {
        match *self.lock() {
            State::Closed { .. } => "closed",
            State::Open { .. } => "open",
            State::HalfOpen => "half-open",
        }
    }

    /// Whether the breaker currently short-circuits new traffic.
    pub fn is_open(&self) -> bool {
        !matches!(*self.lock(), State::Closed { .. })
    }

    /// Times this breaker transitioned to open.
    pub fn opened(&self) -> u64 {
        self.opened.load(Ordering::Relaxed)
    }

    /// Requests short-circuited away from the sketch.
    pub fn short_circuits(&self) -> u64 {
        self.short_circuits.load(Ordering::Relaxed)
    }
}

/// Lazily-created per-sketch breakers, keyed by sketch name.
#[derive(Debug)]
pub struct BreakerRegistry {
    cfg: BreakerConfig,
    map: RwLock<HashMap<String, Arc<CircuitBreaker>>>,
}

impl BreakerRegistry {
    /// Creates an empty registry; every breaker it mints uses `cfg`.
    pub fn new(cfg: BreakerConfig) -> Self {
        Self {
            cfg,
            map: RwLock::new(HashMap::new()),
        }
    }

    /// The breaker for `sketch`, created closed on first sight.
    pub fn breaker(&self, sketch: &str) -> Arc<CircuitBreaker> {
        if let Some(b) = self.map.read().expect("breaker registry").get(sketch) {
            return Arc::clone(b);
        }
        let mut map = self.map.write().expect("breaker registry");
        Arc::clone(
            map.entry(sketch.to_string())
                .or_insert_with(|| Arc::new(CircuitBreaker::new(self.cfg))),
        )
    }

    /// Every sketch name with a breaker, sorted (for stable stats output).
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .map
            .read()
            .expect("breaker registry")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(20),
        }
    }

    #[test]
    fn opens_only_after_consecutive_failures() {
        let b = CircuitBreaker::new(fast_cfg());
        b.record_failure();
        b.record_failure();
        // A success in between resets the consecutive count.
        b.record_success();
        b.record_failure();
        b.record_failure();
        assert_eq!(b.admit(), Admit::Allow);
        assert_eq!(b.state_name(), "closed");
        b.record_failure();
        assert_eq!(b.state_name(), "open");
        assert_eq!(b.admit(), Admit::ShortCircuit);
        assert_eq!(b.opened(), 1);
        assert!(b.short_circuits() >= 1);
    }

    #[test]
    fn half_open_admits_exactly_one_probe() {
        let b = CircuitBreaker::new(fast_cfg());
        for _ in 0..3 {
            b.record_failure();
        }
        assert_eq!(b.admit(), Admit::ShortCircuit);
        std::thread::sleep(Duration::from_millis(25));
        // First admit after cooldown is the probe; the next short-circuits.
        assert_eq!(b.admit(), Admit::Allow);
        assert_eq!(b.state_name(), "half-open");
        assert_eq!(b.admit(), Admit::ShortCircuit);
        // Probe failure re-opens for another full cooldown.
        b.record_failure();
        assert_eq!(b.state_name(), "open");
        assert_eq!(b.admit(), Admit::ShortCircuit);
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(b.admit(), Admit::Allow);
        // Probe success closes.
        b.record_success();
        assert_eq!(b.state_name(), "closed");
        assert_eq!(b.admit(), Admit::Allow);
        assert_eq!(b.opened(), 2);
    }

    #[test]
    fn threshold_is_at_least_one() {
        let b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 0,
            cooldown: Duration::from_secs(10),
        });
        b.record_failure();
        assert_eq!(b.state_name(), "open");
    }

    #[test]
    fn registry_hands_out_one_breaker_per_name() {
        let reg = BreakerRegistry::new(fast_cfg());
        let a = reg.breaker("imdb");
        let b = reg.breaker("imdb");
        assert!(Arc::ptr_eq(&a, &b));
        let other = reg.breaker("tpch");
        assert!(!Arc::ptr_eq(&a, &other));
        assert_eq!(reg.names(), vec!["imdb".to_string(), "tpch".to_string()]);
        // State is shared through the registry.
        for _ in 0..3 {
            a.record_failure();
        }
        assert_eq!(reg.breaker("imdb").admit(), Admit::ShortCircuit);
    }

    #[test]
    fn concurrent_admits_race_for_a_single_probe() {
        let b = Arc::new(CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown: Duration::from_millis(5),
        }));
        b.record_failure();
        std::thread::sleep(Duration::from_millis(10));
        let allowed: u32 = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let b = Arc::clone(&b);
                    s.spawn(move || u32::from(b.admit() == Admit::Allow))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(allowed, 1, "exactly one thread wins the probe slot");
    }
}
