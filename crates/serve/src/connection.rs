//! The low-level client layer: one TCP connection speaking the line
//! protocol, nothing more.
//!
//! [`Connection`] owns wire framing only — format a [`Request`], write one
//! line, read one line, parse the [`Response`]. Routing, retries, and
//! failover live a layer up in [`crate::fleet::FleetClient`]; the
//! single-node convenience accessors live in [`crate::Client`], a thin
//! wrapper over this type. Splitting the layers means the fleet client
//! composes connections without inheriting single-node assumptions, and
//! the protocol tests can drive raw lines without a routing policy in the
//! way.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use ds_core::snapshot::{decode_hex, encode_hex};

use crate::protocol::{
    format_request, parse_response, ErrorCode, Request, Response, PROTOCOL_VERSION,
    SUPPORTED_FEATURES,
};

/// The outcome of a `HELLO` negotiation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Handshake {
    /// The protocol version both sides speak: `min(client, server)`.
    pub version: u32,
    /// Feature flags the server advertises (`cache`, `degraded-token`,
    /// `fleet`).
    pub features: Vec<String>,
}

impl Handshake {
    /// Whether the server advertised `feature`.
    pub fn has_feature(&self, feature: &str) -> bool {
        self.features.iter().any(|f| f == feature)
    }
}

/// A replica's answer to a `SYNC` offer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncAck {
    /// The shipped generation won and now serves on the replica.
    Adopted(u64),
    /// The replica already serves a generation at least as new.
    Stale(u64),
}

/// One blocking connection to a sketch server: wire framing only.
pub struct Connection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    peer: SocketAddr,
    handshake: Option<Handshake>,
}

impl Connection {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream)
    }

    /// Connects with a connect + read deadline, so callers never hang on a
    /// wedged server.
    pub fn connect_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> std::io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address"))?;
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        Self::from_stream(stream)
    }

    /// Wraps an already-connected stream.
    pub fn from_stream(stream: TcpStream) -> std::io::Result<Self> {
        // One-line request/response roundtrips die under Nagle + delayed ACK.
        stream.set_nodelay(true)?;
        let peer = stream.peer_addr()?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
            peer,
            handshake: None,
        })
    }

    /// The server's address.
    pub fn peer_addr(&self) -> SocketAddr {
        self.peer
    }

    /// The negotiated handshake, when [`Connection::hello`] has run. A
    /// connection that never sends `HELLO` speaks protocol v1.
    pub fn handshake(&self) -> Option<&Handshake> {
        self.handshake.as_ref()
    }

    /// Sends one request and reads its one-line response. `estimate`
    /// selects whether an `OK` payload parses as a number or as text.
    pub fn roundtrip(&mut self, req: &Request, estimate: bool) -> std::io::Result<Response> {
        writeln!(self.writer, "{}", format_request(req))?;
        self.writer.flush()?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        parse_response(&line, estimate)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Sends a raw line (possibly malformed — for protocol tests) and
    /// returns the raw response line.
    pub fn send_raw(&mut self, line: &str) -> std::io::Result<String> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(resp.trim_end().to_string())
    }

    /// Negotiates the protocol: sends `HELLO` with this build's version and
    /// features, records and returns the server's answer. A
    /// [`ErrorCode::VersionMismatch`] reply becomes an `Unsupported` io
    /// error — the caller knows negotiation failed rather than guessing
    /// from garbled lines.
    pub fn hello(&mut self) -> std::io::Result<Handshake> {
        let req = Request::Hello {
            version: PROTOCOL_VERSION,
            features: SUPPORTED_FEATURES.iter().map(|s| s.to_string()).collect(),
        };
        match self.roundtrip(&req, false)? {
            Response::Text(t) => {
                let mut parts = t.split_whitespace();
                let (tag, version) = (parts.next(), parts.next());
                if tag != Some("HELLO") {
                    return Err(invalid_data(format!("bad HELLO payload '{t}'")));
                }
                let version: u32 = version
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| invalid_data(format!("bad HELLO version in '{t}'")))?;
                let features = parts
                    .next()
                    .unwrap_or("")
                    .split(',')
                    .filter(|f| !f.is_empty())
                    .map(str::to_string)
                    .collect();
                let hs = Handshake { version, features };
                self.handshake = Some(hs.clone());
                Ok(hs)
            }
            Response::Error {
                code: ErrorCode::VersionMismatch,
                message,
            } => Err(std::io::Error::new(
                std::io::ErrorKind::Unsupported,
                message,
            )),
            other => Err(invalid_payload(&other)),
        }
    }

    /// Fetches the named sketch as a DSNP blob: `(generation, bytes)`. The
    /// bytes are exactly what the server's `save_snapshot` writes to disk.
    pub fn fetch_snapshot(&mut self, sketch: &str) -> std::io::Result<(u64, Vec<u8>)> {
        let req = Request::Snapshot {
            sketch: sketch.to_string(),
        };
        match self.roundtrip(&req, false)? {
            Response::Text(t) => {
                let mut parts = t.split_whitespace();
                let tag = parts.next();
                let name = parts.next().unwrap_or("");
                let generation: Option<u64> = parts.next().and_then(|v| v.parse().ok());
                let len: Option<u64> = parts.next().and_then(|v| v.parse().ok());
                let hex = parts.next().unwrap_or("");
                let (Some(generation), Some(len)) = (generation, len) else {
                    return Err(invalid_data(format!("bad SNAPSHOT payload '{t}'")));
                };
                if tag != Some("SNAPSHOT") || name != sketch {
                    return Err(invalid_data(format!("bad SNAPSHOT payload '{t}'")));
                }
                let bytes = decode_hex(hex)
                    .ok_or_else(|| invalid_data(format!("SNAPSHOT {sketch}: bad hex")))?;
                if bytes.len() as u64 != len {
                    return Err(invalid_data(format!(
                        "SNAPSHOT {sketch}: announced {len} bytes, got {}",
                        bytes.len()
                    )));
                }
                Ok((generation, bytes))
            }
            other => Err(invalid_payload(&other)),
        }
    }

    /// Offers a DSNP blob to the server for newest-wins adoption. A
    /// corrupt transfer comes back as a typed `ERR decode` (surfaced here
    /// as `InvalidData`); the server quarantines the bytes instead of
    /// adopting them.
    pub fn sync_snapshot(
        &mut self,
        name: &str,
        generation: u64,
        bytes: &[u8],
    ) -> std::io::Result<SyncAck> {
        let req = Request::Sync {
            name: name.to_string(),
            generation,
            len: bytes.len() as u64,
            hex: encode_hex(bytes),
        };
        match self.roundtrip(&req, false)? {
            Response::Text(t) => {
                let mut parts = t.split_whitespace();
                let tag = parts.next();
                let got_name = parts.next().unwrap_or("");
                let gen: Option<u64> = parts.next().and_then(|v| v.parse().ok());
                let verdict = parts.next();
                match (tag, gen, verdict) {
                    (Some("SYNC"), Some(g), Some("adopted")) if got_name == name => {
                        Ok(SyncAck::Adopted(g))
                    }
                    (Some("SYNC"), Some(g), Some("stale")) if got_name == name => {
                        Ok(SyncAck::Stale(g))
                    }
                    _ => Err(invalid_data(format!("bad SYNC payload '{t}'"))),
                }
            }
            other => Err(invalid_payload(&other)),
        }
    }

    /// Sends `QUIT` and consumes the connection.
    pub fn quit(mut self) -> std::io::Result<()> {
        match self.roundtrip(&Request::Quit, false)? {
            Response::Bye => Ok(()),
            other => Err(invalid_data(format!("expected BYE, got {other:?}"))),
        }
    }
}

pub(crate) fn invalid_data(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

pub(crate) fn invalid_payload(resp: &Response) -> std::io::Error {
    invalid_data(crate::protocol::format_response(resp))
}
