//! Serving metrics built on the workspace observability layer (`ds-obs`):
//! monotonic counters plus log₂ histograms for request latency and
//! coalesced batch sizes.
//!
//! Every record operation is a handful of relaxed atomic adds — safe to
//! call from every connection handler and batch worker with no shared
//! locks on the hot path. Percentiles are derived from the histograms at
//! snapshot time; with power-of-two buckets they are upper bounds accurate
//! to 2×, which is the right fidelity for a serving dashboard (and costs
//! nothing to maintain). Quantiles are deterministic at the edges: an
//! empty histogram reports 0 everywhere, and a single-sample histogram
//! reports exactly that sample at every quantile (the bucket upper bound
//! is clamped to the observed min/max).

use std::time::Duration;

pub use ds_obs::LogHistogram;
use ds_obs::{Counter, ExemplarRing};

/// Slow-request exemplars retained for the `TRACE` command.
const EXEMPLAR_CAPACITY: usize = 64;

/// One request's monotonic timeline, decomposed into the five contiguous
/// stages of the serving path. The stamps the stages derive from are
/// strictly ordered, so the stage durations sum to `total_us` exactly
/// (modulo independent sub-microsecond truncation per stage).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestTimeline {
    /// Sketch the request targeted.
    pub sketch: String,
    /// Structural template of the query (no literals, no spaces).
    pub template: String,
    /// Wall time, request read → response flushed (µs).
    pub total_us: u64,
    /// Request parsing + store lookup + admission (µs).
    pub parse_us: u64,
    /// Waiting in the admission queue for a worker (µs).
    pub queue_us: u64,
    /// Batch assembly between dequeue and forward start (µs).
    pub batch_wait_us: u64,
    /// The coalesced model forward pass (µs).
    pub forward_us: u64,
    /// Response formatting + socket write + flush (µs).
    pub write_us: u64,
    /// Distributed trace this request belongs to (0 = untraced). Set
    /// when the peer sent a v3 `trace=` token with the request.
    pub trace_id: u128,
    /// This server's span within the trace (0 = untraced).
    pub span_id: u64,
    /// The caller's span id — the parent of `span_id` (0 = unknown).
    pub parent_span: u64,
    /// Span of the coalesced batch this request rode in (0 = none).
    pub batch_span: u64,
}

impl RequestTimeline {
    /// Sum of the five stage durations — within rounding of `total_us`.
    pub fn stage_sum_us(&self) -> u64 {
        self.parse_us + self.queue_us + self.batch_wait_us + self.forward_us + self.write_us
    }

    /// Single-token-per-field wire form for one `TRACE` record. Trace
    /// identity fields are appended only for traced requests, so
    /// untraced records are byte-identical to the pre-v3 format.
    pub fn to_wire(&self) -> String {
        let mut line = format!(
            "sketch={} template={} total_us={} parse_us={} queue_us={} \
             batch_wait_us={} forward_us={} write_us={}",
            self.sketch,
            self.template,
            self.total_us,
            self.parse_us,
            self.queue_us,
            self.batch_wait_us,
            self.forward_us,
            self.write_us
        );
        if self.trace_id != 0 {
            line.push_str(&format!(
                " trace_id={:032x} span_id={:016x} parent_span={:016x} batch_span={:016x}",
                self.trace_id, self.span_id, self.parent_span, self.batch_span
            ));
        }
        line
    }

    /// Parses one `TRACE` record (client side).
    pub fn from_wire(s: &str) -> Option<Self> {
        let mut sketch = None;
        let mut template = None;
        let mut nums = [None::<u64>; 6];
        let mut trace_id = 0u128;
        let mut spans = [0u64; 3];
        const KEYS: [&str; 6] = [
            "total_us",
            "parse_us",
            "queue_us",
            "batch_wait_us",
            "forward_us",
            "write_us",
        ];
        const SPAN_KEYS: [&str; 3] = ["span_id", "parent_span", "batch_span"];
        for field in s.split_whitespace() {
            let (key, value) = field.split_once('=')?;
            match key {
                "sketch" => sketch = Some(value.to_string()),
                "template" => template = Some(value.to_string()),
                "trace_id" => trace_id = u128::from_str_radix(value, 16).ok()?,
                _ => {
                    if let Some(i) = SPAN_KEYS.iter().position(|k| *k == key) {
                        spans[i] = u64::from_str_radix(value, 16).ok()?;
                    } else {
                        let i = KEYS.iter().position(|k| *k == key)?;
                        nums[i] = Some(value.parse().ok()?);
                    }
                }
            }
        }
        Some(Self {
            sketch: sketch?,
            template: template?,
            total_us: nums[0]?,
            parse_us: nums[1]?,
            queue_us: nums[2]?,
            batch_wait_us: nums[3]?,
            forward_us: nums[4]?,
            write_us: nums[5]?,
            trace_id,
            span_id: spans[0],
            parent_span: spans[1],
            batch_span: spans[2],
        })
    }
}

/// Serving counters, shared via `Arc` between the acceptor, connection
/// handlers, and batch workers.
#[derive(Debug)]
pub struct Metrics {
    /// Request lines received (all commands).
    pub requests: Counter,
    /// Successful `OK` responses.
    pub ok: Counter,
    /// `ERR` responses (parse, vocabulary, unknown sketch, …).
    pub errors: Counter,
    /// Requests shed with `BUSY` (admission queue or connection limit).
    pub shed: Counter,
    /// Requests that exceeded their deadline.
    pub timeouts: Counter,
    /// Estimates answered by the fallback estimator with the `degraded`
    /// wire flag (poisoned sketch, open circuit breaker).
    pub degraded: Counter,
    /// Estimate micro-batches executed.
    pub batches: Counter,
    /// Request latency in microseconds (ESTIMATE requests).
    pub latency_us: LogHistogram,
    /// Coalesced batch-size distribution.
    pub batch_size: LogHistogram,
    /// Stage histogram: parse + store lookup + admission (µs).
    pub stage_parse_us: LogHistogram,
    /// Stage histogram: admission-queue wait (µs).
    pub stage_queue_us: LogHistogram,
    /// Stage histogram: dequeue → forward start (µs).
    pub stage_batch_wait_us: LogHistogram,
    /// Stage histogram: coalesced forward pass (µs).
    pub stage_forward_us: LogHistogram,
    /// Stage histogram: response write + flush (µs).
    pub stage_write_us: LogHistogram,
    /// Slowest-request exemplars for `TRACE`.
    pub slow: ExemplarRing<RequestTimeline>,
}

impl Default for Metrics {
    fn default() -> Self {
        Self {
            requests: Counter::default(),
            ok: Counter::default(),
            errors: Counter::default(),
            shed: Counter::default(),
            timeouts: Counter::default(),
            degraded: Counter::default(),
            batches: Counter::default(),
            latency_us: LogHistogram::new(),
            batch_size: LogHistogram::new(),
            stage_parse_us: LogHistogram::new(),
            stage_queue_us: LogHistogram::new(),
            stage_batch_wait_us: LogHistogram::new(),
            stage_forward_us: LogHistogram::new(),
            stage_write_us: LogHistogram::new(),
            slow: ExemplarRing::new(EXEMPLAR_CAPACITY),
        }
    }
}

impl Metrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one staged request into the per-stage histograms.
    pub fn record_timeline(&self, t: &RequestTimeline) {
        self.record_stages(
            t.parse_us,
            t.queue_us,
            t.batch_wait_us,
            t.forward_us,
            t.write_us,
        );
    }

    /// Records the five per-stage durations (µs) of one completed request
    /// without requiring an assembled [`RequestTimeline`] — the hot path
    /// for requests that never become exemplars.
    pub fn record_stages(
        &self,
        parse_us: u64,
        queue_us: u64,
        batch_wait_us: u64,
        forward_us: u64,
        write_us: u64,
    ) {
        self.stage_parse_us.record(parse_us);
        self.stage_queue_us.record(queue_us);
        self.stage_batch_wait_us.record(batch_wait_us);
        self.stage_forward_us.record(forward_us);
        self.stage_write_us.record(write_us);
    }

    /// Counts one received request line.
    pub fn record_request(&self) {
        self.requests.inc();
    }

    /// Counts a successful estimate with its end-to-end latency.
    pub fn record_ok(&self, latency: Duration) {
        self.ok.inc();
        self.latency_us.record(latency.as_micros() as u64);
    }

    /// Counts an error response.
    pub fn record_error(&self) {
        self.errors.inc();
    }

    /// Counts a shed (`BUSY`) response.
    pub fn record_shed(&self) {
        self.shed.inc();
    }

    /// Counts a deadline miss.
    pub fn record_timeout(&self) {
        self.timeouts.inc();
    }

    /// Counts an estimate answered degraded through the fallback estimator.
    pub fn record_degraded(&self) {
        self.degraded.inc();
    }

    /// Counts one executed micro-batch of `size` coalesced queries.
    pub fn record_batch(&self, size: usize) {
        self.batches.inc();
        self.batch_size.record(size as u64);
    }

    /// A consistent-enough point-in-time copy for reporting.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            requests: self.requests.get(),
            ok: self.ok.get(),
            errors: self.errors.get(),
            shed: self.shed.get(),
            timeouts: self.timeouts.get(),
            degraded: self.degraded.get(),
            batches: self.batches.get(),
            mean_batch: self.batch_size.mean(),
            max_batch: self.batch_size.max(),
            p50_us: self.latency_us.quantile(0.50),
            p95_us: self.latency_us.quantile(0.95),
            p99_us: self.latency_us.quantile(0.99),
            max_us: self.latency_us.max(),
        }
    }
}

/// Point-in-time metric values, with derived percentiles.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Request lines received.
    pub requests: u64,
    /// Successful estimates.
    pub ok: u64,
    /// Error responses.
    pub errors: u64,
    /// Shed requests.
    pub shed: u64,
    /// Deadline misses.
    pub timeouts: u64,
    /// Estimates answered degraded through the fallback estimator.
    pub degraded: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Mean coalesced batch size.
    pub mean_batch: f64,
    /// Largest coalesced batch.
    pub max_batch: u64,
    /// Median latency upper bound (µs).
    pub p50_us: u64,
    /// 95th-percentile latency upper bound (µs).
    pub p95_us: u64,
    /// 99th-percentile latency upper bound (µs).
    pub p99_us: u64,
    /// Worst observed latency (µs).
    pub max_us: u64,
}

impl MetricsSnapshot {
    /// Single-line `key=value` form for the `METRICS` wire response.
    pub fn to_wire(&self) -> String {
        format!(
            "requests={} ok={} errors={} shed={} timeouts={} degraded={} batches={} \
             mean_batch={:.2} max_batch={} p50_us={} p95_us={} p99_us={} max_us={}",
            self.requests,
            self.ok,
            self.errors,
            self.shed,
            self.timeouts,
            self.degraded,
            self.batches,
            self.mean_batch,
            self.max_batch,
            self.p50_us,
            self.p95_us,
            self.p99_us,
            self.max_us
        )
    }

    /// Parses the `METRICS` wire line back into a snapshot (client side).
    /// Unknown keys are ignored so older clients survive newer servers;
    /// missing keys default to zero.
    pub fn from_wire(s: &str) -> Option<Self> {
        let mut snap = Self {
            requests: 0,
            ok: 0,
            errors: 0,
            shed: 0,
            timeouts: 0,
            degraded: 0,
            batches: 0,
            mean_batch: 0.0,
            max_batch: 0,
            p50_us: 0,
            p95_us: 0,
            p99_us: 0,
            max_us: 0,
        };
        for field in s.split_whitespace() {
            let (key, value) = field.split_once('=')?;
            match key {
                "requests" => snap.requests = value.parse().ok()?,
                "ok" => snap.ok = value.parse().ok()?,
                "errors" => snap.errors = value.parse().ok()?,
                "shed" => snap.shed = value.parse().ok()?,
                "timeouts" => snap.timeouts = value.parse().ok()?,
                "degraded" => snap.degraded = value.parse().ok()?,
                "batches" => snap.batches = value.parse().ok()?,
                "mean_batch" => snap.mean_batch = value.parse().ok()?,
                "max_batch" => snap.max_batch = value.parse().ok()?,
                "p50_us" => snap.p50_us = value.parse().ok()?,
                "p95_us" => snap.p95_us = value.parse().ok()?,
                "p99_us" => snap.p99_us = value.parse().ok()?,
                "max_us" => snap.max_us = value.parse().ok()?,
                _ => {}
            }
        }
        Some(snap)
    }
}

impl std::fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "serving metrics:")?;
        writeln!(
            f,
            "  requests {:>8}   ok {:>8}   errors {:>6}   shed {:>6}   timeouts {:>6}   degraded {:>6}",
            self.requests, self.ok, self.errors, self.shed, self.timeouts, self.degraded
        )?;
        writeln!(
            f,
            "  batches  {:>8}   mean batch {:>6.2}   max batch {:>4}",
            self.batches, self.mean_batch, self.max_batch
        )?;
        write!(
            f,
            "  latency  p50 {:>7}µs   p95 {:>7}µs   p99 {:>7}µs   max {:>7}µs",
            self.p50_us, self.p95_us, self.p99_us, self.max_us
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bound_the_data() {
        let h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        // Upper-bound property: quantile(q) >= true percentile, and within
        // one power of two of it.
        let p50 = h.quantile(0.5);
        assert!((500..=1024).contains(&p50), "p50={p50}");
        let p99 = h.quantile(0.99);
        assert!((990..=1024).contains(&p99), "p99={p99}");
        // Extremes are clamped to the observed range, never beyond it.
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn histogram_handles_zero_and_empty() {
        let h = LogHistogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        h.record(0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        // Regression guard: one sample must report itself at every
        // quantile instead of its bucket's upper bound.
        let h = LogHistogram::new();
        h.record(100);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 100, "q={q}");
        }
    }

    #[test]
    fn snapshot_reflects_recorded_events() {
        let m = Metrics::new();
        m.record_request();
        m.record_request();
        m.record_ok(Duration::from_micros(100));
        m.record_error();
        m.record_shed();
        m.record_timeout();
        m.record_degraded();
        m.record_batch(8);
        m.record_batch(16);
        let s = m.snapshot();
        assert_eq!(
            (s.requests, s.ok, s.errors, s.shed, s.timeouts, s.batches),
            (2, 1, 1, 1, 1, 2)
        );
        assert_eq!(s.degraded, 1);
        assert_eq!(s.mean_batch, 12.0);
        assert_eq!(s.max_batch, 16);
        assert_eq!(s.p50_us, 100, "single sample is exact");
        // Wire and display forms carry the same numbers.
        let wire = s.to_wire();
        assert!(wire.contains("requests=2") && wire.contains("mean_batch=12.00"));
        assert!(!wire.contains('\n'));
        assert!(s.to_string().contains("p95"));
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let m = std::sync::Arc::new(Metrics::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = std::sync::Arc::clone(&m);
                s.spawn(move || {
                    for i in 0..1000 {
                        m.record_request();
                        m.record_ok(Duration::from_micros(i));
                    }
                });
            }
        });
        let s = m.snapshot();
        assert_eq!(s.requests, 8000);
        assert_eq!(s.ok, 8000);
        assert_eq!(m.latency_us.count(), 8000);
    }

    fn timeline(total: u64) -> RequestTimeline {
        RequestTimeline {
            sketch: "imdb".into(),
            template: "title+movie_keyword".into(),
            total_us: total,
            parse_us: total / 10,
            queue_us: total / 5,
            batch_wait_us: total / 10,
            forward_us: total / 2,
            write_us: total - total / 10 - total / 5 - total / 10 - total / 2,
            trace_id: 0,
            span_id: 0,
            parent_span: 0,
            batch_span: 0,
        }
    }

    #[test]
    fn timelines_roundtrip_the_trace_wire_format() {
        let t = timeline(1000);
        assert_eq!(t.stage_sum_us(), t.total_us);
        let wire = t.to_wire();
        assert!(!wire.contains(';') && !wire.contains('\n'), "{wire}");
        // Untraced records never mention the trace keys — pre-v3 shape.
        assert!(!wire.contains("trace_id"), "{wire}");
        assert_eq!(RequestTimeline::from_wire(&wire).unwrap(), t);
        assert!(RequestTimeline::from_wire("sketch=x template=y").is_none());
        assert!(RequestTimeline::from_wire("garbage").is_none());
    }

    #[test]
    fn traced_timelines_carry_their_span_identity() {
        let mut t = timeline(500);
        t.trace_id = 0xdead_beef_cafe_f00d_1234_5678_9abc_def0;
        t.span_id = 0x1;
        t.parent_span = 0x2;
        t.batch_span = 0x3;
        let wire = t.to_wire();
        assert!(
            wire.contains("trace_id=deadbeefcafef00d123456789abcdef0"),
            "{wire}"
        );
        assert_eq!(RequestTimeline::from_wire(&wire).unwrap(), t);
        // Malformed hex in a trace field is a parse failure, not a panic.
        assert!(RequestTimeline::from_wire(
            &wire.replace("span_id=0000000000000001", "span_id=zz")
        )
        .is_none());
    }

    #[test]
    fn stage_histograms_and_exemplars_capture_timelines() {
        let m = Metrics::new();
        m.record_timeline(&timeline(1000));
        m.record_timeline(&timeline(2000));
        assert_eq!(m.stage_parse_us.count(), 2);
        assert_eq!(m.stage_forward_us.max(), 1000);
        m.slow.push(timeline(2000));
        let slow = m.slow.snapshot();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].total_us, 2000);
    }

    #[test]
    fn metrics_snapshot_roundtrips_its_wire_line() {
        let m = Metrics::new();
        m.record_request();
        m.record_ok(Duration::from_micros(64));
        m.record_batch(4);
        let s = m.snapshot();
        assert_eq!(MetricsSnapshot::from_wire(&s.to_wire()).unwrap(), s);
        assert!(MetricsSnapshot::from_wire("requests=x").is_none());
        // Unknown keys from a newer server are skipped, not fatal.
        assert!(
            MetricsSnapshot::from_wire("requests=3 brand_new=1").is_some_and(|p| p.requests == 3)
        );
    }
}
