//! Request coalescing: concurrent in-flight estimates against the same
//! sketch are gathered into micro-batches and answered through one
//! [`CardinalityEstimator::try_estimate_batch`] call instead of one forward
//! pass per connection.
//!
//! Design:
//!
//! * A bounded admission queue guards the workers. When it is full,
//!   [`Batcher::submit`] fails fast with [`Rejection::Busy`] — the caller
//!   sheds the request with a `BUSY` response instead of queueing an
//!   unbounded backlog.
//! * Worker threads pop the oldest job, then sweep the queue for every
//!   other job aimed at the *same estimator instance* (up to `max_batch`)
//!   and run them as one batch. Under concurrency the batch forms
//!   naturally: while one forward pass runs, new arrivals pile up behind
//!   it.
//! * Each job carries a deadline. Expired jobs are dropped before doing
//!   work (their submitter has already given up); waiting submitters time
//!   out with [`Rejection::Timeout`].
//! * Shutdown is graceful: workers drain the queue, then exit.
//!
//! Coalescing never changes results: estimators guarantee
//! `try_estimate_batch` is bit-identical to looped `try_estimate` calls,
//! and the integration tests assert it end to end.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ds_est::{CardinalityEstimator, EstimateError};
use ds_obs::{IdSource, TraceContext};
use ds_query::query::Query;

use crate::faults::FaultInjector;
use crate::metrics::Metrics;

/// The estimators a batcher serves: any trait object that can cross
/// threads. `Arc<DeepSketch>` coerces directly.
pub type SharedEstimator = Arc<dyn CardinalityEstimator + Send + Sync>;

/// Why a request did not produce an estimate.
#[derive(Debug, Clone, PartialEq)]
pub enum Rejection {
    /// Admission queue full; request shed.
    Busy {
        /// Queue length at rejection time.
        queued: usize,
    },
    /// The request missed its deadline.
    Timeout,
    /// The batcher is shutting down.
    ShuttingDown,
    /// The estimator rejected the query.
    Estimate(EstimateError),
}

impl std::fmt::Display for Rejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejection::Busy { queued } => write!(f, "admission queue full ({queued} waiting)"),
            Rejection::Timeout => write!(f, "request deadline exceeded"),
            Rejection::ShuttingDown => write!(f, "server shutting down"),
            Rejection::Estimate(e) => write!(f, "{e}"),
        }
    }
}

/// Tuning knobs for the coalescer.
#[derive(Debug, Clone)]
pub struct BatcherConfig {
    /// Worker threads executing micro-batches.
    pub workers: usize,
    /// Maximum queries coalesced into one forward pass.
    pub max_batch: usize,
    /// Admission-queue bound; beyond it requests shed with `BUSY`.
    pub queue_capacity: usize,
    /// Per-request deadline (submit → response).
    pub request_timeout: Duration,
}

impl Default for BatcherConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            max_batch: 64,
            queue_capacity: 1024,
            request_timeout: Duration::from_secs(2),
        }
    }
}

/// Monotonic stamps marking where a job's time went, taken by `submit`
/// and the batch worker. The server stitches them into the request
/// timeline (parse → queue-wait → batch-wait → forward → write); the
/// stamps are strictly ordered, so consecutive differences are the stage
/// durations and they sum to the span they cover by construction.
#[derive(Debug, Clone, Copy)]
pub struct StageStamps {
    /// When `submit` placed the job in the admission queue.
    pub enqueued: Instant,
    /// When a worker swept the job out of the queue into a batch.
    pub dequeued: Instant,
    /// When the coalesced forward pass started.
    pub forward_start: Instant,
    /// When the coalesced forward pass finished.
    pub forward_end: Instant,
    /// Span id of the coalesced batch this job rode in — one id shared
    /// by every traced job in the batch, so a fleet aggregator can show
    /// which requests amortized one forward pass. Zero when no job in
    /// the batch was traced.
    pub batch_span: u64,
}

/// One finished job as delivered on the response channel: the estimate
/// (or error) plus its stage stamps.
#[derive(Debug)]
pub struct Completed {
    /// The estimator's answer for this job's query.
    pub result: Result<f64, EstimateError>,
    /// Where the job's time went.
    pub stamps: StageStamps,
}

struct Job {
    /// Coalescing key. The server passes the sketch's store *generation*
    /// (unique per insert/swap for the store's lifetime), so a background
    /// retraining swap can never mix models inside one batch — even if the
    /// allocator reuses a freed sketch's address for its replacement, the
    /// generations differ. Keyless submitters get the estimator's address;
    /// the worker sweep additionally requires [`Arc::ptr_eq`] so an
    /// address-reuse collision between the two key spaces is harmless.
    key: u64,
    estimator: SharedEstimator,
    query: Query,
    /// Trace context of the request (v3 peers), if any. Traced jobs make
    /// their batch mint a shared batch span id.
    trace: Option<TraceContext>,
    tx: Sender<Completed>,
    enqueued: Instant,
    deadline: Instant,
}

struct State {
    queue: VecDeque<Job>,
    shutdown: bool,
}

struct Inner {
    state: Mutex<State>,
    work_ready: Condvar,
    metrics: Arc<Metrics>,
    cfg: BatcherConfig,
    /// Jobs dropped unanswered because their deadline passed in-queue.
    expired: AtomicU64,
    /// Mints batch span ids for batches containing traced jobs.
    ids: IdSource,
    /// Test-only fault plan; `None` in production, and inert in release
    /// builds even when set (see [`FaultInjector::armed`]).
    faults: Option<Arc<FaultInjector>>,
}

/// The coalescing micro-batch executor. Share via the handle methods; one
/// per server.
pub struct Batcher {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

impl Batcher {
    /// Starts the worker threads.
    pub fn new(cfg: BatcherConfig, metrics: Arc<Metrics>) -> Self {
        Self::with_faults(cfg, metrics, None)
    }

    /// Like [`Batcher::new`], with an optional fault plan whose
    /// forward-delay faults stall coalesced forward passes (degradation
    /// tests only — a configured injector is inert in release builds).
    pub fn with_faults(
        cfg: BatcherConfig,
        metrics: Arc<Metrics>,
        faults: Option<Arc<FaultInjector>>,
    ) -> Self {
        let cfg = BatcherConfig {
            workers: cfg.workers.max(1),
            max_batch: cfg.max_batch.max(1),
            queue_capacity: cfg.queue_capacity.max(1),
            ..cfg
        };
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            metrics,
            cfg,
            expired: AtomicU64::new(0),
            ids: IdSource::from_entropy(),
            faults,
        });
        let workers = (0..inner.cfg.workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("ds-serve-batch-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .expect("spawn batch worker")
            })
            .collect();
        Self { inner, workers }
    }

    /// Enqueues one estimate without blocking, keyed by the estimator
    /// instance's address. Prefer [`Batcher::submit_keyed`] with a store
    /// generation when one is available — addresses can be reused across a
    /// drop/replace, generations cannot.
    pub fn submit(
        &self,
        estimator: SharedEstimator,
        query: Query,
    ) -> Result<Receiver<Completed>, Rejection> {
        let key = Arc::as_ptr(&estimator) as *const () as usize as u64;
        self.submit_keyed(key, estimator, query)
    }

    /// Enqueues one estimate under a caller-supplied coalescing key (the
    /// server uses the sketch's store generation). Returns the receiver the
    /// result will arrive on, or sheds immediately when the queue is full.
    pub fn submit_keyed(
        &self,
        key: u64,
        estimator: SharedEstimator,
        query: Query,
    ) -> Result<Receiver<Completed>, Rejection> {
        self.submit_with_trace(key, estimator, query, None)
    }

    /// [`Batcher::submit_keyed`] carrying the request's trace context.
    /// A batch containing at least one traced job mints a shared batch
    /// span id, returned to every job via [`StageStamps::batch_span`].
    pub fn submit_with_trace(
        &self,
        key: u64,
        estimator: SharedEstimator,
        query: Query,
        trace: Option<TraceContext>,
    ) -> Result<Receiver<Completed>, Rejection> {
        let (tx, rx) = channel();
        let mut st = self.inner.state.lock().expect("batcher lock");
        if st.shutdown {
            return Err(Rejection::ShuttingDown);
        }
        if st.queue.len() >= self.inner.cfg.queue_capacity {
            let queued = st.queue.len();
            drop(st);
            self.inner.metrics.record_shed();
            return Err(Rejection::Busy { queued });
        }
        let enqueued = Instant::now();
        st.queue.push_back(Job {
            key,
            estimator,
            query,
            trace,
            tx,
            enqueued,
            deadline: enqueued + self.inner.cfg.request_timeout,
        });
        drop(st);
        self.inner.work_ready.notify_one();
        Ok(rx)
    }

    /// Submits and waits for the result, enforcing the configured
    /// per-request timeout.
    pub fn estimate(&self, estimator: SharedEstimator, query: Query) -> Result<f64, Rejection> {
        self.estimate_traced(estimator, query).map(|(v, _)| v)
    }

    /// Like [`Batcher::estimate`], but also returns the job's stage stamps
    /// so the caller can attribute the latency.
    pub fn estimate_traced(
        &self,
        estimator: SharedEstimator,
        query: Query,
    ) -> Result<(f64, StageStamps), Rejection> {
        let key = Arc::as_ptr(&estimator) as *const () as usize as u64;
        self.estimate_traced_keyed(key, estimator, query)
    }

    /// [`Batcher::estimate_traced`] under a caller-supplied coalescing key.
    pub fn estimate_traced_keyed(
        &self,
        key: u64,
        estimator: SharedEstimator,
        query: Query,
    ) -> Result<(f64, StageStamps), Rejection> {
        self.estimate_with_trace(key, estimator, query, None)
    }

    /// [`Batcher::estimate_traced_keyed`] carrying the request's trace
    /// context into the batch (see [`Batcher::submit_with_trace`]).
    pub fn estimate_with_trace(
        &self,
        key: u64,
        estimator: SharedEstimator,
        query: Query,
        trace: Option<TraceContext>,
    ) -> Result<(f64, StageStamps), Rejection> {
        let rx = self.submit_with_trace(key, estimator, query, trace)?;
        match rx.recv_timeout(self.inner.cfg.request_timeout) {
            Ok(Completed {
                result: Ok(v),
                stamps,
            }) => Ok((v, stamps)),
            Ok(Completed { result: Err(e), .. }) => Err(Rejection::Estimate(e)),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => {
                self.inner.metrics.record_timeout();
                Err(Rejection::Timeout)
            }
        }
    }

    /// Current admission-queue length.
    pub fn queue_len(&self) -> usize {
        self.inner.state.lock().expect("batcher lock").queue.len()
    }

    /// Jobs dropped unanswered because their deadline passed in-queue.
    pub fn expired_jobs(&self) -> u64 {
        self.inner.expired.load(Ordering::Relaxed)
    }

    /// Graceful shutdown: stops admission, drains every queued job, then
    /// joins the workers.
    pub fn shutdown(mut self) {
        self.begin_shutdown();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    fn begin_shutdown(&self) {
        self.inner.state.lock().expect("batcher lock").shutdown = true;
        self.inner.work_ready.notify_all();
    }
}

impl Drop for Batcher {
    fn drop(&mut self) {
        self.begin_shutdown();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        // Wait for work; exit only when shut down AND drained.
        let mut batch = {
            let mut st = inner.state.lock().expect("batcher lock");
            loop {
                if !st.queue.is_empty() {
                    break;
                }
                if st.shutdown {
                    return;
                }
                st = inner.work_ready.wait(st).expect("batcher lock");
            }
            let first = st.queue.pop_front().expect("non-empty queue");
            let mut batch = vec![first];
            // Sweep the queue for jobs on the same estimator instance. The
            // key match is the intent ("same model version"); the pointer
            // check is the guarantee — two jobs whose keys collide across
            // key spaces (address-derived vs generation-derived) can never
            // hand different models to one forward pass.
            let mut i = 0;
            while batch.len() < inner.cfg.max_batch && i < st.queue.len() {
                if st.queue[i].key == batch[0].key
                    && Arc::ptr_eq(&st.queue[i].estimator, &batch[0].estimator)
                {
                    batch.push(st.queue.remove(i).expect("index in range"));
                } else {
                    i += 1;
                }
            }
            batch
        };
        // The whole batch leaves the queue at one moment; the per-job
        // queue-wait is measured from each job's own enqueue stamp.
        let dequeued = Instant::now();

        // Skip jobs whose submitter already timed out.
        let before = batch.len();
        batch.retain(|j| j.deadline > dequeued);
        let dropped = (before - batch.len()) as u64;
        if dropped > 0 {
            inner.expired.fetch_add(dropped, Ordering::Relaxed);
        }
        if batch.is_empty() {
            continue;
        }

        // One coalesced forward pass outside the lock.
        let obs = ds_obs::global();
        let span = obs.span("serve/batch");
        let queries: Vec<Query> = batch.iter().map(|j| j.query.clone()).collect();
        // Injected stall (tests only): models a wedged forward pass so
        // deadline handling and breaker trips are exercised on the real
        // worker path.
        if let Some(delay) = inner.faults.as_ref().and_then(|f| f.forward_delay()) {
            std::thread::sleep(delay);
        }
        let forward_start = Instant::now();
        let results = batch[0].estimator.try_estimate_batch(&queries);
        let forward_end = Instant::now();
        drop(span);
        if obs.is_enabled() {
            obs.observe("serve/batch_size", batch.len() as u64);
        }
        inner.metrics.record_batch(batch.len());
        // One batch span links every traced request that shared this
        // forward pass; untraced batches mint nothing.
        let batch_span = if batch.iter().any(|j| j.trace.is_some()) {
            inner.ids.next_span()
        } else {
            0
        };
        for (job, result) in batch.into_iter().zip(results) {
            let stamps = StageStamps {
                enqueued: job.enqueued,
                dequeued,
                forward_start,
                forward_end,
                batch_span,
            };
            // A failed send means the waiter gave up; nothing to do.
            let _ = job.tx.send(Completed { result, stamps });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic stub: returns `base + query.tables.len()` after an
    /// optional artificial delay.
    struct StubEstimator {
        base: f64,
        delay: Duration,
    }

    impl CardinalityEstimator for StubEstimator {
        fn name(&self) -> &str {
            "Stub"
        }

        fn estimate(&self, query: &Query) -> f64 {
            std::thread::sleep(self.delay);
            self.base + query.tables.len() as f64
        }
    }

    fn queries(n: usize) -> Vec<Query> {
        // Queries only need distinguishable table counts for the stub.
        (0..n)
            .map(|i| {
                let mut q = Query::new();
                for t in 0..(i % 3) {
                    q.tables.push(ds_storage::catalog::TableId(t));
                }
                q
            })
            .collect()
    }

    #[test]
    fn coalesced_results_match_direct_estimates() {
        let est: SharedEstimator = Arc::new(StubEstimator {
            base: 10.0,
            delay: Duration::from_millis(1),
        });
        let metrics = Arc::new(Metrics::new());
        let batcher = Batcher::new(
            BatcherConfig {
                workers: 2,
                max_batch: 8,
                queue_capacity: 256,
                request_timeout: Duration::from_secs(10),
            },
            Arc::clone(&metrics),
        );
        let qs = queries(48);
        std::thread::scope(|s| {
            let handles: Vec<_> = qs
                .iter()
                .map(|q| {
                    let est = Arc::clone(&est);
                    let batcher = &batcher;
                    let q = q.clone();
                    s.spawn(move || batcher.estimate(est, q).expect("estimate"))
                })
                .collect();
            for (h, q) in handles.into_iter().zip(&qs) {
                assert_eq!(h.join().unwrap(), est.estimate(q));
            }
        });
        batcher.shutdown();
        let snap = metrics.snapshot();
        assert!(snap.batches > 0);
        assert!(snap.batches <= 48, "batches={}", snap.batches);
        // With 48 concurrent 1ms jobs on 2 workers, at least some
        // coalescing must have happened.
        assert!(snap.max_batch > 1, "no coalescing observed");
        assert!(snap.max_batch <= 8, "max_batch cap violated");
    }

    #[test]
    fn full_queue_sheds_with_busy() {
        let est: SharedEstimator = Arc::new(StubEstimator {
            base: 0.0,
            delay: Duration::from_millis(50),
        });
        let metrics = Arc::new(Metrics::new());
        let batcher = Batcher::new(
            BatcherConfig {
                workers: 1,
                max_batch: 1,
                queue_capacity: 2,
                request_timeout: Duration::from_secs(5),
            },
            Arc::clone(&metrics),
        );
        // One slow job occupies the worker; then fill the queue.
        let mut receivers = vec![batcher.submit(Arc::clone(&est), Query::new()).unwrap()];
        let mut shed = 0;
        for _ in 0..16 {
            match batcher.submit(Arc::clone(&est), Query::new()) {
                Ok(rx) => receivers.push(rx),
                Err(Rejection::Busy { .. }) => shed += 1,
                Err(other) => panic!("unexpected rejection {other:?}"),
            }
        }
        assert!(shed > 0, "bounded queue never shed");
        assert_eq!(metrics.snapshot().shed, shed);
        // Everything admitted still completes (drain on shutdown).
        batcher.shutdown();
        for rx in receivers {
            assert!(rx.recv().unwrap().result.is_ok());
        }
    }

    #[test]
    fn stage_stamps_are_ordered_and_cover_the_forward_pass() {
        let est: SharedEstimator = Arc::new(StubEstimator {
            base: 1.0,
            delay: Duration::from_millis(10),
        });
        let batcher = Batcher::new(BatcherConfig::default(), Arc::new(Metrics::new()));
        let before = Instant::now();
        let (v, stamps) = batcher
            .estimate_traced(Arc::clone(&est), Query::new())
            .expect("estimate");
        assert_eq!(v, 1.0);
        assert!(stamps.enqueued >= before);
        assert!(stamps.dequeued >= stamps.enqueued);
        assert!(stamps.forward_start >= stamps.dequeued);
        assert!(stamps.forward_end >= stamps.forward_start);
        // The forward stage contains the stub's 10ms sleep.
        assert!(stamps.forward_end - stamps.forward_start >= Duration::from_millis(10));
        batcher.shutdown();
    }

    #[test]
    fn slow_estimator_times_out_without_blocking_forever() {
        let est: SharedEstimator = Arc::new(StubEstimator {
            base: 0.0,
            delay: Duration::from_millis(300),
        });
        let metrics = Arc::new(Metrics::new());
        let batcher = Batcher::new(
            BatcherConfig {
                workers: 1,
                max_batch: 4,
                queue_capacity: 64,
                request_timeout: Duration::from_millis(30),
            },
            Arc::clone(&metrics),
        );
        let t0 = Instant::now();
        // First request occupies the worker for 300ms; the second cannot
        // start before its 30ms deadline and must time out.
        let _first = batcher.submit(Arc::clone(&est), Query::new()).unwrap();
        let second = batcher.estimate(Arc::clone(&est), Query::new());
        assert_eq!(second, Err(Rejection::Timeout));
        assert!(
            t0.elapsed() < Duration::from_millis(250),
            "blocked too long"
        );
        assert_eq!(metrics.snapshot().timeouts, 1);
        batcher.shutdown();
        // The expired job was dropped without being computed, or computed
        // before its deadline check — either way nothing hung or panicked.
    }

    #[test]
    fn estimator_errors_propagate_per_job() {
        struct FailingEstimator;
        impl CardinalityEstimator for FailingEstimator {
            fn name(&self) -> &str {
                "Failing"
            }
            fn estimate(&self, _q: &Query) -> f64 {
                1.0
            }
            fn try_estimate(&self, q: &Query) -> Result<f64, EstimateError> {
                if q.tables.is_empty() {
                    Err(EstimateError::Unroutable { tables: vec![] })
                } else {
                    Ok(7.0)
                }
            }
        }
        let est: SharedEstimator = Arc::new(FailingEstimator);
        let batcher = Batcher::new(BatcherConfig::default(), Arc::new(Metrics::new()));
        let mut ok_query = Query::new();
        ok_query.tables.push(ds_storage::catalog::TableId(0));
        assert_eq!(batcher.estimate(Arc::clone(&est), ok_query), Ok(7.0));
        assert_eq!(
            batcher.estimate(Arc::clone(&est), Query::new()),
            Err(Rejection::Estimate(EstimateError::Unroutable {
                tables: vec![]
            }))
        );
        batcher.shutdown();
    }

    #[test]
    fn different_estimator_instances_never_share_a_batch() {
        let a: SharedEstimator = Arc::new(StubEstimator {
            base: 100.0,
            delay: Duration::from_millis(5),
        });
        let b: SharedEstimator = Arc::new(StubEstimator {
            base: 200.0,
            delay: Duration::from_millis(5),
        });
        let batcher = Batcher::new(
            BatcherConfig {
                workers: 1,
                max_batch: 64,
                queue_capacity: 256,
                request_timeout: Duration::from_secs(10),
            },
            Arc::new(Metrics::new()),
        );
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..32)
                .map(|i| {
                    let est = if i % 2 == 0 {
                        Arc::clone(&a)
                    } else {
                        Arc::clone(&b)
                    };
                    let expected = if i % 2 == 0 { 100.0 } else { 200.0 };
                    let batcher = &batcher;
                    s.spawn(move || {
                        let got = batcher.estimate(est, Query::new()).expect("estimate");
                        assert_eq!(got, expected);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        batcher.shutdown();
    }

    #[test]
    fn colliding_keys_never_mix_estimator_instances() {
        // Two distinct estimator instances submitted under the SAME key —
        // the ABA shape a store generation collision would produce. The
        // Arc::ptr_eq sweep guard must keep their batches separate.
        let a: SharedEstimator = Arc::new(StubEstimator {
            base: 100.0,
            delay: Duration::from_millis(5),
        });
        let b: SharedEstimator = Arc::new(StubEstimator {
            base: 200.0,
            delay: Duration::from_millis(5),
        });
        let batcher = Batcher::new(
            BatcherConfig {
                workers: 1,
                max_batch: 64,
                queue_capacity: 256,
                request_timeout: Duration::from_secs(10),
            },
            Arc::new(Metrics::new()),
        );
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..32)
                .map(|i| {
                    let est = if i % 2 == 0 {
                        Arc::clone(&a)
                    } else {
                        Arc::clone(&b)
                    };
                    let expected = if i % 2 == 0 { 100.0 } else { 200.0 };
                    let batcher = &batcher;
                    s.spawn(move || {
                        let rx = batcher.submit_keyed(7, est, Query::new()).expect("submit");
                        let got = rx.recv().expect("result").result.expect("estimate");
                        assert_eq!(got, expected);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        batcher.shutdown();
    }

    #[test]
    fn forward_delay_fault_stalls_the_batch_worker() {
        let faults = Arc::new(crate::faults::FaultInjector::new(11));
        faults.delay_forwards(Duration::from_millis(40), 1.0);
        let est: SharedEstimator = Arc::new(StubEstimator {
            base: 1.0,
            delay: Duration::ZERO,
        });
        let batcher = Batcher::with_faults(
            BatcherConfig::default(),
            Arc::new(Metrics::new()),
            Some(Arc::clone(&faults)),
        );
        let t0 = Instant::now();
        assert_eq!(batcher.estimate(Arc::clone(&est), Query::new()), Ok(1.0));
        if crate::faults::FaultInjector::armed() {
            assert!(
                t0.elapsed() >= Duration::from_millis(40),
                "injected stall skipped: {:?}",
                t0.elapsed()
            );
        }
        batcher.shutdown();
    }

    #[test]
    fn traced_batches_mint_one_shared_batch_span() {
        let est: SharedEstimator = Arc::new(StubEstimator {
            base: 1.0,
            delay: Duration::ZERO,
        });
        let batcher = Batcher::new(BatcherConfig::default(), Arc::new(Metrics::new()));
        // Untraced job: no batch span.
        let (_, stamps) = batcher
            .estimate_traced(Arc::clone(&est), Query::new())
            .expect("estimate");
        assert_eq!(stamps.batch_span, 0);
        // Traced job: a nonzero span.
        let ctx = TraceContext {
            trace_id: 7,
            span_id: 9,
        };
        let (_, stamps) = batcher
            .estimate_with_trace(3, Arc::clone(&est), Query::new(), Some(ctx))
            .expect("estimate");
        assert_ne!(stamps.batch_span, 0);
        batcher.shutdown();
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let metrics = Arc::new(Metrics::new());
        let batcher = Batcher::new(BatcherConfig::default(), metrics);
        batcher.begin_shutdown();
        let est: SharedEstimator = Arc::new(StubEstimator {
            base: 0.0,
            delay: Duration::ZERO,
        });
        assert!(matches!(
            batcher.submit(est, Query::new()),
            Err(Rejection::ShuttingDown)
        ));
        batcher.shutdown();
    }
}
