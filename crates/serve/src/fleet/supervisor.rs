//! An in-process fleet supervisor: real TCP shards, wire-shipped
//! replication, gossip, kill/restart, and re-replication.
//!
//! [`Fleet`] runs N [`Server`]s in one process (each with its own
//! [`SketchStore`], talking only over TCP), which is what the failover
//! tests and the bench harness need: every replication byte crosses the
//! real wire, but a "shard death" is a clean `shutdown()` instead of a
//! `kill -9`. The separate multi-process smoke test (`ds_shard` binary)
//! covers the genuinely-separate-address-space case; this supervisor
//! covers everything else cheaply and deterministically.
//!
//! The failover state machine, as exercised by [`Fleet::kill`] /
//! [`Fleet::restart`] / [`Fleet::heal`]:
//!
//! ```text
//!        deploy(name)            kill(i)              restart(i)
//! ready ───────────────▶ R live ───────────▶ R-1 live ─────────▶ R-1 live
//!                            ▲                (routing fails      + 1 empty
//!                            │                 over to the        │
//!                            │                 survivors)         │ heal()
//!                            └─────────────────────────────────────┘
//!                              (snapshot re-shipped from a survivor,
//!                               generation preserved, R restored)
//! ```

use std::net::SocketAddr;
use std::sync::Arc;
use std::time::Duration;

use ds_core::sketch::DeepSketch;
use ds_core::store::SketchStore;
use ds_storage::catalog::Database;

use crate::config::ServeConfig;
use crate::connection::{Connection, SyncAck};
use crate::protocol::{Request, Response};
use crate::server::Server;

use super::{FleetClient, FleetTopology};

/// Tuning for an in-process [`Fleet`].
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Number of shard servers.
    pub shards: usize,
    /// Copies of each sketch (clamped to the shard count).
    pub replication: usize,
    /// Per-shard server config template; the bind address is overridden
    /// per shard.
    pub server: ServeConfig,
    /// Deadline for supervisor-side wire operations (snapshot shipping,
    /// gossip probes).
    pub timeout: Duration,
}

impl Default for FleetConfig {
    fn default() -> Self {
        Self {
            shards: 3,
            replication: 2,
            server: ServeConfig::default(),
            timeout: Duration::from_secs(30),
        }
    }
}

/// One gossip observation of a shard's health.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardHealth {
    /// Shard index in the topology.
    pub shard: usize,
    /// Whether the shard answered its `STATS` probe at all.
    pub alive: bool,
    /// Sketches whose server-side circuit breaker is currently open.
    pub open_breakers: Vec<String>,
    /// SLOs whose multi-window burn-rate alert is firing on this shard
    /// (sanitized metric names from the exposition). A sustained
    /// latency/q-error burn demotes the shard exactly like a breaker trip.
    pub firing_slos: Vec<String>,
}

impl ShardHealth {
    /// Whether routing should steer away from this shard.
    pub fn degraded(&self) -> bool {
        !self.alive || !self.open_breakers.is_empty() || !self.firing_slos.is_empty()
    }
}

struct ShardNode {
    addr: SocketAddr,
    store: Arc<SketchStore>,
    server: Option<Server>,
}

/// An in-process fleet of real TCP shard servers.
pub struct Fleet {
    db: Arc<Database>,
    cfg: FleetConfig,
    nodes: Vec<ShardNode>,
    deployed: Vec<String>,
}

impl Fleet {
    /// Starts `cfg.shards` servers on OS-assigned ports, each with an
    /// empty store.
    pub fn start(db: Arc<Database>, cfg: FleetConfig) -> std::io::Result<Self> {
        let mut nodes = Vec::with_capacity(cfg.shards);
        for _ in 0..cfg.shards {
            let store = Arc::new(SketchStore::new());
            let mut server_cfg = cfg.server.clone();
            server_cfg.addr = "127.0.0.1:0".to_string();
            let server = Server::start(Arc::clone(&db), Arc::clone(&store), server_cfg)?;
            nodes.push(ShardNode {
                addr: server.local_addr(),
                store,
                server: Some(server),
            });
        }
        Ok(Self {
            db,
            cfg,
            nodes,
            deployed: Vec::new(),
        })
    }

    /// The fixed topology (addresses survive kill/restart cycles).
    pub fn topology(&self) -> FleetTopology {
        FleetTopology::new(
            self.nodes.iter().map(|n| n.addr).collect(),
            self.cfg.replication,
        )
    }

    /// A routing client over this fleet.
    pub fn client(&self) -> FleetClient {
        FleetClient::new(self.topology())
    }

    /// The store behind shard `i` (tests inspect generations directly).
    pub fn store(&self, shard: usize) -> Arc<SketchStore> {
        Arc::clone(&self.nodes[shard].store)
    }

    /// Whether shard `i` is currently running.
    pub fn is_alive(&self, shard: usize) -> bool {
        self.nodes[shard].server.is_some()
    }

    /// Deploys a sketch: inserts it into its primary replica's store —
    /// or, when the name is already deployed (a promoted lifecycle
    /// candidate), hot-swaps it under a fresh generation — then ships it
    /// to the remaining replicas over the wire (`SNAPSHOT` from the
    /// primary → `SYNC` into each, newest-wins). Returns the replica set.
    pub fn deploy(&mut self, name: &str, sketch: DeepSketch) -> std::io::Result<Vec<usize>> {
        let replicas = self.topology().replicas(name);
        let &primary = replicas.first().ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::NotFound, "fleet has no shards")
        })?;
        let store = &self.nodes[primary].store;
        if store.generation(name).is_some() {
            store
                .swap(name, Arc::new(sketch))
                .map_err(|e| std::io::Error::other(e.to_string()))?;
        } else {
            store
                .insert(name, sketch)
                .map_err(|e| std::io::Error::other(e.to_string()))?;
        }
        if !self.deployed.iter().any(|n| n == name) {
            self.deployed.push(name.to_string());
        }
        self.replicate(name)?;
        Ok(replicas)
    }

    /// Ships `name` from a live replica that holds it to every other live
    /// replica in its set (newest-wins; already-current replicas ack
    /// `stale`, which is fine). Returns how many replicas adopted.
    pub fn replicate(&mut self, name: &str) -> std::io::Result<usize> {
        let replicas = self.topology().replicas(name);
        // Find the freshest live copy to ship from.
        let source = replicas
            .iter()
            .copied()
            .filter(|&i| self.nodes[i].server.is_some())
            .filter_map(|i| self.nodes[i].store.generation(name).map(|g| (g, i)))
            .max();
        let Some((_, source)) = source else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("no live replica holds sketch '{name}'"),
            ));
        };
        let mut src = self.connect(source)?;
        let (generation, bytes) = src.fetch_snapshot(name)?;
        let mut adopted = 0;
        for &target in replicas.iter().filter(|&&i| i != source) {
            if self.nodes[target].server.is_none() {
                continue; // dead; heal() catches it up after restart
            }
            let mut dst = self.connect(target)?;
            match dst.sync_snapshot(name, generation, &bytes)? {
                SyncAck::Adopted(_) => adopted += 1,
                SyncAck::Stale(_) => {}
            }
        }
        Ok(adopted)
    }

    /// Kills shard `i`: graceful server shutdown, connections die, the
    /// store's contents are dropped (a restart starts empty — total local
    /// loss, the worst case re-replication must cover).
    pub fn kill(&mut self, shard: usize) {
        if let Some(server) = self.nodes[shard].server.take() {
            server.shutdown();
        }
        // Model a machine loss, not a reboot: the replacement shard starts
        // with nothing and must be re-seeded over the wire.
        self.nodes[shard].store = Arc::new(SketchStore::new());
    }

    /// Restarts a killed shard on its original address with an empty
    /// store. Retries the bind briefly — the OS may lag releasing the
    /// port after shutdown.
    pub fn restart(&mut self, shard: usize) -> std::io::Result<()> {
        if self.nodes[shard].server.is_some() {
            return Ok(());
        }
        let addr = self.nodes[shard].addr;
        let store = Arc::new(SketchStore::new());
        let mut server_cfg = self.cfg.server.clone();
        server_cfg.addr = addr.to_string();
        let mut last = None;
        for _ in 0..50 {
            match Server::start(Arc::clone(&self.db), Arc::clone(&store), server_cfg.clone()) {
                Ok(server) => {
                    self.nodes[shard].store = store;
                    self.nodes[shard].server = Some(server);
                    return Ok(());
                }
                Err(e) => {
                    last = Some(e);
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
        Err(last.unwrap_or_else(|| std::io::Error::other("restart failed")))
    }

    /// Re-replicates every deployed sketch whose replica set has a live
    /// member missing it (or holding an older generation) — the recovery
    /// step after [`Fleet::restart`]. Returns the number of replica
    /// copies restored.
    pub fn heal(&mut self) -> std::io::Result<usize> {
        let mut restored = 0;
        for name in self.deployed.clone() {
            let replicas = self.topology().replicas(&name);
            let needs_copy = replicas.iter().any(|&i| {
                self.nodes[i].server.is_some() && self.nodes[i].store.generation(&name).is_none()
            });
            let stale = {
                let gens: Vec<_> = replicas
                    .iter()
                    .filter(|&&i| self.nodes[i].server.is_some())
                    .filter_map(|&i| self.nodes[i].store.generation(&name))
                    .collect();
                gens.iter().max() != gens.iter().min()
            };
            if needs_copy || stale {
                restored += self.replicate(&name)?;
                ds_obs::global().count("fleet/resyncs", 1);
            }
        }
        Ok(restored)
    }

    /// One gossip round: probes every shard's `STATS` over the wire and
    /// reports liveness plus any open per-sketch circuit breakers — the
    /// same breaker state the server uses for its own degradation chain,
    /// reused here as the routing health signal.
    pub fn gossip(&self) -> Vec<ShardHealth> {
        (0..self.nodes.len())
            .map(|shard| match self.probe(shard) {
                Some((open_breakers, firing_slos)) => ShardHealth {
                    shard,
                    alive: true,
                    open_breakers,
                    firing_slos,
                },
                None => ShardHealth {
                    shard,
                    alive: false,
                    open_breakers: Vec::new(),
                    firing_slos: Vec::new(),
                },
            })
            .collect()
    }

    /// Applies a gossip round to a routing client: shards that are dead or
    /// have open breakers get demoted; recovered shards get promoted back.
    pub fn steer(&self, client: &mut FleetClient) {
        for health in self.gossip() {
            client.set_degraded(health.shard, health.degraded());
        }
    }

    /// Probes one shard: `None` when unreachable, otherwise the sketches
    /// with open server-side breakers plus the SLOs whose burn-rate alert
    /// fires, parsed from the typed `STATS` families
    /// (`ds_serve_breaker_<name>_open` / `ds_slo_<name>_firing` gauges).
    fn probe(&self, shard: usize) -> Option<(Vec<String>, Vec<String>)> {
        let mut conn =
            Connection::connect_timeout(self.nodes[shard].addr, self.cfg.timeout).ok()?;
        let Response::Text(text) = conn.roundtrip(&Request::Stats, false).ok()? else {
            return None;
        };
        let doc = text.replace("\\n", "\n");
        let families = ds_obs::parse_families(&doc)?;
        let flagged = |prefix: &str, suffix: &str| -> Vec<String> {
            families
                .iter()
                .filter(|f| f.kind == ds_obs::FamilyKind::Gauge)
                .filter_map(|f| f.scalar().map(|v| (f, v)))
                .filter(|&(f, v)| f.name.starts_with(prefix) && f.name.ends_with(suffix) && v > 0.0)
                .map(|(f, _)| {
                    f.name
                        .trim_start_matches(prefix)
                        .trim_end_matches(suffix)
                        .to_string()
                })
                .collect()
        };
        Some((
            flagged("ds_serve_breaker_", "_open"),
            flagged("ds_slo_", "_firing"),
        ))
    }

    fn connect(&self, shard: usize) -> std::io::Result<Connection> {
        Connection::connect_timeout(self.nodes[shard].addr, self.cfg.timeout)
    }

    /// A fresh low-level connection to shard `i` (tests drive raw
    /// snapshot/sync traffic through this).
    pub fn client_connection(&self, shard: usize) -> std::io::Result<Connection> {
        self.connect(shard)
    }

    /// Shuts down every live shard.
    pub fn shutdown(mut self) {
        for node in &mut self.nodes {
            if let Some(server) = node.server.take() {
                server.shutdown();
            }
        }
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        for node in &mut self.nodes {
            if let Some(server) = node.server.take() {
                server.shutdown();
            }
        }
    }
}
