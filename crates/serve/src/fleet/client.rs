//! The high-level routing client: picks replicas, retries across them,
//! and learns which shards to avoid.
//!
//! A [`FleetClient`] owns at most one [`Connection`] per shard (opened
//! lazily, dropped on the first IO error so a dead shard doesn't wedge
//! the pool). Per request it walks the sketch's replica set in preference
//! order: the *affinity* shard — whoever answered this sketch last —
//! first, then the ring order, with shards that look unhealthy (open
//! client-side circuit breaker, or marked degraded by gossip) demoted to
//! the back rather than skipped, so a fleet that is entirely unhealthy
//! still gets tried. Client-side breakers are keyed by shard index and
//! reuse the server's [`CircuitBreaker`](crate::breaker::CircuitBreaker)
//! implementation — the same
//! open/half-open/closed state machine steers routing away from a flapping
//! replica and probes it back in after the cooldown.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use ds_obs::{FleetCounters, IdSource, TraceContext};

use crate::breaker::{BreakerConfig, BreakerRegistry};
use crate::connection::Connection;
use crate::protocol::{ErrorCode, Request, Response};

use super::FleetTopology;

/// Tuning for [`FleetClient`].
#[derive(Debug, Clone)]
pub struct FleetClientConfig {
    /// Per-connection connect/read deadline.
    pub timeout: Duration,
    /// Client-side per-shard circuit-breaker thresholds.
    pub breaker: BreakerConfig,
    /// Send `HELLO` on each new connection (disable only to talk to
    /// pre-handshake peers under test).
    pub handshake: bool,
}

impl Default for FleetClientConfig {
    fn default() -> Self {
        Self {
            timeout: Duration::from_secs(10),
            breaker: BreakerConfig::default(),
            handshake: true,
        }
    }
}

/// A routing client over a [`FleetTopology`].
pub struct FleetClient {
    topology: FleetTopology,
    cfg: FleetClientConfig,
    conns: HashMap<usize, Connection>,
    breakers: BreakerRegistry,
    affinity: HashMap<String, usize>,
    degraded: HashSet<usize>,
    counters: Arc<FleetCounters>,
    /// Mints one root trace per routed request (v3 `trace=` tokens).
    ids: IdSource,
    /// The trace minted for the most recent [`FleetClient::estimate`]
    /// sweep — tests join it against the shards' `TRACE` exemplars.
    last_trace: Option<TraceContext>,
}

impl FleetClient {
    /// A client with default tuning.
    pub fn new(topology: FleetTopology) -> Self {
        Self::with_config(topology, FleetClientConfig::default())
    }

    /// A client with explicit tuning.
    pub fn with_config(topology: FleetTopology, cfg: FleetClientConfig) -> Self {
        let breakers = BreakerRegistry::new(cfg.breaker);
        Self {
            topology,
            cfg,
            conns: HashMap::new(),
            breakers,
            affinity: HashMap::new(),
            degraded: HashSet::new(),
            counters: Arc::new(FleetCounters::new()),
            ids: IdSource::from_entropy(),
            last_trace: None,
        }
    }

    /// The routing counters (shared — clone the `Arc` to aggregate).
    pub fn counters(&self) -> Arc<FleetCounters> {
        Arc::clone(&self.counters)
    }

    /// The routing counters rendered as Prometheus exposition — the
    /// scrapeable form a fleet aggregator merges beside shard `STATS`.
    pub fn counters_exposition(&self) -> String {
        let mut p = ds_obs::PromText::new();
        self.counters.render(&mut p);
        p.into_string()
    }

    /// The root trace context minted for the most recent
    /// [`FleetClient::estimate`] call. It was sent on the wire only to
    /// shards that negotiated the v3 `trace` feature.
    pub fn last_trace(&self) -> Option<TraceContext> {
        self.last_trace
    }

    /// The topology this client routes over.
    pub fn topology(&self) -> &FleetTopology {
        &self.topology
    }

    /// Marks a shard (by index) as degraded or healthy. Gossip feeds this:
    /// a shard whose `STATS` show open per-sketch breakers, or that
    /// refuses connections, gets demoted to last-resort until cleared.
    pub fn set_degraded(&mut self, shard: usize, degraded: bool) {
        if degraded {
            self.degraded.insert(shard);
        } else {
            self.degraded.remove(&shard);
        }
        self.counters
            .degraded_shards
            .set(self.degraded.len() as f64);
    }

    /// The replica candidates for `sketch` in the order this client would
    /// try them right now: affinity first, then ring order, unhealthy
    /// shards demoted to the back.
    pub fn candidates(&self, sketch: &str) -> Vec<usize> {
        let mut order = Vec::new();
        if let Some(&aff) = self.affinity.get(sketch) {
            order.push(aff);
        }
        for shard in self.topology.replicas(sketch) {
            if !order.contains(&shard) {
                order.push(shard);
            }
        }
        // Stable partition: healthy first, demoted (open breaker or
        // gossip-degraded) behind them — still tried, never skipped.
        let (healthy, demoted): (Vec<_>, Vec<_>) = order.into_iter().partition(|s| {
            !self.degraded.contains(s) && !self.breakers.breaker(&s.to_string()).is_open()
        });
        healthy.into_iter().chain(demoted).collect()
    }

    fn conn(&mut self, shard: usize) -> std::io::Result<&mut Connection> {
        if !self.conns.contains_key(&shard) {
            let addr = self.topology.shards.get(shard).copied().ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("no shard {shard} in topology"),
                )
            })?;
            let mut conn = Connection::connect_timeout(addr, self.cfg.timeout)?;
            if self.cfg.handshake {
                match conn.hello() {
                    Ok(_) => {}
                    // A pre-handshake (v1) peer answers `ERR proto` —
                    // that's a legal downgrade, not a failure.
                    Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {}
                    Err(e) => return Err(e),
                }
            }
            self.conns.insert(shard, conn);
        }
        Ok(self.conns.get_mut(&shard).expect("just inserted"))
    }

    /// Estimates `sql` with the named sketch, failing over across its
    /// replicas: one sweep over [`FleetClient::candidates`], dropping the
    /// connection and moving on when a replica is dead, busy, or doesn't
    /// hold the sketch (yet). Definitive errors — a query that won't parse
    /// anywhere — return immediately. On success the answering shard
    /// becomes the sketch's affinity. Returns the estimate and its
    /// `degraded` wire flag.
    pub fn estimate(&mut self, sketch: &str, sql: &str) -> std::io::Result<(f64, bool)> {
        self.counters.routed.inc();
        // One root trace covers the whole sweep: every shard tried (the
        // failed attempt and the failover that answered) parents its
        // server span under the same client span, so the aggregator can
        // stitch the full causal tree.
        let root = self.ids.mint();
        self.last_trace = Some(root);
        let candidates = self.candidates(sketch);
        let mut last_err: Option<std::io::Error> = None;
        for (attempt, shard) in candidates.iter().copied().enumerate() {
            if attempt > 0 {
                self.counters.retries.inc();
            }
            let breaker = self.breakers.breaker(&shard.to_string());
            let resp = match self.conn(shard) {
                Ok(conn) => {
                    // Attach the token only to peers that negotiated the
                    // v3 `trace` feature; older shards never see it.
                    let trace = conn
                        .handshake()
                        .is_some_and(|h| h.has_feature("trace"))
                        .then_some(root);
                    let req = Request::Estimate {
                        sketch: sketch.to_string(),
                        sql: sql.to_string(),
                        trace,
                    };
                    conn.roundtrip(&req, true)
                }
                Err(e) => Err(e),
            };
            // Flatten the two success variants into (value, degraded-flag)
            // before matching, so the flag survives the move.
            let resp = match resp {
                Ok(Response::Estimate(v)) => Ok(Ok((v, false))),
                Ok(Response::Degraded(v)) => Ok(Ok((v, true))),
                Ok(other) => Ok(Err(other)),
                Err(e) => Err(e),
            };
            match resp {
                Ok(Ok((v, degraded))) => {
                    breaker.record_success();
                    if attempt > 0 {
                        self.counters.failovers.inc();
                    }
                    self.affinity.insert(sketch.to_string(), shard);
                    return Ok((v, degraded));
                }
                Ok(Err(Response::Error { code, message })) => match code {
                    // Replica-local conditions: another copy may answer.
                    ErrorCode::UnknownSketch
                    | ErrorCode::NotReady
                    | ErrorCode::Timeout
                    | ErrorCode::Decode
                    | ErrorCode::Internal => {
                        breaker.record_failure();
                        last_err = Some(std::io::Error::new(
                            std::io::ErrorKind::NotFound,
                            format!("shard {shard}: {} {message}", code.as_str()),
                        ));
                    }
                    // Definitive: the query itself is bad everywhere.
                    _ => {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::InvalidInput,
                            format!("{} {message}", code.as_str()),
                        ));
                    }
                },
                Ok(Err(Response::Busy(m))) => {
                    // Overload, not ill health: don't trip the breaker.
                    last_err = Some(std::io::Error::new(
                        std::io::ErrorKind::WouldBlock,
                        format!("shard {shard} busy: {m}"),
                    ));
                }
                Ok(Err(other)) => {
                    breaker.record_failure();
                    self.conns.remove(&shard);
                    last_err = Some(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("shard {shard}: unexpected {other:?}"),
                    ));
                }
                Err(e) => {
                    // Dead or wedged: drop the pooled connection so the
                    // next attempt redials instead of reusing a corpse.
                    breaker.record_failure();
                    self.conns.remove(&shard);
                    last_err = Some(e);
                }
            }
        }
        self.counters.sweep_failures.inc();
        Err(last_err.unwrap_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("no replicas for sketch '{sketch}'"),
            )
        }))
    }

    /// [`FleetClient::estimate`] with retry-until-deadline: sweeps are
    /// repeated (with a short backoff) until one succeeds or `deadline`
    /// passes — the chaos tests' "zero failed-forever requests" contract.
    /// Definitive errors (bad query) still return immediately.
    pub fn estimate_with_deadline(
        &mut self,
        sketch: &str,
        sql: &str,
        deadline: Instant,
    ) -> std::io::Result<(f64, bool)> {
        loop {
            match self.estimate(sketch, sql) {
                Ok(v) => return Ok(v),
                Err(e) if e.kind() == std::io::ErrorKind::InvalidInput => return Err(e),
                Err(e) => {
                    if Instant::now() >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
            }
        }
    }

    /// Closes the pooled connection to `shard` (if any). The supervisor
    /// calls this after killing a shard so the next request redials.
    pub fn drop_connection(&mut self, shard: usize) {
        self.conns.remove(&shard);
    }
}
