//! The fleet tier: consistent-hash routing of sketch names across N
//! shards with R-way replication, snapshot-shipped bootstrap, health-aware
//! routing, and failover.
//!
//! Layers, bottom up:
//!
//! * [`HashRing`] ([`ring`]) — a deterministic consistent-hash ring over
//!   shard indices. Every process that knows the topology computes the
//!   same replica set for a sketch name, so routing needs no coordinator.
//! * [`FleetClient`] ([`client`]) — the high-level client: owns one
//!   [`crate::Connection`] per shard (lazily opened), routes each request
//!   to the sketch's replica set, retries across replicas on failure,
//!   remembers per-sketch affinity (the replica that answered last), and
//!   keeps a client-side circuit breaker per shard so a dead or degraded
//!   replica stops receiving first-choice traffic.
//! * [`Fleet`] ([`supervisor`]) — an in-process supervisor for tests and
//!   benches: starts N real TCP servers, deploys sketches by shipping
//!   `DSNP` snapshots over the wire (`SNAPSHOT` → `SYNC`), polls `STATS`
//!   for health gossip (per-sketch circuit-breaker gauges + connection
//!   refusals), kills/restarts shards, and re-replicates from the
//!   surviving copy after a loss.
//!
//! Replication is generation-keyed and newest-wins end to end: a shipped
//! blob carries the store generation it captured, adoption rejects stale
//! offers, and the checksum trailer means a corrupt transfer is
//! quarantined rather than adopted — a replica can lose a race but never
//! regress or adopt garbage.

pub mod client;
pub mod ring;
pub mod supervisor;

pub use client::{FleetClient, FleetClientConfig};
pub use ring::HashRing;
pub use supervisor::{Fleet, FleetConfig, ShardHealth};

/// The shared map of the fleet: every shard's address plus the
/// replication factor. Both [`FleetClient`] and [`Fleet`] derive routing
/// from this via [`HashRing`], so they always agree on who owns what.
#[derive(Debug, Clone)]
pub struct FleetTopology {
    /// Shard addresses, index-aligned with the ring's node indices.
    pub shards: Vec<std::net::SocketAddr>,
    /// Copies of each sketch (clamped to the shard count).
    pub replication: usize,
}

impl FleetTopology {
    /// Builds a topology; `replication` is clamped into `1..=shards.len()`.
    pub fn new(shards: Vec<std::net::SocketAddr>, replication: usize) -> Self {
        let replication = replication.clamp(1, shards.len().max(1));
        Self {
            shards,
            replication,
        }
    }

    /// The ring for this topology (stable for a fixed shard count).
    pub fn ring(&self) -> HashRing {
        HashRing::new(self.shards.len())
    }

    /// The replica set (shard indices, preference order) for a sketch.
    pub fn replicas(&self, sketch: &str) -> Vec<usize> {
        self.ring().replicas(sketch, self.replication)
    }
}
