//! A deterministic consistent-hash ring over shard indices.
//!
//! Each shard contributes `VNODES` points on a 64-bit ring, placed by
//! FNV-1a (the same hash the `DSNP` checksum trailer uses — one hash
//! function for the whole system). A sketch name hashes to a point; its
//! replica set is the next R *distinct* shards clockwise. Properties the
//! fleet relies on:
//!
//! * **Coordinator-free agreement** — placement depends only on the shard
//!   count and the name, so every client and every supervisor computes the
//!   same replica set without talking to each other.
//! * **Stability** — growing the fleet from N to N+1 shards moves only
//!   ~1/(N+1) of the keyspace; everything else keeps its replicas (the
//!   classic consistent-hashing argument, tested below).
//! * **Balance** — 64 virtual nodes per shard keep the keyspace shares
//!   within a small factor of each other (tested below).

use ds_core::snapshot::checksum;

/// Virtual nodes per shard: enough to balance small fleets without making
/// ring construction measurable.
const VNODES: usize = 64;

/// Ring point hash: FNV-1a (the workspace hash) finished with a
/// splitmix64-style avalanche. Raw FNV keeps nearly-identical short
/// strings ("shard-0|vnode-1" vs "shard-0|vnode-2") too close together on
/// the ring, which wrecks both balance and the move-little-on-growth
/// property; the finalizer diffuses every input bit across the point.
fn ring_hash(key: &str) -> u64 {
    let mut h = checksum(key.as_bytes());
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// The ring: sorted `(point, shard)` pairs.
#[derive(Debug, Clone)]
pub struct HashRing {
    points: Vec<(u64, usize)>,
    nodes: usize,
}

impl HashRing {
    /// Builds the ring for `nodes` shards (indices `0..nodes`).
    pub fn new(nodes: usize) -> Self {
        let mut points = Vec::with_capacity(nodes * VNODES);
        for node in 0..nodes {
            for vnode in 0..VNODES {
                let key = format!("shard-{node}|vnode-{vnode}");
                points.push((ring_hash(&key), node));
            }
        }
        points.sort_unstable();
        Self { points, nodes }
    }

    /// Number of shards on the ring.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The shard owning `key`'s primary copy.
    pub fn primary(&self, key: &str) -> Option<usize> {
        self.replicas(key, 1).first().copied()
    }

    /// The first `r` *distinct* shards clockwise from `key`'s point, in
    /// preference order. Fewer than `r` come back only when the fleet
    /// itself is smaller than `r`.
    pub fn replicas(&self, key: &str, r: usize) -> Vec<usize> {
        if self.points.is_empty() || r == 0 {
            return Vec::new();
        }
        let want = r.min(self.nodes);
        let h = ring_hash(key);
        let start = self.points.partition_point(|&(p, _)| p < h);
        let mut out = Vec::with_capacity(want);
        for i in 0..self.points.len() {
            let (_, node) = self.points[(start + i) % self.points.len()];
            if !out.contains(&node) {
                out.push(node);
                if out.len() == want {
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn replica_sets_are_deterministic_and_distinct() {
        let ring = HashRing::new(5);
        for key in ["imdb", "tpch", "a", "some-very-long-sketch-name"] {
            let a = ring.replicas(key, 3);
            let b = HashRing::new(5).replicas(key, 3);
            assert_eq!(a, b, "two independently built rings must agree");
            assert_eq!(a.len(), 3);
            let mut sorted = a.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "replicas must be distinct shards");
            assert_eq!(a[0], ring.primary(key).unwrap());
        }
        // R capped by fleet size; degenerate inputs behave.
        assert_eq!(ring.replicas("imdb", 99).len(), 5);
        assert!(HashRing::new(0).replicas("imdb", 2).is_empty());
        assert!(ring.replicas("imdb", 0).is_empty());
    }

    #[test]
    fn keyspace_is_balanced_across_shards() {
        let ring = HashRing::new(4);
        let mut counts: HashMap<usize, usize> = HashMap::new();
        for i in 0..4000 {
            let primary = ring.primary(&format!("sketch-{i}")).unwrap();
            *counts.entry(primary).or_default() += 1;
        }
        let (min, max) = (
            counts.values().copied().min().unwrap(),
            counts.values().copied().max().unwrap(),
        );
        assert_eq!(counts.len(), 4, "every shard owns part of the keyspace");
        // With 64 vnodes the spread stays well under 2x in practice.
        assert!(
            max < min * 3,
            "keyspace imbalance: min={min} max={max} ({counts:?})"
        );
    }

    #[test]
    fn growing_the_fleet_moves_little_of_the_keyspace() {
        let before = HashRing::new(4);
        let after = HashRing::new(5);
        let total = 2000;
        let moved = (0..total)
            .filter(|i| {
                let key = format!("sketch-{i}");
                before.primary(&key) != after.primary(&key)
            })
            .count();
        // Ideal is 1/5 of keys; allow slack for vnode placement noise.
        assert!(
            moved < total * 2 / 5,
            "adding one shard moved {moved}/{total} primaries"
        );
    }
}
