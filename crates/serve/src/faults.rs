//! Deterministic fault injection for the serving path.
//!
//! Production code never branches on faults: every hook is a cheap
//! `Option<Arc<FaultInjector>>` check that is `None` in real deployments,
//! and even a configured injector is inert in release builds —
//! [`FaultInjector::armed`] is `false` unless `debug_assertions` are on,
//! so the degradation tests can wire failures through the *real* serving
//! code without leaving a runtime injection surface in optimized builds.
//!
//! Faults are seeded and deterministic: the same seed and the same call
//! sequence produce the same fault schedule, so a failing degradation test
//! replays exactly.
//!
//! Supported faults:
//!
//! * **decode flips** — a per-sketch probability of downgrading a
//!   successful forward pass into [`ds_est::EstimateError::Decode`], as if
//!   the model bytes had rotted in memory;
//! * **forward delays** — a probability of stalling a coalesced forward
//!   pass long enough to blow request deadlines;
//! * **poisoned sketches** — names whose every estimate fails with an
//!   execution error before reaching the model;
//! * **snapshot write faults** — a FIFO queue of
//!   [`ds_core::snapshot::WriteFault`]s (truncations, bit flips, crashes
//!   before rename) for persistence tests to pull while exercising the
//!   store's snapshot writer.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Mutex;
use std::time::Duration;

use ds_core::snapshot::WriteFault;

struct FaultState {
    rng: u64,
    decode_flip: HashMap<String, f64>,
    forward_delay: Option<(Duration, f64)>,
    poisoned: HashSet<String>,
    write_faults: VecDeque<WriteFault>,
    chaos_kills: VecDeque<usize>,
}

/// A seeded, thread-safe fault plan shared between a server, its batcher,
/// and the test driving them. See the module docs for the fault kinds.
pub struct FaultInjector {
    state: Mutex<FaultState>,
}

impl FaultInjector {
    /// Creates an injector with a deterministic seed. A zero seed is
    /// remapped (xorshift has a zero fixed point).
    pub fn new(seed: u64) -> Self {
        Self {
            state: Mutex::new(FaultState {
                rng: if seed == 0 {
                    0x9e37_79b9_7f4a_7c15
                } else {
                    seed
                },
                decode_flip: HashMap::new(),
                forward_delay: None,
                poisoned: HashSet::new(),
                write_faults: VecDeque::new(),
                chaos_kills: VecDeque::new(),
            }),
        }
    }

    /// Whether injected faults fire at all. Always `false` in release
    /// builds: an injector can be configured and passed around, but every
    /// draw reports "no fault".
    pub fn armed() -> bool {
        cfg!(debug_assertions)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultState> {
        // A panic while holding the lock only happens in tests; the plan
        // is still usable afterwards.
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// One xorshift64* draw in `[0, 1)`.
    fn draw(state: &mut FaultState) -> f64 {
        let mut x = state.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        state.rng = x;
        (x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Configures a probability of downgrading successful estimates against
    /// `sketch` into decode errors. `rate` is clamped to `[0, 1]`.
    pub fn flip_decode(&self, sketch: &str, rate: f64) {
        self.lock()
            .decode_flip
            .insert(sketch.to_string(), rate.clamp(0.0, 1.0));
    }

    /// Draws whether this request's successful estimate should be flipped
    /// into a decode error.
    pub fn should_flip_decode(&self, sketch: &str) -> bool {
        if !Self::armed() {
            return false;
        }
        let mut st = self.lock();
        let Some(&rate) = st.decode_flip.get(sketch) else {
            return false;
        };
        Self::draw(&mut st) < rate
    }

    /// Configures a probability of delaying each coalesced forward pass by
    /// `delay` (used to force deadline misses deterministically).
    pub fn delay_forwards(&self, delay: Duration, rate: f64) {
        self.lock().forward_delay = Some((delay, rate.clamp(0.0, 1.0)));
    }

    /// Draws the delay (if any) to apply to the forward pass starting now.
    pub fn forward_delay(&self) -> Option<Duration> {
        if !Self::armed() {
            return None;
        }
        let mut st = self.lock();
        let (delay, rate) = st.forward_delay?;
        (Self::draw(&mut st) < rate).then_some(delay)
    }

    /// Marks `sketch` as poisoned: every estimate against it fails before
    /// the forward pass, as if the in-memory model were corrupt.
    pub fn poison(&self, sketch: &str) {
        self.lock().poisoned.insert(sketch.to_string());
    }

    /// Clears a poison mark, letting the sketch serve again.
    pub fn heal(&self, sketch: &str) {
        self.lock().poisoned.remove(sketch);
    }

    /// Whether `sketch` is currently poisoned (and faults are armed).
    pub fn is_poisoned(&self, sketch: &str) -> bool {
        Self::armed() && self.lock().poisoned.contains(sketch)
    }

    /// Queues one snapshot write fault; persistence tests pull these with
    /// [`FaultInjector::next_write_fault`] while driving the store's
    /// snapshot writer.
    pub fn push_write_fault(&self, fault: WriteFault) {
        self.lock().write_faults.push_back(fault);
    }

    /// Pops the next queued snapshot write fault, or a no-op fault when the
    /// queue is empty or faults are disarmed.
    pub fn next_write_fault(&self) -> WriteFault {
        if !Self::armed() {
            return WriteFault::none();
        }
        self.lock().write_faults.pop_front().unwrap_or_default()
    }

    /// Queues a chaos kill of the given fleet shard. Unlike the in-process
    /// faults above, the chaos schedule is **not** gated by
    /// [`FaultInjector::armed`]: it models *external* process death (a
    /// machine loss the supervisor reacts to), not a code-path injection,
    /// and the fleet chaos benchmark runs in release builds. The injector
    /// only carries the deterministic schedule; the driver does the
    /// killing.
    pub fn schedule_chaos_kill(&self, shard: usize) {
        self.lock().chaos_kills.push_back(shard);
    }

    /// Pops the next scheduled chaos kill, if any. Works in release builds
    /// (see [`FaultInjector::schedule_chaos_kill`]).
    pub fn next_chaos_kill(&self) -> Option<usize> {
        self.lock().chaos_kills.pop_front()
    }

    /// A seeded draw of a shard index in `0..n` — for chaos drivers that
    /// want the victim chosen reproducibly rather than scripted. Also not
    /// gated by [`FaultInjector::armed`].
    pub fn draw_shard(&self, n: usize) -> usize {
        if n == 0 {
            return 0;
        }
        let mut st = self.lock();
        (Self::draw(&mut st) * n as f64) as usize % n
    }

    /// Drops every configured fault, returning the injector to a clean
    /// pass-through state (the RNG keeps its position).
    pub fn clear(&self) {
        let mut st = self.lock();
        st.decode_flip.clear();
        st.forward_delay = None;
        st.poisoned.clear();
        st.write_faults.clear();
        st.chaos_kills.clear();
    }
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.lock();
        f.debug_struct("FaultInjector")
            .field("armed", &Self::armed())
            .field("decode_flip", &st.decode_flip)
            .field("forward_delay", &st.forward_delay)
            .field("poisoned", &st.poisoned)
            .field("queued_write_faults", &st.write_faults.len())
            .field("queued_chaos_kills", &st.chaos_kills.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_replays_the_same_fault_schedule() {
        let a = FaultInjector::new(42);
        let b = FaultInjector::new(42);
        a.flip_decode("s", 0.5);
        b.flip_decode("s", 0.5);
        let seq_a: Vec<bool> = (0..64).map(|_| a.should_flip_decode("s")).collect();
        let seq_b: Vec<bool> = (0..64).map(|_| b.should_flip_decode("s")).collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.iter().any(|&f| f), "rate 0.5 never fired in 64 draws");
        assert!(!seq_a.iter().all(|&f| f), "rate 0.5 always fired");
    }

    #[test]
    fn rate_extremes_are_deterministic() {
        let f = FaultInjector::new(7);
        f.flip_decode("always", 1.0);
        f.flip_decode("never", 0.0);
        for _ in 0..32 {
            assert!(f.should_flip_decode("always"));
            assert!(!f.should_flip_decode("never"));
            assert!(!f.should_flip_decode("unconfigured"));
        }
    }

    #[test]
    fn poison_and_heal_toggle_per_sketch() {
        let f = FaultInjector::new(1);
        assert!(!f.is_poisoned("imdb"));
        f.poison("imdb");
        assert_eq!(f.is_poisoned("imdb"), FaultInjector::armed());
        assert!(!f.is_poisoned("other"));
        f.heal("imdb");
        assert!(!f.is_poisoned("imdb"));
    }

    #[test]
    fn write_faults_queue_fifo_and_default_to_none() {
        let f = FaultInjector::new(1);
        assert!(f.next_write_fault().is_none());
        f.push_write_fault(WriteFault {
            truncate_at: Some(3),
            ..WriteFault::none()
        });
        f.push_write_fault(WriteFault {
            crash_before_rename: true,
            ..WriteFault::none()
        });
        if FaultInjector::armed() {
            assert_eq!(f.next_write_fault().truncate_at, Some(3));
            assert!(f.next_write_fault().crash_before_rename);
        }
        assert!(f.next_write_fault().is_none());
    }

    #[test]
    fn chaos_schedule_works_even_when_disarmed() {
        // External process death is not an in-process injection: the
        // schedule must survive release builds, where armed() is false.
        let f = FaultInjector::new(5);
        assert!(f.next_chaos_kill().is_none());
        f.schedule_chaos_kill(2);
        f.schedule_chaos_kill(0);
        assert_eq!(f.next_chaos_kill(), Some(2));
        assert_eq!(f.next_chaos_kill(), Some(0));
        assert!(f.next_chaos_kill().is_none());
        // Seeded victim draws are reproducible and in range.
        let a = FaultInjector::new(11);
        let b = FaultInjector::new(11);
        let da: Vec<usize> = (0..16).map(|_| a.draw_shard(4)).collect();
        let db: Vec<usize> = (0..16).map(|_| b.draw_shard(4)).collect();
        assert_eq!(da, db);
        assert!(da.iter().all(|&s| s < 4));
        assert_eq!(a.draw_shard(0), 0);
    }

    #[test]
    fn clear_returns_to_pass_through() {
        let f = FaultInjector::new(9);
        f.flip_decode("s", 1.0);
        f.poison("s");
        f.delay_forwards(Duration::from_millis(5), 1.0);
        f.push_write_fault(WriteFault {
            truncate_at: Some(0),
            ..WriteFault::none()
        });
        f.clear();
        assert!(!f.should_flip_decode("s"));
        assert!(!f.is_poisoned("s"));
        assert!(f.forward_delay().is_none());
        assert!(f.next_write_fault().is_none());
    }
}
