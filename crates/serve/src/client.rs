//! A minimal blocking client for the serve protocol — used by the
//! integration tests, the throughput bench, and `serve_demo`. Beyond the
//! raw [`Response`]-returning calls it offers typed accessors that parse
//! the wire payloads into structs ([`Client::metrics_snapshot`],
//! [`Client::info_card`], [`Client::stats`], [`Client::trace`]).

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use ds_obs::PromSample;

use crate::metrics::{MetricsSnapshot, RequestTimeline};
use crate::protocol::{format_request, parse_response, Request, Response};

/// The `INFO` summary card parsed back into fields (client side).
#[derive(Debug, Clone, PartialEq)]
pub struct InfoCard {
    /// Source database name.
    pub database: String,
    /// Tables in the featurization vocabulary.
    pub tables: u64,
    /// Joins in the vocabulary.
    pub joins: u64,
    /// Predicate columns in the vocabulary.
    pub predicate_columns: u64,
    /// MSCN hidden width.
    pub hidden_units: u64,
    /// Scalar model parameters.
    pub model_params: u64,
    /// Total materialized sample rows across tables.
    pub sample_rows: u64,
    /// Nominal sample size per table.
    pub sample_size: u64,
    /// Serialized size in MiB (two-decimal precision on the wire).
    pub footprint_mib: f64,
    /// Largest cardinality representable by the label normalizer.
    pub max_label: u64,
}

impl InfoCard {
    /// Parses the `INFO` wire line (the `SketchInfo` display form):
    /// `sketch[<db>]: <t> tables, <j> joins, … ; max label <n>`.
    pub fn from_wire(s: &str) -> Option<Self> {
        let rest = s.strip_prefix("sketch[")?;
        let (database, rest) = rest.split_once("]:")?;
        // All remaining numbers appear in a fixed order; pull out every
        // maximal digit/dot run and map positionally.
        let mut nums = Vec::new();
        let mut cur = String::new();
        for c in rest.chars().chain(std::iter::once(' ')) {
            if c.is_ascii_digit() || c == '.' {
                cur.push(c);
            } else if !cur.is_empty() {
                nums.push(std::mem::take(&mut cur).parse::<f64>().ok()?);
            }
        }
        if nums.len() != 9 {
            return None;
        }
        Some(Self {
            database: database.to_string(),
            tables: nums[0] as u64,
            joins: nums[1] as u64,
            predicate_columns: nums[2] as u64,
            hidden_units: nums[3] as u64,
            model_params: nums[4] as u64,
            sample_rows: nums[5] as u64,
            sample_size: nums[6] as u64,
            footprint_mib: nums[7],
            max_label: nums[8] as u64,
        })
    }
}

/// One connection to a sketch server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream)
    }

    /// Connects with a connect + read deadline, so tests never hang on a
    /// wedged server.
    pub fn connect_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> std::io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address"))?;
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        Self::from_stream(stream)
    }

    fn from_stream(stream: TcpStream) -> std::io::Result<Self> {
        // One-line request/response roundtrips die under Nagle + delayed ACK.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
        })
    }

    fn roundtrip(&mut self, req: &Request, estimate: bool) -> std::io::Result<Response> {
        writeln!(self.writer, "{}", format_request(req))?;
        self.writer.flush()?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        parse_response(&line, estimate)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Sends `ESTIMATE` and returns the raw response ([`Response::Estimate`]
    /// on success, or the typed `ERR`/`BUSY`).
    pub fn estimate(&mut self, sketch: &str, sql: &str) -> std::io::Result<Response> {
        self.roundtrip(
            &Request::Estimate {
                sketch: sketch.to_string(),
                sql: sql.to_string(),
            },
            true,
        )
    }

    /// `ESTIMATE` and unwrap the value; any non-`OK` response becomes an
    /// `InvalidData` error carrying its wire line. Degraded answers
    /// (fallback-served) unwrap like healthy ones — use
    /// [`Client::estimate_flagged`] to observe the flag.
    pub fn estimate_value(&mut self, sketch: &str, sql: &str) -> std::io::Result<f64> {
        self.estimate_flagged(sketch, sql).map(|(v, _)| v)
    }

    /// `ESTIMATE` and unwrap the value together with the `degraded` flag:
    /// `true` when the fallback estimator answered because the sketch is
    /// unhealthy (open circuit breaker, poisoned model).
    pub fn estimate_flagged(&mut self, sketch: &str, sql: &str) -> std::io::Result<(f64, bool)> {
        match self.estimate(sketch, sql)? {
            Response::Estimate(v) => Ok((v, false)),
            Response::Degraded(v) => Ok((v, true)),
            other => Err(invalid_payload(&other)),
        }
    }

    /// Sends `INFO <sketch>`.
    pub fn info(&mut self, sketch: &str) -> std::io::Result<Response> {
        self.roundtrip(
            &Request::Info {
                sketch: sketch.to_string(),
            },
            false,
        )
    }

    /// Sends `LIST`.
    pub fn list(&mut self) -> std::io::Result<Response> {
        self.roundtrip(&Request::List, false)
    }

    /// Sends `FEEDBACK`: estimates `sql` (bit-identical to `ESTIMATE`) and
    /// records its q-error against the observed true cardinality `actual`
    /// in the server's drift monitor. Returns the raw response.
    pub fn feedback(&mut self, sketch: &str, actual: u64, sql: &str) -> std::io::Result<Response> {
        self.roundtrip(
            &Request::Feedback {
                sketch: sketch.to_string(),
                actual,
                sql: sql.to_string(),
            },
            true,
        )
    }

    /// [`Client::feedback`] and unwrap the estimate value (degraded
    /// answers included — the server skips monitor recording for them).
    pub fn feedback_value(&mut self, sketch: &str, actual: u64, sql: &str) -> std::io::Result<f64> {
        match self.feedback(sketch, actual, sql)? {
            Response::Estimate(v) | Response::Degraded(v) => Ok(v),
            other => Err(invalid_payload(&other)),
        }
    }

    /// Sends `METRICS`.
    pub fn metrics(&mut self) -> std::io::Result<Response> {
        self.roundtrip(&Request::Metrics, false)
    }

    /// Sends `METRICS` and parses the payload into a typed snapshot.
    pub fn metrics_snapshot(&mut self) -> std::io::Result<MetricsSnapshot> {
        match self.metrics()? {
            Response::Text(t) => MetricsSnapshot::from_wire(&t)
                .ok_or_else(|| invalid_data(format!("bad METRICS payload '{t}'"))),
            other => Err(invalid_payload(&other)),
        }
    }

    /// Sends `INFO` and parses the payload into a typed card.
    pub fn info_card(&mut self, sketch: &str) -> std::io::Result<InfoCard> {
        match self.info(sketch)? {
            Response::Text(t) => InfoCard::from_wire(&t)
                .ok_or_else(|| invalid_data(format!("bad INFO payload '{t}'"))),
            other => Err(invalid_payload(&other)),
        }
    }

    /// Sends `STATS` and parses the Prometheus exposition into samples.
    /// The server escapes newlines as literal `\n` to fit the one-line
    /// wire; this reverses that before parsing.
    pub fn stats(&mut self) -> std::io::Result<Vec<PromSample>> {
        match self.roundtrip(&Request::Stats, false)? {
            Response::Text(t) => {
                let doc = t.replace("\\n", "\n");
                ds_obs::prom::parse_text(&doc)
                    .ok_or_else(|| invalid_data(format!("bad STATS payload '{t}'")))
            }
            other => Err(invalid_payload(&other)),
        }
    }

    /// Sends `TRACE` and parses the slow-request exemplars, oldest first.
    pub fn trace(&mut self) -> std::io::Result<Vec<RequestTimeline>> {
        match self.roundtrip(&Request::Trace, false)? {
            Response::Text(t) => {
                if t.trim() == "(none)" {
                    return Ok(Vec::new());
                }
                t.split(';')
                    .map(|rec| {
                        RequestTimeline::from_wire(rec)
                            .ok_or_else(|| invalid_data(format!("bad TRACE record '{rec}'")))
                    })
                    .collect()
            }
            other => Err(invalid_payload(&other)),
        }
    }

    /// Sends `QUIT` and consumes the client.
    pub fn quit(mut self) -> std::io::Result<()> {
        match self.roundtrip(&Request::Quit, false)? {
            Response::Bye => Ok(()),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("expected BYE, got {other:?}"),
            )),
        }
    }

    /// Sends a raw line (possibly malformed — for protocol tests) and
    /// returns the raw response line.
    pub fn send_raw(&mut self, line: &str) -> std::io::Result<String> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(resp.trim_end().to_string())
    }
}

fn invalid_data(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

fn invalid_payload(resp: &Response) -> std::io::Error {
    invalid_data(crate::protocol::format_response(resp))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn info_card_parses_the_sketch_info_display_form() {
        // Build the wire line from the real Display impl so the parser
        // can never drift away from the server's format.
        let info = ds_core::sketch::SketchInfo {
            database: "imdb_v2".to_string(),
            tables: 6,
            joins: 5,
            predicate_columns: 9,
            hidden_units: 64,
            model_params: 12345,
            sample_size: 16,
            sample_rows: 96,
            footprint_bytes: 125_829, // 0.12 MiB
            max_label: 987654,
        };
        let card = InfoCard::from_wire(&info.to_string()).expect("parse");
        assert_eq!(card.database, "imdb_v2");
        assert_eq!(card.tables, 6);
        assert_eq!(card.joins, 5);
        assert_eq!(card.predicate_columns, 9);
        assert_eq!(card.hidden_units, 64);
        assert_eq!(card.model_params, 12345);
        assert_eq!(card.sample_rows, 96);
        assert_eq!(card.sample_size, 16);
        assert!((card.footprint_mib - 0.12).abs() < 1e-9);
        assert_eq!(card.max_label, 987654);
        assert!(InfoCard::from_wire("not a card").is_none());
        assert!(InfoCard::from_wire("sketch[x]: truncated").is_none());
    }
}
