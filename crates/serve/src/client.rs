//! A minimal blocking client for the serve protocol — used by the
//! integration tests, the throughput bench, and `serve_demo`.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::protocol::{format_request, parse_response, Request, Response};

/// One connection to a sketch server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Self::from_stream(stream)
    }

    /// Connects with a connect + read deadline, so tests never hang on a
    /// wedged server.
    pub fn connect_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> std::io::Result<Self> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address"))?;
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        Self::from_stream(stream)
    }

    fn from_stream(stream: TcpStream) -> std::io::Result<Self> {
        // One-line request/response roundtrips die under Nagle + delayed ACK.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer,
        })
    }

    fn roundtrip(&mut self, req: &Request, estimate: bool) -> std::io::Result<Response> {
        writeln!(self.writer, "{}", format_request(req))?;
        self.writer.flush()?;
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        parse_response(&line, estimate)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Sends `ESTIMATE` and returns the raw response ([`Response::Estimate`]
    /// on success, or the typed `ERR`/`BUSY`).
    pub fn estimate(&mut self, sketch: &str, sql: &str) -> std::io::Result<Response> {
        self.roundtrip(
            &Request::Estimate {
                sketch: sketch.to_string(),
                sql: sql.to_string(),
            },
            true,
        )
    }

    /// `ESTIMATE` and unwrap the value; any non-`OK` response becomes an
    /// `InvalidData` error carrying its wire line.
    pub fn estimate_value(&mut self, sketch: &str, sql: &str) -> std::io::Result<f64> {
        match self.estimate(sketch, sql)? {
            Response::Estimate(v) => Ok(v),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                crate::protocol::format_response(&other),
            )),
        }
    }

    /// Sends `INFO <sketch>`.
    pub fn info(&mut self, sketch: &str) -> std::io::Result<Response> {
        self.roundtrip(
            &Request::Info {
                sketch: sketch.to_string(),
            },
            false,
        )
    }

    /// Sends `LIST`.
    pub fn list(&mut self) -> std::io::Result<Response> {
        self.roundtrip(&Request::List, false)
    }

    /// Sends `METRICS`.
    pub fn metrics(&mut self) -> std::io::Result<Response> {
        self.roundtrip(&Request::Metrics, false)
    }

    /// Sends `QUIT` and consumes the client.
    pub fn quit(mut self) -> std::io::Result<()> {
        match self.roundtrip(&Request::Quit, false)? {
            Response::Bye => Ok(()),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("expected BYE, got {other:?}"),
            )),
        }
    }

    /// Sends a raw line (possibly malformed — for protocol tests) and
    /// returns the raw response line.
    pub fn send_raw(&mut self, line: &str) -> std::io::Result<String> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut resp = String::new();
        let n = self.reader.read_line(&mut resp)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(resp.trim_end().to_string())
    }
}
