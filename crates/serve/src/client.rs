//! The single-node convenience client — a thin wrapper over
//! [`Connection`].
//!
//! **Deprecated in spirit, kept for compatibility:** new code should use
//! [`Connection`] (wire framing) directly, or [`crate::fleet::FleetClient`]
//! (routing, retry-with-failover, per-sketch affinity) when talking to
//! more than one shard. `Client` remains so every existing example, test,
//! and bench compiles unchanged; it adds nothing the two layers don't
//! already provide beyond typed payload accessors
//! ([`Client::metrics_snapshot`], [`Client::info_card`], [`Client::stats`],
//! [`Client::trace`]).

use std::net::ToSocketAddrs;
use std::time::Duration;

use ds_obs::{PromFamily, PromSample};

use crate::connection::{invalid_data, invalid_payload, Connection, Handshake};
use crate::metrics::{MetricsSnapshot, RequestTimeline};
use crate::protocol::{Request, Response};

/// The `INFO` summary card parsed back into fields (client side).
#[derive(Debug, Clone, PartialEq)]
pub struct InfoCard {
    /// Source database name.
    pub database: String,
    /// Tables in the featurization vocabulary.
    pub tables: u64,
    /// Joins in the vocabulary.
    pub joins: u64,
    /// Predicate columns in the vocabulary.
    pub predicate_columns: u64,
    /// MSCN hidden width.
    pub hidden_units: u64,
    /// Scalar model parameters.
    pub model_params: u64,
    /// Total materialized sample rows across tables.
    pub sample_rows: u64,
    /// Nominal sample size per table.
    pub sample_size: u64,
    /// Serialized size in MiB (two-decimal precision on the wire).
    pub footprint_mib: f64,
    /// Largest cardinality representable by the label normalizer.
    pub max_label: u64,
}

impl InfoCard {
    /// Parses the `INFO` wire line (the `SketchInfo` display form):
    /// `sketch[<db>]: <t> tables, <j> joins, … ; max label <n>`.
    pub fn from_wire(s: &str) -> Option<Self> {
        let rest = s.strip_prefix("sketch[")?;
        let (database, rest) = rest.split_once("]:")?;
        // All remaining numbers appear in a fixed order; pull out every
        // maximal digit/dot run and map positionally.
        let mut nums = Vec::new();
        let mut cur = String::new();
        for c in rest.chars().chain(std::iter::once(' ')) {
            if c.is_ascii_digit() || c == '.' {
                cur.push(c);
            } else if !cur.is_empty() {
                nums.push(std::mem::take(&mut cur).parse::<f64>().ok()?);
            }
        }
        if nums.len() != 9 {
            return None;
        }
        Some(Self {
            database: database.to_string(),
            tables: nums[0] as u64,
            joins: nums[1] as u64,
            predicate_columns: nums[2] as u64,
            hidden_units: nums[3] as u64,
            model_params: nums[4] as u64,
            sample_rows: nums[5] as u64,
            sample_size: nums[6] as u64,
            footprint_mib: nums[7],
            max_label: nums[8] as u64,
        })
    }
}

/// One connection to a sketch server, with typed single-node accessors.
/// Prefer [`Connection`] or [`crate::fleet::FleetClient`] in new code.
pub struct Client {
    conn: Connection,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Ok(Self {
            conn: Connection::connect(addr)?,
        })
    }

    /// Connects with a connect + read deadline, so tests never hang on a
    /// wedged server.
    pub fn connect_timeout(addr: impl ToSocketAddrs, timeout: Duration) -> std::io::Result<Self> {
        Ok(Self {
            conn: Connection::connect_timeout(addr, timeout)?,
        })
    }

    /// Negotiates the protocol version and feature flags (optional — a
    /// client that never calls this speaks v1).
    pub fn hello(&mut self) -> std::io::Result<Handshake> {
        self.conn.hello()
    }

    /// The underlying wire connection, for callers mixing layers.
    pub fn connection(&mut self) -> &mut Connection {
        &mut self.conn
    }

    /// Sends `ESTIMATE` and returns the raw response ([`Response::Estimate`]
    /// on success, or the typed `ERR`/`BUSY`).
    pub fn estimate(&mut self, sketch: &str, sql: &str) -> std::io::Result<Response> {
        self.conn.roundtrip(
            &Request::Estimate {
                sketch: sketch.to_string(),
                sql: sql.to_string(),
                trace: None,
            },
            true,
        )
    }

    /// `ESTIMATE` and unwrap the value; any non-`OK` response becomes an
    /// `InvalidData` error carrying its wire line. Degraded answers
    /// (fallback-served) unwrap like healthy ones — use
    /// [`Client::estimate_flagged`] to observe the flag.
    pub fn estimate_value(&mut self, sketch: &str, sql: &str) -> std::io::Result<f64> {
        self.estimate_flagged(sketch, sql).map(|(v, _)| v)
    }

    /// `ESTIMATE` and unwrap the value together with the `degraded` flag:
    /// `true` when the fallback estimator answered because the sketch is
    /// unhealthy (open circuit breaker, poisoned model).
    pub fn estimate_flagged(&mut self, sketch: &str, sql: &str) -> std::io::Result<(f64, bool)> {
        match self.estimate(sketch, sql)? {
            Response::Estimate(v) => Ok((v, false)),
            Response::Degraded(v) => Ok((v, true)),
            other => Err(invalid_payload(&other)),
        }
    }

    /// Sends `INFO <sketch>`.
    pub fn info(&mut self, sketch: &str) -> std::io::Result<Response> {
        self.conn.roundtrip(
            &Request::Info {
                sketch: sketch.to_string(),
            },
            false,
        )
    }

    /// Sends `LIST`.
    pub fn list(&mut self) -> std::io::Result<Response> {
        self.conn.roundtrip(&Request::List, false)
    }

    /// Sends `LIFECYCLE <sketch>` — the retrain-and-hot-swap lifecycle
    /// status line for one sketch.
    pub fn lifecycle(&mut self, sketch: &str) -> std::io::Result<Response> {
        self.conn.roundtrip(
            &Request::Lifecycle {
                sketch: sketch.to_string(),
            },
            false,
        )
    }

    /// Sends `FEEDBACK`: estimates `sql` (bit-identical to `ESTIMATE`) and
    /// records its q-error against the observed true cardinality `actual`
    /// in the server's drift monitor. Returns the raw response.
    pub fn feedback(&mut self, sketch: &str, actual: u64, sql: &str) -> std::io::Result<Response> {
        self.conn.roundtrip(
            &Request::Feedback {
                sketch: sketch.to_string(),
                actual,
                sql: sql.to_string(),
                trace: None,
            },
            true,
        )
    }

    /// [`Client::feedback`] and unwrap the estimate value (degraded
    /// answers included — the server skips monitor recording for them).
    pub fn feedback_value(&mut self, sketch: &str, actual: u64, sql: &str) -> std::io::Result<f64> {
        match self.feedback(sketch, actual, sql)? {
            Response::Estimate(v) | Response::Degraded(v) => Ok(v),
            other => Err(invalid_payload(&other)),
        }
    }

    /// Sends `METRICS`.
    pub fn metrics(&mut self) -> std::io::Result<Response> {
        self.conn.roundtrip(&Request::Metrics, false)
    }

    /// Sends `METRICS` and parses the payload into a typed snapshot.
    pub fn metrics_snapshot(&mut self) -> std::io::Result<MetricsSnapshot> {
        match self.metrics()? {
            Response::Text(t) => MetricsSnapshot::from_wire(&t)
                .ok_or_else(|| invalid_data(format!("bad METRICS payload '{t}'"))),
            other => Err(invalid_payload(&other)),
        }
    }

    /// Sends `INFO` and parses the payload into a typed card.
    pub fn info_card(&mut self, sketch: &str) -> std::io::Result<InfoCard> {
        match self.info(sketch)? {
            Response::Text(t) => InfoCard::from_wire(&t)
                .ok_or_else(|| invalid_data(format!("bad INFO payload '{t}'"))),
            other => Err(invalid_payload(&other)),
        }
    }

    /// Sends `STATS` and parses the Prometheus exposition into samples.
    /// The server escapes newlines as literal `\n` to fit the one-line
    /// wire; this reverses that before parsing.
    pub fn stats(&mut self) -> std::io::Result<Vec<PromSample>> {
        match self.conn.roundtrip(&Request::Stats, false)? {
            Response::Text(t) => {
                let doc = t.replace("\\n", "\n");
                ds_obs::prom::parse_text(&doc)
                    .ok_or_else(|| invalid_data(format!("bad STATS payload '{t}'")))
            }
            other => Err(invalid_payload(&other)),
        }
    }

    /// Sends `STATS` and parses the exposition into typed metric
    /// families — counters, gauges, summaries, histograms — via
    /// [`ds_obs::parse_families`]. Prefer this over grepping the raw
    /// text: `families.iter().find(|f| f.name == "ds_serve_requests")`
    /// then [`PromFamily::scalar`]/[`PromFamily::suffixed`].
    pub fn stats_families(&mut self) -> std::io::Result<Vec<PromFamily>> {
        match self.conn.roundtrip(&Request::Stats, false)? {
            Response::Text(t) => {
                let doc = t.replace("\\n", "\n");
                ds_obs::parse_families(&doc)
                    .ok_or_else(|| invalid_data(format!("bad STATS payload '{t}'")))
            }
            other => Err(invalid_payload(&other)),
        }
    }

    /// Sends `TRACE` and parses the slow-request exemplars, oldest first.
    pub fn trace(&mut self) -> std::io::Result<Vec<RequestTimeline>> {
        match self.conn.roundtrip(&Request::Trace, false)? {
            Response::Text(t) => {
                if t.trim() == "(none)" {
                    return Ok(Vec::new());
                }
                t.split(';')
                    .map(|rec| {
                        RequestTimeline::from_wire(rec)
                            .ok_or_else(|| invalid_data(format!("bad TRACE record '{rec}'")))
                    })
                    .collect()
            }
            other => Err(invalid_payload(&other)),
        }
    }

    /// Sends `QUIT` and consumes the client.
    pub fn quit(self) -> std::io::Result<()> {
        self.conn.quit()
    }

    /// Sends a raw line (possibly malformed — for protocol tests) and
    /// returns the raw response line.
    pub fn send_raw(&mut self, line: &str) -> std::io::Result<String> {
        self.conn.send_raw(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn info_card_parses_the_sketch_info_display_form() {
        // Build the wire line from the real Display impl so the parser
        // can never drift away from the server's format.
        let info = ds_core::sketch::SketchInfo {
            database: "imdb_v2".to_string(),
            tables: 6,
            joins: 5,
            predicate_columns: 9,
            hidden_units: 64,
            model_params: 12345,
            sample_size: 16,
            sample_rows: 96,
            footprint_bytes: 125_829, // 0.12 MiB
            max_label: 987654,
        };
        let card = InfoCard::from_wire(&info.to_string()).expect("parse");
        assert_eq!(card.database, "imdb_v2");
        assert_eq!(card.tables, 6);
        assert_eq!(card.joins, 5);
        assert_eq!(card.predicate_columns, 9);
        assert_eq!(card.hidden_units, 64);
        assert_eq!(card.model_params, 12345);
        assert_eq!(card.sample_rows, 96);
        assert_eq!(card.sample_size, 16);
        assert!((card.footprint_mib - 0.12).abs() < 1e-9);
        assert_eq!(card.max_label, 987654);
        assert!(InfoCard::from_wire("not a card").is_none());
        assert!(InfoCard::from_wire("sketch[x]: truncated").is_none());
    }
}
