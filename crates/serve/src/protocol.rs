//! The wire protocol: one request line in, one response line out.
//!
//! Requests (keywords case-insensitive, arguments case-sensitive):
//!
//! ```text
//! HELLO <version> [features]   negotiate protocol version + feature flags
//!                              (comma-separated); the answer is
//!                              `OK HELLO <negotiated> <features>` or a
//!                              typed `ERR version-mismatch`
//! ESTIMATE <sketch> <sql…> [trace=<id>.<span>]
//!                              estimate one query with a named sketch;
//!                              the optional trailing token carries a
//!                              propagated [`TraceContext`] (v3)
//! FEEDBACK <sketch> <actual> <sql…> [trace=<id>.<span>]
//!                              estimate AND record the observed true
//!                              cardinality into the drift monitor
//! INFO <sketch>                the sketch's summary card
//! LIST                         every sketch and its status
//! SNAPSHOT <sketch>            export the sketch as a hex-encoded `DSNP`
//!                              blob: `OK SNAPSHOT <name> <gen> <len> <hex>`
//! SYNC <name> <gen> <len> <hex>
//!                              offer a `DSNP` blob for adoption
//!                              (newest-wins): `OK SYNC <name> <gen>
//!                              adopted|stale`, or `ERR decode` when the
//!                              transfer fails checksum validation
//! LIFECYCLE <sketch>           the retrain-and-hot-swap lifecycle status
//!                              of a sketch: phase, harvested count,
//!                              shadow medians, swap/rollback counters
//! METRICS                      server counters and latency percentiles
//! STATS                        Prometheus-style text exposition of every
//!                              counter, gauge, and histogram (newlines
//!                              escaped as literal `\n` on the wire)
//! TRACE                        recent slow-request exemplars with their
//!                              per-stage latency decomposition
//! QUIT                         close the connection
//! ```
//!
//! ## Versioning
//!
//! `HELLO` is optional and backward compatible: a peer that never sends it
//! speaks protocol v1 (every pre-fleet command works unchanged). Sending
//! it pins the connection to `min(client, server)` and tells each side
//! which optional features ([`SUPPORTED_FEATURES`]) the other implements,
//! so mixed-version fleet peers negotiate instead of desyncing — an
//! incompatible version gets a typed [`ErrorCode::VersionMismatch`]
//! instead of silent garbling.
//!
//! Responses (always exactly one line, `\n`-terminated):
//!
//! ```text
//! OK <payload>                 success; payload depends on the request
//! ERR <code> <message>         typed failure (codes in [`ErrorCode`])
//! BUSY <message>               admission queue full — shed, retry later
//! BYE                          answer to QUIT
//! ```
//!
//! Everything is UTF-8 text. Embedded newlines in payloads are replaced by
//! spaces so the one-line invariant holds unconditionally.

use ds_core::store::StoreError;
use ds_est::EstimateError;
use ds_obs::TraceContext;

/// Current wire protocol version. v1 is the pre-handshake protocol
/// (everything up to `TRACE`); v2 adds `HELLO`/`SNAPSHOT`/`SYNC`; v3
/// adds the optional trailing `trace=` token on `ESTIMATE`/`FEEDBACK`.
pub const PROTOCOL_VERSION: u32 = 3;

/// Oldest protocol version this build still speaks.
pub const MIN_PROTOCOL_VERSION: u32 = 1;

/// Optional capabilities this build implements, advertised in the `HELLO`
/// exchange: the template-keyed estimate cache, the `degraded` response
/// token, the fleet verbs (`SNAPSHOT`/`SYNC`), the retrain lifecycle
/// (`LIFECYCLE`), and cross-process trace propagation (`trace`).
pub const SUPPORTED_FEATURES: &[&str] = &["cache", "degraded-token", "fleet", "lifecycle", "trace"];

/// A parsed client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `HELLO <version> [features]` — negotiate version + feature flags.
    Hello {
        /// The sender's protocol version.
        version: u32,
        /// Features the sender implements (comma-separated on the wire).
        features: Vec<String>,
    },
    /// `ESTIMATE <sketch> <sql> [trace=…]` — estimate `sql` with the
    /// named sketch.
    Estimate {
        /// Sketch name in the store.
        sketch: String,
        /// The `SELECT COUNT(*)` query text.
        sql: String,
        /// Propagated trace identity from the optional trailing
        /// `trace=` token (v3 feature; `None` from older peers).
        trace: Option<TraceContext>,
    },
    /// `FEEDBACK <sketch> <actual> <sql> [trace=…]` — estimate `sql`
    /// exactly like `ESTIMATE` (same batcher path, bit-identical
    /// result), then record the q-error against the observed true
    /// cardinality `actual` into the sketch's rolling accuracy monitor.
    Feedback {
        /// Sketch name in the store.
        sketch: String,
        /// The true cardinality the system observed for this query.
        actual: u64,
        /// The `SELECT COUNT(*)` query text.
        sql: String,
        /// Propagated trace identity from the optional trailing
        /// `trace=` token (v3 feature; `None` from older peers).
        trace: Option<TraceContext>,
    },
    /// `INFO <sketch>` — summary card of the named sketch.
    Info {
        /// Sketch name in the store.
        sketch: String,
    },
    /// `LIST` — all sketches and statuses.
    List,
    /// `SNAPSHOT <sketch>` — export the named sketch as a hex-encoded,
    /// checksum-authenticated `DSNP` blob at its current generation.
    Snapshot {
        /// Sketch name in the store.
        sketch: String,
    },
    /// `SYNC <name> <generation> <len> <hex>` — offer a `DSNP` blob for
    /// newest-wins adoption. `len` is the decoded byte length, a cheap
    /// transfer-level guard in front of the blob's own checksum trailer.
    Sync {
        /// Sketch name the sender claims the blob carries.
        name: String,
        /// Generation the sender claims the blob captures.
        generation: u64,
        /// Decoded byte length of the blob.
        len: u64,
        /// The hex-encoded `DSNP` bytes.
        hex: String,
    },
    /// `LIFECYCLE <sketch>` — the retrain-and-hot-swap lifecycle status of
    /// a sketch (phase, harvest size, shadow medians, swap/rollback
    /// counters).
    Lifecycle {
        /// Sketch name in the store.
        sketch: String,
    },
    /// `METRICS` — serving counters and percentiles.
    Metrics,
    /// `STATS` — full Prometheus-style exposition.
    Stats,
    /// `TRACE` — recent slow-request exemplars.
    Trace,
    /// `QUIT` — close the connection.
    Quit,
}

/// Machine-readable failure categories carried in `ERR` responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line itself is malformed.
    Proto,
    /// The SQL failed to parse.
    Parse,
    /// No sketch with that name.
    UnknownSketch,
    /// The sketch exists but is training or failed.
    NotReady,
    /// The query references tables/columns outside the sketch.
    Vocabulary,
    /// No fleet member covers the query.
    Unroutable,
    /// A persisted model failed to decode.
    Decode,
    /// The request exceeded its deadline.
    Timeout,
    /// The peer's protocol version is outside this build's supported
    /// range — negotiation failed, no fallback possible.
    VersionMismatch,
    /// Internal estimation failure.
    Internal,
}

impl ErrorCode {
    /// Stable wire token of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Proto => "proto",
            ErrorCode::Parse => "parse",
            ErrorCode::UnknownSketch => "unknown-sketch",
            ErrorCode::NotReady => "not-ready",
            ErrorCode::Vocabulary => "vocabulary",
            ErrorCode::Unroutable => "unroutable",
            ErrorCode::Decode => "decode",
            ErrorCode::Timeout => "timeout",
            ErrorCode::VersionMismatch => "version-mismatch",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parses a wire token back into a code (client side).
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "proto" => ErrorCode::Proto,
            "parse" => ErrorCode::Parse,
            "unknown-sketch" => ErrorCode::UnknownSketch,
            "not-ready" => ErrorCode::NotReady,
            "vocabulary" => ErrorCode::Vocabulary,
            "unroutable" => ErrorCode::Unroutable,
            "decode" => ErrorCode::Decode,
            "timeout" => ErrorCode::Timeout,
            "version-mismatch" => ErrorCode::VersionMismatch,
            "internal" => ErrorCode::Internal,
            _ => return None,
        })
    }
}

/// A server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `OK <estimate>` — the estimated cardinality.
    Estimate(f64),
    /// `OK <estimate> degraded` — an estimate answered by the fallback
    /// estimator because the requested sketch is unhealthy (poisoned model,
    /// open circuit breaker). The value is real but comes from a coarser
    /// model; clients that ignore the flag still parse the number.
    Degraded(f64),
    /// `OK <text>` — free-form single-line payload (INFO, LIST, METRICS).
    Text(String),
    /// `ERR <code> <message>`.
    Error {
        /// Failure category.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
    /// `BUSY <message>` — request shed at admission.
    Busy(String),
    /// `BYE` — connection closing.
    Bye,
}

/// Splits an optional trailing `trace=<token>` off a request's SQL tail.
/// A last token that *claims* to be a trace (`trace=` prefix) but fails
/// the strict [`TraceContext::parse_token`] validation is a protocol
/// error — it is never silently passed through as SQL.
fn split_trace(tail: &str) -> Result<(&str, Option<TraceContext>), Response> {
    let (head, last) = match tail.rsplit_once(char::is_whitespace) {
        Some((head, last)) => (head, last),
        None => ("", tail),
    };
    let Some(token) = last.strip_prefix("trace=") else {
        return Ok((tail, None));
    };
    match TraceContext::parse_token(token) {
        Some(ctx) => Ok((head.trim_end(), Some(ctx))),
        None => Err(Response::Error {
            code: ErrorCode::Proto,
            message: format!("malformed trace token '{last}'"),
        }),
    }
}

/// Parses one request line. Returns a [`Response::Error`] (proto code) on
/// malformed input so callers can echo it straight back.
pub fn parse_request(line: &str) -> Result<Request, Response> {
    let line = line.trim();
    let mut parts = line.splitn(2, char::is_whitespace);
    let verb = parts.next().unwrap_or("").to_ascii_uppercase();
    let rest = parts.next().unwrap_or("").trim();
    match verb.as_str() {
        "HELLO" => {
            let mut args = rest.splitn(2, char::is_whitespace);
            let version = args.next().unwrap_or("").trim();
            let features = args.next().unwrap_or("").trim();
            let version: u32 = version.parse().map_err(|_| Response::Error {
                code: ErrorCode::Proto,
                message: "usage: HELLO <version> [feature,feature,…]".to_string(),
            })?;
            let features = features
                .split(',')
                .map(str::trim)
                .filter(|f| !f.is_empty())
                .map(str::to_string)
                .collect();
            Ok(Request::Hello { version, features })
        }
        "SNAPSHOT" => {
            if rest.is_empty() || rest.contains(char::is_whitespace) {
                return Err(Response::Error {
                    code: ErrorCode::Proto,
                    message: "usage: SNAPSHOT <sketch>".to_string(),
                });
            }
            Ok(Request::Snapshot {
                sketch: rest.to_string(),
            })
        }
        "SYNC" => {
            let mut args = rest.splitn(4, char::is_whitespace);
            let name = args.next().unwrap_or("").trim();
            let generation = args.next().unwrap_or("").trim();
            let len = args.next().unwrap_or("").trim();
            let hex = args.next().unwrap_or("").trim();
            let usage = || Response::Error {
                code: ErrorCode::Proto,
                message: "usage: SYNC <name> <generation> <len> <hex>".to_string(),
            };
            if name.is_empty() || hex.is_empty() {
                return Err(usage());
            }
            let generation: u64 = generation.parse().map_err(|_| usage())?;
            let len: u64 = len.parse().map_err(|_| usage())?;
            Ok(Request::Sync {
                name: name.to_string(),
                generation,
                len,
                hex: hex.to_string(),
            })
        }
        "ESTIMATE" => {
            let mut args = rest.splitn(2, char::is_whitespace);
            let sketch = args.next().unwrap_or("").trim();
            let tail = args.next().unwrap_or("").trim();
            let (sql, trace) = split_trace(tail)?;
            if sketch.is_empty() || sql.is_empty() {
                return Err(Response::Error {
                    code: ErrorCode::Proto,
                    message: "usage: ESTIMATE <sketch> <sql> [trace=<id>.<span>]".to_string(),
                });
            }
            Ok(Request::Estimate {
                sketch: sketch.to_string(),
                sql: sql.to_string(),
                trace,
            })
        }
        "FEEDBACK" => {
            let mut args = rest.splitn(3, char::is_whitespace);
            let sketch = args.next().unwrap_or("").trim();
            let actual = args.next().unwrap_or("").trim();
            let tail = args.next().unwrap_or("").trim();
            let usage = || Response::Error {
                code: ErrorCode::Proto,
                message: "usage: FEEDBACK <sketch> <actual-cardinality> <sql> [trace=<id>.<span>]"
                    .to_string(),
            };
            let (sql, trace) = split_trace(tail)?;
            if sketch.is_empty() || sql.is_empty() {
                return Err(usage());
            }
            let actual: u64 = actual.parse().map_err(|_| usage())?;
            Ok(Request::Feedback {
                sketch: sketch.to_string(),
                actual,
                sql: sql.to_string(),
                trace,
            })
        }
        "INFO" => {
            if rest.is_empty() {
                return Err(Response::Error {
                    code: ErrorCode::Proto,
                    message: "usage: INFO <sketch>".to_string(),
                });
            }
            Ok(Request::Info {
                sketch: rest.to_string(),
            })
        }
        "LIFECYCLE" => {
            if rest.is_empty() || rest.contains(char::is_whitespace) {
                return Err(Response::Error {
                    code: ErrorCode::Proto,
                    message: "usage: LIFECYCLE <sketch>".to_string(),
                });
            }
            Ok(Request::Lifecycle {
                sketch: rest.to_string(),
            })
        }
        "LIST" => Ok(Request::List),
        "METRICS" => Ok(Request::Metrics),
        "STATS" => Ok(Request::Stats),
        "TRACE" => Ok(Request::Trace),
        "QUIT" | "EXIT" => Ok(Request::Quit),
        other => Err(Response::Error {
            code: ErrorCode::Proto,
            message: format!("unknown command '{other}'"),
        }),
    }
}

/// Formats a request for the wire (client side).
pub fn format_request(req: &Request) -> String {
    match req {
        Request::Hello { version, features } => {
            if features.is_empty() {
                format!("HELLO {version}")
            } else {
                format!("HELLO {version} {}", features.join(","))
            }
        }
        Request::Snapshot { sketch } => format!("SNAPSHOT {sketch}"),
        Request::Sync {
            name,
            generation,
            len,
            hex,
        } => format!("SYNC {name} {generation} {len} {hex}"),
        Request::Estimate { sketch, sql, trace } => match trace {
            Some(t) => format!("ESTIMATE {sketch} {sql} trace={}", t.to_token()),
            None => format!("ESTIMATE {sketch} {sql}"),
        },
        Request::Feedback {
            sketch,
            actual,
            sql,
            trace,
        } => match trace {
            Some(t) => format!("FEEDBACK {sketch} {actual} {sql} trace={}", t.to_token()),
            None => format!("FEEDBACK {sketch} {actual} {sql}"),
        },
        Request::Info { sketch } => format!("INFO {sketch}"),
        Request::Lifecycle { sketch } => format!("LIFECYCLE {sketch}"),
        Request::List => "LIST".to_string(),
        Request::Metrics => "METRICS".to_string(),
        Request::Stats => "STATS".to_string(),
        Request::Trace => "TRACE".to_string(),
        Request::Quit => "QUIT".to_string(),
    }
}

/// Formats a response as its single wire line (no trailing newline).
pub fn format_response(resp: &Response) -> String {
    let one_line = |s: &str| s.replace(['\n', '\r'], " ");
    match resp {
        // `{:?}`-style shortest-roundtrip float formatting: the client
        // reparses to the bit-identical f64. The degraded form only
        // *appends* a token, so the non-degraded line stays byte-identical
        // to what it was before degradation existed.
        Response::Estimate(v) => format!("OK {v:?}"),
        Response::Degraded(v) => format!("OK {v:?} degraded"),
        Response::Text(t) => format!("OK {}", one_line(t)),
        Response::Error { code, message } => {
            format!("ERR {} {}", code.as_str(), one_line(message))
        }
        Response::Busy(m) => format!("BUSY {}", one_line(m)),
        Response::Bye => "BYE".to_string(),
    }
}

/// Parses a response line (client side). `estimate` selects whether an
/// `OK` payload is interpreted as a number or as text.
pub fn parse_response(line: &str, estimate: bool) -> Result<Response, String> {
    let line = line.trim_end_matches(['\n', '\r']);
    if let Some(rest) = line.strip_prefix("OK ") {
        if estimate {
            let payload = rest.trim();
            let (number, degraded) = match payload.strip_suffix(" degraded") {
                Some(n) => (n.trim_end(), true),
                None => (payload, false),
            };
            return number
                .parse::<f64>()
                .map(if degraded {
                    Response::Degraded
                } else {
                    Response::Estimate
                })
                .map_err(|e| format!("bad estimate payload '{rest}': {e}"));
        }
        return Ok(Response::Text(rest.to_string()));
    }
    if let Some(rest) = line.strip_prefix("ERR ") {
        let mut parts = rest.splitn(2, ' ');
        let code = parts.next().unwrap_or("");
        let message = parts.next().unwrap_or("").to_string();
        let code = ErrorCode::parse(code).ok_or_else(|| format!("bad error code '{code}'"))?;
        return Ok(Response::Error { code, message });
    }
    if let Some(rest) = line.strip_prefix("BUSY") {
        return Ok(Response::Busy(rest.trim().to_string()));
    }
    if line == "BYE" {
        return Ok(Response::Bye);
    }
    Err(format!("unparseable response line: '{line}'"))
}

/// Maps an estimation failure to its wire error.
pub fn estimate_error_response(e: &EstimateError) -> Response {
    let code = match e {
        EstimateError::UnknownTable { .. } | EstimateError::UnknownColumn { .. } => {
            ErrorCode::Vocabulary
        }
        EstimateError::Unroutable { .. } => ErrorCode::Unroutable,
        EstimateError::Decode(_) => ErrorCode::Decode,
        EstimateError::Unavailable(_) => ErrorCode::NotReady,
        EstimateError::Execution(_) => ErrorCode::Internal,
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}

/// Maps a store failure to its wire error.
pub fn store_error_response(e: &StoreError) -> Response {
    let code = match e {
        StoreError::UnknownSketch(_) => ErrorCode::UnknownSketch,
        StoreError::NotReady(..) => ErrorCode::NotReady,
        StoreError::Decode(_) => ErrorCode::Decode,
        StoreError::Estimate(inner) => return estimate_error_response(inner),
        _ => ErrorCode::Internal,
    };
    Response::Error {
        code,
        message: e.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip_through_the_wire_format() {
        let reqs = [
            Request::Hello {
                version: 2,
                features: vec!["cache".into(), "fleet".into()],
            },
            Request::Hello {
                version: 1,
                features: vec![],
            },
            Request::Snapshot {
                sketch: "imdb".into(),
            },
            Request::Sync {
                name: "imdb".into(),
                generation: 7,
                len: 4,
                hex: "deadbeef".into(),
            },
            Request::Estimate {
                sketch: "imdb".into(),
                sql: "SELECT COUNT(*) FROM title WHERE title.kind_id = 1".into(),
                trace: None,
            },
            Request::Estimate {
                sketch: "imdb".into(),
                sql: "SELECT COUNT(*) FROM title WHERE title.kind_id = 1".into(),
                trace: Some(TraceContext {
                    trace_id: 0xdead_beef_cafe_f00d_1234_5678_9abc_def0,
                    span_id: 0x0fed_cba9_8765_4321,
                }),
            },
            Request::Feedback {
                sketch: "imdb".into(),
                actual: 4321,
                sql: "SELECT COUNT(*) FROM title WHERE title.kind_id = 1".into(),
                trace: None,
            },
            Request::Feedback {
                sketch: "imdb".into(),
                actual: 4321,
                sql: "SELECT COUNT(*) FROM title WHERE title.kind_id = 1".into(),
                trace: Some(TraceContext {
                    trace_id: 7,
                    span_id: 9,
                }),
            },
            Request::Info {
                sketch: "imdb".into(),
            },
            Request::Lifecycle {
                sketch: "imdb".into(),
            },
            Request::List,
            Request::Metrics,
            Request::Stats,
            Request::Trace,
            Request::Quit,
        ];
        for req in reqs {
            let line = format_request(&req);
            assert_eq!(parse_request(&line).unwrap(), req, "line: {line}");
        }
    }

    #[test]
    fn request_keywords_are_case_insensitive() {
        assert_eq!(
            parse_request("estimate s SELECT COUNT(*) FROM t").unwrap(),
            Request::Estimate {
                sketch: "s".into(),
                sql: "SELECT COUNT(*) FROM t".into(),
                trace: None,
            }
        );
        assert_eq!(parse_request("list").unwrap(), Request::List);
        assert_eq!(parse_request("exit").unwrap(), Request::Quit);
    }

    #[test]
    fn malformed_requests_get_proto_errors() {
        for bad in [
            "",
            "ESTIMATE",
            "ESTIMATE name-only",
            "INFO",
            "FROBNICATE x",
            "FEEDBACK",
            "FEEDBACK s",
            "FEEDBACK s 12",
            "FEEDBACK s not-a-number SELECT COUNT(*) FROM t",
            "FEEDBACK s -3 SELECT COUNT(*) FROM t",
            "HELLO",
            "HELLO two",
            "SNAPSHOT",
            "SNAPSHOT two names",
            "LIFECYCLE",
            "LIFECYCLE two names",
            "SYNC",
            "SYNC s",
            "SYNC s 1",
            "SYNC s 1 2",
            "SYNC s one 2 abcd",
            "SYNC s 1 two abcd",
            // Trailing tokens that claim to be traces must validate
            // strictly — a typed proto error, never SQL passthrough.
            "ESTIMATE s SELECT COUNT(*) FROM t trace=",
            "ESTIMATE s SELECT COUNT(*) FROM t trace=xyz",
            "ESTIMATE s SELECT COUNT(*) FROM t trace=00000000000000000000000000000007.zzzzzzzzzzzzzzzz",
            "ESTIMATE s SELECT COUNT(*) FROM t trace=00000000000000000000000000000000.0000000000000009",
            "ESTIMATE s SELECT COUNT(*) FROM t trace=00000000000000000000000000000007,0000000000000009",
            // A lone valid trace token leaves no SQL behind.
            "ESTIMATE s trace=00000000000000000000000000000007.0000000000000009",
            "FEEDBACK s 12 trace=00000000000000000000000000000007.0000000000000009",
            "FEEDBACK s 12 SELECT COUNT(*) FROM t trace=tooshort",
        ] {
            match parse_request(bad) {
                Err(Response::Error { code, .. }) => assert_eq!(code, ErrorCode::Proto, "{bad}"),
                other => panic!("expected proto error for '{bad}', got {other:?}"),
            }
        }
    }

    #[test]
    fn trace_tokens_ride_the_tail_of_both_verbs() {
        let tok = "000102030405060708090a0b0c0d0e0f.1122334455667788";
        let want = TraceContext {
            trace_id: 0x0001_0203_0405_0607_0809_0a0b_0c0d_0e0f,
            span_id: 0x1122_3344_5566_7788,
        };
        match parse_request(&format!("ESTIMATE s SELECT COUNT(*) FROM t trace={tok}")).unwrap() {
            Request::Estimate { sql, trace, .. } => {
                assert_eq!(sql, "SELECT COUNT(*) FROM t");
                assert_eq!(trace, Some(want));
            }
            other => panic!("{other:?}"),
        }
        match parse_request(&format!("FEEDBACK s 42 SELECT COUNT(*) FROM t trace={tok}")).unwrap() {
            Request::Feedback { actual, trace, .. } => {
                assert_eq!(actual, 42);
                assert_eq!(trace, Some(want));
            }
            other => panic!("{other:?}"),
        }
        // Uppercase hex is tolerated on parse and canonicalized on format
        // — the parse→format→parse fixed point the fuzzer checks.
        let upper = format!(
            "ESTIMATE s SELECT COUNT(*) FROM t trace={}",
            tok.to_uppercase()
        );
        let parsed = parse_request(&upper).unwrap();
        let canonical = format_request(&parsed);
        assert_eq!(parse_request(&canonical).unwrap(), parsed);
        assert!(canonical.ends_with(&format!("trace={tok}")));
        // A `trace=` in the middle of the SQL is not a trailing token and
        // passes through untouched.
        match parse_request("ESTIMATE s SELECT trace=x FROM t").unwrap() {
            Request::Estimate { sql, trace, .. } => {
                assert_eq!(sql, "SELECT trace=x FROM t");
                assert_eq!(trace, None);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn responses_roundtrip_including_exact_floats() {
        // The estimate payload must survive the wire bit-for-bit — the
        // coalesced-equals-looped guarantee is checked through this format.
        for v in [1.0, 1234.5678, 1.0000000000000002, f64::MAX / 3.0] {
            let line = format_response(&Response::Estimate(v));
            match parse_response(&line, true).unwrap() {
                Response::Estimate(parsed) => assert_eq!(parsed.to_bits(), v.to_bits()),
                other => panic!("{other:?}"),
            }
            // The degraded form carries the same bit-exact value and is
            // the non-degraded line plus one trailing token.
            let degraded_line = format_response(&Response::Degraded(v));
            assert_eq!(degraded_line, format!("{line} degraded"));
            match parse_response(&degraded_line, true).unwrap() {
                Response::Degraded(parsed) => assert_eq!(parsed.to_bits(), v.to_bits()),
                other => panic!("{other:?}"),
            }
        }
        let err = Response::Error {
            code: ErrorCode::UnknownSketch,
            message: "unknown sketch 'x'".into(),
        };
        assert_eq!(parse_response(&format_response(&err), true).unwrap(), err);
        let mismatch = Response::Error {
            code: ErrorCode::VersionMismatch,
            message: "server speaks 1..=2, client sent 9".into(),
        };
        assert_eq!(
            parse_response(&format_response(&mismatch), false).unwrap(),
            mismatch
        );
        let busy = Response::Busy("queue full".into());
        assert_eq!(parse_response(&format_response(&busy), true).unwrap(), busy);
        assert_eq!(
            parse_response(&format_response(&Response::Bye), false).unwrap(),
            Response::Bye
        );
        let text = Response::Text("a=1;b=2".into());
        assert_eq!(
            parse_response(&format_response(&text), false).unwrap(),
            text
        );
    }

    #[test]
    fn payloads_are_always_one_line() {
        let resp = Response::Error {
            code: ErrorCode::Parse,
            message: "line one\nline two\r\nthree".into(),
        };
        assert!(!format_response(&resp).contains('\n'));
        assert!(!format_response(&Response::Text("a\nb".into())).contains('\n'));
    }

    #[test]
    fn error_mapping_covers_every_estimate_error() {
        let cases = [
            (
                EstimateError::UnknownTable {
                    table: 9,
                    known_tables: 6,
                },
                ErrorCode::Vocabulary,
            ),
            (
                EstimateError::UnknownColumn { table: 1, col: 99 },
                ErrorCode::Vocabulary,
            ),
            (
                EstimateError::Unroutable { tables: vec![0, 1] },
                ErrorCode::Unroutable,
            ),
            (EstimateError::Decode("x".into()), ErrorCode::Decode),
            (EstimateError::Unavailable("x".into()), ErrorCode::NotReady),
            (EstimateError::Execution("x".into()), ErrorCode::Internal),
        ];
        for (err, code) in cases {
            match estimate_error_response(&err) {
                Response::Error { code: got, .. } => assert_eq!(got, code, "{err:?}"),
                other => panic!("{other:?}"),
            }
        }
    }
}
