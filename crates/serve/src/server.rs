//! The TCP front end: an acceptor thread plus one handler thread per
//! connection, all funnelling `ESTIMATE` work into the shared [`Batcher`].
//!
//! Robustness properties (each covered by an integration test):
//!
//! * every malformed or unanswerable request gets a typed one-line `ERR` —
//!   no panic is reachable from client input;
//! * admission is bounded twice: a connection cap at accept time and the
//!   batcher's queue bound per request, both shedding with `BUSY`;
//! * `shutdown()` drains: in-flight requests finish, queued batches run,
//!   every thread is joined before it returns.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ds_core::store::SketchStore;
use ds_query::parser::parse_query;
use ds_storage::catalog::Database;

use crate::batcher::{Batcher, BatcherConfig, Rejection, SharedEstimator};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::protocol::{
    estimate_error_response, format_response, parse_request, store_error_response, ErrorCode,
    Request, Response,
};

/// How often blocked reads wake up to check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 to let the OS pick one.
    pub addr: String,
    /// Batch worker threads.
    pub workers: usize,
    /// Maximum queries coalesced into one forward pass. 1 disables
    /// coalescing (useful as a baseline).
    pub max_batch: usize,
    /// Admission-queue bound; beyond it `ESTIMATE` sheds with `BUSY`.
    pub queue_capacity: usize,
    /// Per-request deadline.
    pub request_timeout: Duration,
    /// Concurrent-connection cap; excess connections are told `BUSY` and
    /// closed.
    pub max_connections: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            max_batch: 64,
            queue_capacity: 1024,
            request_timeout: Duration::from_secs(2),
            max_connections: 256,
        }
    }
}

struct Shared {
    db: Arc<Database>,
    store: Arc<SketchStore>,
    batcher: Batcher,
    metrics: Arc<Metrics>,
    shutting_down: AtomicBool,
    active_connections: AtomicUsize,
    max_connections: usize,
}

/// A running sketch server. Dropping it shuts it down.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds, spawns the acceptor and batch workers, and returns
    /// immediately. Estimates are parsed against `db` and answered by the
    /// sketches in `store` (resolved by name per request, so background
    /// retraining swaps take effect live).
    pub fn start(
        db: Arc<Database>,
        store: Arc<SketchStore>,
        cfg: ServeConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let metrics = Arc::new(Metrics::new());
        let batcher = Batcher::new(
            BatcherConfig {
                workers: cfg.workers,
                max_batch: cfg.max_batch,
                queue_capacity: cfg.queue_capacity,
                request_timeout: cfg.request_timeout,
            },
            Arc::clone(&metrics),
        );
        let shared = Arc::new(Shared {
            db,
            store,
            batcher,
            metrics,
            shutting_down: AtomicBool::new(false),
            active_connections: AtomicUsize::new(0),
            max_connections: cfg.max_connections.max(1),
        });
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name("ds-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared, &handlers))?
        };
        Ok(Self {
            addr,
            shared,
            acceptor: Some(acceptor),
            handlers,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live serving counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Graceful shutdown: stop accepting, let in-flight requests finish,
    /// drain queued batches, join every thread. Returns the final metrics.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.stop_and_join();
        self.shared.metrics.snapshot()
    }

    fn stop_and_join(&mut self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking accept() with a wake-up
        // connection; it observes the flag and exits.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let handlers: Vec<_> = self
            .handlers
            .lock()
            .expect("handler registry")
            .drain(..)
            .collect();
        for h in handlers {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.stop_and_join();
        }
        // The batcher (owned by `shared`) drains in its own Drop once the
        // last Arc goes away.
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let active = shared.active_connections.load(Ordering::SeqCst);
        if active >= shared.max_connections {
            shared.metrics.record_shed();
            let mut s = stream;
            let line = format_response(&Response::Busy(format!(
                "connection limit {} reached",
                shared.max_connections
            )));
            let _ = writeln!(s, "{line}");
            continue;
        }
        shared.active_connections.fetch_add(1, Ordering::SeqCst);
        let conn_shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("ds-serve-conn".to_string())
            .spawn(move || {
                handle_connection(stream, &conn_shared);
                conn_shared
                    .active_connections
                    .fetch_sub(1, Ordering::SeqCst);
            });
        match spawned {
            Ok(handle) => {
                let mut reg = handlers.lock().expect("handler registry");
                // Reap finished handlers so the registry stays bounded.
                reg.retain(|h| !h.is_finished());
                reg.push(handle);
            }
            Err(_) => {
                shared.active_connections.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    // Short read timeouts let the handler poll the shutdown flag while
    // idle instead of blocking forever on a silent client.
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    // One-line request/response roundtrips die under Nagle + delayed ACK.
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // EOF
            Ok(_) => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(_) => return,
        }
        if line.trim().is_empty() {
            continue;
        }
        let (response, quit) = handle_line(&line, shared);
        if writeln!(writer, "{}", format_response(&response)).is_err() || writer.flush().is_err() {
            return;
        }
        if quit {
            return;
        }
    }
}

/// Answers one request line. Total: every path, including malformed input,
/// produces exactly one response.
fn handle_line(line: &str, shared: &Shared) -> (Response, bool) {
    shared.metrics.record_request();
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(resp) => {
            shared.metrics.record_error();
            return (resp, false);
        }
    };
    match request {
        Request::Estimate { sketch, sql } => (handle_estimate(&sketch, &sql, shared), false),
        Request::Info { sketch } => match shared.store.get(&sketch) {
            Ok(s) => (Response::Text(s.info().to_string()), false),
            Err(e) => {
                shared.metrics.record_error();
                (store_error_response(&e), false)
            }
        },
        Request::List => {
            let mut entries: Vec<String> = shared
                .store
                .list()
                .into_iter()
                .map(|(name, status)| format!("{name}={status:?}"))
                .collect();
            entries.sort();
            let payload = if entries.is_empty() {
                "(no sketches)".to_string()
            } else {
                entries.join(" ")
            };
            (Response::Text(payload), false)
        }
        Request::Metrics => (Response::Text(shared.metrics.snapshot().to_wire()), false),
        Request::Quit => (Response::Bye, true),
    }
}

fn handle_estimate(sketch: &str, sql: &str, shared: &Shared) -> Response {
    let _span = ds_obs::global().span("serve/estimate");
    let t0 = Instant::now();
    let estimator: SharedEstimator = match shared.store.get(sketch) {
        Ok(s) => s,
        Err(e) => {
            shared.metrics.record_error();
            return store_error_response(&e);
        }
    };
    let query = match parse_query(&shared.db, sql) {
        Ok(q) => q,
        Err(e) => {
            shared.metrics.record_error();
            return Response::Error {
                code: ErrorCode::Parse,
                message: e.0,
            };
        }
    };
    match shared.batcher.estimate(estimator, query) {
        Ok(v) => {
            shared.metrics.record_ok(t0.elapsed());
            Response::Estimate(v)
        }
        Err(Rejection::Busy { queued }) => {
            // The batcher already counted the shed.
            Response::Busy(format!("admission queue full ({queued} waiting)"))
        }
        Err(Rejection::Timeout) => {
            // The batcher already counted the timeout.
            Response::Error {
                code: ErrorCode::Timeout,
                message: "request deadline exceeded".to_string(),
            }
        }
        Err(Rejection::ShuttingDown) => {
            shared.metrics.record_error();
            Response::Error {
                code: ErrorCode::Internal,
                message: "server shutting down".to_string(),
            }
        }
        Err(Rejection::Estimate(e)) => {
            shared.metrics.record_error();
            estimate_error_response(&e)
        }
    }
}
