//! The TCP front end: an acceptor thread plus one handler thread per
//! connection, all funnelling `ESTIMATE` work into the shared [`Batcher`].
//!
//! Robustness properties (each covered by an integration test):
//!
//! * every malformed or unanswerable request gets a typed one-line `ERR` —
//!   no panic is reachable from client input;
//! * admission is bounded twice: a connection cap at accept time and the
//!   batcher's queue bound per request, both shedding with `BUSY`;
//! * `shutdown()` drains: in-flight requests finish, queued batches run,
//!   every thread is joined before it returns.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use ds_core::lifecycle::{LifecycleManager, LifecyclePhase};
use ds_core::monitor::MonitorRegistry;
use ds_core::snapshot::{decode_hex, decode_snapshot, encode_hex};
use ds_core::store::{AdoptOutcome, SketchStore};
use ds_est::EstimateError;
use ds_obs::{IdSource, PromText, SloTracker, TraceContext};
use ds_query::parser::parse_query;
use ds_query::query::Query;
use ds_storage::catalog::Database;

use crate::batcher::{Batcher, BatcherConfig, Rejection, SharedEstimator, StageStamps};
use crate::breaker::{Admit, BreakerRegistry};
use crate::cache::EstimateCache;
use crate::config::{ServeConfig, SloSignal};
use crate::faults::FaultInjector;
use crate::metrics::{Metrics, MetricsSnapshot, RequestTimeline};
use crate::protocol::{
    estimate_error_response, format_response, parse_request, store_error_response, ErrorCode,
    Request, Response, MIN_PROTOCOL_VERSION, PROTOCOL_VERSION, SUPPORTED_FEATURES,
};

/// How often blocked reads wake up to check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Bound on queued shadow-mirror jobs: the hot path never blocks on the
/// lifecycle daemon — when the scorer falls behind, mirrored jobs are
/// dropped and counted instead.
const SHADOW_QUEUE_CAPACITY: usize = 1024;

/// One mirrored request for the lifecycle daemon's shadow scorer: the
/// already-parsed query, the live model's answer, and (for FEEDBACK) the
/// true cardinality that grades both models.
struct ShadowJob {
    sketch: String,
    query: Query,
    live: f64,
    actual: Option<u64>,
    /// Trace of the mirrored request, so shadow-scoring cost shows up in
    /// the same causal tree as the request that caused it.
    trace: Option<TraceContext>,
}

/// One configured SLO with its live burn-rate tracker.
struct SloState {
    tracker: SloTracker,
    signal: SloSignal,
}

/// Lifecycle plumbing shared between the request handlers (harvest and
/// mirror hooks) and the maintain daemon (ticks and shadow scoring).
struct LifecycleShared {
    manager: Arc<LifecycleManager>,
    shadow_tx: SyncSender<ShadowJob>,
    mirrored: AtomicU64,
    shadow_dropped: AtomicU64,
}

struct Shared {
    db: Arc<Database>,
    store: Arc<SketchStore>,
    batcher: Batcher,
    metrics: Arc<Metrics>,
    monitors: Arc<MonitorRegistry>,
    shutting_down: AtomicBool,
    active_connections: AtomicUsize,
    max_connections: usize,
    timeline: bool,
    slow_threshold: Duration,
    templates: TemplateInterner,
    breakers: BreakerRegistry,
    fallback: Option<SharedEstimator>,
    faults: Option<Arc<FaultInjector>>,
    cache: Option<EstimateCache>,
    lifecycle: Option<LifecycleShared>,
    snapshot_dir: Option<PathBuf>,
    /// Fleet replication counters, surfaced under `serve/sync/*` in STATS.
    snapshots_shipped: AtomicU64,
    sync_adopted: AtomicU64,
    sync_stale: AtomicU64,
    sync_rejected: AtomicU64,
    /// Mints this server's span ids for traced (v3) requests.
    ids: IdSource,
    /// Monotonic epoch anchoring SLO window timestamps — no wall clock
    /// on the request path.
    epoch: Instant,
    /// Configured SLOs with their burn-rate trackers (empty = disabled).
    slos: Vec<SloState>,
}

impl Shared {
    /// Milliseconds since the server started — the SLO clock.
    fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    /// Grades one finished request against every configured SLO.
    /// `latency` is the end-to-end wall time; `errored` marks `ERR`/`BUSY`
    /// responses; `qerror` is present only for graded `FEEDBACK` requests.
    fn record_slos(&self, latency: Option<Duration>, errored: bool, qerror: Option<f64>) {
        if self.slos.is_empty() {
            return;
        }
        let now = self.now_ms();
        for slo in &self.slos {
            match slo.signal {
                SloSignal::LatencyUs(limit) => {
                    if let Some(lat) = latency {
                        slo.tracker.record(now, lat.as_micros() as u64 <= limit);
                    }
                }
                SloSignal::Errors => slo.tracker.record(now, !errored),
                SloSignal::QErrorMax(limit) => {
                    if let Some(q) = qerror {
                        slo.tracker.record(now, q <= limit);
                    }
                }
            }
        }
    }

    /// Names of SLOs currently firing their burn-rate alert.
    fn firing_slos(&self) -> Vec<String> {
        let now = self.now_ms();
        self.slos
            .iter()
            .filter(|s| s.tracker.firing(now))
            .map(|s| s.tracker.spec().name.clone())
            .collect()
    }
}

/// A running sketch server. Dropping it shuts it down.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
    lifecycle_daemon: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the acceptor and batch workers, and returns
    /// immediately. Estimates are parsed against `db` and answered by the
    /// sketches in `store` (resolved by name per request, so background
    /// retraining swaps take effect live).
    pub fn start(
        db: Arc<Database>,
        store: Arc<SketchStore>,
        cfg: ServeConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let metrics = Arc::new(Metrics::new());
        let batcher = Batcher::with_faults(
            BatcherConfig {
                workers: cfg.workers,
                max_batch: cfg.max_batch,
                queue_capacity: cfg.queue_capacity,
                request_timeout: cfg.request_timeout,
            },
            Arc::clone(&metrics),
            cfg.faults.clone(),
        );
        // Lifecycle plumbing is built before `Shared` so the manager can
        // reload persisted harvest sets off the snapshot directory (the
        // warm-restart path) ahead of the first request.
        let mut shadow_rx: Option<Receiver<ShadowJob>> = None;
        let lifecycle = match cfg.lifecycle {
            Some(lc_cfg) => {
                let manager = Arc::new(
                    LifecycleManager::new(lc_cfg)
                        .map_err(|e| std::io::Error::new(ErrorKind::InvalidInput, e))?,
                );
                if let Some(dir) = cfg.snapshot_dir.as_deref() {
                    manager.load_harvests(dir);
                }
                let (tx, rx) = std::sync::mpsc::sync_channel(SHADOW_QUEUE_CAPACITY);
                shadow_rx = Some(rx);
                Some(LifecycleShared {
                    manager,
                    shadow_tx: tx,
                    mirrored: AtomicU64::new(0),
                    shadow_dropped: AtomicU64::new(0),
                })
            }
            None => None,
        };
        let shared = Arc::new(Shared {
            db,
            store,
            batcher,
            metrics,
            monitors: Arc::new(MonitorRegistry::new()),
            shutting_down: AtomicBool::new(false),
            active_connections: AtomicUsize::new(0),
            max_connections: cfg.max_connections.max(1),
            timeline: cfg.timeline,
            slow_threshold: cfg.slow_threshold,
            templates: TemplateInterner::new(),
            breakers: BreakerRegistry::new(cfg.breaker),
            fallback: cfg.fallback,
            faults: cfg.faults,
            cache: (cfg.cache_capacity > 0).then(|| EstimateCache::new(cfg.cache_capacity, 8)),
            lifecycle,
            snapshot_dir: cfg.snapshot_dir,
            snapshots_shipped: AtomicU64::new(0),
            sync_adopted: AtomicU64::new(0),
            sync_stale: AtomicU64::new(0),
            sync_rejected: AtomicU64::new(0),
            ids: IdSource::from_entropy(),
            epoch: Instant::now(),
            slos: cfg
                .slos
                .into_iter()
                .map(|s| SloState {
                    tracker: SloTracker::new(s.spec),
                    signal: s.signal,
                })
                .collect(),
        });
        let lifecycle_daemon = match shadow_rx {
            Some(rx) => {
                let shared = Arc::clone(&shared);
                Some(
                    std::thread::Builder::new()
                        .name("ds-serve-lifecycle".to_string())
                        .spawn(move || run_lifecycle_daemon(&shared, &rx))?,
                )
            }
            None => None,
        };
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name("ds-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared, &handlers))?
        };
        Ok(Self {
            addr,
            shared,
            acceptor: Some(acceptor),
            handlers,
            lifecycle_daemon,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live serving counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// The rolling q-error monitors fed by `FEEDBACK` requests. Hand this
    /// to [`ds_core::advisor::recommend_retraining`] together with the
    /// store to turn drift into retraining recommendations.
    pub fn monitors(&self) -> Arc<MonitorRegistry> {
        Arc::clone(&self.shared.monitors)
    }

    /// The retrain-and-hot-swap lifecycle manager, when the server was
    /// configured with one. Tests and drills use this to arm the poison
    /// hook or to inspect phase and counters without a wire round-trip.
    pub fn lifecycle(&self) -> Option<Arc<LifecycleManager>> {
        self.shared
            .lifecycle
            .as_ref()
            .map(|lc| Arc::clone(&lc.manager))
    }

    /// The per-sketch circuit breaker for `sketch` (created on first use).
    /// Tests and operators read its state/counters; the serving path owns
    /// the transitions.
    pub fn breaker(&self, sketch: &str) -> Arc<crate::breaker::CircuitBreaker> {
        self.shared.breakers.breaker(sketch)
    }

    /// Names of configured SLOs whose multi-window burn-rate alert is
    /// currently firing. Empty when no SLOs are configured or none burn.
    pub fn firing_slos(&self) -> Vec<String> {
        self.shared.firing_slos()
    }

    /// Graceful shutdown: stop accepting, let in-flight requests finish,
    /// drain queued batches, join every thread. Returns the final metrics.
    pub fn shutdown(mut self) -> MetricsSnapshot {
        self.stop_and_join();
        self.shared.metrics.snapshot()
    }

    fn stop_and_join(&mut self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        // Unblock the acceptor's blocking accept() with a wake-up
        // connection; it observes the flag and exits.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        let handlers: Vec<_> = self
            .handlers
            .lock()
            .expect("handler registry")
            .drain(..)
            .collect();
        for h in handlers {
            let _ = h.join();
        }
        // The daemon polls `shutting_down` between queue waits, so it
        // exits within one poll interval (persisting harvests on the way
        // out).
        if let Some(h) = self.lifecycle_daemon.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.acceptor.is_some() {
            self.stop_and_join();
        }
        // The batcher (owned by `shared`) drains in its own Drop once the
        // last Arc goes away.
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    handlers: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    for stream in listener.incoming() {
        if shared.shutting_down.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        let active = shared.active_connections.load(Ordering::SeqCst);
        if active >= shared.max_connections {
            shared.metrics.record_shed();
            let mut s = stream;
            let line = format_response(&Response::Busy(format!(
                "connection limit {} reached",
                shared.max_connections
            )));
            let _ = writeln!(s, "{line}");
            continue;
        }
        shared.active_connections.fetch_add(1, Ordering::SeqCst);
        let conn_shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("ds-serve-conn".to_string())
            .spawn(move || {
                handle_connection(stream, &conn_shared);
                conn_shared
                    .active_connections
                    .fetch_sub(1, Ordering::SeqCst);
            });
        match spawned {
            Ok(handle) => {
                let mut reg = handlers.lock().expect("handler registry");
                // Reap finished handlers so the registry stays bounded.
                reg.retain(|h| !h.is_finished());
                reg.push(handle);
            }
            Err(_) => {
                shared.active_connections.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) {
    // Short read timeouts let the handler poll the shutdown flag while
    // idle instead of blocking forever on a silent client.
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    // One-line request/response roundtrips die under Nagle + delayed ACK.
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if shared.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // EOF
            Ok(_) => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(_) => return,
        }
        if line.trim().is_empty() {
            continue;
        }
        // t0 anchors the request timeline: everything from here to the
        // post-flush stamp is attributed to exactly one stage.
        let t0 = Instant::now();
        let (response, quit, pending) = handle_line(&line, shared, t0);
        if writeln!(writer, "{}", format_response(&response)).is_err() || writer.flush().is_err() {
            return;
        }
        if let Some(p) = pending {
            finish_timeline(p, t0, shared);
        }
        if quit {
            return;
        }
    }
}

/// A successful estimate's timeline, waiting for the final write stamp.
struct PendingTimeline {
    sketch: String,
    template: Arc<str>,
    stamps: StageStamps,
    /// Incoming trace context plus this server's own span id, when the
    /// request carried a v3 `trace=` token.
    trace: Option<(TraceContext, u64)>,
}

/// Stitches the stamps into the five contiguous stages, records them, and
/// keeps the request as a `TRACE` exemplar when it crossed the slow
/// threshold — or when it was traced, so a cross-process trace always has
/// its server-side spans available to the aggregator. Only kept exemplars
/// materialize their strings; the common fast-request path records five
/// histogram points and returns.
fn finish_timeline(p: PendingTimeline, t0: Instant, shared: &Shared) {
    let done = Instant::now();
    let us = |d: Duration| d.as_micros() as u64;
    let s = &p.stamps;
    let total = done.saturating_duration_since(t0);
    let parse_us = us(s.enqueued.saturating_duration_since(t0));
    let queue_us = us(s.dequeued.saturating_duration_since(s.enqueued));
    let batch_wait_us = us(s.forward_start.saturating_duration_since(s.dequeued));
    let forward_us = us(s.forward_end.saturating_duration_since(s.forward_start));
    let write_us = us(done.saturating_duration_since(s.forward_end));
    shared
        .metrics
        .record_stages(parse_us, queue_us, batch_wait_us, forward_us, write_us);
    if total >= shared.slow_threshold || p.trace.is_some() {
        let (trace_id, parent_span, span_id) = match p.trace {
            Some((ctx, span)) => (ctx.trace_id, ctx.span_id, span),
            None => (0, 0, 0),
        };
        shared.metrics.slow.push(RequestTimeline {
            sketch: p.sketch,
            template: p.template.as_ref().to_string(),
            total_us: us(total),
            parse_us,
            queue_us,
            batch_wait_us,
            forward_us,
            write_us,
            trace_id,
            span_id,
            parent_span,
            batch_span: s.batch_span,
        });
    }
}

/// Interns structural templates: queries with the same shape share one
/// rendered string, so the per-request timeline path pays a small numeric
/// key build plus a read-locked map hit instead of re-rendering
/// [`query_template`] (string sorts and a dozen allocations) on every
/// request. Shared between the server's hot path and the bench harness's
/// instrumentation-cost microbenchmark, so the gated number measures the
/// code the server actually runs.
pub struct TemplateInterner {
    map: RwLock<HashMap<Vec<u32>, Arc<str>>>,
}

impl Default for TemplateInterner {
    fn default() -> Self {
        Self::new()
    }
}

impl TemplateInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self {
            map: RwLock::new(HashMap::new()),
        }
    }

    /// Returns the interned [`query_template`] of `query`, rendering and
    /// caching it on first sight of the query's structural shape.
    pub fn get(&self, db: &Database, query: &Query) -> Arc<str> {
        let key = template_key(query);
        if let Some(t) = self.map.read().expect("template cache poisoned").get(&key) {
            return Arc::clone(t);
        }
        let rendered: Arc<str> = query_template(db, query).into();
        let mut map = self.map.write().expect("template cache poisoned");
        // Bounded against unbounded shape churn; real workloads cycle a
        // handful of shapes, so eviction is effectively unreachable.
        if map.len() >= 4096 {
            map.clear();
        }
        Arc::clone(map.entry(key).or_insert(rendered))
    }
}

/// The canonical numeric shape of a query — the cache key behind
/// [`query_template`]. Section lengths prefix the variable-size parts so
/// table/join boundaries stay unambiguous; joins and predicates are
/// canonicalized and sorted just like their rendered counterparts, so two
/// queries share a key exactly when they render the same template.
fn template_key(query: &Query) -> Vec<u32> {
    let mut tables: Vec<u32> = query.tables.iter().map(|t| t.0 as u32).collect();
    tables.sort_unstable();
    let mut joins: Vec<[u32; 4]> = query
        .joins
        .iter()
        .map(|j| {
            let l = [j.left.table.0 as u32, j.left.col as u32];
            let r = [j.right.table.0 as u32, j.right.col as u32];
            let ([lt, lc], [rt, rc]) = if l <= r { (l, r) } else { (r, l) };
            [lt, lc, rt, rc]
        })
        .collect();
    joins.sort_unstable();
    let mut preds: Vec<[u32; 3]> = query
        .qualified_predicates()
        .map(|(cr, p)| [cr.table.0 as u32, cr.col as u32, p.op_kind().index() as u32])
        .collect();
    preds.sort_unstable();
    let mut key = Vec::with_capacity(2 + tables.len() + 4 * joins.len() + 3 * preds.len());
    key.push(tables.len() as u32);
    key.extend_from_slice(&tables);
    key.push(joins.len() as u32);
    for j in &joins {
        key.extend_from_slice(j);
    }
    for p in &preds {
        key.extend_from_slice(p);
    }
    key
}

/// The structural template of a query: sorted table names, join equalities,
/// and predicate shapes with literals elided. Space-free by construction
/// (identifier characters only plus `,|+=<>?.`), so it survives the
/// one-token wire formats, and canonical, so the same query shape always
/// feeds the same per-template drift monitor regardless of literal values
/// or clause order.
pub fn query_template(db: &Database, query: &Query) -> String {
    let mut tables: Vec<&str> = query.tables.iter().map(|t| db.table(*t).name()).collect();
    tables.sort_unstable();
    let mut joins: Vec<String> = query
        .joins
        .iter()
        .map(|j| {
            let (l, r) = (db.col_name(j.left), db.col_name(j.right));
            if l <= r {
                format!("{l}={r}")
            } else {
                format!("{r}={l}")
            }
        })
        .collect();
    joins.sort();
    let mut preds: Vec<String> = query
        .qualified_predicates()
        .map(|(cr, p)| {
            // Comparison tokens keep their legacy spelling; the word-like
            // operators get dot delimiters so the template stays
            // unambiguous against identifier characters.
            let tok = match p.op_kind() {
                ds_storage::predicate::PredOpKind::In => ".IN.",
                ds_storage::predicate::PredOpKind::Like => ".LIKE.",
                k => k.sql(),
            };
            format!("{}{}?", db.col_name(cr), tok)
        })
        .collect();
    preds.sort();
    let mut out = tables.join(",");
    if !joins.is_empty() {
        out.push('|');
        out.push_str(&joins.join("+"));
    }
    if !preds.is_empty() {
        out.push('|');
        out.push_str(&preds.join("+"));
    }
    out
}

/// Answers one request line. Total: every path, including malformed input,
/// produces exactly one response.
fn handle_line(
    line: &str,
    shared: &Shared,
    t0: Instant,
) -> (Response, bool, Option<PendingTimeline>) {
    shared.metrics.record_request();
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(resp) => {
            shared.metrics.record_error();
            return (resp, false, None);
        }
    };
    match request {
        Request::Hello { version, .. } => (handle_hello(version, shared), false, None),
        Request::Snapshot { sketch } => (handle_snapshot(&sketch, shared), false, None),
        Request::Sync {
            name,
            generation,
            len,
            hex,
        } => (
            handle_sync(&name, generation, len, &hex, shared),
            false,
            None,
        ),
        Request::Estimate { sketch, sql, trace } => {
            let (resp, pending) = handle_estimate(&sketch, &sql, trace, None, shared, t0);
            (resp, false, pending)
        }
        Request::Feedback {
            sketch,
            actual,
            sql,
            trace,
        } => {
            let (resp, pending) = handle_estimate(&sketch, &sql, trace, Some(actual), shared, t0);
            (resp, false, pending)
        }
        Request::Info { sketch } => match shared.store.get(&sketch) {
            Ok(s) => (Response::Text(s.info().to_string()), false, None),
            Err(e) => {
                shared.metrics.record_error();
                (store_error_response(&e), false, None)
            }
        },
        Request::List => {
            let mut entries: Vec<String> = shared
                .store
                .list()
                .into_iter()
                .map(|(name, status)| format!("{name}={status:?}"))
                .collect();
            entries.sort();
            let payload = if entries.is_empty() {
                "(no sketches)".to_string()
            } else {
                entries.join(" ")
            };
            (Response::Text(payload), false, None)
        }
        Request::Metrics => (
            Response::Text(shared.metrics.snapshot().to_wire()),
            false,
            None,
        ),
        Request::Stats => (Response::Text(stats_payload(shared)), false, None),
        Request::Lifecycle { sketch } => (handle_lifecycle(&sketch, shared), false, None),
        Request::Trace => (Response::Text(trace_payload(shared)), false, None),
        Request::Quit => (Response::Bye, true, None),
    }
}

/// Negotiates the protocol version: the spoken version is the minimum of
/// the client's and the server's, provided the client is at least at
/// [`MIN_PROTOCOL_VERSION`]. The response advertises the server's feature
/// flags so the client can discover capabilities (`cache`,
/// `degraded-token`, `fleet`) instead of probing. A client that never
/// sends `HELLO` keeps speaking v1 unchanged.
fn handle_hello(version: u32, shared: &Shared) -> Response {
    if version < MIN_PROTOCOL_VERSION {
        shared.metrics.record_error();
        return Response::Error {
            code: ErrorCode::VersionMismatch,
            message: format!(
                "server speaks {MIN_PROTOCOL_VERSION}..={PROTOCOL_VERSION}, client sent {version}"
            ),
        };
    }
    let negotiated = version.min(PROTOCOL_VERSION);
    Response::Text(format!(
        "HELLO {negotiated} {}",
        SUPPORTED_FEATURES.join(",")
    ))
}

/// Ships the named sketch as a hex-encoded DSNP blob. The bytes are
/// exactly what [`SketchStore::save_snapshot`] would write to disk —
/// generation-keyed and checksum-trailed — so a replica adopting them gets
/// a bit-identical model.
fn handle_snapshot(sketch: &str, shared: &Shared) -> Response {
    match shared.store.export_snapshot(sketch, Some(&shared.monitors)) {
        Ok((bytes, generation)) => {
            shared.snapshots_shipped.fetch_add(1, Ordering::Relaxed);
            Response::Text(format!(
                "SNAPSHOT {sketch} {generation} {} {}",
                bytes.len(),
                encode_hex(&bytes)
            ))
        }
        Err(e) => {
            shared.metrics.record_error();
            store_error_response(&e)
        }
    }
}

/// Adopts a shipped DSNP blob into this shard's store, newest generation
/// wins. Every corruption path — bad hex, length mismatch, checksum/decode
/// failure, or a header that contradicts the announced name/generation —
/// is rejected with a typed `ERR decode` and the raw bytes are quarantined
/// under `<snapshot_dir>/quarantine/` for post-mortems; a corrupt transfer
/// is never adopted.
fn handle_sync(name: &str, generation: u64, len: u64, hex: &str, shared: &Shared) -> Response {
    let reject = |message: String, bytes: Option<&[u8]>, shared: &Shared| -> Response {
        shared.sync_rejected.fetch_add(1, Ordering::Relaxed);
        shared.metrics.record_error();
        if let Some(bytes) = bytes {
            quarantine_sync(bytes, shared);
        }
        Response::Error {
            code: ErrorCode::Decode,
            message,
        }
    };
    let bytes = match decode_hex(hex) {
        Some(b) => b,
        None => {
            return reject(
                format!("SYNC {name}: payload is not valid hex"),
                None,
                shared,
            )
        }
    };
    if bytes.len() as u64 != len {
        return reject(
            format!("SYNC {name}: announced {len} bytes, got {}", bytes.len()),
            Some(&bytes),
            shared,
        );
    }
    let snap = match decode_snapshot(&bytes) {
        Ok(s) => s,
        Err(e) => return reject(format!("SYNC {name}: {e}"), Some(&bytes), shared),
    };
    if snap.name != name || snap.generation != generation {
        return reject(
            format!(
                "SYNC {name}@{generation}: blob is {}@{}",
                snap.name, snap.generation
            ),
            Some(&bytes),
            shared,
        );
    }
    match shared.store.adopt_snapshot(snap, Some(&shared.monitors)) {
        Ok(AdoptOutcome::Adopted { generation }) => {
            shared.sync_adopted.fetch_add(1, Ordering::Relaxed);
            Response::Text(format!("SYNC {name} {generation} adopted"))
        }
        Ok(AdoptOutcome::Stale { current, .. }) => {
            shared.sync_stale.fetch_add(1, Ordering::Relaxed);
            Response::Text(format!("SYNC {name} {current} stale"))
        }
        Err(e) => {
            shared.sync_rejected.fetch_add(1, Ordering::Relaxed);
            quarantine_sync(&bytes, shared);
            shared.metrics.record_error();
            store_error_response(&e)
        }
    }
}

/// Preserves a rejected `SYNC` payload under `<snapshot_dir>/quarantine/`
/// (best effort, same policy as [`SketchStore::open_dir`] uses for corrupt
/// files found on disk). No-op when the server runs without a snapshot
/// directory.
fn quarantine_sync(bytes: &[u8], shared: &Shared) {
    let Some(dir) = shared.snapshot_dir.as_ref() else {
        return;
    };
    let seq = shared.sync_rejected.load(Ordering::Relaxed);
    let qdir = dir.join("quarantine");
    if std::fs::create_dir_all(&qdir).is_ok()
        && std::fs::write(qdir.join(format!("sync-reject-{seq}.dsnp")), bytes).is_ok()
    {
        ds_obs::global().count("serve/sync/quarantined", 1);
    }
}

/// Whether a rejection says something about the *sketch's* health (and
/// should trip its circuit breaker / route to the fallback) rather than
/// about the client's query or the server's load. Malformed/out-of-scope
/// queries and load shedding are not the model's fault.
fn health_failure(r: &Rejection) -> bool {
    match r {
        Rejection::Timeout => true,
        Rejection::Estimate(e) => matches!(
            e,
            EstimateError::Decode(_) | EstimateError::Unavailable(_) | EstimateError::Execution(_)
        ),
        Rejection::Busy { .. } | Rejection::ShuttingDown => false,
    }
}

/// Answers `query` through the configured fallback estimator, flagged
/// `degraded` on the wire. `None` when no fallback is configured or it
/// fails too (the caller then surfaces the original error).
fn degraded_answer(query: &ds_query::query::Query, shared: &Shared) -> Option<Response> {
    let fallback = shared.fallback.as_ref()?;
    match fallback.try_estimate(query) {
        Ok(v) => {
            shared.metrics.record_degraded();
            ds_obs::global().count("serve/degraded", 1);
            Some(Response::Degraded(v))
        }
        Err(_) => None,
    }
}

/// Estimates `sql` with the named sketch; with `feedback`, additionally
/// records the q-error against the observed true cardinality. Both paths
/// answer through the same batcher call, so a `FEEDBACK` estimate is
/// bit-identical to the `ESTIMATE` it grades.
///
/// The degradation chain wraps the happy path: an open circuit breaker
/// short-circuits straight to the fallback, and a health-style failure
/// (decode/execution/unavailable/timeout) trips the breaker and answers
/// through the fallback when one is configured — flagged `degraded` on the
/// wire, never silently.
fn handle_estimate(
    sketch: &str,
    sql: &str,
    trace: Option<TraceContext>,
    feedback: Option<u64>,
    shared: &Shared,
    t0: Instant,
) -> (Response, Option<PendingTimeline>) {
    let _span = ds_obs::global().span("serve/estimate");
    // A traced request gets this server's own span, parented under the
    // caller's; everything downstream (batch, mirror, exemplar) carries
    // the child context.
    let server_trace = trace.map(|ctx| (ctx, shared.ids.next_span()));
    let child_ctx = server_trace.map(|(ctx, span)| ctx.child(span));
    let (estimator, generation) = match shared.store.get_with_generation(sketch) {
        Ok(p) => p,
        Err(e) => {
            shared.metrics.record_error();
            shared.record_slos(None, true, None);
            return (store_error_response(&e), None);
        }
    };
    let query = match parse_query(&shared.db, sql) {
        Ok(q) => q,
        Err(e) => {
            shared.metrics.record_error();
            shared.record_slos(None, true, None);
            return (
                Response::Error {
                    code: ErrorCode::Parse,
                    message: e.0,
                },
                None,
            );
        }
    };
    let breaker = shared.breakers.breaker(sketch);
    if breaker.admit() == Admit::ShortCircuit {
        return match degraded_answer(&query, shared) {
            Some(resp) => {
                shared.metrics.record_ok(t0.elapsed());
                shared.record_slos(Some(t0.elapsed()), false, None);
                (resp, None)
            }
            None => {
                shared.metrics.record_error();
                shared.record_slos(None, true, None);
                (
                    Response::Error {
                        code: ErrorCode::NotReady,
                        message: format!("sketch '{sketch}' circuit open; no fallback configured"),
                    },
                    None,
                )
            }
        };
    }
    let template =
        (shared.timeline || feedback.is_some()).then(|| shared.templates.get(&shared.db, &query));
    // Shadow mirroring clones the query only while this sketch is actually
    // in the shadow phase — `shadowing` is one relaxed atomic load when no
    // candidate exists anywhere, keeping the steady-state path clone-free.
    let mirror_query = shared
        .lifecycle
        .as_ref()
        .filter(|lc| lc.manager.shadowing(sketch))
        .map(|_| query.clone());
    // Harvest key: graded queries dedupe on template + literals, so
    // re-grading the same concrete query refreshes (not duplicates) its
    // harvest entry.
    let harvest_key = (feedback.is_some() && shared.lifecycle.is_some())
        .then(|| harvest_key(template.as_deref().unwrap_or(""), &query));
    // The cache is consulted only while the breaker is fully closed: an
    // open circuit already short-circuited above, and a half-open probe
    // must exercise the real model to prove recovery — a warm cache must
    // never mask an unhealthy sketch.
    let cache = shared
        .cache
        .as_ref()
        .filter(|_| breaker.state_name() == "closed");
    // Building the key notes the store generation, eagerly purging entries
    // staled by a swap or remove/re-insert.
    let cache_key = cache.map(|c| c.key(sketch, generation, &query));
    // Drift detection compares this sketch's training-time baseline to the
    // template's rolling feedback; grab it before `estimator` moves.
    let baseline = (feedback.is_some() && cache.is_some())
        .then(|| estimator.baseline().cloned())
        .flatten();
    // Keep a copy for the fallback only when degradation can happen; the
    // non-degraded hot path stays clone-free.
    let fallback_query = shared.fallback.as_ref().map(|_| query.clone());
    let mut cache_hit = false;
    let outcome = if shared
        .faults
        .as_ref()
        .is_some_and(|f| f.is_poisoned(sketch))
    {
        // Injected fault: the in-memory model is corrupt; fail before the
        // forward pass, exactly where a real poisoned model would.
        Err(Rejection::Estimate(EstimateError::Execution(format!(
            "sketch '{sketch}' model poisoned (fault injection)"
        ))))
    } else if let Some(v) = cache_key.as_ref().and_then(|k| cache.unwrap().get(k)) {
        // Warm cache: the memoized answer is bit-identical to what the
        // forward pass produced when it was inserted, so the wire bytes
        // match a cold estimate exactly.
        cache_hit = true;
        let now = Instant::now();
        Ok((
            v,
            StageStamps {
                enqueued: now,
                dequeued: now,
                forward_start: now,
                forward_end: now,
                batch_span: 0,
            },
        ))
    } else {
        // The store generation keys the batch: jobs coalesce only within
        // one model version, so a concurrent retraining swap or
        // remove/re-insert can never mix models inside a batch.
        let result = shared
            .batcher
            .estimate_with_trace(generation, estimator, query, child_ctx);
        match result {
            Ok(_)
                if shared
                    .faults
                    .as_ref()
                    .is_some_and(|f| f.should_flip_decode(sketch)) =>
            {
                Err(Rejection::Estimate(EstimateError::Decode(format!(
                    "sketch '{sketch}' decode flipped (fault injection)"
                ))))
            }
            other => other,
        }
    };
    match outcome {
        Ok((v, stamps)) => {
            breaker.record_success();
            shared.metrics.record_ok(t0.elapsed());
            let qerror = feedback.map(|actual| ds_core::metrics::qerror(v, actual.max(1) as f64));
            shared.record_slos(Some(t0.elapsed()), false, qerror);
            let mut drifted = false;
            if let Some(actual) = feedback {
                let monitor = shared.monitors.monitor(sketch);
                let tmpl = template.as_deref().unwrap_or("");
                monitor.record(tmpl, v, actual as f64);
                // Graded queries feed the lifecycle harvest (and, post-swap,
                // the guard window) — the raw SQL rides along so the daemon
                // can re-parse it for incremental retraining.
                if let (Some(lc), Some(key)) = (shared.lifecycle.as_ref(), harvest_key.as_deref()) {
                    lc.manager.observe_feedback(sketch, key, sql, v, actual);
                }
                // FEEDBACK doubles as the drift signal: once this
                // template's rolling q-error degrades past the configured
                // ratio versus the training-time baseline, its cached
                // estimates are dropped (and this one is not re-inserted).
                if let (Some(c), Some(k), Some(base)) =
                    (cache, cache_key.as_ref(), baseline.as_ref())
                {
                    if let Some(rolling) = monitor.template_rolling(tmpl) {
                        let stale =
                            ds_core::maintain::accuracy_drift(base, &rolling).is_some_and(|d| {
                                d.is_stale(
                                    ds_core::maintain::DEFAULT_DRIFT_RATIO,
                                    ds_core::maintain::DEFAULT_MIN_SAMPLES,
                                )
                            });
                        if stale {
                            c.invalidate_template(sketch, k.shape());
                            drifted = true;
                        }
                    }
                }
            }
            if !cache_hit && !drifted {
                if let (Some(c), Some(k)) = (cache, cache_key) {
                    c.insert(k, v);
                }
            }
            // Mirror the request to the shadow scorer *after* answering is
            // decided: the candidate never contributes to the wire response,
            // and a full queue drops the mirror (counted), never the client.
            if let (Some(lc), Some(q)) = (shared.lifecycle.as_ref(), mirror_query) {
                let job = ShadowJob {
                    sketch: sketch.to_string(),
                    query: q,
                    live: v,
                    actual: feedback,
                    trace: child_ctx,
                };
                match lc.shadow_tx.try_send(job) {
                    Ok(()) => {
                        lc.mirrored.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        lc.shadow_dropped.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            let pending = shared.timeline.then(|| PendingTimeline {
                sketch: sketch.to_string(),
                template: Arc::clone(template.as_ref().expect("template built when timeline on")),
                stamps,
                trace: server_trace,
            });
            (Response::Estimate(v), pending)
        }
        Err(rejection) => {
            if health_failure(&rejection) {
                breaker.record_failure();
                if let Some(q) = fallback_query.as_ref() {
                    if let Some(resp) = degraded_answer(q, shared) {
                        shared.metrics.record_ok(t0.elapsed());
                        shared.record_slos(Some(t0.elapsed()), false, None);
                        return (resp, None);
                    }
                }
            }
            shared.record_slos(None, true, None);
            match rejection {
                Rejection::Busy { queued } => {
                    // The batcher already counted the shed.
                    (
                        Response::Busy(format!("admission queue full ({queued} waiting)")),
                        None,
                    )
                }
                Rejection::Timeout => {
                    // The batcher already counted the timeout.
                    (
                        Response::Error {
                            code: ErrorCode::Timeout,
                            message: "request deadline exceeded".to_string(),
                        },
                        None,
                    )
                }
                Rejection::ShuttingDown => {
                    shared.metrics.record_error();
                    (
                        Response::Error {
                            code: ErrorCode::Internal,
                            message: "server shutting down".to_string(),
                        },
                        None,
                    )
                }
                Rejection::Estimate(e) => {
                    shared.metrics.record_error();
                    (estimate_error_response(&e), None)
                }
            }
        }
    }
}

/// The harvest deduplication key: the interner's canonical template plus
/// the concrete literals in a sorted, stable rendering. Two gradings of
/// the same concrete query collide (refreshing that harvest entry); the
/// same template with different literals stays distinct.
fn harvest_key(template: &str, query: &ds_query::query::Query) -> String {
    use std::fmt::Write as _;
    let mut preds: Vec<(usize, usize, u32, Vec<i64>)> = query
        .qualified_predicates()
        .map(|(cr, p)| {
            let (op, lits) = crate::cache::pred_code_and_lits(p);
            (cr.table.0, cr.col, op, lits)
        })
        .collect();
    preds.sort_unstable();
    let mut key = String::with_capacity(template.len() + preds.len() * 12);
    key.push_str(template);
    for (t, c, op, lits) in preds {
        // Op codes < 3 are single-literal comparisons and keep the legacy
        // `#{t}.{c}:{op}={lit}` spelling; IN/LIKE render their full
        // literal vector so distinct lists and patterns stay distinct.
        let _ = write!(key, "#{t}.{c}:{op}=");
        for (i, lit) in lits.iter().enumerate() {
            if i > 0 {
                key.push(',');
            }
            let _ = write!(key, "{lit}");
        }
    }
    key
}

/// The lifecycle daemon loop: drains mirrored shadow jobs, steps the
/// retrain state machine every `tick_interval`, and persists dirty
/// harvest sets alongside the snapshots. Persists once more on shutdown
/// so a graceful stop never loses harvested queries.
fn run_lifecycle_daemon(shared: &Arc<Shared>, rx: &Receiver<ShadowJob>) {
    let lc = shared
        .lifecycle
        .as_ref()
        .expect("daemon spawned only with lifecycle configured");
    let tick_every = lc.manager.config().tick_interval;
    let mut last_tick = Instant::now();
    while !shared.shutting_down.load(Ordering::SeqCst) {
        match rx.recv_timeout(tick_every.min(POLL_INTERVAL)) {
            Ok(job) => shadow_score(job, shared),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
        if last_tick.elapsed() >= tick_every {
            last_tick = Instant::now();
            lc.manager.tick(
                &shared.store,
                &shared.monitors,
                &shared.db,
                shared.snapshot_dir.as_deref(),
            );
            if let Some(dir) = shared.snapshot_dir.as_deref() {
                lc.manager.persist_harvests(dir);
            }
        }
    }
    if let Some(dir) = shared.snapshot_dir.as_deref() {
        lc.manager.persist_harvests(dir);
    }
}

/// Scores one mirrored request on the shadow candidate. The candidate
/// answers through the same batcher as live traffic — bit-exact mirroring
/// — but under its *reserved* generation, so mirrored jobs can never
/// coalesce into a live batch and the candidate never serves a client.
/// Graded mirrors (FEEDBACK) feed the shadow gate; ungraded ones still
/// run to keep mirroring cost honest but record nothing.
fn shadow_score(job: ShadowJob, shared: &Shared) {
    let Some(lc) = shared.lifecycle.as_ref() else {
        return;
    };
    let Some((candidate, shadow_generation)) = lc.manager.shadow_pair(&job.sketch) else {
        return;
    };
    let Ok((candidate_v, _)) =
        shared
            .batcher
            .estimate_with_trace(shadow_generation, candidate, job.query, job.trace)
    else {
        return;
    };
    if let Some(actual) = job.actual {
        let truth = actual.max(1) as f64;
        lc.manager.observe_shadow(
            &job.sketch,
            ds_core::metrics::qerror(job.live, truth),
            ds_core::metrics::qerror(candidate_v, truth),
        );
    }
}

/// `LIFECYCLE <sketch>`: one-line status of the retrain-and-hot-swap
/// state machine. Per-sketch phase and shadow medians come from the
/// manager; the counters are manager-wide so an operator can watch a
/// drill converge over a single connection.
fn handle_lifecycle(sketch: &str, shared: &Shared) -> Response {
    let Some(lc) = shared.lifecycle.as_ref() else {
        return Response::Text(format!("LIFECYCLE {sketch} disabled"));
    };
    let status = lc.manager.status(sketch);
    // A sketch with no lifecycle state yet reads as Idle — but an unknown
    // name should answer like INFO does, with the store error.
    if status.phase == LifecyclePhase::Idle && status.harvested == 0 {
        if let Err(e) = shared.store.get(sketch) {
            return store_error_response(&e);
        }
    }
    let c = lc.manager.counters();
    Response::Text(format!(
        "LIFECYCLE {sketch} phase={} generation={} harvested={} shadow_samples={} \
         shadow_live_p50={:.3} shadow_candidate_p50={:.3} swaps={} rollbacks={} \
         gate_rejects={} retrains={} promotions={}",
        status.phase.as_str(),
        shared.store.generation(sketch).unwrap_or(0),
        status.harvested,
        status.shadow_samples,
        status.shadow_live_p50,
        status.shadow_candidate_p50,
        c.swaps,
        c.rollbacks,
        c.gate_rejects,
        c.retrains_started,
        c.promotions,
    ))
}

/// Renders every counter, gauge, and histogram as Prometheus text
/// exposition. Real newlines cannot cross the one-line wire, so they are
/// escaped as literal `\n`; [`crate::Client::stats`] reverses this.
fn stats_payload(shared: &Shared) -> String {
    let m = &shared.metrics;
    let mut p = PromText::new();
    p.counter("serve/requests", m.requests.get())
        .counter("serve/ok", m.ok.get())
        .counter("serve/errors", m.errors.get())
        .counter("serve/shed", m.shed.get())
        .counter("serve/timeouts", m.timeouts.get())
        .counter("serve/degraded", m.degraded.get())
        .counter("serve/batches", m.batches.get());
    if let Some(c) = shared.cache.as_ref() {
        p.counter("serve/cache/hits", c.hits())
            .counter("serve/cache/misses", c.misses())
            .counter("serve/cache/evictions", c.evictions())
            .counter("serve/cache/invalidations", c.invalidations())
            .gauge("serve/cache/len", c.len() as f64);
    }
    p.counter(
        "serve/snapshots_shipped",
        shared.snapshots_shipped.load(Ordering::Relaxed),
    )
    .counter(
        "serve/sync/adopted",
        shared.sync_adopted.load(Ordering::Relaxed),
    )
    .counter(
        "serve/sync/stale",
        shared.sync_stale.load(Ordering::Relaxed),
    )
    .counter(
        "serve/sync/rejected",
        shared.sync_rejected.load(Ordering::Relaxed),
    );
    p.counter("serve/expired_jobs", shared.batcher.expired_jobs())
        .gauge("serve/queue_len", shared.batcher.queue_len() as f64)
        .gauge(
            "serve/active_connections",
            shared.active_connections.load(Ordering::SeqCst) as f64,
        )
        .summary("serve/latency_us", &m.latency_us.snapshot())
        .summary("serve/batch_size", &m.batch_size.snapshot())
        // Native histogram exposition beside the summaries: unlike
        // summary quantiles, cumulative buckets merge exactly across
        // shards (the fleet aggregator reconstructs and re-merges them).
        .histogram("serve/latency_us/hist", &m.latency_us.snapshot())
        .histogram("serve/batch_size/hist", &m.batch_size.snapshot())
        .summary("serve/stage/parse_us", &m.stage_parse_us.snapshot())
        .summary("serve/stage/queue_us", &m.stage_queue_us.snapshot())
        .summary(
            "serve/stage/batch_wait_us",
            &m.stage_batch_wait_us.snapshot(),
        )
        .summary("serve/stage/forward_us", &m.stage_forward_us.snapshot())
        .summary("serve/stage/write_us", &m.stage_write_us.snapshot())
        .counter(
            "serve/trace/kept",
            m.slow.pushed().saturating_sub(m.slow.dropped()),
        )
        .counter("serve/trace/dropped", m.slow.dropped());
    for name in shared.breakers.names() {
        let b = shared.breakers.breaker(&name);
        p.counter(&format!("serve/breaker/{name}/opened"), b.opened())
            .counter(
                &format!("serve/breaker/{name}/short_circuits"),
                b.short_circuits(),
            )
            .gauge(
                &format!("serve/breaker/{name}/open"),
                if b.is_open() { 1.0 } else { 0.0 },
            );
    }
    for name in shared.monitors.names() {
        if let Some(mon) = shared.monitors.get(&name) {
            p.summary(&format!("feedback/{name}/qerror_scaled"), &mon.rolling());
        }
    }
    if let Some(lc) = shared.lifecycle.as_ref() {
        let c = lc.manager.counters();
        p.counter("serve/lifecycle/harvested", c.harvested)
            .counter("serve/lifecycle/retrains_started", c.retrains_started)
            .counter("serve/lifecycle/retrains_failed", c.retrains_failed)
            .counter("serve/lifecycle/gate_rejects", c.gate_rejects)
            .counter("serve/lifecycle/swaps", c.swaps)
            .counter("serve/lifecycle/rollbacks", c.rollbacks)
            .counter("serve/lifecycle/promotions", c.promotions)
            .counter(
                "serve/lifecycle/mirrored",
                lc.mirrored.load(Ordering::Relaxed),
            )
            .counter(
                "serve/lifecycle/shadow_dropped",
                lc.shadow_dropped.load(Ordering::Relaxed),
            );
        for status in lc.manager.statuses() {
            let name = &status.sketch;
            let delta = if status.shadow_live_p50 > 0.0 {
                status.shadow_candidate_p50 / status.shadow_live_p50
            } else {
                0.0
            };
            p.gauge(
                &format!("serve/lifecycle/{name}/phase"),
                f64::from(status.phase.code()),
            )
            .gauge(
                &format!("serve/lifecycle/{name}/harvested"),
                status.harvested as f64,
            )
            .gauge(&format!("serve/lifecycle/{name}/shadow_delta"), delta);
        }
    }
    if !shared.slos.is_empty() {
        let now = shared.now_ms();
        for slo in &shared.slos {
            slo.tracker.render(now, &mut p);
        }
    }
    p.tracer(ds_obs::global());
    p.into_string().trim_end().replace('\n', "\\n")
}

/// Renders the slow-request exemplar ring as semicolon-separated records,
/// oldest first.
fn trace_payload(shared: &Shared) -> String {
    let exemplars = shared.metrics.slow.snapshot();
    if exemplars.is_empty() {
        return "(none)".to_string();
    }
    exemplars
        .iter()
        .map(RequestTimeline::to_wire)
        .collect::<Vec<_>>()
        .join(";")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_storage::gen::{imdb_database, ImdbConfig};

    #[test]
    fn interner_shares_one_rendering_per_query_shape() {
        let db = imdb_database(&ImdbConfig::tiny(3));
        let interner = TemplateInterner::new();
        // Same shape, different literals and clause order → one entry.
        let a = parse_query(
            &db,
            "SELECT COUNT(*) FROM title t, movie_keyword mk \
             WHERE mk.movie_id = t.id AND t.production_year > 1995",
        )
        .expect("parse");
        let b = parse_query(
            &db,
            "SELECT COUNT(*) FROM movie_keyword mk, title t \
             WHERE t.production_year > 2001 AND mk.movie_id = t.id",
        )
        .expect("parse");
        let ta = interner.get(&db, &a);
        let tb = interner.get(&db, &b);
        assert!(Arc::ptr_eq(&ta, &tb), "same shape must intern to one Arc");
        assert_eq!(ta.as_ref(), query_template(&db, &a));
        assert_eq!(ta.as_ref(), query_template(&db, &b));

        // A different operator on the same column is a different shape.
        let c = parse_query(
            &db,
            "SELECT COUNT(*) FROM title t, movie_keyword mk \
             WHERE mk.movie_id = t.id AND t.production_year < 1995",
        )
        .expect("parse");
        let tc = interner.get(&db, &c);
        assert!(!Arc::ptr_eq(&ta, &tc));
        assert_eq!(tc.as_ref(), query_template(&db, &c));
    }
}
