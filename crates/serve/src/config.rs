//! Server configuration behind a validating builder.
//!
//! [`ServeConfig`] started as a flat struct mutated field-by-field across
//! tests and benches; nothing checked that the knobs made sense together
//! (a `queue_capacity` smaller than `max_batch` can never fill a batch, a
//! tiny cache behind a large batch thrashes instead of helping). The
//! builder is now the only way to construct a non-default config:
//! [`ServeConfig::builder`] collects the knobs, [`ServeConfigBuilder::build`]
//! validates the invariants once, and the server can trust every config it
//! receives.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use ds_core::lifecycle::LifecycleConfig;
use ds_obs::SloSpec;

use crate::batcher::SharedEstimator;
use crate::breaker::BreakerConfig;
use crate::faults::FaultInjector;

/// The serving signal a declarative SLO grades requests against.
#[derive(Debug, Clone, PartialEq)]
pub enum SloSignal {
    /// Latency objective: a request is good when it finishes within the
    /// threshold (µs).
    LatencyUs(u64),
    /// Availability objective: a request is good unless it produced an
    /// `ERR`/`BUSY` response.
    Errors,
    /// Accuracy objective: a graded `FEEDBACK` request is good when its
    /// q-error stays at or below this bound.
    QErrorMax(f64),
}

/// One declarative serving SLO: the burn-rate spec plus the signal that
/// classifies each request as good or bad.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSlo {
    /// Windows, objective, and burn thresholds.
    pub spec: SloSpec,
    /// What the SLO measures.
    pub signal: SloSignal,
}

impl ServeSlo {
    /// A paging-priority latency SLO: `objective` of requests finish
    /// within `threshold_us`.
    pub fn latency(name: &str, objective: f64, threshold_us: u64) -> Self {
        Self {
            spec: SloSpec::paging(name, objective),
            signal: SloSignal::LatencyUs(threshold_us),
        }
    }

    /// A paging-priority availability SLO: `objective` of requests do not
    /// error.
    pub fn errors(name: &str, objective: f64) -> Self {
        Self {
            spec: SloSpec::paging(name, objective),
            signal: SloSignal::Errors,
        }
    }

    /// A paging-priority accuracy SLO over graded `FEEDBACK` requests:
    /// `objective` of them land at or below `max_qerror`.
    pub fn accuracy(name: &str, objective: f64, max_qerror: f64) -> Self {
        Self {
            spec: SloSpec::paging(name, objective),
            signal: SloSignal::QErrorMax(max_qerror),
        }
    }

    /// Validates the spec plus the signal's own bounds.
    pub fn validate(&self) -> Result<(), String> {
        self.spec.validate()?;
        if let SloSignal::QErrorMax(q) = self.signal {
            if !q.is_finite() || q < 1.0 {
                return Err(format!(
                    "slo '{}': q-error bound must be finite and >= 1, got {q}",
                    self.spec.name
                ));
            }
        }
        Ok(())
    }
}

/// Validated server tuning knobs. Construct the default with
/// [`ServeConfig::default`] or anything else through
/// [`ServeConfig::builder`]; the fields themselves are crate-private so an
/// invalid combination cannot be assembled by hand.
#[derive(Clone)]
pub struct ServeConfig {
    /// Bind address; port 0 lets the OS pick one.
    pub(crate) addr: String,
    /// Batch worker threads.
    pub(crate) workers: usize,
    /// Maximum queries coalesced into one forward pass (1 disables
    /// coalescing).
    pub(crate) max_batch: usize,
    /// Admission-queue bound; beyond it `ESTIMATE` sheds with `BUSY`.
    pub(crate) queue_capacity: usize,
    /// Per-request deadline.
    pub(crate) request_timeout: Duration,
    /// Concurrent-connection cap.
    pub(crate) max_connections: usize,
    /// Record per-request stage timelines.
    pub(crate) timeline: bool,
    /// Requests at least this slow become `TRACE` exemplars.
    pub(crate) slow_threshold: Duration,
    /// Fallback estimator for the degradation chain.
    pub(crate) fallback: Option<SharedEstimator>,
    /// Per-sketch circuit-breaker thresholds.
    pub(crate) breaker: BreakerConfig,
    /// Deterministic fault plan for degradation tests.
    pub(crate) faults: Option<Arc<FaultInjector>>,
    /// Capacity of the template-keyed estimate cache (0 disables).
    pub(crate) cache_capacity: usize,
    /// Directory for durable snapshots; when set, corrupt `SYNC` transfers
    /// are quarantined under `<dir>/quarantine/` for post-mortems.
    pub(crate) snapshot_dir: Option<PathBuf>,
    /// Retrain-and-hot-swap lifecycle; `None` disables the daemon (no
    /// harvesting, no shadow mirroring, `LIFECYCLE` answers "disabled").
    pub(crate) lifecycle: Option<LifecycleConfig>,
    /// Declarative serving SLOs, evaluated per request and exported with
    /// burn rates in `STATS`. Empty disables SLO tracking.
    pub(crate) slos: Vec<ServeSlo>,
}

impl ServeConfig {
    /// Starts a builder seeded with the default knobs.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder {
            cfg: Self::default(),
        }
    }

    /// The bind address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Batch worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Maximum queries coalesced into one forward pass.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Capacity of the template-keyed estimate cache (0 = disabled).
    pub fn cache_capacity(&self) -> usize {
        self.cache_capacity
    }

    /// Per-request deadline.
    pub fn request_timeout(&self) -> Duration {
        self.request_timeout
    }
}

impl std::fmt::Debug for ServeConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServeConfig")
            .field("addr", &self.addr)
            .field("workers", &self.workers)
            .field("max_batch", &self.max_batch)
            .field("queue_capacity", &self.queue_capacity)
            .field("request_timeout", &self.request_timeout)
            .field("max_connections", &self.max_connections)
            .field("timeline", &self.timeline)
            .field("slow_threshold", &self.slow_threshold)
            .field(
                "fallback",
                &self.fallback.as_ref().map(|e| e.name().to_string()),
            )
            .field("breaker", &self.breaker)
            .field("faults", &self.faults)
            .field("cache_capacity", &self.cache_capacity)
            .field("snapshot_dir", &self.snapshot_dir)
            .field("lifecycle", &self.lifecycle)
            .field("slos", &self.slos)
            .finish()
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            max_batch: 64,
            queue_capacity: 1024,
            request_timeout: Duration::from_secs(2),
            max_connections: 256,
            timeline: true,
            slow_threshold: Duration::from_millis(1),
            fallback: None,
            breaker: BreakerConfig::default(),
            faults: None,
            cache_capacity: 4096,
            snapshot_dir: None,
            lifecycle: None,
            slos: Vec::new(),
        }
    }
}

/// A knob combination [`ServeConfigBuilder::build`] refused, with the
/// invariant it violates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(pub String);

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid serve config: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

impl From<ConfigError> for std::io::Error {
    fn from(e: ConfigError) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, e)
    }
}

/// Builder for [`ServeConfig`]. Setters collect; [`ServeConfigBuilder::build`]
/// validates the cross-field invariants once:
///
/// * `workers`, `max_batch`, `max_connections` ≥ 1;
/// * `queue_capacity` ≥ `max_batch` — a queue that cannot hold one full
///   batch would make the configured batch size unreachable;
/// * `cache_capacity` is 0 (disabled) or ≥ `max_batch` — a cache smaller
///   than one coalesced batch evicts its own batchmates and thrashes;
/// * `request_timeout` > 0 and `addr` non-empty.
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    cfg: ServeConfig,
}

impl ServeConfigBuilder {
    /// Bind address (`host:port`; port 0 lets the OS pick).
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.cfg.addr = addr.into();
        self
    }

    /// Batch worker threads.
    pub fn workers(mut self, workers: usize) -> Self {
        self.cfg.workers = workers;
        self
    }

    /// Maximum queries coalesced into one forward pass. 1 disables
    /// coalescing (useful as a baseline).
    pub fn max_batch(mut self, max_batch: usize) -> Self {
        self.cfg.max_batch = max_batch;
        self
    }

    /// Admission-queue bound; beyond it `ESTIMATE` sheds with `BUSY`.
    pub fn queue_capacity(mut self, queue_capacity: usize) -> Self {
        self.cfg.queue_capacity = queue_capacity;
        self
    }

    /// Per-request deadline.
    pub fn request_timeout(mut self, timeout: Duration) -> Self {
        self.cfg.request_timeout = timeout;
        self
    }

    /// Concurrent-connection cap; excess connections are told `BUSY` and
    /// closed.
    pub fn max_connections(mut self, max_connections: usize) -> Self {
        self.cfg.max_connections = max_connections;
        self
    }

    /// Record per-request stage timelines (parse/queue-wait/batch-wait/
    /// forward/write histograms plus slow-request exemplars).
    pub fn timeline(mut self, timeline: bool) -> Self {
        self.cfg.timeline = timeline;
        self
    }

    /// Requests at least this slow end to end are kept as `TRACE`
    /// exemplars. Zero keeps every request.
    pub fn slow_threshold(mut self, threshold: Duration) -> Self {
        self.cfg.slow_threshold = threshold;
        self
    }

    /// Fallback estimator for the degradation chain; `None` disables
    /// degradation (unhealthy sketches return their typed errors).
    pub fn fallback(mut self, fallback: Option<SharedEstimator>) -> Self {
        self.cfg.fallback = fallback;
        self
    }

    /// Per-sketch circuit-breaker thresholds.
    pub fn breaker(mut self, breaker: BreakerConfig) -> Self {
        self.cfg.breaker = breaker;
        self
    }

    /// Deterministic fault plan for degradation tests (`None` in
    /// production; inert in release builds).
    pub fn faults(mut self, faults: Option<Arc<FaultInjector>>) -> Self {
        self.cfg.faults = faults;
        self
    }

    /// Capacity of the template-keyed estimate cache. `0` disables
    /// caching; any other value must cover at least one full batch.
    pub fn cache_capacity(mut self, cache_capacity: usize) -> Self {
        self.cfg.cache_capacity = cache_capacity;
        self
    }

    /// Directory for durable snapshots and the quarantine of corrupt
    /// `SYNC` transfers.
    pub fn snapshot_dir(mut self, dir: Option<PathBuf>) -> Self {
        self.cfg.snapshot_dir = dir;
        self
    }

    /// Enables the retrain-and-hot-swap lifecycle daemon. Its own
    /// invariants are validated in [`ServeConfigBuilder::build`].
    pub fn lifecycle(mut self, lifecycle: Option<LifecycleConfig>) -> Self {
        self.cfg.lifecycle = lifecycle;
        self
    }

    /// Declarative serving SLOs evaluated per request (latency, errors,
    /// accuracy), exported with burn rates in `STATS`. Names must be
    /// unique; each is validated in [`ServeConfigBuilder::build`].
    pub fn slos(mut self, slos: Vec<ServeSlo>) -> Self {
        self.cfg.slos = slos;
        self
    }

    /// Validates the invariants and returns the config, or a
    /// [`ConfigError`] naming the first violated one.
    pub fn build(self) -> Result<ServeConfig, ConfigError> {
        let c = &self.cfg;
        if c.addr.trim().is_empty() {
            return Err(ConfigError("addr must be non-empty".to_string()));
        }
        if c.workers == 0 {
            return Err(ConfigError("workers must be >= 1".to_string()));
        }
        if c.max_batch == 0 {
            return Err(ConfigError(
                "max_batch must be >= 1 (1 disables coalescing)".to_string(),
            ));
        }
        if c.queue_capacity < c.max_batch {
            return Err(ConfigError(format!(
                "queue_capacity {} cannot hold one full batch of {}",
                c.queue_capacity, c.max_batch
            )));
        }
        if c.max_connections == 0 {
            return Err(ConfigError("max_connections must be >= 1".to_string()));
        }
        if c.request_timeout.is_zero() {
            return Err(ConfigError("request_timeout must be > 0".to_string()));
        }
        if c.cache_capacity != 0 && c.cache_capacity < c.max_batch {
            return Err(ConfigError(format!(
                "cache_capacity {} is smaller than max_batch {}: one coalesced \
                 batch would evict its own batchmates (use 0 to disable caching)",
                c.cache_capacity, c.max_batch
            )));
        }
        if let Some(lc) = c.lifecycle.as_ref() {
            lc.validate().map_err(ConfigError)?;
        }
        for (i, slo) in c.slos.iter().enumerate() {
            slo.validate().map_err(ConfigError)?;
            if c.slos[..i].iter().any(|s| s.spec.name == slo.spec.name) {
                return Err(ConfigError(format!(
                    "duplicate slo name '{}'",
                    slo.spec.name
                )));
            }
        }
        Ok(self.cfg)
    }

    /// [`ServeConfigBuilder::build`], panicking on an invalid combination
    /// — for tests and benches whose configs are compile-time constants.
    pub fn build_or_panic(self) -> ServeConfig {
        self.build().expect("valid serve config")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        // The Default impl and the builder must never drift apart.
        ServeConfig::builder().build().expect("default is valid");
    }

    #[test]
    fn builder_sets_every_knob() {
        let faults = Arc::new(FaultInjector::new(3));
        let cfg = ServeConfig::builder()
            .addr("0.0.0.0:0")
            .workers(4)
            .max_batch(8)
            .queue_capacity(64)
            .request_timeout(Duration::from_secs(30))
            .max_connections(12)
            .timeline(false)
            .slow_threshold(Duration::ZERO)
            .breaker(BreakerConfig {
                failure_threshold: 1,
                cooldown: Duration::from_millis(5),
            })
            .faults(Some(Arc::clone(&faults)))
            .cache_capacity(0)
            .snapshot_dir(Some(PathBuf::from("/tmp/snaps")))
            .lifecycle(Some(LifecycleConfig::default()))
            .slos(vec![
                ServeSlo::latency("latency-p99", 0.99, 5_000),
                ServeSlo::errors("availability", 0.999),
                ServeSlo::accuracy("qerror", 0.95, 16.0),
            ])
            .build()
            .expect("valid");
        assert_eq!(cfg.addr(), "0.0.0.0:0");
        assert_eq!(cfg.workers(), 4);
        assert_eq!(cfg.max_batch(), 8);
        assert_eq!(cfg.cache_capacity(), 0);
        assert_eq!(cfg.request_timeout(), Duration::from_secs(30));
        assert!(!cfg.timeline);
        assert_eq!(cfg.snapshot_dir.as_deref(), Some("/tmp/snaps".as_ref()));
        assert!(cfg.faults.is_some());
        assert!(cfg.lifecycle.is_some());
        assert_eq!(cfg.slos.len(), 3);
    }

    #[test]
    fn invariants_are_enforced() {
        let violations: Vec<(&str, ServeConfigBuilder)> = vec![
            ("empty addr", ServeConfig::builder().addr("  ")),
            ("zero workers", ServeConfig::builder().workers(0)),
            ("zero max_batch", ServeConfig::builder().max_batch(0)),
            (
                "queue smaller than batch",
                ServeConfig::builder().max_batch(64).queue_capacity(8),
            ),
            (
                "zero max_connections",
                ServeConfig::builder().max_connections(0),
            ),
            (
                "zero timeout",
                ServeConfig::builder().request_timeout(Duration::ZERO),
            ),
            (
                "cache smaller than batch",
                ServeConfig::builder().max_batch(64).cache_capacity(8),
            ),
            (
                "invalid lifecycle sub-config",
                ServeConfig::builder().lifecycle(Some(LifecycleConfig {
                    shadow_gate_ratio: 0.0,
                    ..LifecycleConfig::default()
                })),
            ),
            (
                "slo objective out of range",
                ServeConfig::builder().slos(vec![ServeSlo::latency("lat", 1.5, 1000)]),
            ),
            (
                "slo q-error bound below 1",
                ServeConfig::builder().slos(vec![ServeSlo::accuracy("acc", 0.99, 0.5)]),
            ),
            (
                "duplicate slo names",
                ServeConfig::builder().slos(vec![
                    ServeSlo::latency("dup", 0.99, 1000),
                    ServeSlo::errors("dup", 0.999),
                ]),
            ),
        ];
        for (what, builder) in violations {
            assert!(builder.build().is_err(), "{what} must be rejected");
        }
        // The documented escape hatches stay valid.
        assert!(ServeConfig::builder()
            .max_batch(1)
            .cache_capacity(0)
            .build()
            .is_ok());
    }
}
