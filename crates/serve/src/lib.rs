//! `ds-serve`: a concurrent sketch-serving front end.
//!
//! A multi-threaded TCP server that exposes a [`SketchStore`] over a small
//! line-based text protocol (`ESTIMATE`, `INFO`, `LIST`, `METRICS`,
//! `QUIT`), built on the unified [`CardinalityEstimator`] API:
//!
//! * **Coalescing** — concurrent in-flight estimates against the same
//!   sketch are gathered into micro-batches and answered through one
//!   `estimate_batch` forward pass ([`batcher`]). Results are bit-identical
//!   to per-request `estimate_one` calls.
//! * **Caching** — a bounded, template-keyed estimate cache ([`cache`])
//!   short-circuits repeat healthy `ESTIMATE`s with bit-identical answers;
//!   entries are generation-keyed so sketch swaps invalidate structurally,
//!   and `FEEDBACK`-detected accuracy drift purges the drifting template.
//! * **Robustness** — per-request deadlines, a bounded admission queue
//!   that sheds with `BUSY`, a connection cap, and graceful shutdown that
//!   drains in-flight work ([`server`]).
//! * **Observability** — lock-free counters and log₂ latency/batch-size
//!   histograms, exposed through the `METRICS` command ([`metrics`]);
//!   per-request stage timelines (parse → queue-wait → batch-wait →
//!   forward → write) with slow-request exemplars behind `TRACE`, and a
//!   full Prometheus-style exposition behind `STATS`.
//! * **Model-quality feedback** — the `FEEDBACK` command replays observed
//!   true cardinalities into per-sketch rolling q-error monitors
//!   ([`ds_core::monitor`]); [`Server::monitors`] exposes them so
//!   maintenance can compare against each sketch's training-time baseline
//!   and recommend retraining
//!   ([`ds_core::advisor::recommend_retraining`]).
//! * **Graceful degradation** — per-sketch circuit breakers ([`breaker`])
//!   trip on consecutive health failures and route `ESTIMATE` traffic to a
//!   configured fallback estimator, flagged `degraded` on the wire; a
//!   deterministic fault-injection layer ([`faults`], inert in release
//!   builds) lets the degradation tests drive decode errors, stalled
//!   forward passes, and poisoned models through the real serving path.
//! * **Fleet** — a sharded, replicated tier ([`fleet`]): consistent-hash
//!   placement of sketches across shard servers with R-way replication,
//!   replicas bootstrapped by shipping `DSNP` snapshots over the wire
//!   (`SNAPSHOT`/`SYNC`), gossip-fed routing in [`FleetClient`], and
//!   automatic failover with re-replication when a replica dies. The wire
//!   protocol is versioned (`HELLO`) so old clients keep working.
//! * **Fleet observability** — cross-process trace propagation: a
//!   [`FleetClient`] mints one 128-bit trace per routed request and
//!   attaches it as a v3 `trace=` token; every shard records its spans
//!   into `TRACE` exemplars, and the `ds_fleetmon` aggregator scrapes
//!   all shards, merges their `STATS` expositions exactly (counters sum,
//!   histograms merge bucket-wise), and stitches cross-shard exemplars
//!   into one causal tree per trace. Declarative SLOs
//!   ([`ServeConfigBuilder::slos`]) grade every request and export
//!   multi-window burn rates; a firing burn alert demotes the shard in
//!   gossip-fed routing exactly like a breaker trip.
//! * **Self-maintaining serving** — an optional lifecycle daemon
//!   ([`ds_core::lifecycle`], enabled via
//!   [`ServeConfigBuilder::lifecycle`]) harvests `FEEDBACK`-graded
//!   queries, retrains a candidate off the hot path when drift fires,
//!   shadow-scores it on mirrored `ESTIMATE` traffic, and hot-swaps it
//!   under a fresh store generation — snapshotting first and rolling back
//!   automatically if post-swap accuracy regresses. Status behind the
//!   `LIFECYCLE` verb and `STATS` gauges.
//!
//! ```no_run
//! use std::sync::Arc;
//! use ds_serve::{Client, ServeConfig, Server};
//!
//! # fn demo(db: Arc<ds_storage::catalog::Database>,
//! #         store: Arc<ds_core::store::SketchStore>) -> std::io::Result<()> {
//! let server = Server::start(db, store, ServeConfig::default())?;
//! let mut client = Client::connect(server.local_addr())?;
//! let card = client.estimate_value("imdb", "SELECT COUNT(*) FROM title")?;
//! println!("estimated cardinality: {card}");
//! client.quit()?;
//! server.shutdown();
//! # Ok(())
//! # }
//! ```
//!
//! [`SketchStore`]: ds_core::store::SketchStore
//! [`CardinalityEstimator`]: ds_est::CardinalityEstimator

#![warn(missing_docs)]

pub mod batcher;
pub mod breaker;
pub mod cache;
pub mod client;
pub mod config;
pub mod connection;
pub mod faults;
pub mod fleet;
pub mod metrics;
pub mod protocol;
pub mod server;

pub use batcher::{Batcher, BatcherConfig, Completed, Rejection, SharedEstimator, StageStamps};
pub use breaker::{Admit, BreakerConfig, BreakerRegistry, CircuitBreaker};
pub use cache::{EstimateCache, EstimateKey};
pub use client::{Client, InfoCard};
pub use config::{ConfigError, ServeConfig, ServeConfigBuilder, ServeSlo, SloSignal};
pub use connection::{Connection, Handshake, SyncAck};
pub use ds_core::lifecycle::{
    LifecycleConfig, LifecycleCounters, LifecycleManager, LifecyclePhase, LifecycleStatus,
};
pub use faults::FaultInjector;
pub use fleet::{
    Fleet, FleetClient, FleetClientConfig, FleetConfig, FleetTopology, HashRing, ShardHealth,
};
pub use metrics::{LogHistogram, Metrics, MetricsSnapshot, RequestTimeline};
pub use protocol::{
    format_response, parse_request, ErrorCode, Request, Response, PROTOCOL_VERSION,
    SUPPORTED_FEATURES,
};
pub use server::{query_template, Server, TemplateInterner};
