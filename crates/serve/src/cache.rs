//! The template-keyed estimate cache: memoizes healthy `ESTIMATE` answers
//! in front of the batcher.
//!
//! A cache entry is keyed by the sketch name, the store **generation** of
//! the sketch that produced the value, the query's canonical structural
//! shape (the same canonicalization as [`crate::query_template`]), and the
//! predicate literal values. Keying by generation makes swap/remove
//! invalidation structural: a retrained or re-inserted sketch gets a fresh
//! generation from the store, so stale entries can never hit — the cache
//! additionally purges them eagerly (and counts the purge) the first time
//! it sees the new generation.
//!
//! Correctness contract, enforced by integration tests:
//!
//! * a hit returns the **bit-identical** `f64` a cold estimate would
//!   produce (values enter the cache only from healthy batcher answers);
//! * degraded (circuit-breaker / fallback) responses are never inserted,
//!   and the serving path consults the cache only after breaker admission,
//!   so an open circuit is never masked by a warm cache;
//! * `FEEDBACK`-detected accuracy drift for a template drops every cached
//!   entry of that template (all literals, all generations).
//!
//! Eviction is sharded second-chance (CLOCK): each shard keeps a FIFO ring
//! over its keys plus one referenced bit per entry — hits set the bit,
//! eviction gives set bits a second lap. This approximates LRU without
//! per-hit list surgery, so a hit is one hash lookup and one store.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};

use ds_query::query::Query;

/// Cache key of one estimate: sketch identity and generation plus the
/// canonical query shape and its literal values. Two queries build equal
/// keys exactly when a sketch of that generation must answer them with the
/// same estimate.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EstimateKey {
    sketch: String,
    generation: u64,
    shape: Vec<u32>,
    lits: Vec<i64>,
}

impl EstimateKey {
    /// Builds the key for `query` served by `sketch` at `generation`.
    pub fn new(sketch: &str, generation: u64, query: &Query) -> Self {
        let (shape, lits) = canonical_parts(query);
        Self {
            sketch: sketch.to_string(),
            generation,
            shape,
            lits,
        }
    }

    /// The canonical structural shape (template identity) of the keyed
    /// query: equal shapes ⇔ equal [`crate::query_template`] renderings.
    pub fn shape(&self) -> &[u32] {
        &self.shape
    }
}

/// The canonical `(op code, literal vector)` of one predicate. Op codes
/// 0/1/2 are the comparison operators (`=`, `<`, `>`, one literal each —
/// unchanged from the pre-extension encoding, so comparison-only keys stay
/// bit-identical across versions); 3 is `IN` (the canonical sorted list)
/// and 4 is `LIKE` (the pattern's bytes, one per element, which keeps the
/// key exact — no hashing, no collisions).
pub(crate) fn pred_code_and_lits(p: &ds_storage::predicate::ColPredicate) -> (u32, Vec<i64>) {
    use ds_storage::predicate::PredTest;
    match &p.test {
        PredTest::Cmp(op, lit) => (op.index() as u32, vec![*lit]),
        PredTest::In(values) => (3, values.clone()),
        PredTest::Like(pat) => (4, pat.as_str().bytes().map(i64::from).collect()),
    }
}

/// The canonical `(shape, literals)` of a query. The shape mirrors the
/// template interner's numeric key — sorted tables, sorted canonical join
/// quads, sorted predicate triples — except predicates are sorted as
/// `[table, col, op, literals]` so the literal vector stays aligned
/// with the shape even when two predicates share a column and operator.
/// Variable-width predicates (`IN`, `LIKE`) additionally carry their
/// literal count in the shape, so the literal vector never becomes
/// ambiguous; fixed-width comparisons keep the legacy 3-word layout.
fn canonical_parts(query: &Query) -> (Vec<u32>, Vec<i64>) {
    let mut tables: Vec<u32> = query.tables.iter().map(|t| t.0 as u32).collect();
    tables.sort_unstable();
    let mut joins: Vec<[u32; 4]> = query
        .joins
        .iter()
        .map(|j| {
            let l = [j.left.table.0 as u32, j.left.col as u32];
            let r = [j.right.table.0 as u32, j.right.col as u32];
            let ([lt, lc], [rt, rc]) = if l <= r { (l, r) } else { (r, l) };
            [lt, lc, rt, rc]
        })
        .collect();
    joins.sort_unstable();
    let mut preds: Vec<(u32, u32, u32, Vec<i64>)> = query
        .qualified_predicates()
        .map(|(cr, p)| {
            let (op, plits) = pred_code_and_lits(p);
            (cr.table.0 as u32, cr.col as u32, op, plits)
        })
        .collect();
    preds.sort_unstable();
    let mut shape = Vec::with_capacity(2 + tables.len() + 4 * joins.len() + 4 * preds.len());
    shape.push(tables.len() as u32);
    shape.extend_from_slice(&tables);
    shape.push(joins.len() as u32);
    for j in &joins {
        shape.extend_from_slice(j);
    }
    let mut lits = Vec::with_capacity(preds.len());
    for (t, c, op, plits) in &preds {
        shape.extend_from_slice(&[*t, *c, *op]);
        if *op >= 3 {
            shape.push(plits.len() as u32);
        }
        lits.extend_from_slice(plits);
    }
    (shape, lits)
}

/// One cached estimate plus its CLOCK referenced bit.
struct Entry {
    value: f64,
    referenced: bool,
}

/// One independently locked shard: entry map plus the second-chance ring.
/// The ring may briefly hold keys already removed by invalidation; they
/// are dropped lazily during eviction sweeps.
#[derive(Default)]
struct Shard {
    map: HashMap<EstimateKey, Entry>,
    ring: VecDeque<EstimateKey>,
}

/// Bounded, sharded, second-chance estimate cache. See the module docs for
/// the keying and invalidation contract.
pub struct EstimateCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    /// Latest store generation seen per sketch name; a change purges the
    /// sketch's stale entries eagerly.
    latest: RwLock<HashMap<String, u64>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl EstimateCache {
    /// A cache holding at most `capacity` entries across `shards` shards
    /// (both clamped to at least 1).
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard_capacity = capacity.max(1).div_ceil(shards);
        Self {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_capacity,
            latest: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &EstimateKey) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) % self.shards.len()]
    }

    /// Builds the key for a request and eagerly purges stale entries when
    /// this is the first sight of `sketch` at `generation` (a swap,
    /// remove/re-insert, or background-retrain promotion).
    pub fn key(&self, sketch: &str, generation: u64, query: &Query) -> EstimateKey {
        self.note_generation(sketch, generation);
        EstimateKey::new(sketch, generation, query)
    }

    fn note_generation(&self, sketch: &str, generation: u64) {
        if self
            .latest
            .read()
            .expect("cache generation map poisoned")
            .get(sketch)
            == Some(&generation)
        {
            return;
        }
        // Hold the write lock across the purge so concurrent first
        // sightings of the same swap purge exactly once.
        let mut latest = self.latest.write().expect("cache generation map poisoned");
        match latest.insert(sketch.to_string(), generation) {
            Some(prev) if prev != generation => {
                let mut purged = 0u64;
                for shard in &self.shards {
                    let mut s = shard.lock().expect("cache shard poisoned");
                    let before = s.map.len();
                    s.map
                        .retain(|k, _| !(k.sketch == sketch && k.generation != generation));
                    purged += (before - s.map.len()) as u64;
                }
                self.invalidations.fetch_add(purged, Ordering::Relaxed);
            }
            _ => {}
        }
    }

    /// Looks up a cached estimate, counting the hit or miss.
    pub fn get(&self, key: &EstimateKey) -> Option<f64> {
        let mut shard = self.shard(key).lock().expect("cache shard poisoned");
        match shard.map.get_mut(key) {
            Some(entry) => {
                entry.referenced = true;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry.value)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a healthy estimate, evicting with second chance when the
    /// shard is full. Re-inserting an existing key refreshes its value in
    /// place.
    pub fn insert(&self, key: EstimateKey, value: f64) {
        let mut shard = self.shard(&key).lock().expect("cache shard poisoned");
        if let Some(entry) = shard.map.get_mut(&key) {
            entry.value = value;
            entry.referenced = true;
            return;
        }
        while shard.map.len() >= self.per_shard_capacity {
            let Some(victim) = shard.ring.pop_front() else {
                break;
            };
            match shard.map.get_mut(&victim) {
                Some(entry) if entry.referenced => {
                    // Second chance: clear the bit, send it one more lap.
                    entry.referenced = false;
                    shard.ring.push_back(victim);
                }
                Some(_) => {
                    shard.map.remove(&victim);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                // Stale ring key (already invalidated): just drop it.
                None => {}
            }
        }
        shard.ring.push_back(key.clone());
        shard.map.insert(
            key,
            Entry {
                value,
                referenced: false,
            },
        );
    }

    /// Drops every cached entry of `sketch` whose query shape equals
    /// `shape` — all literals, all generations. Called when `FEEDBACK`
    /// detects accuracy drift for the template. Returns the number of
    /// entries dropped.
    pub fn invalidate_template(&self, sketch: &str, shape: &[u32]) -> u64 {
        let mut dropped = 0u64;
        for shard in &self.shards {
            let mut s = shard.lock().expect("cache shard poisoned");
            let before = s.map.len();
            s.map
                .retain(|k, _| !(k.sketch == sketch && k.shape == shape));
            dropped += (before - s.map.len()) as u64;
        }
        self.invalidations.fetch_add(dropped, Ordering::Relaxed);
        dropped
    }

    /// Cached entries across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard poisoned").map.len())
            .sum()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that fell through to the batcher.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries dropped by capacity eviction.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Entries dropped by generation swaps and template drift.
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_query::parser::parse_query;
    use ds_storage::gen::{imdb_database, ImdbConfig};

    fn queries() -> (Query, Query, Query) {
        let db = imdb_database(&ImdbConfig::tiny(1));
        let a = parse_query(
            &db,
            "SELECT COUNT(*) FROM title WHERE title.production_year > 2000",
        )
        .unwrap();
        // Same template as `a`, different literal.
        let b = parse_query(
            &db,
            "SELECT COUNT(*) FROM title WHERE title.production_year > 1990",
        )
        .unwrap();
        // Different template.
        let c = parse_query(&db, "SELECT COUNT(*) FROM title WHERE title.kind_id = 1").unwrap();
        (a, b, c)
    }

    #[test]
    fn same_shape_different_literals_are_distinct_keys_with_one_shape() {
        let (a, b, c) = queries();
        let ka = EstimateKey::new("s", 1, &a);
        let kb = EstimateKey::new("s", 1, &b);
        let kc = EstimateKey::new("s", 1, &c);
        assert_ne!(ka, kb, "literals must distinguish keys");
        assert_eq!(ka.shape(), kb.shape(), "same template, same shape");
        assert_ne!(ka.shape(), kc.shape());
        // Clause order and aliasing never change the key (canonical sort).
        assert_eq!(ka, EstimateKey::new("s", 1, &a.clone()));
    }

    #[test]
    fn hits_misses_and_generation_purge() {
        let (a, b, _) = queries();
        let cache = EstimateCache::new(64, 4);
        let k = cache.key("imdb", 1, &a);
        assert_eq!(cache.get(&k), None);
        cache.insert(k.clone(), 42.5);
        assert_eq!(cache.get(&k), Some(42.5));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        let kb = cache.key("imdb", 1, &b);
        cache.insert(kb, 7.0);
        assert_eq!(cache.len(), 2);

        // A new generation purges the old entries and can never hit them.
        let k2 = cache.key("imdb", 2, &a);
        assert_eq!(cache.len(), 0, "swap must purge stale generations");
        assert_eq!(cache.invalidations(), 2);
        assert_eq!(cache.get(&k2), None);
    }

    #[test]
    fn template_invalidation_is_shape_scoped() {
        let (a, b, c) = queries();
        let cache = EstimateCache::new(64, 4);
        let ka = cache.key("imdb", 1, &a);
        let kb = cache.key("imdb", 1, &b);
        let kc = cache.key("imdb", 1, &c);
        cache.insert(ka.clone(), 1.0);
        cache.insert(kb.clone(), 2.0);
        cache.insert(kc.clone(), 3.0);
        // Another sketch's entry with the same shape must survive.
        let other = cache.key("other", 9, &a);
        cache.insert(other.clone(), 4.0);
        assert_eq!(cache.invalidate_template("imdb", ka.shape()), 2);
        assert_eq!(cache.get(&ka), None);
        assert_eq!(cache.get(&kb), None);
        assert_eq!(cache.get(&kc), Some(3.0));
        assert_eq!(cache.get(&other), Some(4.0));
    }

    #[test]
    fn capacity_is_bounded_and_hot_entries_survive_eviction() {
        let (a, _, _) = queries();
        // Single shard, capacity 4: inserts must never grow past it.
        let cache = EstimateCache::new(4, 1);
        let key_i = |i: i64| EstimateKey {
            sketch: "s".to_string(),
            generation: 1,
            shape: EstimateKey::new("s", 1, &a).shape.clone(),
            lits: vec![i],
        };
        cache.insert(key_i(0), 0.0);
        for i in 1..20 {
            // Keep key 0 hot so second chance retains it.
            assert_eq!(cache.get(&key_i(0)), Some(0.0), "hot entry evicted at {i}");
            cache.insert(key_i(i), i as f64);
            assert!(cache.len() <= 4, "cache grew past capacity");
        }
        assert!(cache.evictions() > 0);
    }
}
