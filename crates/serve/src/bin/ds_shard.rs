//! A standalone fleet shard: one sketch server in its own process.
//!
//! The multi-process fleet smoke test (and the CI job wrapping it) spawns
//! several of these, kills one with a real signal, and proves the fleet
//! recovers. The shard starts with an *empty* store — sketches arrive over
//! the wire via `SYNC`, exactly as replicas are seeded in production.
//!
//! Usage: `ds_shard [--addr HOST:PORT] [--seed N] [--snapshot-dir DIR]`
//!
//! Prints `ADDR <bound-address>` on stdout once listening, then serves
//! until stdin reaches EOF (the parent dropping the pipe is the shutdown
//! signal — no signal handling needed, and a `kill -9` is exactly the
//! chaos the tests want).

use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::Arc;

use ds_core::store::SketchStore;
use ds_serve::{ServeConfig, Server};
use ds_storage::gen::{imdb_database, ImdbConfig};

fn main() -> std::io::Result<()> {
    let mut addr = "127.0.0.1:0".to_string();
    let mut seed = 42u64;
    let mut snapshot_dir: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("ds_shard: {flag} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr"),
            "--seed" => {
                seed = value("--seed").parse().unwrap_or_else(|e| {
                    eprintln!("ds_shard: bad --seed: {e}");
                    std::process::exit(2);
                })
            }
            "--snapshot-dir" => snapshot_dir = Some(PathBuf::from(value("--snapshot-dir"))),
            other => {
                eprintln!("ds_shard: unknown flag '{other}'");
                std::process::exit(2);
            }
        }
    }

    // Every shard generates the same deterministic catalog from the seed,
    // so queries parse identically fleet-wide without shipping the schema.
    let db = Arc::new(imdb_database(&ImdbConfig::tiny(seed)));
    let store = Arc::new(SketchStore::new());
    let server = Server::start(
        db,
        store,
        ServeConfig::builder()
            .addr(addr)
            .snapshot_dir(snapshot_dir)
            .build()
            .map_err(std::io::Error::from)?,
    )?;

    // The parent parses this line to learn the OS-assigned port.
    let mut stdout = std::io::stdout().lock();
    writeln!(stdout, "ADDR {}", server.local_addr())?;
    stdout.flush()?;

    // Serve until the parent closes our stdin.
    let stdin = std::io::stdin();
    let mut line = String::new();
    let mut handle = stdin.lock();
    while handle.read_line(&mut line)? > 0 {
        line.clear();
    }
    server.shutdown();
    Ok(())
}
