//! The fleet observability aggregator: one pane of glass over N shards.
//!
//! `ds_fleetmon` scrapes every shard's `STATS` and `TRACE` over the
//! normal wire protocol on a fixed interval, then serves the merged view
//! on its own socket speaking the same one-line protocol:
//!
//! * `STATS` — the per-shard Prometheus expositions merged via
//!   [`ds_obs::merge_expositions`] (counters sum, histograms merge
//!   bucket-wise exactly, gauges take the worst shard), with the
//!   aggregator's own scrape counters folded into the same document;
//! * `TRACE` — every shard's slow-request exemplars, with records that
//!   share a trace id grouped together so a cross-shard traced request
//!   reads as one causal tree (client span → per-shard server spans →
//!   batch spans);
//! * `HELLO` / `QUIT` — the usual handshake and teardown.
//!
//! Usage: `ds_fleetmon --shard HOST:PORT [--shard HOST:PORT ...]
//! [--addr HOST:PORT] [--interval-ms N]`
//!
//! Prints `ADDR <bound-address>` on stdout once listening, then serves
//! until stdin reaches EOF (the same lifetime contract as `ds_shard`).

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use ds_obs::FleetCounters;
use ds_serve::{
    format_response, parse_request, Connection, ErrorCode, Request, RequestTimeline, Response,
    PROTOCOL_VERSION, SUPPORTED_FEATURES,
};

/// The latest scrape of the whole fleet: one raw exposition document per
/// reachable shard plus every shard's exemplars.
#[derive(Default)]
struct FleetView {
    expositions: Vec<String>,
    timelines: Vec<RequestTimeline>,
}

struct Monitor {
    shards: Vec<SocketAddr>,
    view: Mutex<FleetView>,
    counters: FleetCounters,
    shutting_down: AtomicBool,
}

impl Monitor {
    /// Scrapes every shard once, replacing the stored view with whatever
    /// answered. Unreachable shards are skipped (and counted) — the merge
    /// over the survivors is still exact for what it covers.
    fn scrape(&self) {
        let mut expositions = Vec::with_capacity(self.shards.len());
        let mut timelines = Vec::new();
        for &addr in &self.shards {
            match scrape_shard(addr) {
                Some((doc, mut tl)) => {
                    expositions.push(doc);
                    timelines.append(&mut tl);
                }
                None => {
                    self.counters.sweep_failures.inc();
                }
            }
        }
        self.counters.routed.inc();
        // Group cross-shard records of the same trace together, so one
        // traced request's spans are adjacent in the stitched output.
        timelines.sort_by_key(|t| t.trace_id);
        *self.view.lock().expect("fleet view") = FleetView {
            expositions,
            timelines,
        };
    }

    /// The merged `STATS` payload: every shard document plus the
    /// aggregator's own counters, newline-escaped for the one-line wire.
    fn stats_payload(&self) -> Option<String> {
        let view = self.view.lock().expect("fleet view");
        let mut own = ds_obs::PromText::new();
        self.counters.render(&mut own);
        let own = own.into_string();
        let mut docs: Vec<&str> = view.expositions.iter().map(String::as_str).collect();
        docs.push(&own);
        let merged = ds_obs::merge_expositions(&docs)?;
        Some(merged.trim_end().replace('\n', "\\n"))
    }

    /// The stitched `TRACE` payload, same wire shape as a shard's.
    fn trace_payload(&self) -> String {
        let view = self.view.lock().expect("fleet view");
        if view.timelines.is_empty() {
            return "(none)".to_string();
        }
        view.timelines
            .iter()
            .map(RequestTimeline::to_wire)
            .collect::<Vec<_>>()
            .join(";")
    }
}

/// One scrape of one shard: `STATS` (unescaped back to a real document)
/// and `TRACE` (parsed exemplars). `None` when the shard is unreachable
/// or answers garbage.
fn scrape_shard(addr: SocketAddr) -> Option<(String, Vec<RequestTimeline>)> {
    let mut conn = Connection::connect_timeout(addr, Duration::from_secs(10)).ok()?;
    let Response::Text(stats) = conn.roundtrip(&Request::Stats, false).ok()? else {
        return None;
    };
    let doc = stats.replace("\\n", "\n");
    let Response::Text(trace) = conn.roundtrip(&Request::Trace, false).ok()? else {
        return None;
    };
    let timelines = if trace.trim() == "(none)" {
        Vec::new()
    } else {
        trace
            .split(';')
            .map(RequestTimeline::from_wire)
            .collect::<Option<Vec<_>>>()?
    };
    Some((doc, timelines))
}

/// Answers one connection with the aggregator's four verbs; everything
/// else gets a typed `ERR` so probing tools fail loudly, not silently.
fn handle_connection(stream: TcpStream, monitor: &Monitor) {
    let _ = stream.set_nodelay(true);
    if stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .is_err()
    {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    loop {
        if monitor.shutting_down.load(Ordering::SeqCst) {
            return;
        }
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return,
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue
            }
            Err(_) => return,
        }
        if line.trim().is_empty() {
            continue;
        }
        let (response, quit) = answer(&line, monitor);
        if writeln!(writer, "{}", format_response(&response)).is_err() || writer.flush().is_err() {
            return;
        }
        if quit {
            return;
        }
    }
}

fn answer(line: &str, monitor: &Monitor) -> (Response, bool) {
    let request = match parse_request(line) {
        Ok(r) => r,
        Err(resp) => return (resp, false),
    };
    match request {
        Request::Hello { version, .. } => (
            Response::Text(format!(
                "HELLO {} {}",
                version.min(PROTOCOL_VERSION),
                SUPPORTED_FEATURES.join(",")
            )),
            false,
        ),
        Request::Stats => match monitor.stats_payload() {
            Some(p) => (Response::Text(p), false),
            None => (
                Response::Error {
                    code: ErrorCode::Internal,
                    message: "shard expositions failed to merge".to_string(),
                },
                false,
            ),
        },
        Request::Trace => (Response::Text(monitor.trace_payload()), false),
        Request::Quit => (Response::Bye, true),
        _ => (
            Response::Error {
                code: ErrorCode::Proto,
                message: "fleetmon speaks HELLO/STATS/TRACE/QUIT only".to_string(),
            },
            false,
        ),
    }
}

fn main() -> std::io::Result<()> {
    let mut addr = "127.0.0.1:0".to_string();
    let mut interval = Duration::from_millis(500);
    let mut shards: Vec<SocketAddr> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("ds_fleetmon: {flag} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--addr" => addr = value("--addr"),
            "--shard" => shards.push(value("--shard").parse().unwrap_or_else(|e| {
                eprintln!("ds_fleetmon: bad --shard: {e}");
                std::process::exit(2);
            })),
            "--interval-ms" => {
                interval =
                    Duration::from_millis(value("--interval-ms").parse().unwrap_or_else(|e| {
                        eprintln!("ds_fleetmon: bad --interval-ms: {e}");
                        std::process::exit(2);
                    }))
            }
            other => {
                eprintln!("ds_fleetmon: unknown flag '{other}'");
                std::process::exit(2);
            }
        }
    }
    if shards.is_empty() {
        eprintln!("ds_fleetmon: at least one --shard is required");
        std::process::exit(2);
    }

    let monitor = Arc::new(Monitor {
        shards,
        view: Mutex::new(FleetView::default()),
        counters: FleetCounters::new(),
        shutting_down: AtomicBool::new(false),
    });
    monitor.scrape();

    let scraper = {
        let monitor = Arc::clone(&monitor);
        std::thread::Builder::new()
            .name("fleetmon-scrape".to_string())
            .spawn(move || {
                while !monitor.shutting_down.load(Ordering::SeqCst) {
                    std::thread::sleep(interval);
                    monitor.scrape();
                }
            })?
    };

    let listener = TcpListener::bind(&addr)?;
    let local = listener.local_addr()?;
    let acceptor = {
        let monitor = Arc::clone(&monitor);
        std::thread::Builder::new()
            .name("fleetmon-accept".to_string())
            .spawn(move || {
                for stream in listener.incoming() {
                    if monitor.shutting_down.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let monitor = Arc::clone(&monitor);
                    let _ = std::thread::Builder::new()
                        .name("fleetmon-conn".to_string())
                        .spawn(move || handle_connection(stream, &monitor));
                }
            })?
    };

    let mut stdout = std::io::stdout().lock();
    writeln!(stdout, "ADDR {local}")?;
    stdout.flush()?;

    let stdin = std::io::stdin();
    let mut line = String::new();
    let mut handle = stdin.lock();
    while handle.read_line(&mut line)? > 0 {
        line.clear();
    }
    monitor.shutting_down.store(true, Ordering::SeqCst);
    // Unblock the acceptor with a wake-up connection, then join.
    let _ = TcpStream::connect(local);
    let _ = acceptor.join();
    let _ = scraper.join();
    Ok(())
}
