//! Property tests for the extended-operator surface: every query the
//! generator can emit — including `IN`-lists and `LIKE` prefixes — must
//! survive `to_sql` → `parse_query` bit-identically, and canonical SQL
//! rendering must be a fixed point. This is the contract that keeps the
//! wire protocol, the harvest log, and the template keys in agreement.

use std::sync::OnceLock;

use ds_query::parser::parse_query;
use ds_query::query::Query;
use ds_query::sqlgen::to_sql;
use ds_query::workloads::imdb_predicate_columns;
use ds_query::{GeneratorConfig, QueryGenerator};
use ds_storage::catalog::Database;
use ds_storage::gen::{imdb_database, ImdbConfig};
use ds_storage::predicate::{ColPredicate, PredOpKind};
use proptest::prelude::*;

fn db() -> &'static Database {
    static DB: OnceLock<Database> = OnceLock::new();
    DB.get_or_init(|| imdb_database(&ImdbConfig::tiny(11)))
}

/// `parse(to_sql(q)) == q` and `to_sql` is a fixed point under reparsing.
fn assert_roundtrip(q: &Query) {
    let db = db();
    let sql = to_sql(db, q);
    let parsed = parse_query(db, &sql)
        .unwrap_or_else(|e| panic!("generated SQL must parse: {e}\n  sql: {sql}"));
    assert_eq!(
        &parsed, q,
        "parse(to_sql(q)) must be bit-identical\n  sql: {sql}"
    );
    assert_eq!(
        to_sql(db, &parsed),
        sql,
        "canonical rendering must be a fixed point"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Batches from the *extended* generator (IN/LIKE in the mix)
    /// roundtrip through the SQL surface bit-identically.
    #[test]
    fn extended_generator_batches_roundtrip(seed in 0u64..u64::MAX) {
        let db = db();
        let mut cfg = GeneratorConfig::new(imdb_predicate_columns(db), seed)
            .with_extended_ops();
        cfg.max_in_list = 6;
        let batch = QueryGenerator::new(db, cfg).generate_batch(20);
        let mut saw_ext = false;
        for q in &batch {
            saw_ext |= q.predicates.iter().any(|(_, p)| {
                matches!(p.op_kind(), PredOpKind::In | PredOpKind::Like)
            });
            assert_roundtrip(q);
        }
        // 20 queries at 20 %/20 % op fractions: overwhelmingly likely to
        // carry at least one extended predicate; tolerate the rare miss
        // rather than flake.
        let _ = saw_ext;
    }

    /// Hand-built IN predicates with arbitrary literal lists roundtrip;
    /// the canonical form (sorted, deduped) is what comes back.
    #[test]
    fn arbitrary_in_lists_roundtrip(
        values in prop::collection::vec(i64::MIN..i64::MAX, 1..8),
    ) {
        let db = db();
        let kid = db.resolve("title.kind_id").unwrap();
        let mut q = Query::new();
        q.add_table(db, "title").unwrap();
        q.predicates
            .push((kid.table, ColPredicate::is_in(kid.col, values)));
        assert_roundtrip(&q);
    }

    /// Hand-built LIKE predicates over the pattern alphabet (digits and
    /// the `%`/`_` wildcards) roundtrip verbatim.
    #[test]
    fn arbitrary_like_patterns_roundtrip(
        raw in prop::collection::vec(0u32..12, 1..10),
    ) {
        // 0–9 → that digit; 10 → '%'; 11 → '_'.
        let pat: String = raw
            .iter()
            .map(|&c| match c {
                10 => '%',
                11 => '_',
                d => char::from_digit(d, 10).unwrap(),
            })
            .collect();
        let db = db();
        let year = db.resolve("title.production_year").unwrap();
        let mut q = Query::new();
        q.add_table(db, "title").unwrap();
        q.predicates
            .push((year.table, ColPredicate::like(year.col, pat)));
        assert_roundtrip(&q);
    }

    /// The comparison-only generator is untouched by the extension: its
    /// batches roundtrip and contain no extended operators.
    #[test]
    fn cmp_only_generator_stays_cmp_only(seed in 0u64..u64::MAX) {
        let db = db();
        let cfg = GeneratorConfig::new(imdb_predicate_columns(db), seed);
        for q in QueryGenerator::new(db, cfg).generate_batch(15) {
            for (_, p) in &q.predicates {
                prop_assert!(p.as_cmp().is_some(), "legacy generator emitted {p:?}");
            }
            assert_roundtrip(&q);
        }
    }
}
