//! Evaluation workloads and per-schema predicate-column registries.

pub mod io;
pub mod job_light;
pub mod stats;
pub mod tpch;

use ds_storage::catalog::{ColRef, Database};

/// Dimension attributes of the synthetic IMDb that predicates may range
/// over — everything except surrogate `id` keys and `movie_id` join keys,
/// matching the attribute set used by JOB-light / MSCN.
pub fn imdb_predicate_columns(db: &Database) -> Vec<ColRef> {
    [
        "title.kind_id",
        "title.production_year",
        "movie_companies.company_id",
        "movie_companies.company_type_id",
        "cast_info.person_id",
        "cast_info.role_id",
        "movie_info.info_type_id",
        "movie_info_idx.info_type_id",
        "movie_keyword.keyword_id",
    ]
    .iter()
    .map(|q| {
        db.resolve(q)
            .unwrap_or_else(|| panic!("missing column {q}"))
    })
    .collect()
}

/// Dimension attributes of the synthetic TPC-H subset eligible for
/// predicates.
pub fn tpch_predicate_columns(db: &Database) -> Vec<ColRef> {
    [
        "customer.c_acctbal",
        "customer.c_mktsegment",
        "orders.o_orderdate",
        "orders.o_orderstatus",
        "orders.o_orderpriority",
        "lineitem.l_quantity",
        "lineitem.l_discount",
        "lineitem.l_shipdate",
        "part.p_size",
        "part.p_brand",
        "part.p_retailprice",
        "supplier.s_acctbal",
    ]
    .iter()
    .map(|q| {
        db.resolve(q)
            .unwrap_or_else(|| panic!("missing column {q}"))
    })
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_storage::gen::{imdb_database, tpch_database, ImdbConfig, TpchConfig};

    #[test]
    fn imdb_columns_resolve() {
        let db = imdb_database(&ImdbConfig::tiny(1));
        let cols = imdb_predicate_columns(&db);
        assert_eq!(cols.len(), 9);
        // No id / movie_id columns.
        for cr in cols {
            let name = db.col_name(cr);
            assert!(
                !name.ends_with(".id") && !name.ends_with(".movie_id"),
                "{name}"
            );
        }
    }

    #[test]
    fn tpch_columns_resolve() {
        let db = tpch_database(&TpchConfig::tiny(1));
        let cols = tpch_predicate_columns(&db);
        assert_eq!(cols.len(), 12);
        for cr in cols {
            let name = db.col_name(cr);
            assert!(!name.contains("key"), "join keys excluded: {name}");
        }
    }
}
