//! Workload files: one SQL query per line, `#` comments — the same simple
//! format as the published `job-light.sql`. Lets users persist generated
//! workloads and replay real ones.

use std::io::{BufRead, BufReader, Read, Write};

use ds_storage::catalog::Database;

use crate::parser::{parse_query, ParseError};
use crate::query::Query;
use crate::sqlgen::to_sql;

/// Writes a workload as one SQL statement per line.
pub fn write_workload<W: Write>(
    db: &Database,
    workload: &[Query],
    out: &mut W,
) -> std::io::Result<()> {
    for q in workload {
        writeln!(out, "{};", to_sql(db, q))?;
    }
    Ok(())
}

/// Reads a workload file: one SQL statement per line; blank lines and
/// `#`-comments are skipped. Fails on the first unparsable line with its
/// line number.
pub fn read_workload<R: Read>(db: &Database, input: R) -> Result<Vec<Query>, ParseError> {
    let mut out = Vec::new();
    for (i, line) in BufReader::new(input).lines().enumerate() {
        let line = line.map_err(|e| ParseError(format!("line {}: io error {e}", i + 1)))?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let q = parse_query(db, line).map_err(|e| ParseError(format!("line {}: {e}", i + 1)))?;
        out.push(q);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::job_light::job_light_workload;
    use ds_storage::gen::{imdb_database, ImdbConfig};

    #[test]
    fn job_light_roundtrips_through_the_file_format() {
        let db = imdb_database(&ImdbConfig::tiny(1));
        let wl = job_light_workload(&db, 3);
        let mut buf = Vec::new();
        write_workload(&db, &wl, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert_eq!(text.lines().count(), 70);
        assert!(text.lines().all(|l| l.starts_with("SELECT COUNT(*)")));

        let back = read_workload(&db, &buf[..]).unwrap();
        assert_eq!(back, wl);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let db = imdb_database(&ImdbConfig::tiny(2));
        let text = "# the paper's example\n\nSELECT COUNT(*) FROM title;\n";
        let wl = read_workload(&db, text.as_bytes()).unwrap();
        assert_eq!(wl.len(), 1);
    }

    #[test]
    fn bad_lines_report_their_number() {
        let db = imdb_database(&ImdbConfig::tiny(3));
        let text = "SELECT COUNT(*) FROM title;\nSELECT COUNT(*) FROM nonsense;\n";
        let err = read_workload(&db, text.as_bytes()).unwrap_err();
        assert!(err.0.contains("line 2"), "{err}");
    }
}
