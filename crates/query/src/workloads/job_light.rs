//! The JOB-light evaluation workload, re-instantiated on the synthetic IMDb.
//!
//! JOB-light derives 70 of the 113 Join Order Benchmark queries: no string
//! predicates, no disjunctions, 1–4 joins, mostly equality predicates on
//! dimension attributes, and `production_year` as the only range-predicate
//! column. Every query joins through `title`.
//!
//! The original literals refer to the real IMDb; here each query shape is
//! kept (table set, predicate columns, operators) and literals are
//! re-instantiated from the synthetic database: fixed years for
//! `production_year`, data-drawn values for categorical columns (drawn from
//! a uniformly random row, so frequent values appear with realistic
//! probability). Instantiation is deterministic in `seed`.

use rand::{rngs::StdRng, RngExt, SeedableRng};

use ds_storage::catalog::Database;
use ds_storage::predicate::CmpOp;

use crate::query::Query;

/// How a predicate literal is instantiated.
#[derive(Debug, Clone, Copy)]
enum Lit {
    /// A fixed literal (years).
    Fixed(i64),
    /// Drawn from a uniformly random non-NULL row of the column —
    /// frequency-weighted, matching common type/role predicates.
    FromData,
    /// Drawn uniformly from the column's *distinct values* — tail-heavy,
    /// matching JOB-light's selective predicates on specific keywords,
    /// companies, and persons.
    FromDomain,
}

/// One predicate spec: qualified column, operator, literal source.
type PredSpec = (&'static str, CmpOp, Lit);

/// One query shape: satellite tables (every query implicitly includes
/// `title`) plus predicates.
struct Shape {
    satellites: &'static [&'static str],
    preds: &'static [PredSpec],
}

use CmpOp::{Eq, Gt, Lt};
use Lit::{Fixed, FromData, FromDomain};

const MC: &str = "movie_companies";
const CI: &str = "cast_info";
const MI: &str = "movie_info";
const MX: &str = "movie_info_idx";
const MK: &str = "movie_keyword";

const T_YEAR: &str = "title.production_year";
const T_KIND: &str = "title.kind_id";
const MC_CO: &str = "movie_companies.company_id";
const MC_TY: &str = "movie_companies.company_type_id";
const CI_PE: &str = "cast_info.person_id";
const CI_RO: &str = "cast_info.role_id";
const MI_TY: &str = "movie_info.info_type_id";
const MX_TY: &str = "movie_info_idx.info_type_id";
const MK_KW: &str = "movie_keyword.keyword_id";

/// The 70 JOB-light query shapes: 8 one-join, 33 two-join, 20 three-join,
/// 9 four-join queries, predicate mix as in the original workload.
static SHAPES: &[Shape] = &[
    // ---- 1 join (2 tables) — 8 queries -------------------------------
    Shape {
        satellites: &[MK],
        preds: &[(MK_KW, Eq, FromDomain)],
    },
    Shape {
        satellites: &[MK],
        preds: &[(MK_KW, Eq, FromDomain), (T_YEAR, Gt, Fixed(2005))],
    },
    Shape {
        satellites: &[MC],
        preds: &[(MC_TY, Eq, FromData), (T_YEAR, Gt, Fixed(1990))],
    },
    Shape {
        satellites: &[MC],
        preds: &[(MC_CO, Eq, FromDomain)],
    },
    Shape {
        satellites: &[CI],
        preds: &[(CI_RO, Eq, FromData), (T_YEAR, Gt, Fixed(2000))],
    },
    Shape {
        satellites: &[MI],
        preds: &[(MI_TY, Eq, FromData)],
    },
    Shape {
        satellites: &[MX],
        preds: &[(MX_TY, Eq, FromData), (T_YEAR, Gt, Fixed(2008))],
    },
    Shape {
        satellites: &[MX],
        preds: &[(MX_TY, Eq, FromData)],
    },
    // ---- 2 joins (3 tables) — 33 queries ------------------------------
    Shape {
        satellites: &[MC, MX],
        preds: &[
            (MC_TY, Eq, FromData),
            (MX_TY, Eq, FromData),
            (T_YEAR, Gt, Fixed(2010)),
        ],
    },
    Shape {
        satellites: &[MC, MX],
        preds: &[
            (MC_TY, Eq, FromData),
            (MX_TY, Eq, FromData),
            (T_YEAR, Gt, Fixed(2000)),
        ],
    },
    Shape {
        satellites: &[MC, MX],
        preds: &[(MC_TY, Eq, FromData), (MX_TY, Eq, FromData)],
    },
    Shape {
        satellites: &[MC, MX],
        preds: &[(MC_CO, Eq, FromDomain), (T_YEAR, Gt, Fixed(1995))],
    },
    Shape {
        satellites: &[MK, MX],
        preds: &[(MK_KW, Eq, FromDomain), (T_YEAR, Gt, Fixed(2005))],
    },
    Shape {
        satellites: &[MK, MX],
        preds: &[(MK_KW, Eq, FromDomain), (MX_TY, Eq, FromData)],
    },
    Shape {
        satellites: &[MK, MX],
        preds: &[(MK_KW, Eq, FromDomain)],
    },
    Shape {
        satellites: &[MK, MC],
        preds: &[(MK_KW, Eq, FromDomain), (MC_TY, Eq, FromData)],
    },
    Shape {
        satellites: &[MK, MC],
        preds: &[
            (MK_KW, Eq, FromDomain),
            (MC_TY, Eq, FromData),
            (T_YEAR, Gt, Fixed(2000)),
        ],
    },
    Shape {
        satellites: &[MK, MC],
        preds: &[(MC_CO, Eq, FromDomain), (T_YEAR, Gt, Fixed(2009))],
    },
    Shape {
        satellites: &[MK, CI],
        preds: &[(MK_KW, Eq, FromDomain), (CI_RO, Eq, FromData)],
    },
    Shape {
        satellites: &[MK, CI],
        preds: &[(MK_KW, Eq, FromDomain), (T_YEAR, Eq, Fixed(2010))],
    },
    Shape {
        satellites: &[CI, MC],
        preds: &[
            (CI_RO, Eq, FromData),
            (MC_TY, Eq, FromData),
            (T_YEAR, Gt, Fixed(2005)),
        ],
    },
    Shape {
        satellites: &[CI, MC],
        preds: &[
            (CI_RO, Eq, FromData),
            (MC_TY, Eq, FromData),
            (T_YEAR, Gt, Fixed(2010)),
        ],
    },
    Shape {
        satellites: &[CI, MC],
        preds: &[(CI_PE, Eq, FromDomain)],
    },
    Shape {
        satellites: &[CI, MC],
        preds: &[(MC_CO, Eq, FromDomain), (CI_RO, Eq, FromData)],
    },
    Shape {
        satellites: &[CI, MX],
        preds: &[
            (CI_RO, Eq, FromData),
            (MX_TY, Eq, FromData),
            (T_YEAR, Gt, Fixed(2000)),
        ],
    },
    Shape {
        satellites: &[CI, MX],
        preds: &[(MX_TY, Eq, FromData), (T_YEAR, Gt, Fixed(2005))],
    },
    Shape {
        satellites: &[CI, MI],
        preds: &[(MI_TY, Eq, FromData), (CI_RO, Eq, FromData)],
    },
    Shape {
        satellites: &[CI, MI],
        preds: &[(MI_TY, Eq, FromData), (T_YEAR, Gt, Fixed(2008))],
    },
    Shape {
        satellites: &[MI, MX],
        preds: &[(MI_TY, Eq, FromData), (MX_TY, Eq, FromData)],
    },
    Shape {
        satellites: &[MI, MX],
        preds: &[
            (MI_TY, Eq, FromData),
            (MX_TY, Eq, FromData),
            (T_YEAR, Gt, Fixed(2010)),
        ],
    },
    Shape {
        satellites: &[MI, MX],
        preds: &[
            (MI_TY, Eq, FromData),
            (MX_TY, Eq, FromData),
            (T_YEAR, Gt, Fixed(1990)),
        ],
    },
    Shape {
        satellites: &[MI, MC],
        preds: &[
            (MI_TY, Eq, FromData),
            (MC_TY, Eq, FromData),
            (T_YEAR, Gt, Fixed(2005)),
        ],
    },
    Shape {
        satellites: &[MI, MC],
        preds: &[
            (MC_TY, Eq, FromData),
            (T_YEAR, Gt, Fixed(2000)),
            (T_YEAR, Lt, Fixed(2010)),
        ],
    },
    Shape {
        satellites: &[MI, MC],
        preds: &[(MC_CO, Eq, FromDomain), (MI_TY, Eq, FromData)],
    },
    Shape {
        satellites: &[MK, MI],
        preds: &[(MK_KW, Eq, FromDomain), (MI_TY, Eq, FromData)],
    },
    Shape {
        satellites: &[MK, MI],
        preds: &[
            (MK_KW, Eq, FromDomain),
            (T_YEAR, Gt, Fixed(2005)),
            (T_YEAR, Lt, Fixed(2012)),
        ],
    },
    Shape {
        satellites: &[MC, MX],
        preds: &[(MC_TY, Eq, FromData), (T_YEAR, Gt, Fixed(2012))],
    },
    Shape {
        satellites: &[MK, MX],
        preds: &[(MK_KW, Eq, FromDomain), (T_YEAR, Lt, Fixed(1990))],
    },
    Shape {
        satellites: &[CI, MC],
        preds: &[(CI_RO, Eq, FromData), (T_KIND, Eq, Fixed(1))],
    },
    Shape {
        satellites: &[MI, MX],
        preds: &[(MX_TY, Eq, FromData), (T_KIND, Eq, Fixed(1))],
    },
    Shape {
        satellites: &[MK, CI],
        preds: &[(MK_KW, Eq, FromDomain), (T_KIND, Eq, Fixed(3))],
    },
    // ---- 3 joins (4 tables) — 20 queries --------------------------------
    Shape {
        satellites: &[CI, MI, MX],
        preds: &[
            (MI_TY, Eq, FromData),
            (MX_TY, Eq, FromData),
            (T_YEAR, Gt, Fixed(2000)),
        ],
    },
    Shape {
        satellites: &[CI, MI, MX],
        preds: &[(MI_TY, Eq, FromData), (MX_TY, Eq, FromData)],
    },
    Shape {
        satellites: &[CI, MI, MX],
        preds: &[
            (CI_RO, Eq, FromData),
            (MI_TY, Eq, FromData),
            (T_YEAR, Gt, Fixed(2009)),
        ],
    },
    Shape {
        satellites: &[MC, MI, MX],
        preds: &[
            (MC_TY, Eq, FromData),
            (MI_TY, Eq, FromData),
            (T_YEAR, Gt, Fixed(2005)),
        ],
    },
    Shape {
        satellites: &[MC, MI, MX],
        preds: &[(MC_TY, Eq, FromData), (MX_TY, Eq, FromData)],
    },
    Shape {
        satellites: &[MC, MI, MX],
        preds: &[
            (MC_CO, Eq, FromDomain),
            (MX_TY, Eq, FromData),
            (T_YEAR, Gt, Fixed(2000)),
        ],
    },
    Shape {
        satellites: &[MK, MI, MX],
        preds: &[
            (MK_KW, Eq, FromDomain),
            (MI_TY, Eq, FromData),
            (T_YEAR, Gt, Fixed(2005)),
        ],
    },
    Shape {
        satellites: &[MK, MI, MX],
        preds: &[(MK_KW, Eq, FromDomain), (MX_TY, Eq, FromData)],
    },
    Shape {
        satellites: &[MK, MC, MI],
        preds: &[
            (MK_KW, Eq, FromDomain),
            (MC_TY, Eq, FromData),
            (MI_TY, Eq, FromData),
        ],
    },
    Shape {
        satellites: &[MK, MC, MI],
        preds: &[
            (MK_KW, Eq, FromDomain),
            (MC_TY, Eq, FromData),
            (T_YEAR, Gt, Fixed(2008)),
        ],
    },
    Shape {
        satellites: &[MK, MC, CI],
        preds: &[(MK_KW, Eq, FromDomain), (CI_RO, Eq, FromData)],
    },
    Shape {
        satellites: &[MK, MC, CI],
        preds: &[
            (MK_KW, Eq, FromDomain),
            (MC_TY, Eq, FromData),
            (CI_RO, Eq, FromData),
        ],
    },
    Shape {
        satellites: &[MK, CI, MX],
        preds: &[
            (MK_KW, Eq, FromDomain),
            (MX_TY, Eq, FromData),
            (T_YEAR, Gt, Fixed(2000)),
        ],
    },
    Shape {
        satellites: &[MK, CI, MI],
        preds: &[
            (MK_KW, Eq, FromDomain),
            (MI_TY, Eq, FromData),
            (T_YEAR, Gt, Fixed(2010)),
        ],
    },
    Shape {
        satellites: &[MC, CI, MI],
        preds: &[
            (MC_TY, Eq, FromData),
            (MI_TY, Eq, FromData),
            (CI_RO, Eq, FromData),
        ],
    },
    Shape {
        satellites: &[MC, CI, MX],
        preds: &[
            (MC_TY, Eq, FromData),
            (MX_TY, Eq, FromData),
            (T_YEAR, Gt, Fixed(2005)),
        ],
    },
    Shape {
        satellites: &[MC, CI, MX],
        preds: &[(CI_RO, Eq, FromData), (MX_TY, Eq, FromData)],
    },
    Shape {
        satellites: &[MC, MI, MX],
        preds: &[
            (MI_TY, Eq, FromData),
            (MX_TY, Eq, FromData),
            (T_YEAR, Gt, Fixed(1995)),
            (T_YEAR, Lt, Fixed(2005)),
        ],
    },
    Shape {
        satellites: &[MK, MC, MX],
        preds: &[
            (MK_KW, Eq, FromDomain),
            (MC_TY, Eq, FromData),
            (MX_TY, Eq, FromData),
        ],
    },
    Shape {
        satellites: &[MK, MI, MX],
        preds: &[
            (MI_TY, Eq, FromData),
            (T_KIND, Eq, Fixed(1)),
            (T_YEAR, Gt, Fixed(2000)),
        ],
    },
    // ---- 4 joins (5 tables) — 9 queries ---------------------------------
    Shape {
        satellites: &[MK, MC, CI, MI],
        preds: &[
            (MK_KW, Eq, FromDomain),
            (MC_TY, Eq, FromData),
            (T_YEAR, Gt, Fixed(2005)),
        ],
    },
    Shape {
        satellites: &[MK, MC, CI, MI],
        preds: &[
            (MK_KW, Eq, FromDomain),
            (MI_TY, Eq, FromData),
            (CI_RO, Eq, FromData),
        ],
    },
    Shape {
        satellites: &[MK, MC, CI, MX],
        preds: &[(MK_KW, Eq, FromDomain), (MX_TY, Eq, FromData)],
    },
    Shape {
        satellites: &[MC, CI, MI, MX],
        preds: &[
            (MC_TY, Eq, FromData),
            (MI_TY, Eq, FromData),
            (MX_TY, Eq, FromData),
        ],
    },
    Shape {
        satellites: &[MC, CI, MI, MX],
        preds: &[
            (MC_TY, Eq, FromData),
            (MX_TY, Eq, FromData),
            (T_YEAR, Gt, Fixed(2000)),
        ],
    },
    Shape {
        satellites: &[MK, CI, MI, MX],
        preds: &[
            (MK_KW, Eq, FromDomain),
            (MI_TY, Eq, FromData),
            (T_YEAR, Gt, Fixed(2005)),
        ],
    },
    Shape {
        satellites: &[MK, MC, MI, MX],
        preds: &[
            (MK_KW, Eq, FromDomain),
            (MC_TY, Eq, FromData),
            (MI_TY, Eq, FromData),
            (MX_TY, Eq, FromData),
        ],
    },
    Shape {
        satellites: &[MK, MC, MI, MX],
        preds: &[
            (MC_TY, Eq, FromData),
            (MX_TY, Eq, FromData),
            (T_YEAR, Gt, Fixed(2010)),
        ],
    },
    Shape {
        satellites: &[MK, MC, CI, MI],
        preds: &[
            (MC_TY, Eq, FromData),
            (CI_RO, Eq, FromData),
            (T_YEAR, Gt, Fixed(1990)),
            (T_YEAR, Lt, Fixed(2000)),
        ],
    },
];

/// Instantiates the 70 JOB-light queries against a synthetic IMDb database.
/// Deterministic in `seed`.
///
/// # Panics
/// Panics if `db` does not have the IMDb schema.
pub fn job_light_workload(db: &Database, seed: u64) -> Vec<Query> {
    SHAPES
        .iter()
        .enumerate()
        .map(|(i, shape)| instantiate(db, shape, seed, i as u64))
        .collect()
}

fn instantiate(db: &Database, shape: &Shape, seed: u64, index: u64) -> Query {
    let mut rng = StdRng::seed_from_u64(seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut q = Query::new();
    q.add_table(db, "title").expect("imdb schema");
    for s in shape.satellites {
        q.add_table(db, s).expect("imdb schema");
    }
    for (col, op, lit) in shape.preds {
        let literal = match lit {
            Lit::Fixed(v) => *v,
            Lit::FromData => {
                let cr = db.resolve(col).expect("imdb schema");
                let c = db.table(cr.table).column(cr.col);
                // Draw from a random row; retry NULLs.
                let mut v = None;
                for _ in 0..32 {
                    let row = rng.random_range(0..c.len());
                    if let Some(x) = c.get(row) {
                        v = Some(x);
                        break;
                    }
                }
                v.expect("column should have non-NULL values")
            }
            Lit::FromDomain => {
                let cr = db.resolve(col).expect("imdb schema");
                let c = db.table(cr.table).column(cr.col);
                let mut vals: Vec<i64> = (0..c.len()).filter_map(|i| c.get(i)).collect();
                vals.sort_unstable();
                vals.dedup();
                vals[rng.random_range(0..vals.len())]
            }
        };
        q.add_predicate(db, col, *op, literal).expect("imdb schema");
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_storage::exec::CountExecutor;
    use ds_storage::gen::{imdb_database, ImdbConfig};

    #[test]
    fn workload_has_70_queries_with_job_light_structure() {
        let db = imdb_database(&ImdbConfig::tiny(1));
        let wl = job_light_workload(&db, 42);
        assert_eq!(wl.len(), 70);
        let title = db.table_id("title").unwrap();
        let year_col = db.resolve("title.production_year").unwrap().col;
        for q in &wl {
            // Joins 1..=4, all through title.
            assert!((1..=4).contains(&q.num_joins()), "{q:?}");
            assert!(q.tables.contains(&title));
            assert_eq!(q.num_joins() + 1, q.tables.len());
            assert!(q.to_exec().validate(&db).is_ok());
            // Range predicates only on production_year.
            for (t, p) in &q.predicates {
                let (op, _) = p.as_cmp().expect("JOB-light is cmp-only");
                if op != CmpOp::Eq {
                    assert_eq!(*t, title);
                    assert_eq!(p.col, year_col);
                }
            }
        }
    }

    #[test]
    fn join_count_distribution() {
        let db = imdb_database(&ImdbConfig::tiny(2));
        let wl = job_light_workload(&db, 1);
        let mut by_joins = [0usize; 5];
        for q in &wl {
            by_joins[q.num_joins()] += 1;
        }
        assert_eq!(by_joins[1], 8);
        assert_eq!(by_joins[2], 33);
        assert_eq!(by_joins[3], 20);
        assert_eq!(by_joins[4], 9);
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let db = imdb_database(&ImdbConfig::tiny(3));
        let a = job_light_workload(&db, 5);
        let b = job_light_workload(&db, 5);
        assert_eq!(a, b);
        let c = job_light_workload(&db, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn queries_execute_with_mostly_nonzero_results() {
        let db = imdb_database(&ImdbConfig::tiny(4));
        let wl = job_light_workload(&db, 7);
        let exec = CountExecutor::new();
        let nonzero = wl
            .iter()
            .filter(|q| exec.count(&db, &q.to_exec()).unwrap() > 0)
            .count();
        // Equality literals are data-drawn, so most queries match something.
        assert!(nonzero >= 35, "only {nonzero}/70 queries non-empty");
    }

    #[test]
    fn equality_heavy_predicate_mix() {
        let db = imdb_database(&ImdbConfig::tiny(5));
        let wl = job_light_workload(&db, 8);
        let (mut eq, mut range) = (0usize, 0usize);
        for q in &wl {
            for (_, p) in &q.predicates {
                if p.as_cmp().map(|(op, _)| op) == Some(CmpOp::Eq) {
                    eq += 1;
                } else {
                    range += 1;
                }
            }
        }
        assert!(
            eq > range * 2,
            "JOB-light is equality-heavy: eq={eq} range={range}"
        );
    }
}
