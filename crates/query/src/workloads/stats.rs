//! Workload profiling: the distribution statistics (join counts, predicate
//! operators, tables touched) that the generalization discussion in §2
//! reasons about — "MSCN was trained with a uniform distribution between
//! =, <, and > predicates" vs JOB-light's equality-heavy mix.

use std::collections::HashMap;

use ds_storage::catalog::{Database, TableId};
use ds_storage::predicate::{CmpOp, PredOpKind};

use crate::query::Query;

/// Distribution profile of a workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Number of queries.
    pub queries: usize,
    /// Histogram over join counts: `joins[k]` = queries with `k` joins.
    pub joins: Vec<usize>,
    /// Predicate-operator counts indexed by [`PredOpKind::index`] (the
    /// first three slots agree with [`CmpOp::index`]).
    pub ops: [usize; 5],
    /// Queries per table (how often each table participates).
    pub table_usage: HashMap<TableId, usize>,
    /// Histogram over predicate counts per query.
    pub predicates: Vec<usize>,
}

impl WorkloadProfile {
    /// Profiles a workload.
    pub fn of(workload: &[Query]) -> Self {
        let mut joins: Vec<usize> = Vec::new();
        let mut predicates: Vec<usize> = Vec::new();
        let mut ops = [0usize; 5];
        let mut table_usage: HashMap<TableId, usize> = HashMap::new();
        for q in workload {
            let j = q.num_joins();
            if joins.len() <= j {
                joins.resize(j + 1, 0);
            }
            joins[j] += 1;
            let p = q.num_predicates();
            if predicates.len() <= p {
                predicates.resize(p + 1, 0);
            }
            predicates[p] += 1;
            for (_, pred) in &q.predicates {
                ops[pred.op_kind().index()] += 1;
            }
            for &t in &q.tables {
                *table_usage.entry(t).or_insert(0) += 1;
            }
        }
        Self {
            queries: workload.len(),
            joins,
            ops,
            table_usage,
            predicates,
        }
    }

    /// Fraction of predicates using comparison `op` (0 if there are no
    /// predicates).
    pub fn op_fraction(&self, op: CmpOp) -> f64 {
        self.kind_fraction(PredOpKind::ALL[op.index()])
    }

    /// Fraction of predicates of operator kind `kind` (0 if there are no
    /// predicates).
    pub fn kind_fraction(&self, kind: PredOpKind) -> f64 {
        let total: usize = self.ops.iter().sum();
        if total == 0 {
            return 0.0;
        }
        self.ops[kind.index()] as f64 / total as f64
    }

    /// Mean joins per query.
    pub fn mean_joins(&self) -> f64 {
        if self.queries == 0 {
            return 0.0;
        }
        let total: usize = self.joins.iter().enumerate().map(|(j, &n)| j * n).sum();
        total as f64 / self.queries as f64
    }

    /// A printable report, one line per statistic.
    pub fn report(&self, db: &Database) -> String {
        let mut out = format!("{} queries\n", self.queries);
        out.push_str("joins: ");
        for (j, &n) in self.joins.iter().enumerate() {
            out.push_str(&format!("{j}⋈×{n} "));
        }
        out.push_str(&format!(
            "\nops: ={} <{} >{} IN×{} LIKE×{} (eq fraction {:.0}%)\n",
            self.ops[0],
            self.ops[1],
            self.ops[2],
            self.ops[3],
            self.ops[4],
            self.op_fraction(CmpOp::Eq) * 100.0
        ));
        let mut usage: Vec<(&TableId, &usize)> = self.table_usage.iter().collect();
        usage.sort_by_key(|(t, _)| t.0);
        out.push_str("tables: ");
        for (t, n) in usage {
            out.push_str(&format!("{}×{} ", db.table(*t).name(), n));
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::job_light::job_light_workload;
    use crate::{GeneratorConfig, QueryGenerator};
    use ds_storage::gen::{imdb_database, ImdbConfig};

    #[test]
    fn job_light_profile_matches_its_spec() {
        let db = imdb_database(&ImdbConfig::tiny(1));
        let wl = job_light_workload(&db, 1);
        let p = WorkloadProfile::of(&wl);
        assert_eq!(p.queries, 70);
        assert_eq!(p.joins[1], 8);
        assert_eq!(p.joins[2], 33);
        assert_eq!(p.joins[3], 20);
        assert_eq!(p.joins[4], 9);
        // Equality-heavy, range only on production_year.
        assert!(p.op_fraction(CmpOp::Eq) > 0.6);
        // Every query touches title.
        let title = db.table_id("title").unwrap();
        assert_eq!(p.table_usage[&title], 70);
        let report = p.report(&db);
        assert!(report.contains("70 queries"));
        assert!(report.contains("title×70"));
    }

    #[test]
    fn generated_workload_has_uniform_ops() {
        let db = imdb_database(&ImdbConfig::tiny(2));
        let mut gen = QueryGenerator::new(
            &db,
            GeneratorConfig::new(crate::workloads::imdb_predicate_columns(&db), 3),
        );
        let wl = gen.generate_batch(900);
        let p = WorkloadProfile::of(&wl);
        for op in CmpOp::ALL {
            let f = p.op_fraction(op);
            assert!((f - 1.0 / 3.0).abs() < 0.07, "{op:?} fraction {f}");
        }
        assert!(p.mean_joins() > 0.3 && p.mean_joins() < 2.0);
    }

    #[test]
    fn empty_workload_profile() {
        let p = WorkloadProfile::of(&[]);
        assert_eq!(p.queries, 0);
        assert_eq!(p.mean_joins(), 0.0);
        assert_eq!(p.op_fraction(CmpOp::Eq), 0.0);
    }
}
