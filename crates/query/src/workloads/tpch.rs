//! A TPC-H evaluation workload analogous to JOB-light: fixed query shapes
//! over the synthetic TPC-H subset, literals re-instantiated from the data.
//! Used by experiment E9 (the demo supports TPC-H sketches).

use rand::{rngs::StdRng, RngExt, SeedableRng};

use ds_storage::catalog::Database;
use ds_storage::predicate::CmpOp;

use crate::query::Query;

use CmpOp::{Eq, Gt, Lt};

/// One shape: tables (first is the "anchor"; joins follow FK chains as the
/// tables are added left-to-right) plus predicates `(col, op, fixed | draw)`.
struct Shape {
    tables: &'static [&'static str],
    preds: &'static [(&'static str, CmpOp, Option<i64>)],
}

static SHAPES: &[Shape] = &[
    Shape {
        tables: &["orders"],
        preds: &[
            ("orders.o_orderstatus", Eq, None),
            ("orders.o_orderdate", Gt, Some(1200)),
        ],
    },
    Shape {
        tables: &["lineitem"],
        preds: &[("lineitem.l_quantity", Gt, Some(40))],
    },
    Shape {
        tables: &["lineitem"],
        preds: &[
            ("lineitem.l_discount", Eq, None),
            ("lineitem.l_quantity", Lt, Some(10)),
        ],
    },
    Shape {
        tables: &["orders", "lineitem"],
        preds: &[("orders.o_orderpriority", Eq, None)],
    },
    Shape {
        tables: &["orders", "lineitem"],
        preds: &[
            ("lineitem.l_quantity", Gt, Some(25)),
            ("orders.o_orderdate", Gt, Some(1800)),
        ],
    },
    Shape {
        tables: &["orders", "lineitem"],
        preds: &[
            ("orders.o_orderstatus", Eq, None),
            ("lineitem.l_discount", Gt, Some(5)),
        ],
    },
    Shape {
        tables: &["customer", "orders"],
        preds: &[("customer.c_mktsegment", Eq, None)],
    },
    Shape {
        tables: &["customer", "orders"],
        preds: &[
            ("customer.c_acctbal", Gt, Some(5000)),
            ("orders.o_orderdate", Lt, Some(600)),
        ],
    },
    Shape {
        tables: &["lineitem", "part"],
        preds: &[("part.p_size", Eq, None)],
    },
    Shape {
        tables: &["lineitem", "part"],
        preds: &[
            ("part.p_brand", Eq, None),
            ("lineitem.l_quantity", Lt, Some(25)),
        ],
    },
    Shape {
        tables: &["lineitem", "supplier"],
        preds: &[("supplier.s_acctbal", Gt, Some(0))],
    },
    Shape {
        tables: &["customer", "orders", "lineitem"],
        preds: &[
            ("customer.c_mktsegment", Eq, None),
            ("orders.o_orderdate", Lt, Some(1200)),
        ],
    },
    Shape {
        tables: &["customer", "orders", "lineitem"],
        preds: &[
            ("lineitem.l_quantity", Gt, Some(30)),
            ("customer.c_acctbal", Gt, Some(2000)),
        ],
    },
    Shape {
        tables: &["orders", "lineitem", "part"],
        preds: &[
            ("part.p_size", Lt, Some(20)),
            ("orders.o_orderpriority", Eq, None),
        ],
    },
    Shape {
        tables: &["orders", "lineitem", "part"],
        preds: &[("part.p_brand", Eq, None)],
    },
    Shape {
        tables: &["orders", "lineitem", "supplier"],
        preds: &[
            ("orders.o_orderstatus", Eq, None),
            ("supplier.s_acctbal", Lt, Some(5000)),
        ],
    },
    Shape {
        tables: &["nation", "customer", "orders"],
        preds: &[("orders.o_orderdate", Gt, Some(2000))],
    },
    Shape {
        tables: &["customer", "orders", "lineitem", "part"],
        preds: &[
            ("customer.c_mktsegment", Eq, None),
            ("part.p_size", Gt, Some(30)),
        ],
    },
    Shape {
        tables: &["customer", "orders", "lineitem", "supplier"],
        preds: &[("lineitem.l_discount", Lt, Some(3))],
    },
    Shape {
        tables: &["region", "nation", "customer", "orders"],
        preds: &[
            ("region.r_regionkey", Eq, None),
            ("orders.o_orderdate", Gt, Some(1000)),
        ],
    },
];

/// Instantiates the TPC-H evaluation workload (20 queries). Deterministic
/// in `seed`.
pub fn tpch_workload(db: &Database, seed: u64) -> Vec<Query> {
    SHAPES
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let mut rng =
                StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0xA24B_AED4_963E_E407));
            let mut q = Query::new();
            for t in s.tables {
                q.add_table(db, t).expect("tpch schema");
            }
            for (col, op, fixed) in s.preds {
                let literal = fixed.unwrap_or_else(|| {
                    let cr = db.resolve(col).expect("tpch schema");
                    let c = db.table(cr.table).column(cr.col);
                    let row = rng.random_range(0..c.len());
                    c.get(row).expect("tpch has no NULLs")
                });
                q.add_predicate(db, col, *op, literal).expect("tpch schema");
            }
            q
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_storage::exec::CountExecutor;
    use ds_storage::gen::{tpch_database, TpchConfig};

    #[test]
    fn workload_is_valid_and_executable() {
        let db = tpch_database(&TpchConfig::tiny(1));
        let wl = tpch_workload(&db, 3);
        assert_eq!(wl.len(), 20);
        let exec = CountExecutor::new();
        for q in &wl {
            assert!(q.to_exec().validate(&db).is_ok());
            exec.count(&db, &q.to_exec()).expect("executable");
        }
    }

    #[test]
    fn deterministic() {
        let db = tpch_database(&TpchConfig::tiny(2));
        assert_eq!(tpch_workload(&db, 4), tpch_workload(&db, 4));
    }

    #[test]
    fn covers_chain_joins() {
        let db = tpch_database(&TpchConfig::tiny(3));
        let wl = tpch_workload(&db, 5);
        let max_tables = wl.iter().map(|q| q.tables.len()).max().unwrap();
        assert!(max_tables >= 4, "chain queries present");
    }
}
