//! Controlled workload-shift sweeps — CEB-style parameterized templates.
//!
//! The Cardinality Estimation Benchmark methodology separates a query's
//! *template* (tables, joins, predicate columns and operators) from its
//! *parameters* (the literals), then studies estimators under controlled
//! distribution shift of the parameters. This module reproduces that
//! setup over the synthetic databases:
//!
//! 1. a pool of templates is drawn from the **training** generator, so
//!    template shapes match what a sketch was trained on;
//! 2. each sweep point re-instantiates the templates with literals drawn
//!    under a [`ShiftKind`] at a `severity` knob in `[0, 1]`:
//!    - [`ShiftKind::Stationary`] — literals redrawn from the data
//!      distribution, exactly like training (severity is ignored). A
//!      drift monitor must stay **silent** here;
//!    - [`ShiftKind::Granularity`] — a severity-fraction of equality
//!      predicates coarsens into `IN`-lists and `LIKE` prefixes, shifting
//!      the operator mix away from the training vocabulary;
//!    - [`ShiftKind::Selectivity`] — literals are pushed toward the
//!      distribution tails by quantile interpolation (`q' = u·(1−s) + s`
//!      for `>`-style predicates, mirrored for `<`), shrinking true
//!      cardinalities as severity grows. Severity 0 degenerates to the
//!      stationary draw.
//!
//! Instantiation is deterministic given the seed, so a sweep is a
//! reproducible CI artifact, not a flaky sample.

use std::collections::HashMap;

use rand::{rngs::StdRng, RngExt, SeedableRng};

use ds_storage::catalog::{ColRef, Database, TableId};
use ds_storage::predicate::{CmpOp, ColPredicate, PredTest};

use crate::generator::{GeneratorConfig, QueryGenerator};
use crate::query::Query;

/// What the sweep shifts about the parameter distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShiftKind {
    /// Literals redrawn from the training distribution; the null case a
    /// drift monitor must not fire on.
    Stationary,
    /// Point predicates coarsen into `IN`-lists and `LIKE` prefixes.
    Granularity,
    /// Literals migrate toward the distribution tails.
    Selectivity,
}

/// One sweep point: the shift kind, how hard to push it, and how many
/// instances to emit.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// The kind of shift applied at this point.
    pub kind: ShiftKind,
    /// Shift severity in `[0, 1]`; 0 is indistinguishable from stationary.
    pub severity: f64,
    /// Queries instantiated at this point (templates cycle round-robin).
    pub queries: usize,
    /// Longest `IN`-list the granularity shift may introduce.
    pub max_in_list: usize,
    /// Instantiation seed — one sweep point, one reproducible workload.
    pub seed: u64,
}

impl SweepConfig {
    /// A sweep point with the default sizing (100 queries, lists ≤ 6).
    pub fn new(kind: ShiftKind, severity: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&severity), "severity must be in [0,1]");
        Self {
            kind,
            severity,
            queries: 100,
            max_in_list: 6,
            seed,
        }
    }

    /// Overrides the number of instantiated queries.
    pub fn queries(mut self, n: usize) -> Self {
        self.queries = n;
        self
    }
}

/// A pool of parameterized templates over one database, ready to
/// instantiate sweep points.
#[derive(Debug)]
pub struct ShiftSweep {
    templates: Vec<Query>,
    /// Sorted non-NULL values (with duplicates) per predicate column —
    /// the quantile axis of the selectivity shift. Drawing a uniform
    /// index reproduces the data distribution.
    sorted: HashMap<(usize, usize), Vec<i64>>,
}

impl ShiftSweep {
    /// Draws `num_templates` template shapes from the *training* generator
    /// configuration (comparison-only operator mix), so the stationary
    /// sweep point reproduces the training workload distribution.
    pub fn new(
        db: &Database,
        predicate_columns: Vec<ColRef>,
        num_templates: usize,
        seed: u64,
    ) -> Self {
        assert!(num_templates > 0, "need at least one template");
        let cfg = GeneratorConfig::new(predicate_columns.clone(), seed);
        let templates = QueryGenerator::new(db, cfg).generate_batch(num_templates);
        let mut sorted = HashMap::new();
        for cr in &predicate_columns {
            let col = db.table(cr.table).column(cr.col);
            let mut vals: Vec<i64> = (0..col.len()).filter_map(|r| col.get(r)).collect();
            vals.sort_unstable();
            sorted.insert((cr.table.0, cr.col), vals);
        }
        Self { templates, sorted }
    }

    /// The template pool (shapes only; literals are placeholders from the
    /// draw that built the pool).
    pub fn templates(&self) -> &[Query] {
        &self.templates
    }

    /// Instantiates one sweep point: `cfg.queries` concrete queries,
    /// templates cycled round-robin, literals rebound under the point's
    /// shift kind and severity. Deterministic given `cfg.seed`.
    pub fn instantiate(&self, cfg: &SweepConfig) -> Vec<Query> {
        assert!(
            (0.0..=1.0).contains(&cfg.severity),
            "severity must be in [0,1]"
        );
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        (0..cfg.queries)
            .map(|i| {
                let template = &self.templates[i % self.templates.len()];
                self.rebind(template, cfg, &mut rng)
            })
            .collect()
    }

    /// Rebinds every predicate of one template.
    fn rebind(&self, template: &Query, cfg: &SweepConfig, rng: &mut StdRng) -> Query {
        let mut q = template.clone();
        for (table, pred) in &mut q.predicates {
            *pred = self.rebind_predicate(*table, pred, cfg, rng);
        }
        q
    }

    fn rebind_predicate(
        &self,
        table: TableId,
        pred: &ColPredicate,
        cfg: &SweepConfig,
        rng: &mut StdRng,
    ) -> ColPredicate {
        let col = pred.col;
        match (&pred.test, cfg.kind) {
            // Stationary: redraw the parameter from the data distribution,
            // keeping the template's operator. Severity is ignored.
            (PredTest::Cmp(op, _), ShiftKind::Stationary) => {
                ColPredicate::new(col, *op, self.draw_quantile(table, col, rng, 0.0, *op))
            }
            (PredTest::Cmp(op, _), ShiftKind::Selectivity) => ColPredicate::new(
                col,
                *op,
                self.draw_quantile(table, col, rng, cfg.severity, *op),
            ),
            (PredTest::Cmp(op, _), ShiftKind::Granularity) => {
                let lit = self.draw_quantile(table, col, rng, 0.0, *op);
                // Only point predicates coarsen; ranges keep their shape.
                if *op != CmpOp::Eq || rng.random_range(0.0..1.0) >= cfg.severity {
                    return ColPredicate::new(col, *op, lit);
                }
                if rng.random_range(0..2) == 0 {
                    let k = 2
                        + ((cfg.max_in_list.saturating_sub(2)) as f64 * cfg.severity).round()
                            as usize;
                    let values: Vec<i64> = (0..k)
                        .map(|_| self.draw_quantile(table, col, rng, 0.0, CmpOp::Eq))
                        .collect();
                    ColPredicate::is_in(col, values)
                } else {
                    let s = lit.to_string();
                    let digits = s.trim_start_matches('-').len();
                    let keep =
                        (digits as f64 - cfg.severity * (digits as f64 - 1.0)).round() as usize;
                    let keep = keep.clamp(1, digits) + usize::from(s.starts_with('-'));
                    let mut pat: String = s.chars().take(keep).collect();
                    pat.push('%');
                    ColPredicate::like(col, pat)
                }
            }
            // Templates drawn from the training generator are
            // comparison-only; if a caller supplies extended templates,
            // rebind their parameters stationary-style.
            (PredTest::In(values), _) => {
                let k = values.len().max(1);
                let fresh: Vec<i64> = (0..k)
                    .map(|_| self.draw_quantile(table, col, rng, 0.0, CmpOp::Eq))
                    .collect();
                ColPredicate::is_in(col, fresh)
            }
            (PredTest::Like(pat), _) => {
                let keep = pat.as_str().trim_end_matches('%').len().max(1);
                let s = self
                    .draw_quantile(table, col, rng, 0.0, CmpOp::Eq)
                    .to_string();
                let mut fresh: String = s.chars().take(keep).collect();
                fresh.push('%');
                ColPredicate::like(col, fresh)
            }
        }
    }

    /// Draws a literal at a severity-shifted quantile of the column's
    /// value distribution. Severity 0 is a uniform index into the sorted
    /// multiset — the data distribution itself. Positive severity
    /// interpolates the quantile toward the tail that *shrinks* the
    /// predicate's selectivity: the upper tail for `>` and `=`, the lower
    /// tail for `<`.
    fn draw_quantile(
        &self,
        table: TableId,
        col: usize,
        rng: &mut StdRng,
        severity: f64,
        op: CmpOp,
    ) -> i64 {
        let vals = self
            .sorted
            .get(&(table.0, col))
            .filter(|v| !v.is_empty())
            .expect("template predicates target non-empty predicate columns");
        let u = rng.random_range(0.0..1.0);
        let q = match op {
            CmpOp::Lt => u * (1.0 - severity),
            CmpOp::Gt | CmpOp::Eq => u * (1.0 - severity) + severity,
        };
        let idx = ((q * vals.len() as f64) as usize).min(vals.len() - 1);
        vals[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_storage::exec::CountExecutor;
    use ds_storage::gen::{imdb_database, ImdbConfig};
    use ds_storage::predicate::PredOpKind;

    fn pred_cols(db: &Database) -> Vec<ColRef> {
        [
            "title.kind_id",
            "title.production_year",
            "movie_keyword.keyword_id",
        ]
        .iter()
        .map(|q| db.resolve(q).unwrap())
        .collect()
    }

    #[test]
    fn sweep_points_are_deterministic_and_executable() {
        let db = imdb_database(&ImdbConfig::tiny(1));
        let sweep = ShiftSweep::new(&db, pred_cols(&db), 10, 3);
        let exec = CountExecutor::new();
        for kind in [
            ShiftKind::Stationary,
            ShiftKind::Granularity,
            ShiftKind::Selectivity,
        ] {
            let cfg = SweepConfig::new(kind, 0.7, 11).queries(40);
            let a = sweep.instantiate(&cfg);
            let b = sweep.instantiate(&cfg);
            assert_eq!(a, b, "{kind:?} must be reproducible");
            for q in &a {
                assert_eq!(q.to_exec().validate(&db), Ok(()));
                exec.count(&db, &q.to_exec()).expect("executable");
            }
        }
    }

    #[test]
    fn stationary_point_keeps_the_training_vocabulary() {
        let db = imdb_database(&ImdbConfig::tiny(2));
        let sweep = ShiftSweep::new(&db, pred_cols(&db), 8, 5);
        let qs = sweep.instantiate(&SweepConfig::new(ShiftKind::Stationary, 1.0, 7).queries(60));
        for q in &qs {
            for (_, p) in &q.predicates {
                assert!(p.as_cmp().is_some(), "stationary must stay cmp-only");
            }
        }
    }

    #[test]
    fn granularity_shift_introduces_in_and_like_with_severity() {
        let db = imdb_database(&ImdbConfig::tiny(3));
        let sweep = ShiftSweep::new(&db, pred_cols(&db), 12, 9);
        let count_ext = |severity: f64| {
            let qs = sweep
                .instantiate(&SweepConfig::new(ShiftKind::Granularity, severity, 13).queries(150));
            qs.iter()
                .flat_map(|q| &q.predicates)
                .filter(|(_, p)| matches!(p.op_kind(), PredOpKind::In | PredOpKind::Like))
                .count()
        };
        assert_eq!(count_ext(0.0), 0, "severity 0 is stationary");
        let lo = count_ext(0.3);
        let hi = count_ext(0.9);
        assert!(hi > lo, "coarsening must grow with severity: {lo} vs {hi}");
        assert!(hi > 10, "severe shift must actually coarsen: {hi}");
    }

    #[test]
    fn selectivity_shift_pushes_literals_to_the_tail() {
        let db = imdb_database(&ImdbConfig::tiny(4));
        let sweep = ShiftSweep::new(&db, pred_cols(&db), 12, 17);
        let mean_gt_literal = |severity: f64| {
            let qs = sweep
                .instantiate(&SweepConfig::new(ShiftKind::Selectivity, severity, 23).queries(200));
            let lits: Vec<i64> = qs
                .iter()
                .flat_map(|q| &q.predicates)
                .filter_map(|(_, p)| match p.as_cmp() {
                    Some((CmpOp::Gt, lit)) => Some(lit),
                    _ => None,
                })
                .collect();
            assert!(!lits.is_empty());
            lits.iter().sum::<i64>() as f64 / lits.len() as f64
        };
        let base = mean_gt_literal(0.0);
        let shifted = mean_gt_literal(0.9);
        assert!(
            shifted > base,
            "severity must raise > thresholds: {base} vs {shifted}"
        );
    }

    #[test]
    fn extended_templates_rebind_their_parameters() {
        let db = imdb_database(&ImdbConfig::tiny(5));
        let mut sweep = ShiftSweep::new(&db, pred_cols(&db), 4, 21);
        // Splice an extended-template pool in: IN and LIKE shapes survive
        // rebinding with fresh parameters.
        let kid = db.resolve("title.kind_id").unwrap();
        let q = Query {
            tables: vec![kid.table],
            joins: vec![],
            predicates: vec![
                (kid.table, ColPredicate::is_in(kid.col, vec![1, 2])),
                (kid.table, ColPredicate::like(kid.col, "1%")),
            ],
        };
        q.to_exec().validate(&db).unwrap();
        sweep.templates = vec![q];
        let out = sweep.instantiate(&SweepConfig::new(ShiftKind::Selectivity, 0.5, 29).queries(20));
        for q in &out {
            assert_eq!(q.predicates[0].1.op_kind(), PredOpKind::In);
            assert_eq!(q.predicates[1].1.op_kind(), PredOpKind::Like);
            q.to_exec().validate(&db).unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "severity must be in [0,1]")]
    fn severity_out_of_range_rejected() {
        SweepConfig::new(ShiftKind::Stationary, 1.5, 1);
    }
}
