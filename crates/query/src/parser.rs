//! A parser for the SQL subset of the paper:
//!
//! ```sql
//! SELECT COUNT(*)
//! FROM title t, movie_keyword mk
//! WHERE mk.movie_id = t.id
//!   AND mk.keyword_id = 117
//!   AND t.production_year > 2005
//!   AND t.kind_id = ?
//! ```
//!
//! Supported: `SELECT COUNT(*)`, comma-separated `FROM` list with optional
//! aliases, conjunctive `WHERE` with column-column equi-joins, column-literal
//! comparisons (`=`, `<`, `>`), inclusive `BETWEEN a AND b` (desugared to a
//! `>`/`<` pair over integers), `IN (v1, …, vk)` lists, `LIKE 'pattern'`
//! over the decimal rendering of the value, and at most one `?` placeholder
//! (for query templates). Case-insensitive keywords, negative integer
//! literals, single-quoted string literals (no escapes).

use std::collections::HashMap;

use ds_storage::catalog::{ColRef, Database, TableId};
use ds_storage::exec::JoinEdge;
use ds_storage::predicate::{CmpOp, ColPredicate};

use crate::query::Query;

/// Parse errors with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError(msg.into()))
}

/// Result of parsing: the query plus the placeholder column, if the SQL
/// contained a `column op ?` term.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedQuery {
    /// The parsed query (without the placeholder predicate).
    pub query: Query,
    /// Placeholder predicate `(column, operator)` if present.
    pub placeholder: Option<(ColRef, CmpOp)>,
}

/// Parses a SQL string into a [`Query`]; rejects placeholders.
///
/// ```
/// use ds_query::parser::parse_query;
/// use ds_storage::gen::{imdb_database, ImdbConfig};
/// let db = imdb_database(&ImdbConfig::tiny(1));
/// let q = parse_query(&db, "SELECT COUNT(*) FROM title t, movie_keyword mk \
///                           WHERE mk.movie_id = t.id AND t.production_year > 2000").unwrap();
/// assert_eq!(q.tables.len(), 2);
/// assert_eq!(q.num_joins(), 1);
/// assert_eq!(q.num_predicates(), 1);
/// ```
pub fn parse_query(db: &Database, sql: &str) -> Result<Query, ParseError> {
    let parsed = parse(db, sql)?;
    if parsed.placeholder.is_some() {
        return err("placeholder '?' not allowed here; use parse() for templates");
    }
    Ok(parsed.query)
}

/// Parses a SQL string, allowing one `?` placeholder (query templates).
pub fn parse(db: &Database, sql: &str) -> Result<ParsedQuery, ParseError> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0, db };
    p.parse_statement()
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Word(String), // identifiers and keywords (lowercased)
    Number(i64),  // integer literal
    Str(String),  // single-quoted string literal (verbatim, unquoted)
    Symbol(char), // ( ) , = < > . * ?
}

fn tokenize(sql: &str) -> Result<Vec<Token>, ParseError> {
    let mut out = Vec::new();
    let mut chars = sql.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '(' | ')' | ',' | '=' | '<' | '>' | '*' | '?' | ';' => {
                chars.next();
                if c != ';' {
                    out.push(Token::Symbol(c));
                }
            }
            '-' | '0'..='9' => {
                let neg = c == '-';
                if neg {
                    chars.next();
                }
                let mut n: i64 = 0;
                let mut any = false;
                while let Some(&d) = chars.peek() {
                    if let Some(digit) = d.to_digit(10) {
                        n = n
                            .checked_mul(10)
                            .and_then(|x| x.checked_add(digit as i64))
                            .ok_or_else(|| ParseError("integer literal overflow".into()))?;
                        chars.next();
                        any = true;
                    } else {
                        break;
                    }
                }
                if !any {
                    return err("'-' must start an integer literal");
                }
                out.push(Token::Number(if neg { -n } else { n }));
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut w = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        w.push(d.to_ascii_lowercase());
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token::Word(w));
            }
            '.' => {
                chars.next();
                out.push(Token::Symbol('.'));
            }
            '\'' => {
                chars.next();
                let mut s = String::new();
                let mut terminated = false;
                for d in chars.by_ref() {
                    if d == '\'' {
                        terminated = true;
                        break;
                    }
                    s.push(d);
                }
                if !terminated {
                    return err("unterminated string literal");
                }
                out.push(Token::Str(s));
            }
            other => return err(format!("unexpected character '{other}'")),
        }
    }
    Ok(out)
}

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    db: &'a Database,
}

/// A `table_or_alias.column` reference before resolution.
#[derive(Debug, Clone)]
struct RawCol {
    qualifier: String,
    column: String,
}

#[derive(Debug, Clone)]
enum Term {
    Join(RawCol, RawCol),
    Pred(RawCol, CmpOp, i64),
    InList(RawCol, Vec<i64>),
    LikePat(RawCol, String),
    Placeholder(RawCol, CmpOp),
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect_word(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(Token::Word(w)) if w == kw => Ok(()),
            other => err(format!("expected '{kw}', found {other:?}")),
        }
    }

    fn expect_symbol(&mut self, s: char) -> Result<(), ParseError> {
        match self.next() {
            Some(Token::Symbol(c)) if c == s => Ok(()),
            other => err(format!("expected '{s}', found {other:?}")),
        }
    }

    fn parse_statement(&mut self) -> Result<ParsedQuery, ParseError> {
        self.expect_word("select")?;
        self.expect_word("count")?;
        self.expect_symbol('(')?;
        self.expect_symbol('*')?;
        self.expect_symbol(')')?;
        self.expect_word("from")?;

        // FROM list with optional aliases.
        let mut aliases: HashMap<String, TableId> = HashMap::new();
        let mut tables: Vec<TableId> = Vec::new();
        loop {
            let name = match self.next() {
                Some(Token::Word(w)) => w,
                other => return err(format!("expected table name, found {other:?}")),
            };
            let tid = self
                .db
                .table_id(&name)
                .ok_or_else(|| ParseError(format!("unknown table '{name}'")))?;
            if tables.contains(&tid) {
                return err(format!("table '{name}' listed twice"));
            }
            tables.push(tid);
            aliases.insert(name.clone(), tid);
            // Optional alias: a word that is not WHERE.
            if let Some(Token::Word(w)) = self.peek() {
                if w != "where" {
                    let alias = w.clone();
                    self.next();
                    if aliases
                        .insert(alias.clone(), tid)
                        .is_some_and(|old| old != tid)
                    {
                        return err(format!("alias '{alias}' is ambiguous"));
                    }
                }
            }
            match self.peek() {
                Some(Token::Symbol(',')) => {
                    self.next();
                }
                _ => break,
            }
        }

        // Optional WHERE with AND-separated terms.
        let mut terms = Vec::new();
        if let Some(Token::Word(w)) = self.peek() {
            if w == "where" {
                self.next();
                loop {
                    terms.extend(self.parse_term()?);
                    match self.peek() {
                        Some(Token::Word(w)) if w == "and" => {
                            self.next();
                        }
                        _ => break,
                    }
                }
            }
        }
        if self.pos != self.tokens.len() {
            return err(format!("trailing tokens at {:?}", self.peek()));
        }

        self.assemble(tables, aliases, terms)
    }

    fn parse_term(&mut self) -> Result<Vec<Term>, ParseError> {
        let lhs = self.parse_rawcol()?;
        // Inclusive BETWEEN desugars to an exclusive >/< pair (integers).
        if matches!(self.peek(), Some(Token::Word(w)) if w == "between") {
            self.next();
            let lo = self.expect_number()?;
            self.expect_word("and")?;
            let hi = self.expect_number()?;
            if lo > hi {
                return err(format!("empty BETWEEN range {lo}..{hi}"));
            }
            let lo_excl = lo
                .checked_sub(1)
                .ok_or_else(|| ParseError("BETWEEN lower bound overflow".into()))?;
            let hi_excl = hi
                .checked_add(1)
                .ok_or_else(|| ParseError("BETWEEN upper bound overflow".into()))?;
            return Ok(vec![
                Term::Pred(lhs.clone(), CmpOp::Gt, lo_excl),
                Term::Pred(lhs, CmpOp::Lt, hi_excl),
            ]);
        }
        // IN-list: `col IN (v1, v2, …)` — non-empty, integers only.
        if matches!(self.peek(), Some(Token::Word(w)) if w == "in") {
            self.next();
            self.expect_symbol('(')?;
            let mut values = Vec::new();
            loop {
                values.push(self.expect_number()?);
                match self.next() {
                    Some(Token::Symbol(',')) => {}
                    Some(Token::Symbol(')')) => break,
                    other => {
                        return err(format!("expected ',' or ')' in IN list, found {other:?}"))
                    }
                }
            }
            return Ok(vec![Term::InList(lhs, values)]);
        }
        // LIKE: `col LIKE 'pattern'` — pattern is a string literal.
        if matches!(self.peek(), Some(Token::Word(w)) if w == "like") {
            self.next();
            match self.next() {
                Some(Token::Str(pat)) => return Ok(vec![Term::LikePat(lhs, pat)]),
                other => {
                    return err(format!(
                        "expected quoted pattern after LIKE, found {other:?}"
                    ))
                }
            }
        }
        let op = match self.next() {
            Some(Token::Symbol('=')) => CmpOp::Eq,
            Some(Token::Symbol('<')) => CmpOp::Lt,
            Some(Token::Symbol('>')) => CmpOp::Gt,
            other => return err(format!("expected comparison operator, found {other:?}")),
        };
        match self.peek().cloned() {
            Some(Token::Number(n)) => {
                self.next();
                Ok(vec![Term::Pred(lhs, op, n)])
            }
            Some(Token::Symbol('?')) => {
                self.next();
                Ok(vec![Term::Placeholder(lhs, op)])
            }
            Some(Token::Word(_)) => {
                let rhs = self.parse_rawcol()?;
                if op != CmpOp::Eq {
                    return err("joins must use '='");
                }
                Ok(vec![Term::Join(lhs, rhs)])
            }
            Some(Token::Str(_)) => err("string literals are only allowed after LIKE"),
            other => err(format!("expected literal, '?', or column, found {other:?}")),
        }
    }

    fn expect_number(&mut self) -> Result<i64, ParseError> {
        match self.next() {
            Some(Token::Number(n)) => Ok(n),
            other => err(format!("expected integer literal, found {other:?}")),
        }
    }

    fn parse_rawcol(&mut self) -> Result<RawCol, ParseError> {
        let qualifier = match self.next() {
            Some(Token::Word(w)) => w,
            other => return err(format!("expected column reference, found {other:?}")),
        };
        self.expect_symbol('.')?;
        let column = match self.next() {
            Some(Token::Word(w)) => w,
            other => return err(format!("expected column name after '.', found {other:?}")),
        };
        Ok(RawCol { qualifier, column })
    }

    fn resolve(
        &self,
        aliases: &HashMap<String, TableId>,
        rc: &RawCol,
    ) -> Result<ColRef, ParseError> {
        let tid = aliases
            .get(&rc.qualifier)
            .copied()
            .ok_or_else(|| ParseError(format!("unknown table or alias '{}'", rc.qualifier)))?;
        let col = self.db.table(tid).column_index(&rc.column).ok_or_else(|| {
            ParseError(format!(
                "unknown column '{}' of table '{}'",
                rc.column,
                self.db.table(tid).name()
            ))
        })?;
        Ok(ColRef::new(tid, col))
    }

    fn assemble(
        &self,
        tables: Vec<TableId>,
        aliases: HashMap<String, TableId>,
        terms: Vec<Term>,
    ) -> Result<ParsedQuery, ParseError> {
        let mut query = Query {
            tables,
            joins: Vec::new(),
            predicates: Vec::new(),
        };
        let mut placeholder = None;
        for term in terms {
            match term {
                Term::Join(l, r) => {
                    let lc = self.resolve(&aliases, &l)?;
                    let rc = self.resolve(&aliases, &r)?;
                    if lc.table == rc.table {
                        return err("self-joins are not supported");
                    }
                    query.joins.push(JoinEdge::new(lc, rc).canonical());
                }
                Term::Pred(c, op, lit) => {
                    let cr = self.resolve(&aliases, &c)?;
                    query
                        .predicates
                        .push((cr.table, ColPredicate::new(cr.col, op, lit)));
                }
                Term::InList(c, values) => {
                    let cr = self.resolve(&aliases, &c)?;
                    query
                        .predicates
                        .push((cr.table, ColPredicate::is_in(cr.col, values)));
                }
                Term::LikePat(c, pat) => {
                    let cr = self.resolve(&aliases, &c)?;
                    query
                        .predicates
                        .push((cr.table, ColPredicate::like(cr.col, pat)));
                }
                Term::Placeholder(c, op) => {
                    if placeholder.is_some() {
                        return err("only one '?' placeholder is supported");
                    }
                    placeholder = Some((self.resolve(&aliases, &c)?, op));
                }
            }
        }
        Ok(ParsedQuery { query, placeholder })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sqlgen::to_sql;
    use ds_storage::gen::{imdb_database, ImdbConfig};

    fn db() -> Database {
        imdb_database(&ImdbConfig::tiny(1))
    }

    #[test]
    fn parses_the_papers_example() {
        let db = db();
        let sql = "SELECT COUNT(*) FROM title t, movie_keyword mk, keyword k";
        // `keyword` does not exist in our schema; adapt the paper's example.
        let _ = sql;
        let parsed = parse(
            &db,
            "SELECT COUNT(*) FROM title t, movie_keyword mk \
             WHERE mk.movie_id = t.id AND mk.keyword_id = 11 AND t.production_year = ?",
        )
        .unwrap();
        assert_eq!(parsed.query.tables.len(), 2);
        assert_eq!(parsed.query.num_joins(), 1);
        assert_eq!(parsed.query.num_predicates(), 1);
        let (cr, op) = parsed.placeholder.unwrap();
        assert_eq!(db.col_name(cr), "title.production_year");
        assert_eq!(op, CmpOp::Eq);
    }

    #[test]
    fn roundtrips_generated_sql() {
        let db = db();
        let mut q = Query::new();
        q.add_table(&db, "title").unwrap();
        q.add_table(&db, "movie_info").unwrap();
        q.add_predicate(&db, "movie_info.info_type_id", CmpOp::Lt, 50)
            .unwrap();
        q.add_predicate(&db, "title.production_year", CmpOp::Gt, 1990)
            .unwrap();
        let sql = to_sql(&db, &q);
        let parsed = parse_query(&db, &sql).unwrap();
        assert_eq!(parsed, q);
    }

    #[test]
    fn case_insensitive_keywords_and_whitespace() {
        let db = db();
        let q = parse_query(
            &db,
            "select   Count( * )\nFROM title\nwhere title.kind_id > 2",
        )
        .unwrap();
        assert_eq!(q.tables.len(), 1);
        assert_eq!(q.num_predicates(), 1);
    }

    #[test]
    fn negative_literals() {
        let db = db();
        let q = parse_query(&db, "SELECT COUNT(*) FROM title WHERE title.kind_id > -5").unwrap();
        assert_eq!(q.predicates[0].1.as_cmp(), Some((CmpOp::Gt, -5)));
    }

    #[test]
    fn parses_in_list_and_canonicalizes() {
        let db = db();
        let q = parse_query(
            &db,
            "SELECT COUNT(*) FROM title WHERE title.kind_id IN (5, 2, 5, 3)",
        )
        .unwrap();
        assert_eq!(q.num_predicates(), 1);
        assert_eq!(q.predicates[0].1, ColPredicate::is_in(1, vec![2, 3, 5]));
        // Canonical re-rendering sorts and dedups the list.
        assert_eq!(
            to_sql(&db, &q),
            "SELECT COUNT(*) FROM title WHERE title.kind_id IN (2, 3, 5)"
        );
    }

    #[test]
    fn parses_like_pattern_verbatim() {
        let db = db();
        let q = parse_query(
            &db,
            "SELECT COUNT(*) FROM title t WHERE t.production_year LIKE '19%'",
        )
        .unwrap();
        assert_eq!(q.num_predicates(), 1);
        assert_eq!(q.predicates[0].1, ColPredicate::like(2, "19%"));
        // Pattern case is preserved even though keywords fold.
        let q = parse_query(
            &db,
            "SELECT COUNT(*) FROM title WHERE title.kind_id like '_2'",
        )
        .unwrap();
        assert_eq!(q.predicates[0].1, ColPredicate::like(1, "_2"));
    }

    #[test]
    fn rejects_malformed_in_and_like() {
        let db = db();
        for bad in [
            "SELECT COUNT(*) FROM title WHERE title.kind_id IN ()",
            "SELECT COUNT(*) FROM title WHERE title.kind_id IN (1,)",
            "SELECT COUNT(*) FROM title WHERE title.kind_id IN (1, 2",
            "SELECT COUNT(*) FROM title WHERE title.kind_id IN 1",
            "SELECT COUNT(*) FROM title WHERE title.kind_id IN ('a')",
            "SELECT COUNT(*) FROM title WHERE title.kind_id LIKE 19",
            "SELECT COUNT(*) FROM title WHERE title.kind_id LIKE '19",
            "SELECT COUNT(*) FROM title WHERE title.kind_id LIKE",
            "SELECT COUNT(*) FROM title WHERE title.kind_id = '2'",
        ] {
            assert!(parse(&db, bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn rejects_malformed() {
        let db = db();
        for bad in [
            "SELECT * FROM title",
            "SELECT COUNT(*) FROM nonexistent",
            "SELECT COUNT(*) FROM title, title",
            "SELECT COUNT(*) FROM title WHERE title.nope = 1",
            "SELECT COUNT(*) FROM title WHERE bogus.kind_id = 1",
            "SELECT COUNT(*) FROM title WHERE title.kind_id != 1",
            "SELECT COUNT(*) FROM title t WHERE t.id < t.kind_id", // col-col non-join
            "SELECT COUNT(*) FROM title WHERE title.kind_id = 1 OR title.kind_id = 2",
            "SELECT COUNT(*) FROM title WHERE title.kind_id = ? AND title.production_year = ?",
        ] {
            assert!(parse(&db, bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn rejects_self_join() {
        let db = db();
        let r = parse(
            &db,
            "SELECT COUNT(*) FROM title WHERE title.id = title.kind_id",
        );
        assert!(r.is_err());
    }

    #[test]
    fn parse_query_rejects_placeholder() {
        let db = db();
        let r = parse_query(&db, "SELECT COUNT(*) FROM title WHERE title.kind_id = ?");
        assert!(r.is_err());
    }

    #[test]
    fn alias_and_full_name_both_resolve() {
        let db = db();
        let q = parse_query(
            &db,
            "SELECT COUNT(*) FROM title t WHERE title.kind_id = 1 AND t.production_year > 2000",
        )
        .unwrap();
        assert_eq!(q.num_predicates(), 2);
    }

    #[test]
    fn between_desugars_to_range_pair() {
        let db = db();
        let q = parse_query(
            &db,
            "SELECT COUNT(*) FROM title WHERE title.production_year BETWEEN 1990 AND 1999",
        )
        .unwrap();
        assert_eq!(q.num_predicates(), 2);
        let preds: Vec<_> = q
            .predicates
            .iter()
            .filter_map(|(_, p)| p.as_cmp())
            .collect();
        assert!(preds.contains(&(CmpOp::Gt, 1989)));
        assert!(preds.contains(&(CmpOp::Lt, 2000)));
        // Inclusive semantics: equivalent to >= 1990 AND <= 1999.
        assert!(parse_query(
            &db,
            "SELECT COUNT(*) FROM title WHERE title.production_year BETWEEN 2000 AND 1990",
        )
        .is_err());
        assert!(parse_query(
            &db,
            "SELECT COUNT(*) FROM title WHERE title.production_year BETWEEN 1990",
        )
        .is_err());
    }

    #[test]
    fn trailing_semicolon_ok() {
        let db = db();
        assert!(parse_query(&db, "SELECT COUNT(*) FROM title;").is_ok());
    }
}
