//! The schema join graph: tables as nodes, PK/FK relationships as edges.
//!
//! The training-query generator samples uniformly random *connected*
//! subtrees of this graph (paper: "uniformly choose tables"), and the demo
//! UI uses it to auto-insert join predicates.

use rand::{rngs::StdRng, seq::SliceRandom, RngExt};

use ds_storage::catalog::{Database, TableId};
use ds_storage::exec::JoinEdge;

/// The PK/FK join graph of a database, optionally restricted to a table
/// subset (the demo's "select a subset of tables" step).
#[derive(Debug, Clone)]
pub struct JoinGraph {
    num_tables: usize,
    /// Tables participating in this (possibly restricted) graph.
    nodes: Vec<TableId>,
    /// adjacency[t] = (neighbor, canonical edge)
    adjacency: Vec<Vec<(TableId, JoinEdge)>>,
}

impl JoinGraph {
    /// Builds the join graph from the database's foreign keys.
    pub fn from_database(db: &Database) -> Self {
        let num_tables = db.num_tables();
        let mut adjacency = vec![Vec::new(); num_tables];
        for fk in db.foreign_keys() {
            let edge = JoinEdge::new(fk.from, fk.to).canonical();
            adjacency[fk.from.table.0].push((fk.to.table, edge));
            adjacency[fk.to.table.0].push((fk.from.table, edge));
        }
        Self {
            num_tables,
            nodes: (0..num_tables).map(TableId).collect(),
            adjacency,
        }
    }

    /// Number of tables in the underlying database.
    pub fn num_tables(&self) -> usize {
        self.num_tables
    }

    /// Tables participating in this graph.
    pub fn nodes(&self) -> &[TableId] {
        &self.nodes
    }

    /// Neighbors of `t` with the connecting edges.
    pub fn neighbors(&self, t: TableId) -> &[(TableId, JoinEdge)] {
        &self.adjacency[t.0]
    }

    /// Tables that have at least one join partner.
    pub fn joinable_tables(&self) -> Vec<TableId> {
        self.nodes
            .iter()
            .copied()
            .filter(|t| !self.adjacency[t.0].is_empty())
            .collect()
    }

    /// Samples a uniformly random connected subtree with `num_tables` nodes
    /// (hence `num_tables - 1` joins) by randomized growth: start from a
    /// random node and repeatedly attach a random frontier edge. Returns the
    /// chosen tables and edges, or `None` if the graph cannot support the
    /// requested size from the chosen start.
    pub fn random_subtree(
        &self,
        rng: &mut StdRng,
        num_tables: usize,
    ) -> Option<(Vec<TableId>, Vec<JoinEdge>)> {
        assert!(num_tables >= 1, "need at least one table");
        let candidates: Vec<TableId> = if num_tables == 1 {
            self.nodes.clone()
        } else {
            self.joinable_tables()
        };
        if candidates.is_empty() {
            return None;
        }
        let start = *candidates
            .get(rng.random_range(0..candidates.len()))
            .expect("non-empty");

        let mut tables = vec![start];
        let mut edges = Vec::new();
        let mut frontier: Vec<(TableId, JoinEdge)> = self.adjacency[start.0].clone();
        while tables.len() < num_tables {
            // Drop frontier edges leading to already-included tables.
            frontier.retain(|(t, _)| !tables.contains(t));
            if frontier.is_empty() {
                return None;
            }
            let idx = rng.random_range(0..frontier.len());
            let (next, edge) = frontier.swap_remove(idx);
            tables.push(next);
            edges.push(edge);
            frontier.extend(
                self.adjacency[next.0]
                    .iter()
                    .filter(|(t, _)| !tables.contains(t))
                    .cloned(),
            );
        }
        Some((tables, edges))
    }

    /// A restricted view keeping only the given tables (and the edges among
    /// them) — the demo's "select a subset of tables" step.
    pub fn restrict(&self, allowed: &[TableId]) -> JoinGraph {
        let allowed_set: std::collections::HashSet<TableId> = allowed.iter().copied().collect();
        let adjacency: Vec<Vec<(TableId, JoinEdge)>> = (0..self.num_tables)
            .map(|t| {
                if !allowed_set.contains(&TableId(t)) {
                    return Vec::new();
                }
                self.adjacency[t]
                    .iter()
                    .filter(|(n, _)| allowed_set.contains(n))
                    .cloned()
                    .collect()
            })
            .collect();
        let mut nodes: Vec<TableId> = self
            .nodes
            .iter()
            .copied()
            .filter(|t| allowed_set.contains(t))
            .collect();
        nodes.sort_unstable();
        JoinGraph {
            num_tables: self.num_tables,
            nodes,
            adjacency,
        }
    }

    /// The largest subtree size reachable in this graph (number of nodes of
    /// the largest connected component).
    pub fn max_component_size(&self) -> usize {
        let mut best = 0;
        let mut visited = vec![false; self.num_tables];
        for &TableId(s) in &self.nodes {
            if visited[s] {
                continue;
            }
            let mut size = 0;
            let mut stack = vec![s];
            while let Some(t) = stack.pop() {
                if visited[t] {
                    continue;
                }
                visited[t] = true;
                size += 1;
                stack.extend(self.adjacency[t].iter().map(|(n, _)| n.0));
            }
            best = best.max(size);
        }
        best
    }
}

/// Shuffles a slice deterministically — small convenience re-exported for
/// generator code.
pub fn shuffled<T: Clone>(rng: &mut StdRng, items: &[T]) -> Vec<T> {
    let mut v = items.to_vec();
    v.shuffle(rng);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_storage::gen::{imdb_database, tpch_database, ImdbConfig, TpchConfig};
    use rand::SeedableRng;

    #[test]
    fn imdb_graph_is_a_star_on_title() {
        let db = imdb_database(&ImdbConfig::tiny(1));
        let g = JoinGraph::from_database(&db);
        let title = db.table_id("title").unwrap();
        assert_eq!(g.neighbors(title).len(), 5);
        for t in 0..db.num_tables() {
            if TableId(t) != title {
                assert_eq!(g.neighbors(TableId(t)).len(), 1);
            }
        }
        assert_eq!(g.max_component_size(), 6);
    }

    #[test]
    fn tpch_graph_has_chains() {
        let db = tpch_database(&TpchConfig::tiny(1));
        let g = JoinGraph::from_database(&db);
        let li = db.table_id("lineitem").unwrap();
        assert_eq!(g.neighbors(li).len(), 3); // orders, part, supplier
        assert_eq!(g.max_component_size(), 7);
    }

    #[test]
    fn random_subtree_is_connected_tree() {
        let db = imdb_database(&ImdbConfig::tiny(2));
        let g = JoinGraph::from_database(&db);
        let mut rng = StdRng::seed_from_u64(5);
        for size in 1..=6 {
            let (tables, edges) = g
                .random_subtree(&mut rng, size)
                .expect("imdb supports size 6");
            assert_eq!(tables.len(), size);
            assert_eq!(edges.len(), size - 1);
            // Distinct tables.
            let mut sorted = tables.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), size);
            // Each edge connects two chosen tables.
            for e in &edges {
                let (a, b) = e.tables();
                assert!(tables.contains(&a) && tables.contains(&b));
            }
        }
    }

    #[test]
    fn random_subtree_covers_all_tables_eventually() {
        let db = imdb_database(&ImdbConfig::tiny(3));
        let g = JoinGraph::from_database(&db);
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let (tables, _) = g.random_subtree(&mut rng, 2).unwrap();
            seen.extend(tables);
        }
        assert_eq!(seen.len(), 6, "all tables should appear in 2-table queries");
    }

    #[test]
    fn restrict_limits_nodes_and_edges() {
        let db = imdb_database(&ImdbConfig::tiny(5));
        let g = JoinGraph::from_database(&db);
        let title = db.table_id("title").unwrap();
        let mk = db.table_id("movie_keyword").unwrap();
        let ci = db.table_id("cast_info").unwrap();
        let r = g.restrict(&[title, mk]);
        assert_eq!(r.nodes(), &[title.min(mk), title.max(mk)]);
        assert_eq!(r.max_component_size(), 2);
        assert_eq!(r.neighbors(title).len(), 1);
        assert!(r.neighbors(ci).is_empty());
        // Subtrees never leave the allowed set.
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let (tables, _) = r.random_subtree(&mut rng, 2).unwrap();
            assert!(tables.iter().all(|t| *t == title || *t == mk));
        }
        assert!(r.random_subtree(&mut rng, 3).is_none());
    }

    #[test]
    fn restrict_to_disconnected_pair_yields_singletons_only() {
        let db = imdb_database(&ImdbConfig::tiny(6));
        let g = JoinGraph::from_database(&db);
        let mk = db.table_id("movie_keyword").unwrap();
        let ci = db.table_id("cast_info").unwrap();
        let r = g.restrict(&[mk, ci]); // both leaves; no edge between them
        assert!(r.joinable_tables().is_empty());
        let mut rng = StdRng::seed_from_u64(4);
        let (tables, edges) = r.random_subtree(&mut rng, 1).unwrap();
        assert!(edges.is_empty());
        assert!(tables[0] == mk || tables[0] == ci);
        assert!(r.random_subtree(&mut rng, 2).is_none());
    }

    #[test]
    fn oversized_subtree_returns_none() {
        let db = imdb_database(&ImdbConfig::tiny(4));
        let g = JoinGraph::from_database(&db);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(g.random_subtree(&mut rng, 7).is_none());
    }
}
