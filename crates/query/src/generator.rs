//! Uniform training-query generation — step 2 of Figure 1a.
//!
//! Following the paper: "generate uniformly distributed training queries on
//! the specified tables … uniformly choose tables, columns, and predicate
//! types — draw literals from database". Concretely, per query:
//!
//! 1. draw the number of tables uniformly from `1..=max_tables` and sample a
//!    random connected subtree of the join graph of that size;
//! 2. draw the number of predicates uniformly from `0..=max_predicates`
//!    (clamped to the eligible columns available on the chosen tables);
//! 3. for each predicate pick an eligible column (without replacement), an
//!    operator uniformly from `{=, <, >}`, and a literal from a uniformly
//!    random *row* of the column — so literal frequency follows the data
//!    distribution, as drawing from the database implies.

use rand::{rngs::StdRng, seq::SliceRandom, RngExt, SeedableRng};

use ds_storage::catalog::{ColRef, Database, TableId};
use ds_storage::predicate::{CmpOp, ColPredicate};

use crate::query::Query;
use crate::JoinGraph;

/// Configuration for the uniform query generator.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Maximum number of tables per query (joins = tables - 1). The paper's
    /// JOB-light setting uses up to 4 joins, i.e. 5 tables — but training
    /// uses up to 2 joins (3 tables) in [Kipf et al., CIDR 2019].
    pub max_tables: usize,
    /// Maximum number of predicates per query.
    pub max_predicates: usize,
    /// Columns eligible for predicates (dimension attributes; join keys and
    /// surrogate ids are excluded by the caller).
    pub predicate_columns: Vec<ColRef>,
    /// Restrict generation to these tables (the demo's "select a subset of
    /// tables" step). `None` allows the whole schema.
    pub allowed_tables: Option<Vec<TableId>>,
    /// Fraction of predicates drawn as `IN`-lists. 0 (the default) keeps
    /// the paper's three-operator uniform mix and an RNG stream that is
    /// bit-identical to the pre-extension generator.
    pub in_frac: f64,
    /// Fraction of predicates drawn as `LIKE` prefix patterns (over the
    /// decimal rendering of a data-drawn literal). 0 by default.
    pub like_frac: f64,
    /// Maximum `IN`-list length before dedup (≥ 2 when `in_frac > 0`).
    pub max_in_list: usize,
    /// RNG seed.
    pub seed: u64,
}

impl GeneratorConfig {
    /// A sensible default over the given eligible columns: up to 3 tables,
    /// up to 3 predicates, comparison operators only.
    pub fn new(predicate_columns: Vec<ColRef>, seed: u64) -> Self {
        Self {
            max_tables: 3,
            max_predicates: 3,
            predicate_columns,
            allowed_tables: None,
            in_frac: 0.0,
            like_frac: 0.0,
            max_in_list: 4,
            seed,
        }
    }

    /// Enables the extended operator vocabulary: 20% `IN`, 20% `LIKE`,
    /// remainder uniform over `{=, <, >}` — the MSCN+ operator mix.
    pub fn with_extended_ops(mut self) -> Self {
        self.in_frac = 0.2;
        self.like_frac = 0.2;
        self
    }
}

/// Uniform random query generator over a database's join graph.
#[derive(Debug)]
pub struct QueryGenerator<'a> {
    db: &'a Database,
    graph: JoinGraph,
    cfg: GeneratorConfig,
    rng: StdRng,
}

impl<'a> QueryGenerator<'a> {
    /// Creates a generator.
    ///
    /// # Panics
    /// Panics if `max_tables` is 0 or exceeds what the join graph supports,
    /// or if any predicate column is out of range.
    pub fn new(db: &'a Database, cfg: GeneratorConfig) -> Self {
        assert!(cfg.max_tables >= 1, "max_tables must be >= 1");
        let mut graph = JoinGraph::from_database(db);
        if let Some(allowed) = &cfg.allowed_tables {
            assert!(!allowed.is_empty(), "allowed_tables must not be empty");
            graph = graph.restrict(allowed);
        }
        assert!(
            cfg.max_tables <= graph.max_component_size(),
            "max_tables {} exceeds largest joinable component {}",
            cfg.max_tables,
            graph.max_component_size()
        );
        for cr in &cfg.predicate_columns {
            assert!(
                cr.table.0 < db.num_tables(),
                "predicate column table out of range"
            );
            assert!(
                cr.col < db.table(cr.table).columns().len(),
                "predicate column out of range"
            );
        }
        let rng = StdRng::seed_from_u64(cfg.seed);
        Self {
            db,
            graph,
            cfg,
            rng,
        }
    }

    /// Generates one query.
    pub fn generate(&mut self) -> Query {
        loop {
            let num_tables = self.rng.random_range(1..=self.cfg.max_tables);
            let Some((tables, joins)) = self.graph.random_subtree(&mut self.rng, num_tables) else {
                continue; // start node couldn't grow that far; resample
            };
            let predicates = self.draw_predicates(&tables);
            // Predicate-free single-table queries estimate a constant
            // (the table size); they carry no training signal, so resample.
            if tables.len() == 1 && predicates.is_empty() {
                continue;
            }
            return Query {
                tables,
                joins,
                predicates,
            };
        }
    }

    /// Generates a batch of `n` queries.
    pub fn generate_batch(&mut self, n: usize) -> Vec<Query> {
        (0..n).map(|_| self.generate()).collect()
    }

    fn draw_predicates(&mut self, tables: &[TableId]) -> Vec<(TableId, ColPredicate)> {
        let mut eligible: Vec<ColRef> = self
            .cfg
            .predicate_columns
            .iter()
            .copied()
            .filter(|cr| tables.contains(&cr.table))
            .collect();
        debug_assert!(
            self.cfg
                .allowed_tables
                .as_ref()
                .is_none_or(|a| tables.iter().all(|t| a.contains(t))),
            "generated tables escape the restriction"
        );
        if eligible.is_empty() {
            return Vec::new();
        }
        eligible.shuffle(&mut self.rng);
        let max = self.cfg.max_predicates.min(eligible.len());
        let n = self.rng.random_range(0..=max);
        let mut out = Vec::with_capacity(n);
        let ext = self.cfg.in_frac + self.cfg.like_frac;
        for cr in eligible.into_iter().take(n) {
            // Only consume randomness for the op-kind draw when the
            // extended vocabulary is enabled, so cmp-only streams stay
            // bit-identical to the original generator.
            let kind = if ext > 0.0 {
                self.rng.random_range(0.0..1.0)
            } else {
                1.0
            };
            if kind < self.cfg.in_frac {
                if let Some(p) = self.draw_in_predicate(cr) {
                    out.push((cr.table, p));
                }
                continue;
            }
            if kind < ext {
                if let Some(p) = self.draw_like_predicate(cr) {
                    out.push((cr.table, p));
                }
                continue;
            }
            let op = CmpOp::ALL[self.rng.random_range(0..CmpOp::ALL.len())];
            let Some(literal) = self.draw_literal(cr) else {
                continue;
            };
            out.push((cr.table, ColPredicate::new(cr.col, op, literal)));
        }
        out
    }

    /// Draws an `IN`-list predicate: 2..=max_in_list data-drawn literals
    /// (duplicates collapse in the canonical form).
    fn draw_in_predicate(&mut self, cr: ColRef) -> Option<ColPredicate> {
        let k = self.rng.random_range(2..=self.cfg.max_in_list.max(2));
        let mut values = Vec::with_capacity(k);
        for _ in 0..k {
            values.push(self.draw_literal(cr)?);
        }
        Some(ColPredicate::is_in(cr.col, values))
    }

    /// Draws a `LIKE` prefix predicate: a data-drawn literal rendered in
    /// decimal, truncated to a random non-empty prefix, suffixed with `%`.
    fn draw_like_predicate(&mut self, cr: ColRef) -> Option<ColPredicate> {
        let literal = self.draw_literal(cr)?;
        let s = literal.to_string();
        let len = self.rng.random_range(1..=s.len());
        let mut pat: String = s.chars().take(len).collect();
        // A bare "-" prefix matches every negative; extend by one digit.
        if pat == "-" && s.len() > 1 {
            pat = s.chars().take(2).collect();
        }
        pat.push('%');
        Some(ColPredicate::like(cr.col, pat))
    }

    /// Draws a literal from a uniformly random row of the column, retrying
    /// a few times on NULLs. Returns `None` for an all-NULL/empty column.
    fn draw_literal(&mut self, cr: ColRef) -> Option<i64> {
        let col = self.db.table(cr.table).column(cr.col);
        if col.is_empty() {
            return None;
        }
        for _ in 0..16 {
            let row = self.rng.random_range(0..col.len());
            if let Some(v) = col.get(row) {
                return Some(v);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_storage::exec::CountExecutor;
    use ds_storage::gen::{imdb_database, ImdbConfig};

    fn imdb_pred_cols(db: &Database) -> Vec<ColRef> {
        [
            "title.kind_id",
            "title.production_year",
            "movie_companies.company_id",
            "movie_companies.company_type_id",
            "cast_info.person_id",
            "cast_info.role_id",
            "movie_info.info_type_id",
            "movie_info_idx.info_type_id",
            "movie_keyword.keyword_id",
        ]
        .iter()
        .map(|q| db.resolve(q).unwrap())
        .collect()
    }

    #[test]
    fn generated_queries_are_valid_trees() {
        let db = imdb_database(&ImdbConfig::tiny(1));
        let cfg = GeneratorConfig::new(imdb_pred_cols(&db), 99);
        let mut g = QueryGenerator::new(&db, cfg);
        for q in g.generate_batch(200) {
            let exec = q.to_exec();
            assert_eq!(exec.validate(&db), Ok(()), "invalid query {q:?}");
            assert!(exec.is_tree());
            assert!(q.tables.len() <= 3);
            assert!(q.num_predicates() <= 3);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let db = imdb_database(&ImdbConfig::tiny(1));
        let a = QueryGenerator::new(&db, GeneratorConfig::new(imdb_pred_cols(&db), 7))
            .generate_batch(20);
        let b = QueryGenerator::new(&db, GeneratorConfig::new(imdb_pred_cols(&db), 7))
            .generate_batch(20);
        assert_eq!(a, b);
        let c = QueryGenerator::new(&db, GeneratorConfig::new(imdb_pred_cols(&db), 8))
            .generate_batch(20);
        assert_ne!(a, c);
    }

    #[test]
    fn operators_are_roughly_uniform() {
        let db = imdb_database(&ImdbConfig::tiny(2));
        let mut g = QueryGenerator::new(&db, GeneratorConfig::new(imdb_pred_cols(&db), 5));
        let mut counts = [0usize; 3];
        for q in g.generate_batch(600) {
            for (_, p) in &q.predicates {
                let (op, _) = p.as_cmp().expect("default generator is cmp-only");
                counts[op.index()] += 1;
            }
        }
        let total: usize = counts.iter().sum();
        assert!(total > 300);
        for c in counts {
            let frac = c as f64 / total as f64;
            assert!((frac - 1.0 / 3.0).abs() < 0.08, "op fraction {frac}");
        }
    }

    #[test]
    fn queries_are_executable_and_literals_from_data() {
        let db = imdb_database(&ImdbConfig::tiny(3));
        let mut g = QueryGenerator::new(&db, GeneratorConfig::new(imdb_pred_cols(&db), 21));
        let exec = CountExecutor::new();
        let qs = g.generate_batch(50);
        for q in &qs {
            exec.count(&db, &q.to_exec()).expect("executable");
            for (t, p) in &q.predicates {
                let col = db.table(*t).column(p.col);
                let (_, literal) = p.as_cmp().expect("default generator is cmp-only");
                assert!(
                    col.data().contains(&literal),
                    "literal {} not present in column {}",
                    literal,
                    col.name()
                );
            }
        }
        // Equality predicates on data-drawn literals should frequently be
        // non-empty single-table selections.
        let nonzero = qs
            .iter()
            .filter(|q| exec.count(&db, &q.to_exec()).unwrap() > 0)
            .count();
        assert!(nonzero > qs.len() / 4, "too many empty results: {nonzero}");
    }

    #[test]
    fn no_trivial_full_table_queries() {
        let db = imdb_database(&ImdbConfig::tiny(4));
        let mut g = QueryGenerator::new(&db, GeneratorConfig::new(imdb_pred_cols(&db), 13));
        for q in g.generate_batch(300) {
            assert!(
                q.tables.len() > 1 || q.num_predicates() > 0,
                "trivial query generated"
            );
        }
    }

    #[test]
    fn table_restriction_is_respected() {
        let db = imdb_database(&ImdbConfig::tiny(6));
        let title = db.table_id("title").unwrap();
        let mk = db.table_id("movie_keyword").unwrap();
        let mut cfg = GeneratorConfig::new(imdb_pred_cols(&db), 33);
        cfg.allowed_tables = Some(vec![title, mk]);
        cfg.max_tables = 2;
        let mut g = QueryGenerator::new(&db, cfg);
        for q in g.generate_batch(100) {
            assert!(q.tables.iter().all(|t| *t == title || *t == mk), "{q:?}");
            // Predicates also stay within the restriction.
            for (t, _) in &q.predicates {
                assert!(*t == title || *t == mk);
            }
        }
    }

    #[test]
    fn extended_ops_generate_in_and_like() {
        use ds_storage::predicate::{PredOpKind, PredTest};
        let db = imdb_database(&ImdbConfig::tiny(7));
        let cfg = GeneratorConfig::new(imdb_pred_cols(&db), 41).with_extended_ops();
        let mut g = QueryGenerator::new(&db, cfg);
        let exec = CountExecutor::new();
        let mut kinds = [0usize; 5];
        for q in g.generate_batch(400) {
            exec.count(&db, &q.to_exec()).expect("executable");
            for (_, p) in &q.predicates {
                kinds[p.op_kind().index()] += 1;
                match &p.test {
                    PredTest::In(vals) => {
                        assert!(!vals.is_empty() && vals.len() <= 4);
                        assert!(vals.windows(2).all(|w| w[0] < w[1]), "not canonical");
                    }
                    PredTest::Like(pat) => assert!(pat.is_prefix(), "{pat}"),
                    PredTest::Cmp(..) => {}
                }
            }
        }
        assert!(kinds[PredOpKind::In.index()] > 20, "{kinds:?}");
        assert!(kinds[PredOpKind::Like.index()] > 20, "{kinds:?}");
        assert!(kinds[PredOpKind::Eq.index()] > 20, "{kinds:?}");
    }

    #[test]
    fn default_stream_unchanged_by_extension_knobs() {
        // in_frac = like_frac = 0 must not consume extra randomness: the
        // generated workload is the op-kind-draw-free original stream.
        let db = imdb_database(&ImdbConfig::tiny(8));
        let a = QueryGenerator::new(&db, GeneratorConfig::new(imdb_pred_cols(&db), 77))
            .generate_batch(50);
        for q in &a {
            for (_, p) in &q.predicates {
                assert!(p.as_cmp().is_some());
            }
        }
        let b = QueryGenerator::new(&db, GeneratorConfig::new(imdb_pred_cols(&db), 77))
            .generate_batch(50);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "exceeds largest joinable component")]
    fn oversized_max_tables_rejected() {
        let db = imdb_database(&ImdbConfig::tiny(5));
        let mut cfg = GeneratorConfig::new(vec![], 1);
        cfg.max_tables = 10;
        QueryGenerator::new(&db, cfg);
    }
}
