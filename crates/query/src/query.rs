//! The high-level query model: `SELECT COUNT(*)` over a set of tables with
//! PK/FK equi-joins and conjunctive comparison predicates — exactly the
//! query class of the paper and of JOB-light.

use ds_storage::catalog::{ColRef, Database, TableId};
use ds_storage::exec::{ExecQuery, JoinEdge};
use ds_storage::predicate::{CmpOp, ColPredicate};

/// Resolves a qualified column name against a query's table set.
fn resolve_on_query(
    q: &Query,
    db: &Database,
    qualified_col: &str,
) -> Result<ColRef, QueryBuildError> {
    let cr = db
        .resolve(qualified_col)
        .ok_or_else(|| QueryBuildError::UnknownColumn(qualified_col.to_string()))?;
    if !q.tables.contains(&cr.table) {
        return Err(QueryBuildError::UnknownTable(
            db.table(cr.table).name().to_string(),
        ));
    }
    Ok(cr)
}

/// A `SELECT COUNT(*)` query. Structurally identical to
/// [`ExecQuery`] but offers name-based construction against a
/// [`Database`] and SQL printing (see [`crate::sqlgen`]).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Query {
    /// Distinct tables referenced.
    pub tables: Vec<TableId>,
    /// Equi-join edges (a spanning tree in well-formed queries).
    pub joins: Vec<JoinEdge>,
    /// Conjunctive base-table predicates.
    pub predicates: Vec<(TableId, ColPredicate)>,
}

/// Errors from name-based query construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryBuildError {
    /// Unknown table name.
    UnknownTable(String),
    /// Unknown `table.column` reference.
    UnknownColumn(String),
    /// No PK/FK relationship exists between the two tables.
    NoForeignKey(String, String),
}

impl std::fmt::Display for QueryBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryBuildError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            QueryBuildError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            QueryBuildError::NoForeignKey(a, b) => {
                write!(f, "no PK/FK relationship between {a} and {b}")
            }
        }
    }
}

impl std::error::Error for QueryBuildError {}

impl Query {
    /// Starts an empty query.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a table by name. Mirrors the demo UI: when a second (or later)
    /// table is added, the corresponding PK/FK join predicate to an
    /// already-present table is inserted automatically.
    pub fn add_table(&mut self, db: &Database, name: &str) -> Result<TableId, QueryBuildError> {
        let tid = db
            .table_id(name)
            .ok_or_else(|| QueryBuildError::UnknownTable(name.to_string()))?;
        if self.tables.contains(&tid) {
            return Ok(tid);
        }
        if !self.tables.is_empty() {
            let partner = self
                .tables
                .iter()
                .find(|&&t| db.fk_between(t, tid).is_some())
                .copied()
                .ok_or_else(|| {
                    QueryBuildError::NoForeignKey(
                        name.to_string(),
                        db.table(self.tables[0]).name().to_string(),
                    )
                })?;
            let fk = db.fk_between(partner, tid).expect("checked above");
            self.joins.push(JoinEdge::new(fk.from, fk.to).canonical());
        }
        self.tables.push(tid);
        Ok(tid)
    }

    /// Adds a predicate `table.column op literal` by qualified column name.
    /// The table must already be part of the query.
    pub fn add_predicate(
        &mut self,
        db: &Database,
        qualified_col: &str,
        op: CmpOp,
        literal: i64,
    ) -> Result<(), QueryBuildError> {
        let cr = resolve_on_query(self, db, qualified_col)?;
        self.predicates
            .push((cr.table, ColPredicate::new(cr.col, op, literal)));
        Ok(())
    }

    /// Adds an `IN`-list predicate by qualified column name. The table
    /// must already be part of the query and the list non-empty.
    pub fn add_in_predicate(
        &mut self,
        db: &Database,
        qualified_col: &str,
        values: Vec<i64>,
    ) -> Result<(), QueryBuildError> {
        let cr = resolve_on_query(self, db, qualified_col)?;
        self.predicates
            .push((cr.table, ColPredicate::is_in(cr.col, values)));
        Ok(())
    }

    /// Adds a `LIKE` predicate by qualified column name. The pattern is
    /// matched against the decimal rendering of the column value.
    pub fn add_like_predicate(
        &mut self,
        db: &Database,
        qualified_col: &str,
        pattern: &str,
    ) -> Result<(), QueryBuildError> {
        let cr = resolve_on_query(self, db, qualified_col)?;
        self.predicates
            .push((cr.table, ColPredicate::like(cr.col, pattern)));
        Ok(())
    }

    /// Number of join edges.
    pub fn num_joins(&self) -> usize {
        self.joins.len()
    }

    /// Number of predicates.
    pub fn num_predicates(&self) -> usize {
        self.predicates.len()
    }

    /// Predicates attached to table `t`.
    pub fn preds_of(&self, t: TableId) -> Vec<ColPredicate> {
        self.predicates
            .iter()
            .filter(|(tid, _)| *tid == t)
            .map(|(_, p)| p.clone())
            .collect()
    }

    /// All predicates with fully-qualified column references.
    pub fn qualified_predicates(&self) -> impl Iterator<Item = (ColRef, &ColPredicate)> + '_ {
        self.predicates
            .iter()
            .map(|(t, p)| (ColRef::new(*t, p.col), p))
    }

    /// Lowers to the executable form.
    pub fn to_exec(&self) -> ExecQuery {
        ExecQuery {
            tables: self.tables.clone(),
            joins: self.joins.clone(),
            predicates: self.predicates.clone(),
        }
    }
}

impl From<ExecQuery> for Query {
    fn from(q: ExecQuery) -> Self {
        Self {
            tables: q.tables,
            joins: q.joins,
            predicates: q.predicates,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_storage::gen::{imdb_database, ImdbConfig};

    fn db() -> Database {
        imdb_database(&ImdbConfig::tiny(3))
    }

    #[test]
    fn add_table_inserts_fk_join() {
        let db = db();
        let mut q = Query::new();
        q.add_table(&db, "title").unwrap();
        q.add_table(&db, "movie_keyword").unwrap();
        assert_eq!(q.tables.len(), 2);
        assert_eq!(q.num_joins(), 1);
        let j = q.joins[0];
        assert_eq!(db.col_name(j.left), "title.id");
        assert_eq!(db.col_name(j.right), "movie_keyword.movie_id");
    }

    #[test]
    fn add_table_is_idempotent() {
        let db = db();
        let mut q = Query::new();
        q.add_table(&db, "title").unwrap();
        q.add_table(&db, "title").unwrap();
        assert_eq!(q.tables.len(), 1);
        assert_eq!(q.num_joins(), 0);
    }

    #[test]
    fn add_unjoinable_table_fails() {
        let db = db();
        let mut q = Query::new();
        q.add_table(&db, "movie_keyword").unwrap();
        // cast_info has no FK to movie_keyword (both reference title).
        let err = q.add_table(&db, "cast_info").unwrap_err();
        assert!(matches!(err, QueryBuildError::NoForeignKey(..)));
    }

    #[test]
    fn star_query_via_title_hub() {
        let db = db();
        let mut q = Query::new();
        q.add_table(&db, "title").unwrap();
        q.add_table(&db, "movie_keyword").unwrap();
        q.add_table(&db, "cast_info").unwrap();
        assert_eq!(q.num_joins(), 2);
        assert!(q.to_exec().is_tree());
    }

    #[test]
    fn add_predicate_resolves_names() {
        let db = db();
        let mut q = Query::new();
        q.add_table(&db, "title").unwrap();
        q.add_predicate(&db, "title.production_year", CmpOp::Gt, 2000)
            .unwrap();
        assert_eq!(q.num_predicates(), 1);
        let (cr, p) = q.qualified_predicates().next().unwrap();
        assert_eq!(db.col_name(cr), "title.production_year");
        assert_eq!(p.as_cmp(), Some((CmpOp::Gt, 2000)));
    }

    #[test]
    fn predicate_on_absent_table_fails() {
        let db = db();
        let mut q = Query::new();
        q.add_table(&db, "title").unwrap();
        let err = q
            .add_predicate(&db, "movie_keyword.keyword_id", CmpOp::Eq, 3)
            .unwrap_err();
        assert!(matches!(err, QueryBuildError::UnknownTable(_)));
        let err2 = q
            .add_predicate(&db, "title.nope", CmpOp::Eq, 3)
            .unwrap_err();
        assert!(matches!(err2, QueryBuildError::UnknownColumn(_)));
    }

    #[test]
    fn exec_roundtrip() {
        let db = db();
        let mut q = Query::new();
        q.add_table(&db, "title").unwrap();
        q.add_table(&db, "movie_info").unwrap();
        q.add_predicate(&db, "movie_info.info_type_id", CmpOp::Eq, 5)
            .unwrap();
        let exec = q.to_exec();
        assert_eq!(exec.validate(&db), Ok(()));
        let back: Query = exec.into();
        assert_eq!(back, q);
    }
}
