//! SQL printing for [`Query`] — the demo shows the SQL string of the
//! graphically-built query "for information purposes"; tests use it for
//! parser round-trips.

use ds_storage::catalog::Database;
use ds_storage::predicate::PredTest;

use crate::query::Query;

/// Renders the query as `SELECT COUNT(*) FROM … WHERE …` with fully
/// qualified column names and no aliases. Join predicates come first, then
/// base-table predicates in insertion order. `IN` lists render in their
/// canonical (sorted, deduplicated) order, so sqlgen→parser→sqlgen is
/// bit-identical.
pub fn to_sql(db: &Database, query: &Query) -> String {
    let tables: Vec<&str> = query.tables.iter().map(|&t| db.table(t).name()).collect();
    let mut conds: Vec<String> = query
        .joins
        .iter()
        .map(|j| format!("{} = {}", db.col_name(j.left), db.col_name(j.right)))
        .collect();
    conds.extend(query.qualified_predicates().map(|(cr, p)| {
        let col = db.col_name(cr);
        match &p.test {
            PredTest::Cmp(op, lit) => format!("{} {} {}", col, op.sql(), lit),
            PredTest::In(vals) => {
                let list: Vec<String> = vals.iter().map(|v| v.to_string()).collect();
                format!("{} IN ({})", col, list.join(", "))
            }
            PredTest::Like(pat) => format!("{} LIKE '{}'", col, pat.as_str()),
        }
    }));
    let mut sql = format!("SELECT COUNT(*) FROM {}", tables.join(", "));
    if !conds.is_empty() {
        sql.push_str(" WHERE ");
        sql.push_str(&conds.join(" AND "));
    }
    sql
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_storage::gen::{imdb_database, ImdbConfig};
    use ds_storage::predicate::CmpOp;

    #[test]
    fn single_table_no_predicates() {
        let db = imdb_database(&ImdbConfig::tiny(1));
        let mut q = Query::new();
        q.add_table(&db, "title").unwrap();
        assert_eq!(to_sql(&db, &q), "SELECT COUNT(*) FROM title");
    }

    #[test]
    fn join_and_predicates_render() {
        let db = imdb_database(&ImdbConfig::tiny(1));
        let mut q = Query::new();
        q.add_table(&db, "title").unwrap();
        q.add_table(&db, "movie_keyword").unwrap();
        q.add_predicate(&db, "title.production_year", CmpOp::Gt, 2000)
            .unwrap();
        q.add_predicate(&db, "movie_keyword.keyword_id", CmpOp::Eq, 42)
            .unwrap();
        let sql = to_sql(&db, &q);
        assert_eq!(
            sql,
            "SELECT COUNT(*) FROM title, movie_keyword \
             WHERE title.id = movie_keyword.movie_id \
             AND title.production_year > 2000 \
             AND movie_keyword.keyword_id = 42"
        );
    }

    #[test]
    fn in_and_like_render_canonically() {
        let db = imdb_database(&ImdbConfig::tiny(1));
        let mut q = Query::new();
        q.add_table(&db, "title").unwrap();
        q.add_in_predicate(&db, "title.kind_id", vec![5, 2, 2, 3])
            .unwrap();
        q.add_like_predicate(&db, "title.production_year", "19%")
            .unwrap();
        assert_eq!(
            to_sql(&db, &q),
            "SELECT COUNT(*) FROM title \
             WHERE title.kind_id IN (2, 3, 5) \
             AND title.production_year LIKE '19%'"
        );
    }
}
