//! # ds-query
//!
//! The query layer of the Deep Sketches reproduction: a friendly query
//! model over [`ds_storage`], a SQL-subset parser and printer, the uniform
//! training-query generator of the paper (Figure 1a, step 2), and the
//! evaluation workloads (JOB-light and a TPC-H analogue).

pub mod generator;
pub mod graph;
pub mod parser;
pub mod query;
pub mod shift;
pub mod sqlgen;
pub mod workloads;

pub use generator::{GeneratorConfig, QueryGenerator};
pub use graph::JoinGraph;
pub use parser::{parse_query, ParseError};
pub use query::Query;
pub use shift::{ShiftKind, ShiftSweep, SweepConfig};
