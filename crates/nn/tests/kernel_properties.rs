//! Property tests pinning the tiled/parallel matmul kernels to the naive
//! reference oracle (`ds_nn::tensor::reference`) — **exact** f32 equality,
//! not approximate: the tiled kernels only re-tile the output, never a
//! reduction, so every element must come out bit-identical. Each property
//! runs at thread counts {1, 2, 8} on both dense-random and mostly-zero
//! (one-hot-like) inputs.

use ds_nn::pool::PoolConfig;
use ds_nn::tensor::{reference, Kernel, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const THREAD_COUNTS: [usize; 3] = [1, 2, 8];

/// Dense tensor with uniform values in [-1, 1).
fn dense(rows: usize, cols: usize, rng: &mut StdRng) -> Tensor {
    let data = (0..rows * cols)
        .map(|_| rng.random_range(-1.0f32..1.0))
        .collect();
    Tensor::from_vec(rows, cols, data)
}

/// Mostly-zero tensor: each entry is nonzero with probability ~1/8,
/// mimicking the one-hot/bitmap feature rows of the MSCN input layer.
fn sparse(rows: usize, cols: usize, rng: &mut StdRng) -> Tensor {
    let data = (0..rows * cols)
        .map(|_| {
            if rng.random_bool(0.125) {
                rng.random_range(-1.0f32..1.0)
            } else {
                0.0
            }
        })
        .collect();
    Tensor::from_vec(rows, cols, data)
}

/// Asserts exact (bitwise, via `==` on finite data) equality.
fn assert_same(got: &Tensor, want: &Tensor, what: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.rows(), want.rows(), "{} rows", what);
    prop_assert_eq!(got.cols(), want.cols(), "{} cols", what);
    for (i, (g, w)) in got.data().iter().zip(want.data()).enumerate() {
        prop_assert!(
            g == w,
            "{} element {} differs: {} vs {} (bits {:08x} vs {:08x})",
            what,
            i,
            g,
            w,
            g.to_bits(),
            w.to_bits()
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_matches_reference(m in 1usize..40, k in 1usize..40, n in 1usize..40, seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        for a in [dense(m, k, &mut rng), sparse(m, k, &mut rng)] {
            let b = dense(k, n, &mut rng);
            let want = reference::matmul(&a, &b);
            for threads in THREAD_COUNTS {
                let pool = PoolConfig::new(threads);
                for kernel in [Kernel::Dense, Kernel::Sparse] {
                    let got = a.matmul_pool(&b, kernel, pool);
                    assert_same(&got, &want, &format!("matmul t={threads} {kernel:?}"))?;
                }
            }
        }
    }

    #[test]
    fn t_matmul_matches_reference(m in 1usize..40, k in 1usize..40, n in 1usize..40, seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        for a in [dense(m, k, &mut rng), sparse(m, k, &mut rng)] {
            let b = dense(m, n, &mut rng);
            let want = reference::t_matmul(&a, &b);
            for threads in THREAD_COUNTS {
                let pool = PoolConfig::new(threads);
                for kernel in [Kernel::Dense, Kernel::Sparse] {
                    let got = a.t_matmul_pool(&b, kernel, pool);
                    assert_same(&got, &want, &format!("t_matmul t={threads} {kernel:?}"))?;
                }
            }
        }
    }

    #[test]
    fn matmul_t_matches_reference(m in 1usize..40, k in 1usize..40, n in 1usize..40, seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        for a in [dense(m, k, &mut rng), sparse(m, k, &mut rng)] {
            let b = dense(n, k, &mut rng);
            let want = reference::matmul_t(&a, &b);
            for threads in THREAD_COUNTS {
                let got = a.matmul_t_pool(&b, PoolConfig::new(threads));
                assert_same(&got, &want, &format!("matmul_t t={threads}"))?;
            }
        }
    }

    #[test]
    fn into_variants_reuse_allocations(m in 1usize..24, k in 1usize..24, n in 1usize..24, seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = dense(m, k, &mut rng);
        let b = dense(k, n, &mut rng);
        // Start from a scratch tensor of the wrong shape filled with junk;
        // the _into kernels must fully overwrite it.
        let mut out = dense(7, 3, &mut rng);
        a.matmul_into(&b, Kernel::Dense, PoolConfig::new(2), &mut out);
        assert_same(&out, &reference::matmul(&a, &b), "matmul_into")?;
        let b2 = dense(m, n, &mut rng);
        a.t_matmul_into(&b2, Kernel::Sparse, PoolConfig::new(2), &mut out);
        assert_same(&out, &reference::t_matmul(&a, &b2), "t_matmul_into")?;
        let b3 = dense(n, k, &mut rng);
        a.matmul_t_into(&b3, PoolConfig::new(2), &mut out);
        assert_same(&out, &reference::matmul_t(&a, &b3), "matmul_t_into")?;
    }
}

/// Shapes larger than the parallel-gate threshold actually fan out; make
/// sure the bit-identity holds there too (the proptest shapes above stay
/// below `PAR_MIN_FLOPS`, so they exercise the serial path).
#[test]
fn large_shapes_are_bit_identical_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(0xD15C);
    for (m, k, n) in [(128, 96, 64), (257, 33, 129)] {
        let a = dense(m, k, &mut rng);
        let s = sparse(m, k, &mut rng);
        let b = dense(k, n, &mut rng);
        let bt = dense(n, k, &mut rng);
        let bm = dense(m, n, &mut rng);
        let base_mm = reference::matmul(&a, &b);
        let base_mm_sparse = reference::matmul(&s, &b);
        let base_tm = reference::t_matmul(&a, &bm);
        let base_mt = reference::matmul_t(&a, &bt);
        for threads in THREAD_COUNTS {
            let pool = PoolConfig::new(threads);
            assert_eq!(
                a.matmul_pool(&b, Kernel::Dense, pool).data(),
                base_mm.data()
            );
            assert_eq!(
                s.matmul_pool(&b, Kernel::Sparse, pool).data(),
                base_mm_sparse.data()
            );
            assert_eq!(
                a.t_matmul_pool(&bm, Kernel::Dense, pool).data(),
                base_tm.data()
            );
            assert_eq!(a.matmul_t_pool(&bt, pool).data(), base_mt.data());
        }
    }
}
