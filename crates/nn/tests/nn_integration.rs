//! Integration tests of ds-nn as a standalone library: train small networks
//! on classic tasks end-to-end, exercise serialization of whole models, and
//! validate the set-pooling path outside MSCN.

use ds_nn::linear::Linear;
use ds_nn::ops::{
    relu, relu_backward, segment_mean, segment_mean_backward, sigmoid, sigmoid_backward, Segments,
};
use ds_nn::optim::Adam;
use ds_nn::serialize::{Decoder, Encoder};
use ds_nn::tensor::Tensor;

/// A 2-layer MLP with sigmoid head used by these tests.
struct Mlp {
    l1: Linear,
    l2: Linear,
}

impl Mlp {
    fn new(inputs: usize, hidden: usize, seed: u64) -> Self {
        Self {
            l1: Linear::new(inputs, hidden, seed),
            l2: Linear::new(hidden, 1, seed ^ 0xFF),
        }
    }

    fn forward(&self, x: &Tensor) -> (Tensor, (Tensor, Tensor, Tensor)) {
        let z1 = self.l1.forward(x);
        let a1 = relu(&z1);
        let z2 = self.l2.forward(&a1);
        let y = sigmoid(&z2);
        (y.clone(), (z1, a1, y))
    }

    fn backward(&mut self, x: &Tensor, cache: &(Tensor, Tensor, Tensor), grad_y: &Tensor) {
        let (z1, a1, y) = cache;
        let g_z2 = sigmoid_backward(y, grad_y);
        let g_a1 = self.l2.backward(a1, &g_z2);
        let g_z1 = relu_backward(z1, &g_a1);
        self.l1.backward(x, &g_z1);
    }
}

/// XOR is not linearly separable: learning it proves the full
/// forward/backward/optimizer chain works beyond linear regression.
#[test]
fn mlp_learns_xor() {
    let x = Tensor::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]);
    let targets = [0.0f32, 1.0, 1.0, 0.0];
    let mut mlp = Mlp::new(2, 8, 11);
    let mut adam = Adam::new(0.05);
    for _ in 0..500 {
        let (y, cache) = mlp.forward(&x);
        let mut grad = Tensor::zeros(4, 1);
        for (i, (&yi, &t)) in y.data().iter().zip(&targets).enumerate() {
            grad.data_mut()[i] = 2.0 * (yi - t) / 4.0;
        }
        mlp.backward(&x, &cache, &grad);
        adam.step(0, &mut mlp.l1);
        adam.step(1, &mut mlp.l2);
    }
    let (y, _) = mlp.forward(&x);
    for (i, &t) in targets.iter().enumerate() {
        let p = y.data()[i];
        assert!(
            (p - t).abs() < 0.2,
            "xor case {i}: predicted {p}, wanted {t}"
        );
    }
}

/// Mean-pooled set representations train too: predict the fraction of
/// positive elements in a variable-length set.
#[test]
fn set_network_learns_positive_fraction() {
    // Sets of 1..5 scalar elements; target = fraction of elements > 0.
    let mut elements: Vec<f32> = Vec::new();
    let mut segments: Segments = Vec::new();
    let mut targets: Vec<f32> = Vec::new();
    let mut rng_state = 12345u64;
    let mut next = || {
        rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
        ((rng_state >> 33) as f32 / (1u32 << 31) as f32) * 2.0 - 1.0
    };
    for _ in 0..200 {
        let len = 1 + (next().abs() * 4.0) as usize;
        let start = elements.len();
        let mut pos = 0;
        for _ in 0..len {
            let v = next();
            if v > 0.0 {
                pos += 1;
            }
            elements.push(v);
        }
        segments.push((start, len));
        targets.push(pos as f32 / len as f32);
    }
    let x = Tensor::from_vec(elements.len(), 1, elements);

    let mut enc = Linear::new(1, 8, 3);
    let mut head = Linear::new(8, 1, 4);
    let mut adam = Adam::new(0.02);
    let mut final_loss = f32::MAX;
    for _ in 0..400 {
        let z1 = enc.forward(&x);
        let a1 = relu(&z1);
        let pooled = segment_mean(&a1, &segments);
        let z2 = head.forward(&pooled);
        let y = sigmoid(&z2);
        let mut grad = Tensor::zeros(y.rows(), 1);
        let mut loss = 0.0;
        let n = y.rows() as f32;
        for (i, (&yi, &t)) in y.data().iter().zip(&targets).enumerate() {
            let diff = yi - t;
            loss += diff * diff / n;
            grad.data_mut()[i] = 2.0 * diff / n;
        }
        final_loss = loss;
        let g_z2 = sigmoid_backward(&y, &grad);
        let g_pooled = head.backward(&pooled, &g_z2);
        let g_a1 = segment_mean_backward(x.rows(), &g_pooled, &segments);
        let g_z1 = relu_backward(&z1, &g_a1);
        enc.backward(&x, &g_z1);
        adam.step(0, &mut enc);
        adam.step(1, &mut head);
    }
    assert!(final_loss < 0.03, "set task MSE {final_loss}");
}

/// A whole multi-layer model serializes and reloads bit-exactly.
#[test]
fn whole_model_serialization_is_bit_exact() {
    let mlp = Mlp::new(3, 5, 42);
    let mut e = Encoder::new();
    e.header(b"TST2", 1);
    e.linear(&mlp.l1);
    e.linear(&mlp.l2);
    let bytes = e.finish();

    let mut d = Decoder::new(&bytes);
    assert_eq!(d.header(b"TST2").unwrap(), 1);
    let l1 = d.linear().unwrap();
    let l2 = d.linear().unwrap();
    assert!(d.is_done());
    let restored = Mlp { l1, l2 };

    let x = Tensor::from_vec(2, 3, vec![0.1, -0.5, 2.0, 1.0, 0.0, -1.0]);
    let (y1, _) = mlp.forward(&x);
    let (y2, _) = restored.forward(&x);
    assert_eq!(y1, y2);
}

/// Training with gradient clipping converges on an exploding-gradient
/// setup (huge targets force steep q-error-like gradients).
#[test]
fn clipped_training_survives_steep_gradients() {
    let x = Tensor::from_vec(8, 1, (0..8).map(|i| i as f32).collect());
    let targets: Vec<f32> = (0..8).map(|i| (i as f32) * 100.0).collect();
    let mut layer = Linear::new(1, 1, 5);
    let mut adam = Adam::new(0.5);
    for _ in 0..2000 {
        let y = layer.forward(&x);
        let mut grad = Tensor::zeros(8, 1);
        for (i, (&yi, &t)) in y.data().iter().zip(&targets).enumerate() {
            grad.data_mut()[i] = 2.0 * (yi - t) / 8.0;
        }
        layer.backward(&x, &grad);
        ds_nn::regularize::clip_grad_norm(&mut [&mut layer], 10.0);
        adam.step(0, &mut layer);
    }
    let y = layer.forward(&x);
    // Slope ≈ 100 learned despite clipping.
    let slope = y.data()[7] - y.data()[6];
    assert!((slope - 100.0).abs() < 5.0, "slope={slope}");
}
