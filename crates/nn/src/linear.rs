//! Fully-connected layers with explicit forward/backward passes.

use rand::{rngs::StdRng, RngExt, SeedableRng};

use crate::pool::PoolConfig;
use crate::tensor::{Kernel, Tensor};

/// A fully-connected layer `y = x·W + b` with gradient accumulation.
///
/// `W` has shape (in_dim × out_dim); `b` has length out_dim. Gradients
/// accumulate across [`Linear::backward`] calls until [`Linear::zero_grad`]
/// (the optimizer does this after each step), which lets several set-module
/// applications share one weight matrix — the weight sharing at the heart of
/// the MSCN set modules.
#[derive(Debug, Clone)]
pub struct Linear {
    w: Tensor,
    b: Vec<f32>,
    grad_w: Tensor,
    grad_b: Vec<f32>,
}

impl Linear {
    /// Creates a layer with Xavier/Glorot-uniform weights, deterministic in
    /// `seed`.
    pub fn new(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "degenerate layer shape");
        let mut rng = StdRng::seed_from_u64(seed);
        let bound = (6.0 / (in_dim + out_dim) as f32).sqrt();
        let data = (0..in_dim * out_dim)
            .map(|_| rng.random_range(-bound..bound))
            .collect();
        Self {
            w: Tensor::from_vec(in_dim, out_dim, data),
            b: vec![0.0; out_dim],
            grad_w: Tensor::zeros(in_dim, out_dim),
            grad_b: vec![0.0; out_dim],
        }
    }

    /// Rebuilds a layer from raw parameters (deserialization).
    ///
    /// # Panics
    /// Panics if `b.len()` differs from `w.cols()`.
    pub fn from_params(w: Tensor, b: Vec<f32>) -> Self {
        assert_eq!(b.len(), w.cols(), "bias length mismatch");
        let grad_w = Tensor::zeros(w.rows(), w.cols());
        let grad_b = vec![0.0; b.len()];
        Self {
            w,
            b,
            grad_w,
            grad_b,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    /// Weight matrix.
    pub fn weights(&self) -> &Tensor {
        &self.w
    }

    /// Bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.b
    }

    /// Forward pass: `x` (batch × in_dim) → (batch × out_dim).
    pub fn forward(&self, x: &Tensor) -> Tensor {
        self.forward_with(x, Kernel::Dense, PoolConfig::single())
    }

    /// [`Linear::forward`] with an explicit kernel and thread pool. Pass
    /// [`Kernel::Sparse`] for input layers fed one-hot/bitmap features.
    pub fn forward_with(&self, x: &Tensor, kernel: Kernel, pool: PoolConfig) -> Tensor {
        let mut y = Tensor::zeros(0, 0);
        self.forward_into(x, kernel, pool, &mut y);
        y
    }

    /// [`Linear::forward`] into a reusable output tensor.
    pub fn forward_into(&self, x: &Tensor, kernel: Kernel, pool: PoolConfig, out: &mut Tensor) {
        let _span = ds_obs::global().span("linear_fwd");
        x.matmul_into(&self.w, kernel, pool, out);
        out.add_row_broadcast(&self.b);
    }

    /// Backward pass. `x` must be the input of the matching forward call and
    /// `grad_out` the gradient w.r.t. its output. Accumulates `∂L/∂W` and
    /// `∂L/∂b`, returns `∂L/∂x`.
    pub fn backward(&mut self, x: &Tensor, grad_out: &Tensor) -> Tensor {
        let mut scratch = Tensor::zeros(0, 0);
        self.accumulate_grads(
            x,
            grad_out,
            Kernel::Dense,
            PoolConfig::single(),
            &mut scratch,
        );
        let mut gx = Tensor::zeros(0, 0);
        self.input_grad_into(grad_out, PoolConfig::single(), &mut gx);
        gx
    }

    /// Accumulates `∂L/∂W` and `∂L/∂b` for this layer *without* computing
    /// `∂L/∂x` — the input-layer fast path, where the gradient w.r.t. the
    /// raw features is never used. `gw_scratch` is a reusable buffer for
    /// the weight-gradient product.
    pub fn accumulate_grads(
        &mut self,
        x: &Tensor,
        grad_out: &Tensor,
        kernel: Kernel,
        pool: PoolConfig,
        gw_scratch: &mut Tensor,
    ) {
        assert_eq!(grad_out.rows(), x.rows(), "batch mismatch");
        assert_eq!(grad_out.cols(), self.out_dim(), "grad width mismatch");
        let _span = ds_obs::global().span("linear_bwd_grads");
        // ∂L/∂W = xᵀ · grad_out — computed in full, then accumulated, so
        // the FP order matches the original single-allocation backward.
        x.t_matmul_into(grad_out, kernel, pool, gw_scratch);
        for (a, b) in self.grad_w.data_mut().iter_mut().zip(gw_scratch.data()) {
            *a += b;
        }
        // ∂L/∂b = column sums of grad_out
        for (a, b) in self.grad_b.iter_mut().zip(grad_out.col_sums()) {
            *a += b;
        }
    }

    /// Computes `∂L/∂x = grad_out · Wᵀ` into a reusable tensor. Combined
    /// with [`Linear::accumulate_grads`] this is the full backward pass.
    pub fn input_grad_into(&self, grad_out: &Tensor, pool: PoolConfig, out: &mut Tensor) {
        let _span = ds_obs::global().span("linear_bwd_input");
        grad_out.matmul_t_into(&self.w, pool, out);
    }

    /// Scales all accumulated gradients by `factor` (gradient clipping).
    pub fn scale_gradients(&mut self, factor: f32) {
        for g in self.grad_w.data_mut() {
            *g *= factor;
        }
        for g in &mut self.grad_b {
            *g *= factor;
        }
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.grad_w.data_mut().fill(0.0);
        self.grad_b.fill(0.0);
    }

    /// Number of scalar parameters.
    pub fn num_params(&self) -> usize {
        self.w.data().len() + self.b.len()
    }

    /// Visits every (flat index, parameter, accumulated gradient) pair —
    /// weights first, then bias. This is the optimizer's interface.
    pub fn for_each_param_mut(&mut self, mut f: impl FnMut(usize, &mut f32, f32)) {
        let nw = self.w.data().len();
        for (i, (p, &g)) in self
            .w
            .data_mut()
            .iter_mut()
            .zip(self.grad_w.data())
            .enumerate()
        {
            f(i, p, g);
        }
        for (i, (p, &g)) in self.b.iter_mut().zip(self.grad_b.iter()).enumerate() {
            f(nw + i, p, g);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference gradient check for a scalar loss L = sum(forward(x)).
    #[test]
    fn gradients_match_finite_differences() {
        let mut layer = Linear::new(4, 3, 42);
        let x = Tensor::from_vec(2, 4, (0..8).map(|i| i as f32 * 0.3 - 1.0).collect());
        let y = layer.forward(&x);
        // L = sum(y) → grad_out = ones.
        let grad_out = Tensor::from_vec(2, 3, vec![1.0; 6]);
        let grad_x = layer.backward(&x, &grad_out);

        let eps = 1e-3_f32;
        let loss = |l: &Linear, x: &Tensor| -> f32 { l.forward(x).data().iter().sum() };

        // Check ∂L/∂x numerically.
        for i in 0..x.data().len() {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&layer, &xp) - loss(&layer, &xm)) / (2.0 * eps);
            let ana = grad_x.data()[i];
            assert!((num - ana).abs() < 1e-2, "dx[{i}]: num={num} ana={ana}");
        }

        // Check ∂L/∂W numerically.
        for i in 0..layer.w.data().len() {
            let mut lp = layer.clone();
            lp.w.data_mut()[i] += eps;
            let mut lm = layer.clone();
            lm.w.data_mut()[i] -= eps;
            let num = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * eps);
            let ana = layer.grad_w.data()[i];
            assert!((num - ana).abs() < 1e-2, "dW[{i}]: num={num} ana={ana}");
        }

        // Check ∂L/∂b numerically: each bias sees the batch count.
        for (i, &g) in layer.grad_b.iter().enumerate() {
            assert!((g - 2.0).abs() < 1e-6, "db[{i}]={g}");
        }

        let _ = y;
    }

    #[test]
    fn gradient_accumulates_until_zeroed() {
        let mut layer = Linear::new(2, 2, 1);
        let x = Tensor::from_vec(1, 2, vec![1.0, 2.0]);
        let g = Tensor::from_vec(1, 2, vec![1.0, 1.0]);
        layer.backward(&x, &g);
        let first = layer.grad_w.data().to_vec();
        layer.backward(&x, &g);
        for (a, b) in layer.grad_w.data().iter().zip(&first) {
            assert!((a - 2.0 * b).abs() < 1e-6);
        }
        layer.zero_grad();
        assert!(layer.grad_w.data().iter().all(|&v| v == 0.0));
        assert!(layer.grad_b.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn xavier_init_is_bounded_and_seeded() {
        let a = Linear::new(10, 10, 7);
        let b = Linear::new(10, 10, 7);
        assert_eq!(a.weights(), b.weights());
        let c = Linear::new(10, 10, 8);
        assert_ne!(a.weights(), c.weights());
        let bound = (6.0_f32 / 20.0).sqrt();
        assert!(a.weights().data().iter().all(|v| v.abs() <= bound));
        assert!(a.bias().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_params_roundtrip() {
        let l = Linear::new(3, 2, 9);
        let l2 = Linear::from_params(l.weights().clone(), l.bias().to_vec());
        let x = Tensor::from_vec(1, 3, vec![0.5, -1.0, 2.0]);
        assert_eq!(l.forward(&x), l2.forward(&x));
        assert_eq!(l2.num_params(), 8);
    }
}
