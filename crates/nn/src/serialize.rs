//! A small, versioned binary codec for model weights and sketch state.
//!
//! A Deep Sketch is "a wrapper for a (serialized) neural network and a set
//! of materialized samples"; this module provides the byte-level format.
//! (No serde_json is available offline, so the codec is hand-rolled on the
//! `bytes` crate.)
//!
//! Layout: all integers little-endian; `f32`/`f64` as IEEE-754 bits;
//! vectors as `u64` length + elements; strings as `u64` length + UTF-8.

use bytes::{Buf, BufMut};

use crate::linear::Linear;
use crate::tensor::Tensor;

/// Decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the structure was complete.
    UnexpectedEof,
    /// Magic bytes or version did not match.
    BadHeader(String),
    /// A length prefix was implausibly large or a string was not UTF-8.
    Corrupt(String),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnexpectedEof => write!(f, "unexpected end of input"),
            DecodeError::BadHeader(m) => write!(f, "bad header: {m}"),
            DecodeError::Corrupt(m) => write!(f, "corrupt payload: {m}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Sanity cap on decoded vector lengths (1 GiB of f32s) to fail fast on
/// corrupt length prefixes instead of attempting huge allocations.
const MAX_VEC_LEN: u64 = 1 << 28;

/// Writes length-prefixed primitives into a growing buffer.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes the 4-byte magic and a format version.
    pub fn header(&mut self, magic: &[u8; 4], version: u32) {
        self.buf.put_slice(magic);
        self.buf.put_u32_le(version);
    }

    /// Writes a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.put_u64_le(v);
    }

    /// Writes an `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.put_i64_le(v);
    }

    /// Writes an `f64`.
    pub fn f64(&mut self, v: f64) {
        self.buf.put_f64_le(v);
    }

    /// Writes a length-prefixed `f32` slice.
    pub fn f32_slice(&mut self, v: &[f32]) {
        self.buf.put_u64_le(v.len() as u64);
        for &x in v {
            self.buf.put_f32_le(x);
        }
    }

    /// Writes a length-prefixed `u64` slice.
    pub fn u64_slice(&mut self, v: &[u64]) {
        self.buf.put_u64_le(v.len() as u64);
        for &x in v {
            self.buf.put_u64_le(x);
        }
    }

    /// Writes a length-prefixed `i64` slice.
    pub fn i64_slice(&mut self, v: &[i64]) {
        self.buf.put_u64_le(v.len() as u64);
        for &x in v {
            self.buf.put_i64_le(x);
        }
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn string(&mut self, s: &str) {
        self.buf.put_u64_le(s.len() as u64);
        self.buf.put_slice(s.as_bytes());
    }

    /// Writes a length-prefixed raw byte slice (quantized weight rows).
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.put_u64_le(v.len() as u64);
        self.buf.put_slice(v);
    }

    /// Writes a tensor (rows, cols, data).
    pub fn tensor(&mut self, t: &Tensor) {
        self.buf.put_u64_le(t.rows() as u64);
        self.buf.put_u64_le(t.cols() as u64);
        for &x in t.data() {
            self.buf.put_f32_le(x);
        }
    }

    /// Writes a linear layer (weights then bias).
    pub fn linear(&mut self, l: &Linear) {
        self.tensor(l.weights());
        self.f32_slice(l.bias());
    }

    /// Finishes and returns the bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Reads values written by [`Encoder`], validating lengths.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf }
    }

    fn need(&self, n: usize) -> Result<(), DecodeError> {
        if self.buf.remaining() < n {
            Err(DecodeError::UnexpectedEof)
        } else {
            Ok(())
        }
    }

    /// Reads and validates the header, returning the version.
    pub fn header(&mut self, magic: &[u8; 4]) -> Result<u32, DecodeError> {
        self.need(8)?;
        let mut got = [0u8; 4];
        self.buf.copy_to_slice(&mut got);
        if &got != magic {
            return Err(DecodeError::BadHeader(format!(
                "magic mismatch: expected {magic:?}, got {got:?}"
            )));
        }
        Ok(self.buf.get_u32_le())
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }

    /// Reads an `i64`.
    pub fn i64(&mut self) -> Result<i64, DecodeError> {
        self.need(8)?;
        Ok(self.buf.get_i64_le())
    }

    /// Reads an `f64`.
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        self.need(8)?;
        Ok(self.buf.get_f64_le())
    }

    fn len_prefix(&mut self) -> Result<usize, DecodeError> {
        let n = self.u64()?;
        if n > MAX_VEC_LEN {
            return Err(DecodeError::Corrupt(format!("length {n} too large")));
        }
        Ok(n as usize)
    }

    /// Reads a length prefix that counts variable-size records, validating
    /// it against the bytes actually remaining: each record occupies at
    /// least `min_record_bytes`, so a count promising more records than
    /// the buffer could possibly hold is corrupt. Callers may then
    /// `Vec::with_capacity(count)` without an allocation-bomb risk from
    /// untrusted input.
    pub fn count(&mut self, min_record_bytes: usize) -> Result<usize, DecodeError> {
        let n = self.u64()?;
        let fits = n
            .checked_mul(min_record_bytes.max(1) as u64)
            .is_some_and(|need| need <= self.buf.remaining() as u64);
        if !fits {
            return Err(DecodeError::Corrupt(format!(
                "record count {n} exceeds remaining input"
            )));
        }
        Ok(n as usize)
    }

    /// Reads a length-prefixed `f32` vector.
    pub fn f32_vec(&mut self) -> Result<Vec<f32>, DecodeError> {
        let n = self.len_prefix()?;
        self.need(n * 4)?;
        Ok((0..n).map(|_| self.buf.get_f32_le()).collect())
    }

    /// Reads a length-prefixed `u64` vector.
    pub fn u64_vec(&mut self) -> Result<Vec<u64>, DecodeError> {
        let n = self.len_prefix()?;
        self.need(n * 8)?;
        Ok((0..n).map(|_| self.buf.get_u64_le()).collect())
    }

    /// Reads a length-prefixed `i64` vector.
    pub fn i64_vec(&mut self) -> Result<Vec<i64>, DecodeError> {
        let n = self.len_prefix()?;
        self.need(n * 8)?;
        Ok((0..n).map(|_| self.buf.get_i64_le()).collect())
    }

    /// Reads a length-prefixed raw byte vector.
    pub fn byte_vec(&mut self) -> Result<Vec<u8>, DecodeError> {
        let n = self.len_prefix()?;
        self.need(n)?;
        let mut bytes = vec![0u8; n];
        self.buf.copy_to_slice(&mut bytes);
        Ok(bytes)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, DecodeError> {
        let n = self.len_prefix()?;
        self.need(n)?;
        let mut bytes = vec![0u8; n];
        self.buf.copy_to_slice(&mut bytes);
        String::from_utf8(bytes).map_err(|e| DecodeError::Corrupt(e.to_string()))
    }

    /// Reads a tensor.
    pub fn tensor(&mut self) -> Result<Tensor, DecodeError> {
        let rows = self.u64()? as usize;
        let cols = self.u64()? as usize;
        let n = rows
            .checked_mul(cols)
            .filter(|&n| (n as u64) <= MAX_VEC_LEN)
            .ok_or_else(|| DecodeError::Corrupt("tensor too large".into()))?;
        self.need(n * 4)?;
        let data = (0..n).map(|_| self.buf.get_f32_le()).collect();
        Ok(Tensor::from_vec(rows, cols, data))
    }

    /// Reads a linear layer.
    pub fn linear(&mut self) -> Result<Linear, DecodeError> {
        let w = self.tensor()?;
        let b = self.f32_vec()?;
        if b.len() != w.cols() {
            return Err(DecodeError::Corrupt("bias length mismatch".into()));
        }
        Ok(Linear::from_params(w, b))
    }

    /// True when all bytes are consumed.
    pub fn is_done(&self) -> bool {
        !self.buf.has_remaining()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrip() {
        let mut e = Encoder::new();
        e.header(b"TEST", 3);
        e.u64(42);
        e.i64(-7);
        e.f64(2.5);
        e.string("hello");
        e.f32_slice(&[1.0, -2.0]);
        e.u64_slice(&[9, 10]);
        e.i64_slice(&[-1, 0, 1]);
        e.bytes(&[0x80, 0x7F, 0x00]);
        let bytes = e.finish();

        let mut d = Decoder::new(&bytes);
        assert_eq!(d.header(b"TEST").unwrap(), 3);
        assert_eq!(d.u64().unwrap(), 42);
        assert_eq!(d.i64().unwrap(), -7);
        assert_eq!(d.f64().unwrap(), 2.5);
        assert_eq!(d.string().unwrap(), "hello");
        assert_eq!(d.f32_vec().unwrap(), vec![1.0, -2.0]);
        assert_eq!(d.u64_vec().unwrap(), vec![9, 10]);
        assert_eq!(d.i64_vec().unwrap(), vec![-1, 0, 1]);
        assert_eq!(d.byte_vec().unwrap(), vec![0x80, 0x7F, 0x00]);
        assert!(d.is_done());
    }

    #[test]
    fn linear_roundtrip_preserves_forward() {
        let l = Linear::new(5, 3, 77);
        let mut e = Encoder::new();
        e.linear(&l);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        let l2 = d.linear().unwrap();
        let x = Tensor::from_vec(2, 5, (0..10).map(|i| i as f32 * 0.1).collect());
        assert_eq!(l.forward(&x), l2.forward(&x));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut e = Encoder::new();
        e.header(b"GOOD", 1);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert!(matches!(d.header(b"EVIL"), Err(DecodeError::BadHeader(_))));
    }

    #[test]
    fn truncated_input_is_eof() {
        let mut e = Encoder::new();
        e.f32_slice(&[1.0, 2.0, 3.0]);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes[..bytes.len() - 2]);
        assert_eq!(d.f32_vec(), Err(DecodeError::UnexpectedEof));
    }

    #[test]
    fn record_counts_are_bounded_by_remaining_input() {
        let mut e = Encoder::new();
        e.u64(3); // 3 records claimed…
        e.u64(0);
        e.u64(0);
        e.u64(0); // …and 24 bytes present: fits at 8 bytes/record.
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.count(8).unwrap(), 3);
        // The same prefix with a larger minimum record size cannot fit.
        let mut d = Decoder::new(&bytes);
        assert!(matches!(d.count(9), Err(DecodeError::Corrupt(_))));
        // An absurd count (the allocation-bomb shape) fails fast, even
        // when `count * min_bytes` would overflow.
        let mut e = Encoder::new();
        e.u64(u64::MAX);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert!(matches!(d.count(32), Err(DecodeError::Corrupt(_))));
    }

    #[test]
    fn corrupt_length_rejected_without_huge_alloc() {
        let mut e = Encoder::new();
        e.u64(u64::MAX); // absurd length prefix
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert!(matches!(d.f32_vec(), Err(DecodeError::Corrupt(_))));
    }

    #[test]
    fn corrupt_bias_rejected() {
        let l = Linear::new(2, 2, 1);
        let mut e = Encoder::new();
        e.tensor(l.weights());
        e.f32_slice(&[0.0; 5]); // wrong bias length
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert!(matches!(d.linear(), Err(DecodeError::Corrupt(_))));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut e = Encoder::new();
        e.u64(2);
        let mut bytes = e.finish();
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        let mut d = Decoder::new(&bytes);
        assert!(matches!(d.string(), Err(DecodeError::Corrupt(_))));
    }
}
