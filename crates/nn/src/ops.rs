//! Activation functions and set-pooling operations with explicit backward
//! passes.

use crate::tensor::Tensor;

/// Elementwise ReLU.
pub fn relu(x: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(0, 0);
    relu_into(x, &mut out);
    out
}

/// [`relu`] into a reusable output tensor.
pub fn relu_into(x: &Tensor, out: &mut Tensor) {
    out.resize(x.rows(), x.cols());
    for (o, &v) in out.data_mut().iter_mut().zip(x.data()) {
        *o = v.max(0.0);
    }
}

/// Backward of ReLU: passes gradient where the *input* was positive.
pub fn relu_backward(x: &Tensor, grad_out: &Tensor) -> Tensor {
    let mut grad = grad_out.clone();
    relu_backward_inplace(x, &mut grad);
    grad
}

/// [`relu_backward`] masking `grad` in place — the scratch-arena variant.
pub fn relu_backward_inplace(x: &Tensor, grad: &mut Tensor) {
    assert_eq!(x.rows(), grad.rows());
    assert_eq!(x.cols(), grad.cols());
    for (g, &xi) in grad.data_mut().iter_mut().zip(x.data()) {
        if xi <= 0.0 {
            *g = 0.0;
        }
    }
}

/// Elementwise logistic sigmoid.
pub fn sigmoid(x: &Tensor) -> Tensor {
    let data = x.data().iter().map(|&v| sigmoid_scalar(v)).collect();
    Tensor::from_vec(x.rows(), x.cols(), data)
}

/// Scalar sigmoid, numerically stable for large |v|.
#[inline]
pub fn sigmoid_scalar(v: f32) -> f32 {
    if v >= 0.0 {
        1.0 / (1.0 + (-v).exp())
    } else {
        let e = v.exp();
        e / (1.0 + e)
    }
}

/// Backward of sigmoid given its *output* `y`: `grad_in = grad_out·y·(1-y)`.
pub fn sigmoid_backward(y: &Tensor, grad_out: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(0, 0);
    sigmoid_backward_into(y, grad_out, &mut out);
    out
}

/// [`sigmoid_backward`] into a reusable output tensor.
pub fn sigmoid_backward_into(y: &Tensor, grad_out: &Tensor, out: &mut Tensor) {
    assert_eq!(y.rows(), grad_out.rows());
    assert_eq!(y.cols(), grad_out.cols());
    out.resize(y.rows(), y.cols());
    for ((o, &yi), &g) in out.data_mut().iter_mut().zip(y.data()).zip(grad_out.data()) {
        *o = g * yi * (1.0 - yi);
    }
}

/// Segments of a flattened set batch: `segments[q] = (start, len)` selects
/// the rows of element-matrix belonging to query `q`. A segment may be
/// empty (`len == 0`) — e.g. a query with no join set — in which case its
/// pooled representation is the zero vector, matching MSCN's masked
/// averaging.
pub type Segments = Vec<(usize, usize)>;

/// Mean-pools each segment of rows: (total_elements × d) → (num_segments × d).
///
/// # Panics
/// Panics if segments overflow the input rows.
pub fn segment_mean(x: &Tensor, segments: &Segments) -> Tensor {
    let mut out = Tensor::zeros(0, 0);
    segment_mean_into(x, segments, &mut out);
    out
}

/// [`segment_mean`] into a reusable output tensor.
pub fn segment_mean_into(x: &Tensor, segments: &Segments, out: &mut Tensor) {
    let d = x.cols();
    out.resize(segments.len(), d);
    for (q, &(start, len)) in segments.iter().enumerate() {
        if len == 0 {
            continue;
        }
        assert!(start + len <= x.rows(), "segment out of range");
        let inv = 1.0 / len as f32;
        for r in start..start + len {
            let row = x.row(r);
            let orow = out.row_mut(q);
            for (o, &v) in orow.iter_mut().zip(row) {
                *o += v * inv;
            }
        }
    }
}

/// Backward of [`segment_mean`]: scatters `grad_out[q] / len` to every row
/// of segment `q`.
pub fn segment_mean_backward(total_rows: usize, grad_out: &Tensor, segments: &Segments) -> Tensor {
    let mut out = Tensor::zeros(0, 0);
    segment_mean_backward_into(total_rows, grad_out, segments, &mut out);
    out
}

/// [`segment_mean_backward`] into a reusable output tensor.
pub fn segment_mean_backward_into(
    total_rows: usize,
    grad_out: &Tensor,
    segments: &Segments,
    out: &mut Tensor,
) {
    assert_eq!(grad_out.rows(), segments.len(), "segment count mismatch");
    let d = grad_out.cols();
    out.resize(total_rows, d);
    for (q, &(start, len)) in segments.iter().enumerate() {
        if len == 0 {
            continue;
        }
        let inv = 1.0 / len as f32;
        let grow = grad_out.row(q);
        for r in start..start + len {
            let orow = out.row_mut(r);
            for (o, &g) in orow.iter_mut().zip(grow) {
                *o += g * inv;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_and_backward() {
        let x = Tensor::from_vec(1, 4, vec![-1.0, 0.0, 0.5, 2.0]);
        let y = relu(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 0.5, 2.0]);
        let g = Tensor::from_vec(1, 4, vec![1.0, 1.0, 1.0, 1.0]);
        let gx = relu_backward(&x, &g);
        assert_eq!(gx.data(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn sigmoid_matches_analytic_values() {
        assert!((sigmoid_scalar(0.0) - 0.5).abs() < 1e-7);
        assert!((sigmoid_scalar(100.0) - 1.0).abs() < 1e-7);
        assert!(sigmoid_scalar(-100.0) < 1e-7);
        // Stability: no NaN at extremes.
        assert!(sigmoid_scalar(f32::MAX).is_finite());
        assert!(sigmoid_scalar(f32::MIN).is_finite());
    }

    #[test]
    fn sigmoid_backward_finite_difference() {
        let x = Tensor::from_vec(1, 3, vec![-0.7, 0.1, 1.3]);
        let y = sigmoid(&x);
        let g = Tensor::from_vec(1, 3, vec![1.0; 3]);
        let gx = sigmoid_backward(&y, &g);
        let eps = 1e-3;
        for i in 0..3 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (sigmoid(&xp).data()[i] - sigmoid(&xm).data()[i]) / (2.0 * eps);
            assert!((num - gx.data()[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn segment_mean_pools_and_handles_empty() {
        let x = Tensor::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let segs: Segments = vec![(0, 2), (2, 0), (2, 1)];
        let m = segment_mean(&x, &segs);
        assert_eq!(m.row(0), &[2.0, 3.0]);
        assert_eq!(m.row(1), &[0.0, 0.0]); // empty set → zero vector
        assert_eq!(m.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn segment_mean_backward_scatters_evenly() {
        let segs: Segments = vec![(0, 2), (2, 1)];
        let g = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let gx = segment_mean_backward(3, &g, &segs);
        assert_eq!(gx.row(0), &[0.5, 1.0]);
        assert_eq!(gx.row(1), &[0.5, 1.0]);
        assert_eq!(gx.row(2), &[3.0, 4.0]);
    }

    #[test]
    fn segment_mean_grad_check() {
        // d/dx of sum(segment_mean(x)) via finite differences.
        let x = Tensor::from_vec(4, 2, (0..8).map(|i| i as f32 * 0.7 - 2.0).collect());
        let segs: Segments = vec![(0, 3), (3, 1)];
        let ones = Tensor::from_vec(2, 2, vec![1.0; 4]);
        let gx = segment_mean_backward(4, &ones, &segs);
        let f = |x: &Tensor| segment_mean(x, &segs).data().iter().sum::<f32>();
        let eps = 1e-3;
        for i in 0..8 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (f(&xp) - f(&xm)) / (2.0 * eps);
            assert!((num - gx.data()[i]).abs() < 1e-2, "i={i}");
        }
    }

    #[test]
    #[should_panic(expected = "segment out of range")]
    fn segment_overflow_panics() {
        let x = Tensor::zeros(2, 1);
        segment_mean(&x, &vec![(1, 5)]);
    }
}
