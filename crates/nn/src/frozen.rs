//! Frozen serving-only inference artifacts.
//!
//! Training wants transposable, gradient-carrying layers; serving wants
//! the opposite: immutable weights in exactly the layout the forward pass
//! reads, no gradient buffers, and kernels shaped for *one query at a
//! time*. A [`FrozenModel`] is that artifact: the eight MSCN layers
//! converted once from the trained model into a flat row-major layout
//! (f32, or int8 with per-input-row scales), driven by a fused
//! featurize-and-forward entry point that consumes sparse *(index, value)*
//! lists directly — the one-hot input layer becomes a gather over weight
//! rows, and the sparse feature tensor is never materialized.
//!
//! ## Determinism contract
//!
//! In [`QuantMode::F32`] the fused forward is **bit-identical** to the
//! training-shape forward pass. Every kernel in [`crate::tensor`]
//! accumulates each output element in its own `f32` slot with the
//! reduction index ascending, and the sparse input kernel skips zero
//! terms — adding `±0.0` to a `+0.0`-started finite sum cannot change its
//! bits, so zero-skipping is bit-neutral. The frozen kernels reproduce
//! exactly that order: the input gather sums weight rows in ascending
//! feature-index order, the hidden matrix–vector product accumulates
//! `y[j] += x[p]·W[p][j]` with `p` ascending, and the AVX2 variants (one
//! output column per lane, separate multiply and add, never a fused
//! `vfmadd`) round identically to the portable fallback, which stays in
//! the tree as the oracle the property tests pin against.
//!
//! [`QuantMode::Int8`] trades that exactness for a 4× smaller artifact:
//! each weight row is quantized to `i8` against its own max-abs scale.
//! Int8 outputs are *approximately* equal to the reference (the gate that
//! decides whether an int8 artifact may serve lives in the sketch layer).

use crate::linear::Linear;
use crate::ops::sigmoid_scalar;
use crate::serialize::{DecodeError, Decoder, Encoder};

/// Weight storage mode of a frozen layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantMode {
    /// Exact f32 weights; fused forward is bit-identical to the reference.
    F32,
    /// `i8` weights with one f32 scale per input row (max-abs symmetric
    /// quantization); forward is approximate.
    Int8,
}

impl QuantMode {
    /// Stable wire tag.
    pub fn to_u64(self) -> u64 {
        match self {
            QuantMode::F32 => 0,
            QuantMode::Int8 => 1,
        }
    }

    /// Parses a wire tag, rejecting unknown modes.
    pub fn from_u64(v: u64) -> Result<Self, DecodeError> {
        match v {
            0 => Ok(QuantMode::F32),
            1 => Ok(QuantMode::Int8),
            other => Err(DecodeError::Corrupt(format!(
                "unknown quantization mode {other}"
            ))),
        }
    }
}

/// One frozen fully-connected layer: immutable weights in row-major
/// `(in_dim × out_dim)` layout — the forward pass walks *rows*, so both
/// the sparse gather and the dense matrix–vector product stream
/// contiguous memory.
#[derive(Debug, Clone, PartialEq)]
pub struct FrozenLinear {
    in_dim: usize,
    out_dim: usize,
    mode: QuantMode,
    /// F32 mode: `in_dim × out_dim` weights. Empty in Int8 mode.
    w: Vec<f32>,
    /// Int8 mode: quantized weights, same layout. Empty in F32 mode.
    q: Vec<i8>,
    /// Int8 mode: per-input-row dequantization scales (`in_dim`).
    scales: Vec<f32>,
    b: Vec<f32>,
}

impl FrozenLinear {
    /// Converts a trained layer. The training layout is already
    /// `(in_dim × out_dim)` row-major, so F32 freezing is a plain copy;
    /// Int8 quantizes each input row against its own max-abs scale.
    pub fn from_linear(l: &Linear, mode: QuantMode) -> Self {
        let (in_dim, out_dim) = (l.in_dim(), l.out_dim());
        let w = l.weights().data();
        match mode {
            QuantMode::F32 => Self {
                in_dim,
                out_dim,
                mode,
                w: w.to_vec(),
                q: Vec::new(),
                scales: Vec::new(),
                b: l.bias().to_vec(),
            },
            QuantMode::Int8 => {
                let mut q = Vec::with_capacity(w.len());
                let mut scales = Vec::with_capacity(in_dim);
                for row in w.chunks(out_dim.max(1)) {
                    let max = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
                    let scale = if max > 0.0 { max / 127.0 } else { 1.0 };
                    scales.push(scale);
                    q.extend(row.iter().map(|&v| (v / scale).round() as i8));
                }
                Self {
                    in_dim,
                    out_dim,
                    mode,
                    w: Vec::new(),
                    q,
                    scales,
                    b: l.bias().to_vec(),
                }
            }
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Storage mode.
    pub fn mode(&self) -> QuantMode {
        self.mode
    }

    /// The dequantized weight at `(row, col)` — test/inspection helper.
    pub fn weight(&self, row: usize, col: usize) -> f32 {
        match self.mode {
            QuantMode::F32 => self.w[row * self.out_dim + col],
            QuantMode::Int8 => self.q[row * self.out_dim + col] as f32 * self.scales[row],
        }
    }

    /// `y += value · W[row, :]` — one gathered input feature. `y` must be
    /// `out_dim` long. This is the fused input layer: active feature
    /// indices select weight rows directly, no sparse tensor in between.
    #[inline]
    pub fn accumulate_row(&self, row: usize, value: f32, y: &mut [f32]) {
        debug_assert!(row < self.in_dim, "feature index out of range");
        debug_assert_eq!(y.len(), self.out_dim);
        match self.mode {
            QuantMode::F32 => {
                kernels::axpy(
                    value,
                    &self.w[row * self.out_dim..(row + 1) * self.out_dim],
                    y,
                );
            }
            QuantMode::Int8 => {
                let t = value * self.scales[row];
                let qrow = &self.q[row * self.out_dim..(row + 1) * self.out_dim];
                for (o, &qv) in y.iter_mut().zip(qrow) {
                    *o += t * qv as f32;
                }
            }
        }
    }

    /// Adds the bias into `y` (after all rows were accumulated — the same
    /// matmul-then-broadcast order as the training path).
    #[inline]
    pub fn add_bias(&self, y: &mut [f32]) {
        for (o, &bv) in y.iter_mut().zip(&self.b) {
            *o += bv;
        }
    }

    /// Dense matrix–vector product `y = x·W + b` for one row `x`
    /// (`in_dim`) into `y` (`out_dim`). Zero entries of `x` are skipped —
    /// bit-neutral (see module docs) and fast on post-ReLU activations.
    pub fn forward_vec(&self, x: &[f32], y: &mut [f32]) {
        debug_assert_eq!(x.len(), self.in_dim);
        debug_assert_eq!(y.len(), self.out_dim);
        y.fill(0.0);
        for (p, &xv) in x.iter().enumerate() {
            if xv == 0.0 {
                continue;
            }
            self.accumulate_row(p, xv, y);
        }
        self.add_bias(y);
    }

    /// Serialized + resident size in bytes (weights, scales, bias).
    pub fn footprint_bytes(&self) -> usize {
        self.w.len() * 4 + self.q.len() + self.scales.len() * 4 + self.b.len() * 4
    }

    fn encode(&self, e: &mut Encoder) {
        e.u64(self.in_dim as u64);
        e.u64(self.out_dim as u64);
        match self.mode {
            QuantMode::F32 => {
                e.f32_slice(&self.w);
            }
            QuantMode::Int8 => {
                let raw: Vec<u8> = self.q.iter().map(|&v| v as u8).collect();
                e.bytes(&raw);
                e.f32_slice(&self.scales);
            }
        }
        e.f32_slice(&self.b);
    }

    /// Decodes one layer, validating every length against the declared
    /// dims so corrupt or mismatched quantization metadata is rejected
    /// rather than read out of bounds.
    fn decode(d: &mut Decoder<'_>, mode: QuantMode) -> Result<Self, DecodeError> {
        let in_dim = d.u64()? as usize;
        let out_dim = d.u64()? as usize;
        let expect = in_dim
            .checked_mul(out_dim)
            .ok_or_else(|| DecodeError::Corrupt("frozen layer dims overflow".into()))?;
        let corrupt = |what: &str| DecodeError::Corrupt(format!("frozen layer {what} mismatch"));
        let (w, q, scales) = match mode {
            QuantMode::F32 => {
                let w = d.f32_vec()?;
                if w.len() != expect {
                    return Err(corrupt("weight length"));
                }
                (w, Vec::new(), Vec::new())
            }
            QuantMode::Int8 => {
                let raw = d.byte_vec()?;
                if raw.len() != expect {
                    return Err(corrupt("quantized weight length"));
                }
                let scales = d.f32_vec()?;
                if scales.len() != in_dim {
                    return Err(corrupt("scale length"));
                }
                if scales.iter().any(|s| !s.is_finite() || *s <= 0.0) {
                    return Err(corrupt("scale value"));
                }
                (Vec::new(), raw.iter().map(|&v| v as i8).collect(), scales)
            }
        };
        let b = d.f32_vec()?;
        if b.len() != out_dim {
            return Err(corrupt("bias length"));
        }
        Ok(Self {
            in_dim,
            out_dim,
            mode,
            w,
            q,
            scales,
            b,
        })
    }
}

/// One set of a fused query: sparse element rows as flat
/// *(feature index, value)* pairs plus one `(start, len)` span per set
/// element. Within each element the indices must be ascending — that is
/// what makes the gather bit-identical to the zero-skipping sparse matmul.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct IndexSet {
    /// Flat `(feature index, value)` pairs of all elements.
    pub entries: Vec<(u32, f32)>,
    /// `(start, len)` spans into `entries`, one per set element.
    pub elems: Vec<(u32, u32)>,
}

impl IndexSet {
    /// Empties both buffers, keeping their allocations.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.elems.clear();
    }

    /// Opens a new element; returns a guard index for [`IndexSet::finish_elem`].
    pub fn begin_elem(&mut self) -> usize {
        self.entries.len()
    }

    /// Closes the element opened at `start` (as returned by
    /// [`IndexSet::begin_elem`]).
    pub fn finish_elem(&mut self, start: usize) {
        self.elems
            .push((start as u32, (self.entries.len() - start) as u32));
    }

    /// Appends one active feature to the current element.
    #[inline]
    pub fn push(&mut self, index: u32, value: f32) {
        self.entries.push((index, value));
    }
}

/// Reusable buffers for the fused single-query forward pass. One scratch
/// per thread keeps the hot path allocation-free.
#[derive(Debug, Default, Clone)]
pub struct FrozenScratch {
    z1: Vec<f32>,
    z2: Vec<f32>,
    pooled: Vec<f32>,
    z3: Vec<f32>,
}

impl FrozenScratch {
    /// An empty scratch; buffers are sized lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, hidden: usize) {
        self.z1.resize(hidden, 0.0);
        self.z2.resize(hidden, 0.0);
        self.pooled.resize(3 * hidden, 0.0);
        self.z3.resize(hidden, 0.0);
    }
}

/// The frozen MSCN inference artifact: three set modules (two layers
/// each), the two output layers, all in serving layout. Built once from a
/// trained model, immutable afterwards.
#[derive(Debug, Clone, PartialEq)]
pub struct FrozenModel {
    tables1: FrozenLinear,
    tables2: FrozenLinear,
    joins1: FrozenLinear,
    joins2: FrozenLinear,
    preds1: FrozenLinear,
    preds2: FrozenLinear,
    out1: FrozenLinear,
    out2: FrozenLinear,
    hidden: usize,
}

impl FrozenModel {
    /// Assembles the artifact from the eight frozen layers, checking the
    /// MSCN wiring (set modules `in → hidden → hidden`, output MLP
    /// `3·hidden → hidden → 1`, one shared quantization mode).
    ///
    /// # Panics
    /// Panics when the layer shapes do not form an MSCN or the modes
    /// disagree — freezing a well-formed model cannot trip this.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        tables1: FrozenLinear,
        tables2: FrozenLinear,
        joins1: FrozenLinear,
        joins2: FrozenLinear,
        preds1: FrozenLinear,
        preds2: FrozenLinear,
        out1: FrozenLinear,
        out2: FrozenLinear,
    ) -> Self {
        let hidden = tables1.out_dim();
        let m = Self {
            tables1,
            tables2,
            joins1,
            joins2,
            preds1,
            preds2,
            out1,
            out2,
            hidden,
        };
        assert!(m.check_wiring().is_ok(), "mis-wired frozen model");
        m
    }

    /// Validates the MSCN wiring and shared mode; `Err` carries what is
    /// wrong (decode uses this to reject corrupt artifacts).
    fn check_wiring(&self) -> Result<(), String> {
        let h = self.hidden;
        let mode = self.tables1.mode();
        for (name, l, in_ok, out_ok) in [
            (
                "tables1",
                &self.tables1,
                true,
                l_eq(self.tables1.out_dim(), h),
            ),
            (
                "tables2",
                &self.tables2,
                l_eq(self.tables2.in_dim(), h),
                l_eq(self.tables2.out_dim(), h),
            ),
            (
                "joins2",
                &self.joins2,
                l_eq(self.joins2.in_dim(), h),
                l_eq(self.joins2.out_dim(), h),
            ),
            (
                "preds2",
                &self.preds2,
                l_eq(self.preds2.in_dim(), h),
                l_eq(self.preds2.out_dim(), h),
            ),
            ("joins1", &self.joins1, true, l_eq(self.joins1.out_dim(), h)),
            ("preds1", &self.preds1, true, l_eq(self.preds1.out_dim(), h)),
            (
                "out1",
                &self.out1,
                l_eq(self.out1.in_dim(), 3 * h),
                l_eq(self.out1.out_dim(), h),
            ),
            (
                "out2",
                &self.out2,
                l_eq(self.out2.in_dim(), h),
                l_eq(self.out2.out_dim(), 1),
            ),
        ] {
            if !in_ok || !out_ok {
                return Err(format!("{name} shape breaks the MSCN wiring"));
            }
            if l.mode() != mode {
                return Err(format!("{name} quantization mode differs"));
            }
        }
        if h == 0 {
            return Err("zero hidden width".into());
        }
        Ok(())
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Quantization mode (shared by all layers).
    pub fn mode(&self) -> QuantMode {
        self.tables1.mode()
    }

    /// The eight layers in encode order:
    /// `[t1, t2, j1, j2, p1, p2, out1, out2]`.
    pub fn layers(&self) -> [&FrozenLinear; 8] {
        [
            &self.tables1,
            &self.tables2,
            &self.joins1,
            &self.joins2,
            &self.preds1,
            &self.preds2,
            &self.out1,
            &self.out2,
        ]
    }

    /// Resident weight bytes of the artifact.
    pub fn footprint_bytes(&self) -> usize {
        self.layers().iter().map(|l| l.footprint_bytes()).sum()
    }

    /// Fused featurize-and-forward for one query: consumes the three
    /// sparse index sets directly and returns the normalized model output
    /// (pre-denormalization, post-sigmoid) — bit-identical to the
    /// training-shape forward in [`QuantMode::F32`].
    pub fn forward_query(
        &self,
        tables: &IndexSet,
        joins: &IndexSet,
        preds: &IndexSet,
        scratch: &mut FrozenScratch,
    ) -> f32 {
        scratch.ensure(self.hidden);
        let h = self.hidden;
        scratch.pooled.fill(0.0);
        let (pooled_t, rest) = scratch.pooled.split_at_mut(h);
        let (pooled_j, pooled_p) = rest.split_at_mut(h);
        Self::forward_set(
            &self.tables1,
            &self.tables2,
            tables,
            pooled_t,
            &mut scratch.z1,
            &mut scratch.z2,
        );
        Self::forward_set(
            &self.joins1,
            &self.joins2,
            joins,
            pooled_j,
            &mut scratch.z1,
            &mut scratch.z2,
        );
        Self::forward_set(
            &self.preds1,
            &self.preds2,
            preds,
            pooled_p,
            &mut scratch.z1,
            &mut scratch.z2,
        );
        // Output MLP over the concatenated pooled representation.
        self.out1.forward_vec(&scratch.pooled, &mut scratch.z3);
        for v in scratch.z3.iter_mut() {
            *v = v.max(0.0);
        }
        let mut y = [0.0f32];
        self.out2.forward_vec(&scratch.z3, &mut y);
        sigmoid_scalar(y[0])
    }

    /// One set module: gather → bias → ReLU → dense → bias → ReLU →
    /// mean-pool, element by element in order. Matches the batched path's
    /// arithmetic exactly: the pool accumulates `relu(z2)[j] · (1/len)`
    /// with elements ascending, as `segment_mean` does row-ascending.
    fn forward_set(
        l1: &FrozenLinear,
        l2: &FrozenLinear,
        set: &IndexSet,
        pooled: &mut [f32],
        z1: &mut [f32],
        z2: &mut [f32],
    ) {
        if set.elems.is_empty() {
            return; // empty set → zero vector, like the masked mean
        }
        let inv = 1.0 / set.elems.len() as f32;
        for &(start, len) in &set.elems {
            let entries = &set.entries[start as usize..(start + len) as usize];
            z1.fill(0.0);
            for &(idx, val) in entries {
                if val == 0.0 {
                    continue; // the sparse kernel's zero skip (bit-neutral)
                }
                l1.accumulate_row(idx as usize, val, z1);
            }
            l1.add_bias(z1);
            for v in z1.iter_mut() {
                *v = v.max(0.0);
            }
            l2.forward_vec(z1, z2);
            for (o, &v) in pooled.iter_mut().zip(z2.iter()) {
                *o += v.max(0.0) * inv;
            }
        }
    }

    /// Appends the artifact to an encoder: mode word, hidden width, then
    /// the eight layers in [`FrozenModel::layers`] order.
    pub fn encode_into(&self, e: &mut Encoder) {
        e.u64(self.mode().to_u64());
        e.u64(self.hidden as u64);
        for l in self.layers() {
            l.encode(e);
        }
    }

    /// Decodes an artifact written by [`FrozenModel::encode_into`],
    /// rejecting unknown modes, mismatched lengths, and mis-wired shapes.
    pub fn decode_from(d: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let mode = QuantMode::from_u64(d.u64()?)?;
        let hidden = d.u64()? as usize;
        let mut layers = Vec::with_capacity(8);
        for _ in 0..8 {
            layers.push(FrozenLinear::decode(d, mode)?);
        }
        let [t1, t2, j1, j2, p1, p2, o1, o2]: [FrozenLinear; 8] =
            layers.try_into().expect("eight layers");
        let m = Self {
            tables1: t1,
            tables2: t2,
            joins1: j1,
            joins2: j2,
            preds1: p1,
            preds2: p2,
            out1: o1,
            out2: o2,
            hidden,
        };
        m.check_wiring().map_err(DecodeError::Corrupt)?;
        Ok(m)
    }
}

#[inline]
fn l_eq(a: usize, b: usize) -> bool {
    a == b
}

/// The frozen-path micro-kernels: a single `y += c · row` axpy, portable
/// and AVX2. This is all the frozen forward needs — the gather, the dense
/// matrix–vector product, and the pooled accumulation are all row-axpy
/// shaped.
pub mod kernels {
    /// `y[j] += c · row[j]`, runtime-dispatched. Each output element takes
    /// exactly one separately-rounded multiply and add, so the AVX2 and
    /// portable variants are bit-identical by construction.
    #[inline]
    pub fn axpy(c: f32, row: &[f32], y: &mut [f32]) {
        debug_assert_eq!(row.len(), y.len());
        #[cfg(target_arch = "x86_64")]
        if row.len() >= x86::LANES && std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { x86::axpy_avx2(c, row, y) };
            return;
        }
        axpy_portable(c, row, y);
    }

    /// Portable fallback — the oracle the AVX2 variant is pinned against.
    #[inline]
    pub fn axpy_portable(c: f32, row: &[f32], y: &mut [f32]) {
        for (o, &v) in y.iter_mut().zip(row) {
            *o += c * v;
        }
    }

    /// 8-lane AVX2 axpy, living next to the 4×16 training kernels in
    /// [`crate::tensor`]. Same determinism rules: separate multiply and
    /// add (never `vfmadd`), one output element per lane.
    #[cfg(target_arch = "x86_64")]
    pub mod x86 {
        use std::arch::x86_64::{
            _mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps, _mm256_storeu_ps,
        };

        /// Vector width: one 8-lane f32 register.
        pub const LANES: usize = 8;

        /// AVX2 `y += c · row`; see [`super::axpy`].
        ///
        /// # Safety
        /// The CPU must support AVX2.
        #[target_feature(enable = "avx2")]
        pub unsafe fn axpy_avx2(c: f32, row: &[f32], y: &mut [f32]) {
            let n = row.len().min(y.len());
            let cv = _mm256_set1_ps(c);
            let rp = row.as_ptr();
            let yp = y.as_mut_ptr();
            let mut j = 0;
            // Two independent 8-lane vectors per iteration.
            while j + 2 * LANES <= n {
                let y0 = _mm256_loadu_ps(yp.add(j));
                let y1 = _mm256_loadu_ps(yp.add(j + LANES));
                let r0 = _mm256_loadu_ps(rp.add(j));
                let r1 = _mm256_loadu_ps(rp.add(j + LANES));
                _mm256_storeu_ps(yp.add(j), _mm256_add_ps(y0, _mm256_mul_ps(cv, r0)));
                _mm256_storeu_ps(yp.add(j + LANES), _mm256_add_ps(y1, _mm256_mul_ps(cv, r1)));
                j += 2 * LANES;
            }
            while j + LANES <= n {
                let yv = _mm256_loadu_ps(yp.add(j));
                let rv = _mm256_loadu_ps(rp.add(j));
                _mm256_storeu_ps(yp.add(j), _mm256_add_ps(yv, _mm256_mul_ps(cv, rv)));
                j += LANES;
            }
            // Scalar remainder, same one-mul-one-add rounding.
            while j < n {
                *yp.add(j) += c * *rp.add(j);
                j += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    fn linear(in_dim: usize, out_dim: usize, seed: u64) -> Linear {
        let mut s = seed | 1;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 40) as f32 / (1u64 << 24) as f32) - 0.5
        };
        let w = Tensor::from_vec(
            in_dim,
            out_dim,
            (0..in_dim * out_dim).map(|_| next()).collect(),
        );
        let b = (0..out_dim).map(|_| next()).collect();
        Linear::from_params(w, b)
    }

    #[test]
    fn axpy_avx2_matches_portable_oracle() {
        for n in [1usize, 7, 8, 9, 16, 17, 31, 64, 129] {
            let row: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37 - 3.0).sin()).collect();
            let mut fast: Vec<f32> = (0..n).map(|i| i as f32 * 0.01 - 0.5).collect();
            let mut slow = fast.clone();
            kernels::axpy(0.73, &row, &mut fast);
            kernels::axpy_portable(0.73, &row, &mut slow);
            assert_eq!(fast, slow, "n={n}");
        }
    }

    #[test]
    fn f32_freeze_preserves_weights_exactly() {
        let l = linear(5, 9, 0xF0);
        let f = FrozenLinear::from_linear(&l, QuantMode::F32);
        assert_eq!(f.in_dim(), 5);
        assert_eq!(f.out_dim(), 9);
        for r in 0..5 {
            for c in 0..9 {
                assert_eq!(f.weight(r, c), l.weights().get(r, c));
            }
        }
    }

    #[test]
    fn int8_quantization_error_is_bounded_by_half_a_step() {
        let l = linear(12, 33, 0x18);
        let f = FrozenLinear::from_linear(&l, QuantMode::Int8);
        for r in 0..12 {
            let row = &l.weights().data()[r * 33..(r + 1) * 33];
            let max = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let step = max / 127.0;
            for c in 0..33 {
                let err = (f.weight(r, c) - l.weights().get(r, c)).abs();
                assert!(err <= step * 0.5 + 1e-7, "r={r} c={c} err={err}");
            }
        }
    }

    #[test]
    fn forward_vec_matches_manual_dot() {
        let l = linear(4, 3, 0x7);
        let f = FrozenLinear::from_linear(&l, QuantMode::F32);
        let x = [0.5f32, 0.0, -1.25, 2.0];
        let mut y = [0.0f32; 3];
        f.forward_vec(&x, &mut y);
        for (j, &got) in y.iter().enumerate() {
            let mut want = 0.0f32;
            for (p, &xv) in x.iter().enumerate() {
                if xv != 0.0 {
                    want += xv * l.weights().get(p, j);
                }
            }
            want += l.bias()[j];
            assert_eq!(got, want, "j={j}");
        }
    }

    fn tiny_model(mode: QuantMode) -> FrozenModel {
        let h = 6;
        FrozenModel::new(
            FrozenLinear::from_linear(&linear(10, h, 1), mode),
            FrozenLinear::from_linear(&linear(h, h, 2), mode),
            FrozenLinear::from_linear(&linear(4, h, 3), mode),
            FrozenLinear::from_linear(&linear(h, h, 4), mode),
            FrozenLinear::from_linear(&linear(7, h, 5), mode),
            FrozenLinear::from_linear(&linear(h, h, 6), mode),
            FrozenLinear::from_linear(&linear(3 * h, h, 7), mode),
            FrozenLinear::from_linear(&linear(h, 1, 8), mode),
        )
    }

    fn demo_sets() -> (IndexSet, IndexSet, IndexSet) {
        let mut tables = IndexSet::default();
        let e = tables.begin_elem();
        tables.push(1, 1.0);
        tables.push(4, 1.0);
        tables.finish_elem(e);
        let e = tables.begin_elem();
        tables.push(0, 1.0);
        tables.finish_elem(e);
        let mut joins = IndexSet::default();
        let e = joins.begin_elem();
        joins.push(2, 1.0);
        joins.finish_elem(e);
        let mut preds = IndexSet::default();
        let e = preds.begin_elem();
        preds.push(0, 1.0);
        preds.push(5, 1.0);
        preds.push(6, 0.625);
        preds.finish_elem(e);
        (tables, joins, preds)
    }

    #[test]
    fn forward_query_is_deterministic_and_in_range() {
        let m = tiny_model(QuantMode::F32);
        let (t, j, p) = demo_sets();
        let mut scratch = FrozenScratch::new();
        let a = m.forward_query(&t, &j, &p, &mut scratch);
        let b = m.forward_query(&t, &j, &p, &mut scratch);
        assert_eq!(a.to_bits(), b.to_bits(), "scratch reuse must not leak");
        assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn empty_sets_pool_to_zero_like_the_masked_mean() {
        let m = tiny_model(QuantMode::F32);
        let (t, _, p) = demo_sets();
        let empty = IndexSet::default();
        let mut scratch = FrozenScratch::new();
        // An all-empty query still produces a finite sigmoid output driven
        // purely by the output-MLP biases.
        let v = m.forward_query(&empty, &empty, &empty, &mut scratch);
        assert!(v.is_finite());
        // And an empty join set alongside populated sets is fine too.
        let v2 = m.forward_query(&t, &empty, &p, &mut scratch);
        assert!((0.0..=1.0).contains(&v2));
    }

    #[test]
    fn int8_forward_tracks_f32_forward() {
        let f32m = tiny_model(QuantMode::F32);
        let i8m = tiny_model(QuantMode::Int8);
        let (t, j, p) = demo_sets();
        let mut scratch = FrozenScratch::new();
        let exact = f32m.forward_query(&t, &j, &p, &mut scratch);
        let quant = i8m.forward_query(&t, &j, &p, &mut scratch);
        assert!(
            (exact - quant).abs() < 0.05,
            "int8 drifted: {exact} vs {quant}"
        );
    }

    #[test]
    fn encode_decode_roundtrip_both_modes() {
        for mode in [QuantMode::F32, QuantMode::Int8] {
            let m = tiny_model(mode);
            let mut e = Encoder::new();
            e.header(b"TEST", 1);
            m.encode_into(&mut e);
            let bytes = e.finish();
            let mut d = Decoder::new(&bytes);
            d.header(b"TEST").unwrap();
            let back = FrozenModel::decode_from(&mut d).unwrap();
            assert!(d.is_done());
            assert_eq!(back, m);
            let (t, j, p) = demo_sets();
            let mut scratch = FrozenScratch::new();
            assert_eq!(
                m.forward_query(&t, &j, &p, &mut scratch).to_bits(),
                back.forward_query(&t, &j, &p, &mut scratch).to_bits()
            );
        }
    }

    #[test]
    fn decode_rejects_unknown_mode_and_bad_shapes() {
        assert!(QuantMode::from_u64(7).is_err());
        let m = tiny_model(QuantMode::F32);
        let mut e = Encoder::new();
        e.header(b"TEST", 1);
        m.encode_into(&mut e);
        let bytes = e.finish();
        // Flip the mode word to Int8 while the payload stays f32: the
        // layer lengths no longer match and decode must reject, not read
        // out of bounds.
        let mut bad = bytes.clone();
        bad[8] = 1;
        let mut d = Decoder::new(&bad);
        d.header(b"TEST").unwrap();
        assert!(FrozenModel::decode_from(&mut d).is_err());
        // Truncation is an error, not a panic.
        let mut d = Decoder::new(&bytes[..bytes.len() / 2]);
        d.header(b"TEST").unwrap();
        assert!(FrozenModel::decode_from(&mut d).is_err());
    }
}
