//! Row-major `f32` matrices and the linear-algebra kernels used in training.

/// A dense row-major matrix of `f32`. A "vector" is a 1×n or n×1 tensor.
///
/// ```
/// use ds_nn::tensor::Tensor;
/// let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
/// let b = Tensor::from_vec(3, 1, vec![1., 0., 1.]);
/// assert_eq!(a.matmul(&b).data(), &[4., 10.]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// All-zero tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a tensor from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self · other` — (m×k)·(k×n) = m×n, cache-friendly ikj loop.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(m, n);
        for i in 0..m {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (p, &a) in a_row.iter().enumerate().take(k) {
                if a == 0.0 {
                    continue; // one-hot/bitmap features are mostly zero
                }
                let b_row = &other.data[p * n..(p + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ · other` — (m×k)ᵀ·(m×n) = k×n. Used for weight gradients.
    pub fn t_matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rows, other.rows, "t_matmul dimension mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(k, n);
        for i in 0..m {
            let a_row = self.row(i);
            let b_row = other.row(i);
            for (p, &a) in a_row.iter().enumerate().take(k) {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[p * n..(p + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` — (m×k)·(n×k)ᵀ = m×n. Used for input gradients.
    pub fn matmul_t(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.cols, "matmul_t dimension mismatch");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Tensor::zeros(m, n);
        for i in 0..m {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * n..(i + 1) * n];
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                *o = acc;
            }
        }
        out
    }

    /// Adds `vec` (length = cols) to every row — bias broadcast.
    pub fn add_row_broadcast(&mut self, vec: &[f32]) {
        assert_eq!(vec.len(), self.cols, "broadcast length mismatch");
        for r in 0..self.rows {
            for (o, &v) in self.row_mut(r).iter_mut().zip(vec) {
                *o += v;
            }
        }
    }

    /// Column sums — gradient of a bias broadcast.
    pub fn col_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Explicit transpose (rows ↔ cols).
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Elementwise scaling in place.
    pub fn scale(&mut self, factor: f32) {
        for v in &mut self.data {
            *v *= factor;
        }
    }

    /// Elementwise addition: `self += other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.rows, other.rows, "add_assign shape mismatch");
        assert_eq!(self.cols, other.cols, "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// A new tensor with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|&v| v * v).sum::<f32>().sqrt()
    }

    /// Concatenates tensors horizontally (same row count).
    pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat of nothing");
        let rows = parts[0].rows;
        assert!(
            parts.iter().all(|p| p.rows == rows),
            "row count mismatch in concat"
        );
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        let mut out = Tensor::zeros(rows, cols);
        for r in 0..rows {
            let mut off = 0;
            for p in parts {
                out.row_mut(r)[off..off + p.cols].copy_from_slice(p.row(r));
                off += p.cols;
            }
        }
        out
    }

    /// Splits a tensor into horizontal blocks of the given widths — the
    /// backward of [`Tensor::concat_cols`].
    pub fn split_cols(&self, widths: &[usize]) -> Vec<Tensor> {
        assert_eq!(widths.iter().sum::<usize>(), self.cols, "split widths");
        let mut out = Vec::with_capacity(widths.len());
        let mut off = 0;
        for &w in widths {
            let mut t = Tensor::zeros(self.rows, w);
            for r in 0..self.rows {
                t.row_mut(r).copy_from_slice(&self.row(r)[off..off + w]);
            }
            out.push(t);
            off += w;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: usize, cols: usize, v: &[f32]) -> Tensor {
        Tensor::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_small_known() {
        let a = t(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = t(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_skips_zero_rows_correctly() {
        let a = t(1, 3, &[0., 2., 0.]);
        let b = t(3, 2, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.matmul(&b).data(), &[6., 8.]);
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = t(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let b = t(3, 2, &[1., 0., 0., 1., 1., 1.]);
        // aᵀ·b where aᵀ is 2×3.
        let c = a.t_matmul(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        // aᵀ = [[1,3,5],[2,4,6]]; aᵀ·b = [[1+0+5, 0+3+5],[2+0+6, 0+4+6]]
        assert_eq!(c.data(), &[6., 8., 8., 10.]);
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = t(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = t(2, 3, &[1., 1., 1., 2., 0., 1.]);
        // a·bᵀ: 2×2
        let c = a.matmul_t(&b);
        assert_eq!(c.data(), &[6., 5., 15., 14.]);
    }

    #[test]
    fn transposed_products_agree_with_plain_matmul() {
        // Random-ish data: verify t_matmul(a, b) == transpose(a) · b.
        let a = t(4, 3, &(0..12).map(|i| (i as f32) * 0.5 - 2.0).collect::<Vec<_>>());
        let b = t(4, 2, &(0..8).map(|i| (i as f32) * 0.25 + 1.0).collect::<Vec<_>>());
        let mut at = Tensor::zeros(3, 4);
        for r in 0..4 {
            for c in 0..3 {
                at.set(c, r, a.get(r, c));
            }
        }
        assert_eq!(a.t_matmul(&b), at.matmul(&b));

        let mut bt = Tensor::zeros(2, 4);
        for r in 0..4 {
            for c in 0..2 {
                bt.set(c, r, b.get(r, c));
            }
        }
        // a is 4×3; matmul_t needs matching cols: use (4×3)·(2×3)ᵀ
        let b2 = t(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let mut b2t = Tensor::zeros(3, 2);
        for r in 0..2 {
            for c in 0..3 {
                b2t.set(c, r, b2.get(r, c));
            }
        }
        assert_eq!(a.matmul_t(&b2), a.matmul(&b2t));
    }

    #[test]
    fn broadcast_and_col_sums_are_inverse_shapes() {
        let mut a = Tensor::zeros(3, 2);
        a.add_row_broadcast(&[1.0, -2.0]);
        assert_eq!(a.data(), &[1., -2., 1., -2., 1., -2.]);
        assert_eq!(a.col_sums(), vec![3.0, -6.0]);
    }

    #[test]
    fn concat_split_roundtrip() {
        let a = t(2, 2, &[1., 2., 3., 4.]);
        let b = t(2, 1, &[9., 8.]);
        let c = Tensor::concat_cols(&[&a, &b]);
        assert_eq!(c.cols(), 3);
        assert_eq!(c.row(0), &[1., 2., 9.]);
        let parts = c.split_cols(&[2, 1]);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        t(2, 3, &[0.; 6]).matmul(&t(2, 2, &[0.; 4]));
    }

    #[test]
    fn transpose_involution_and_matmul_identity() {
        let a = t(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let at = a.transpose();
        assert_eq!(at.rows(), 3);
        assert_eq!(at.get(0, 1), 4.0);
        assert_eq!(at.transpose(), a);
        // a·b == (bᵀ·aᵀ)ᵀ
        let b = t(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let lhs = a.matmul(&b);
        let rhs = b.transpose().matmul(&a.transpose()).transpose();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn scale_add_map_norm() {
        let mut a = t(1, 3, &[1., -2., 2.]);
        a.scale(2.0);
        assert_eq!(a.data(), &[2., -4., 4.]);
        a.add_assign(&t(1, 3, &[1., 1., 1.]));
        assert_eq!(a.data(), &[3., -3., 5.]);
        let abs = a.map(f32::abs);
        assert_eq!(abs.data(), &[3., 3., 5.]);
        assert!((t(1, 2, &[3., 4.]).frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "add_assign shape mismatch")]
    fn add_assign_rejects_mismatch() {
        let mut a = Tensor::zeros(1, 2);
        a.add_assign(&Tensor::zeros(2, 1));
    }

    #[test]
    fn row_accessors() {
        let mut a = t(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.row(1), &[4., 5., 6.]);
        a.row_mut(0)[2] = 9.;
        assert_eq!(a.get(0, 2), 9.);
    }
}
