//! Row-major `f32` matrices and the linear-algebra kernels used in training.
//!
//! The three matmul variants run register-blocked tiled micro-kernels with
//! optional deterministic row-range parallelism (see [`crate::pool`]). Every
//! output element accumulates its reduction dimension in strictly ascending
//! order, so the tiled, parallel, and naive reference kernels agree to exact
//! `f32` equality at any thread count.

use crate::pool::{self, PoolConfig};

/// Which inner matmul path to run — selected per call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Kernel {
    /// Register-blocked dense tiles; the default for hidden layers.
    #[default]
    Dense,
    /// Zero-skipping row sweep for the one-hot/bitmap input layer, where
    /// most left-operand entries are exactly `0.0`.
    Sparse,
}

/// A dense row-major matrix of `f32`. A "vector" is a 1×n or n×1 tensor.
///
/// ```
/// use ds_nn::tensor::Tensor;
/// let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
/// let b = Tensor::from_vec(3, 1, vec![1., 0., 1.]);
/// assert_eq!(a.matmul(&b).data(), &[4., 10.]);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tensor {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor {
    /// All-zero tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a tensor from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Reshapes to `rows × cols` zero-filled, reusing the allocation. The
    /// workhorse of the scratch-buffer arenas: repeated kernel calls into
    /// the same tensor allocate only on first use.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// `self · other` — (m×k)·(k×n) = m×n.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        self.matmul_pool(other, Kernel::Dense, PoolConfig::single())
    }

    /// [`Tensor::matmul`] with an explicit kernel and thread pool.
    pub fn matmul_pool(&self, other: &Tensor, kernel: Kernel, pool: PoolConfig) -> Tensor {
        let mut out = Tensor::zeros(0, 0);
        self.matmul_into(other, kernel, pool, &mut out);
        out
    }

    /// [`Tensor::matmul`] into a reusable output tensor (resized in place).
    pub fn matmul_into(&self, other: &Tensor, kernel: Kernel, pool: PoolConfig, out: &mut Tensor) {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        out.resize(m, n);
        let threads = pool.threads_for(m, m * k * n);
        let (a, b) = (&self.data[..], &other.data[..]);
        pool::for_each_row_block(&mut out.data, m, n, threads, |r0, rows| match kernel {
            Kernel::Dense => matmul_rows_dense(a, b, k, n, r0, rows),
            Kernel::Sparse => matmul_rows_sparse(a, b, k, n, r0, rows),
        });
    }

    /// `selfᵀ · other` — (m×k)ᵀ·(m×n) = k×n. Used for weight gradients.
    pub fn t_matmul(&self, other: &Tensor) -> Tensor {
        self.t_matmul_pool(other, Kernel::Dense, PoolConfig::single())
    }

    /// [`Tensor::t_matmul`] with an explicit kernel and thread pool.
    pub fn t_matmul_pool(&self, other: &Tensor, kernel: Kernel, pool: PoolConfig) -> Tensor {
        let mut out = Tensor::zeros(0, 0);
        self.t_matmul_into(other, kernel, pool, &mut out);
        out
    }

    /// [`Tensor::t_matmul`] into a reusable output tensor.
    pub fn t_matmul_into(
        &self,
        other: &Tensor,
        kernel: Kernel,
        pool: PoolConfig,
        out: &mut Tensor,
    ) {
        assert_eq!(self.rows, other.rows, "t_matmul dimension mismatch");
        let (m, k, n) = (self.rows, self.cols, other.cols);
        out.resize(k, n);
        let threads = pool.threads_for(k, m * k * n);
        let (a, b) = (&self.data[..], &other.data[..]);
        pool::for_each_row_block(&mut out.data, k, n, threads, |p0, rows| match kernel {
            Kernel::Dense => t_matmul_rows_dense(a, b, m, k, n, p0, rows),
            Kernel::Sparse => t_matmul_rows_sparse(a, b, k, n, p0, rows),
        });
    }

    /// `self · otherᵀ` — (m×k)·(n×k)ᵀ = m×n. Used for input gradients.
    pub fn matmul_t(&self, other: &Tensor) -> Tensor {
        self.matmul_t_pool(other, PoolConfig::single())
    }

    /// [`Tensor::matmul_t`] with an explicit thread pool. (Both operands of
    /// an input-gradient product are dense, so there is no sparse path.)
    pub fn matmul_t_pool(&self, other: &Tensor, pool: PoolConfig) -> Tensor {
        let mut out = Tensor::zeros(0, 0);
        self.matmul_t_into(other, pool, &mut out);
        out
    }

    /// [`Tensor::matmul_t`] into a reusable output tensor.
    ///
    /// Transposes `other` into a scratch buffer first: a plain
    /// contiguous-by-contiguous dot is a sequential reduction the compiler
    /// must not reorder (and therefore cannot vectorize), while the
    /// transposed form reuses the register-tiled [`Tensor::matmul`] kernel,
    /// which vectorizes across output columns. Every output element is
    /// still the same single accumulator summed in ascending `k` order, so
    /// the result is bit-identical. The scratch is one weight matrix —
    /// noise next to the m×k×n product it unlocks.
    pub fn matmul_t_into(&self, other: &Tensor, pool: PoolConfig, out: &mut Tensor) {
        assert_eq!(self.cols, other.cols, "matmul_t dimension mismatch");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        out.resize(m, n);
        let mut bt = vec![0.0f32; k * n];
        for (j, b_row) in other.data.chunks_exact(k.max(1)).enumerate() {
            for (p, &v) in b_row.iter().enumerate() {
                bt[p * n + j] = v;
            }
        }
        let threads = pool.threads_for(m, m * k * n);
        let (a, b) = (&self.data[..], &bt[..]);
        pool::for_each_row_block(&mut out.data, m, n, threads, |r0, rows| {
            matmul_rows_dense(a, b, k, n, r0, rows)
        });
    }

    /// Adds `vec` (length = cols) to every row — bias broadcast.
    pub fn add_row_broadcast(&mut self, vec: &[f32]) {
        assert_eq!(vec.len(), self.cols, "broadcast length mismatch");
        for r in 0..self.rows {
            for (o, &v) in self.row_mut(r).iter_mut().zip(vec) {
                *o += v;
            }
        }
    }

    /// Column sums — gradient of a bias broadcast.
    pub fn col_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, &v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Explicit transpose (rows ↔ cols).
    pub fn transpose(&self) -> Tensor {
        let mut out = Tensor::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Elementwise scaling in place.
    pub fn scale(&mut self, factor: f32) {
        for v in &mut self.data {
            *v *= factor;
        }
    }

    /// Elementwise addition: `self += other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.rows, other.rows, "add_assign shape mismatch");
        assert_eq!(self.cols, other.cols, "add_assign shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// A new tensor with `f` applied to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|&v| v * v).sum::<f32>().sqrt()
    }

    /// Concatenates tensors horizontally (same row count).
    pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
        let mut out = Tensor::zeros(0, 0);
        Self::concat_cols_into(parts, &mut out);
        out
    }

    /// [`Tensor::concat_cols`] into a reusable output tensor.
    pub fn concat_cols_into(parts: &[&Tensor], out: &mut Tensor) {
        assert!(!parts.is_empty(), "concat of nothing");
        let rows = parts[0].rows;
        assert!(
            parts.iter().all(|p| p.rows == rows),
            "row count mismatch in concat"
        );
        let cols: usize = parts.iter().map(|p| p.cols).sum();
        out.resize(rows, cols);
        for r in 0..rows {
            let mut off = 0;
            for p in parts {
                out.row_mut(r)[off..off + p.cols].copy_from_slice(p.row(r));
                off += p.cols;
            }
        }
    }

    /// Splits a tensor into horizontal blocks of the given widths — the
    /// backward of [`Tensor::concat_cols`].
    pub fn split_cols(&self, widths: &[usize]) -> Vec<Tensor> {
        let mut out: Vec<Tensor> = widths.iter().map(|_| Tensor::zeros(0, 0)).collect();
        self.split_cols_into(widths, &mut out);
        out
    }

    /// [`Tensor::split_cols`] into reusable output tensors.
    pub fn split_cols_into(&self, widths: &[usize], outs: &mut [Tensor]) {
        assert_eq!(widths.iter().sum::<usize>(), self.cols, "split widths");
        assert_eq!(widths.len(), outs.len(), "split output count");
        let mut off = 0;
        for (&w, t) in widths.iter().zip(outs.iter_mut()) {
            t.resize(self.rows, w);
            for r in 0..self.rows {
                t.row_mut(r).copy_from_slice(&self.row(r)[off..off + w]);
            }
            off += w;
        }
    }
}

// --- register-blocked micro-kernels -------------------------------------
//
// All kernels share one determinism contract: each output element is owned
// by exactly one (tile, lane) and accumulates its reduction dimension in
// strictly ascending order into a dedicated f32 accumulator. Tiling only
// partitions the *output* — it never reorders a reduction — so the tiled,
// edge, sparse, and reference paths produce bit-identical results. The
// sparse path skips `a == 0.0` terms; adding `±0.0` to a finite running
// sum that started at `+0.0` cannot change its bits, so even that is
// exact.

/// Output-row tile height of the dense micro-kernels.
const MR: usize = 4;
/// Output-column tile width of the dense `matmul` micro-kernel.
const NR: usize = 8;

/// Dense `a[r0.., :k] · b[k×n]` into `out` (rows `r0..r0+out.len()/n`).
///
/// Dispatches to the 8-wide AVX2 micro-kernel when the CPU has it and the
/// shape is wide enough to use full vectors; the portable kernel is the
/// fallback. Both compute every output element as the same p-ascending
/// single-accumulator sum, so the choice never changes a single bit.
fn matmul_rows_dense(a: &[f32], b: &[f32], k: usize, n: usize, r0: usize, out: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if n >= x86::NW && std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was just verified at runtime.
        unsafe { x86::matmul_rows_dense_avx2(a, b, k, n, r0, out) };
        return;
    }
    matmul_rows_dense_portable(a, b, k, n, r0, out)
}

/// Portable (autovectorizing) dense matmul micro-kernel.
fn matmul_rows_dense_portable(
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    r0: usize,
    out: &mut [f32],
) {
    let rows = out.len() / n.max(1);
    let mut r = 0;
    while r + MR <= rows {
        let ar = &a[(r0 + r) * k..];
        let mut j = 0;
        while j + NR <= n {
            // 4×8 register tile: 32 independent accumulators, each summing
            // its own dot product with p ascending. The branch-free body
            // autovectorizes to fused mul-add lanes over `bp`.
            let mut acc = [[0.0f32; NR]; MR];
            for p in 0..k {
                let bp = &b[p * n + j..p * n + j + NR];
                let av = [ar[p], ar[k + p], ar[2 * k + p], ar[3 * k + p]];
                for (accr, &arv) in acc.iter_mut().zip(&av) {
                    for (o, &bv) in accr.iter_mut().zip(bp) {
                        *o += arv * bv;
                    }
                }
            }
            for (i, accr) in acc.iter().enumerate() {
                out[(r + i) * n + j..(r + i) * n + j + NR].copy_from_slice(accr);
            }
            j += NR;
        }
        // Column remainder: one accumulator per element, same p order.
        for jj in j..n {
            let mut acc = [0.0f32; MR];
            for p in 0..k {
                let bv = b[p * n + jj];
                for (o, i) in acc.iter_mut().zip(0..MR) {
                    *o += ar[i * k + p] * bv;
                }
            }
            for (i, &v) in acc.iter().enumerate() {
                out[(r + i) * n + jj] = v;
            }
        }
        r += MR;
    }
    // Row remainder: plain per-element dot products, p ascending.
    for rr in r..rows {
        let ar = &a[(r0 + rr) * k..(r0 + rr) * k + k];
        for jj in 0..n {
            let mut acc = 0.0f32;
            for (p, &av) in ar.iter().enumerate() {
                acc += av * b[p * n + jj];
            }
            out[rr * n + jj] = acc;
        }
    }
}

/// Sparse (zero-skipping) `a[r0.., :k] · b[k×n]` — the input-layer fast
/// path, where `a` rows are one-hot/bitmap features that are mostly zero.
fn matmul_rows_sparse(a: &[f32], b: &[f32], k: usize, n: usize, r0: usize, out: &mut [f32]) {
    for (r, out_row) in out.chunks_mut(n.max(1)).enumerate() {
        let a_row = &a[(r0 + r) * k..(r0 + r) * k + k];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Dense `aᵀ[p0.., :] · b` into `out` (rows `p0..` of the k×n result).
/// `a` is m×k, `b` is m×n; the reduction runs over `i` ascending.
fn t_matmul_rows_dense(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    p0: usize,
    out: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    if n >= x86::NW && std::arch::is_x86_feature_detected!("avx2") {
        // SAFETY: AVX2 support was just verified at runtime.
        unsafe { x86::t_matmul_rows_dense_avx2(a, b, m, k, n, p0, out) };
        return;
    }
    t_matmul_rows_dense_portable(a, b, m, k, n, p0, out)
}

/// Portable (autovectorizing) dense `aᵀ · b` micro-kernel.
fn t_matmul_rows_dense_portable(
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    p0: usize,
    out: &mut [f32],
) {
    let rows = out.len() / n.max(1);
    let mut p = 0;
    while p + MR <= rows {
        // 4 output rows at once: every b-row load is shared by 4 lanes.
        let (o0, rest) = out[p * n..].split_at_mut(n);
        let (o1, rest) = rest.split_at_mut(n);
        let (o2, o3) = rest.split_at_mut(n);
        let o3 = &mut o3[..n];
        for i in 0..m {
            let ai = &a[i * k..];
            let av = [ai[p0 + p], ai[p0 + p + 1], ai[p0 + p + 2], ai[p0 + p + 3]];
            let b_row = &b[i * n..(i + 1) * n];
            for (j, &bv) in b_row.iter().enumerate() {
                o0[j] += av[0] * bv;
                o1[j] += av[1] * bv;
                o2[j] += av[2] * bv;
                o3[j] += av[3] * bv;
            }
        }
        p += MR;
    }
    for pp in p..rows {
        let out_row = &mut out[pp * n..(pp + 1) * n];
        for i in 0..m {
            let av = a[i * k + p0 + pp];
            let b_row = &b[i * n..(i + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Sparse `aᵀ[p0.., :] · b` — skips `a[i][p] == 0` terms. Used when the
/// forward input was one-hot/bitmap (input-layer weight gradients).
fn t_matmul_rows_sparse(a: &[f32], b: &[f32], k: usize, n: usize, p0: usize, out: &mut [f32]) {
    let rows = out.len() / n.max(1);
    let m = a.len() / k.max(1);
    for i in 0..m {
        let ai = &a[i * k + p0..i * k + p0 + rows];
        let b_row = &b[i * n..(i + 1) * n];
        for (pp, &av) in ai.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let out_row = &mut out[pp * n..(pp + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
}

/// Explicit AVX2 variants of the dense micro-kernels, selected at runtime.
///
/// Determinism contract: a vector lane is one output column, so each output
/// element still accumulates its reduction in the same ascending order into
/// its own `f32` slot, and multiply/add stay two separate (individually
/// rounded) instructions — never a fused `vfmadd` — so these produce
/// bit-identical results to the portable kernels at twice the width the
/// autovectorizer reaches against the baseline x86-64 target.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::{
        __m256, _mm256_add_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_set1_ps, _mm256_setzero_ps,
        _mm256_storeu_ps,
    };

    use super::MR;

    /// Output-column tile width: two 8-lane vectors per accumulator row.
    pub(super) const NW: usize = 16;

    #[inline(always)]
    unsafe fn mul_acc(acc: __m256, av: __m256, bv: __m256) -> __m256 {
        _mm256_add_ps(acc, _mm256_mul_ps(av, bv))
    }

    /// AVX2 `a[r0.., :k] · b[k×n]`; see [`super::matmul_rows_dense`].
    ///
    /// # Safety
    /// The CPU must support AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn matmul_rows_dense_avx2(
        a: &[f32],
        b: &[f32],
        k: usize,
        n: usize,
        r0: usize,
        out: &mut [f32],
    ) {
        let rows = out.len() / n.max(1);
        let n_main = n - n % NW;
        let bp0 = b.as_ptr();
        let mut r = 0;
        while r + MR <= rows {
            let ar = a[(r0 + r) * k..].as_ptr();
            let mut j = 0;
            while j < n_main {
                // 4×16 register tile: 8 vector accumulators (64 output
                // elements), each lane summing its own dot with p ascending.
                let mut acc = [[_mm256_setzero_ps(); 2]; MR];
                for p in 0..k {
                    let b0 = _mm256_loadu_ps(bp0.add(p * n + j));
                    let b1 = _mm256_loadu_ps(bp0.add(p * n + j + 8));
                    for (i, lane) in acc.iter_mut().enumerate() {
                        let av = _mm256_set1_ps(*ar.add(i * k + p));
                        lane[0] = mul_acc(lane[0], av, b0);
                        lane[1] = mul_acc(lane[1], av, b1);
                    }
                }
                for (i, lane) in acc.iter().enumerate() {
                    let op = out.as_mut_ptr().add((r + i) * n + j);
                    _mm256_storeu_ps(op, lane[0]);
                    _mm256_storeu_ps(op.add(8), lane[1]);
                }
                j += NW;
            }
            // Column remainder: scalar accumulators, same p order.
            for jj in j..n {
                let mut acc = [0.0f32; MR];
                for p in 0..k {
                    let bv = b[p * n + jj];
                    for (i, o) in acc.iter_mut().enumerate() {
                        *o += *ar.add(i * k + p) * bv;
                    }
                }
                for (i, &v) in acc.iter().enumerate() {
                    out[(r + i) * n + jj] = v;
                }
            }
            r += MR;
        }
        // Row remainder: plain per-element dot products, p ascending.
        for rr in r..rows {
            let a_row = &a[(r0 + rr) * k..(r0 + rr) * k + k];
            for jj in 0..n {
                let mut acc = 0.0f32;
                for (p, &av) in a_row.iter().enumerate() {
                    acc += av * b[p * n + jj];
                }
                out[rr * n + jj] = acc;
            }
        }
    }

    /// AVX2 `aᵀ[p0.., :] · b`; see [`super::t_matmul_rows_dense`].
    ///
    /// # Safety
    /// The CPU must support AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn t_matmul_rows_dense_avx2(
        a: &[f32],
        b: &[f32],
        m: usize,
        k: usize,
        n: usize,
        p0: usize,
        out: &mut [f32],
    ) {
        let rows = out.len() / n.max(1);
        let n_main = n - n % NW;
        let (ap0, bp0) = (a.as_ptr(), b.as_ptr());
        let mut p = 0;
        while p + MR <= rows {
            let mut j = 0;
            while j < n_main {
                // Same 4×16 tile as the matmul kernel; the four `a` values
                // per step are contiguous (`a[i][p0+p..+4]`), the reduction
                // runs over `i` ascending.
                let mut acc = [[_mm256_setzero_ps(); 2]; MR];
                for i in 0..m {
                    let b0 = _mm256_loadu_ps(bp0.add(i * n + j));
                    let b1 = _mm256_loadu_ps(bp0.add(i * n + j + 8));
                    let av = ap0.add(i * k + p0 + p);
                    for (lane_i, lane) in acc.iter_mut().enumerate() {
                        let av = _mm256_set1_ps(*av.add(lane_i));
                        lane[0] = mul_acc(lane[0], av, b0);
                        lane[1] = mul_acc(lane[1], av, b1);
                    }
                }
                for (lane_i, lane) in acc.iter().enumerate() {
                    let op = out.as_mut_ptr().add((p + lane_i) * n + j);
                    _mm256_storeu_ps(op, lane[0]);
                    _mm256_storeu_ps(op.add(8), lane[1]);
                }
                j += NW;
            }
            // Column remainder: scalar accumulators, same i order.
            for jj in j..n {
                let mut acc = [0.0f32; MR];
                for i in 0..m {
                    let bv = b[i * n + jj];
                    for (lane_i, o) in acc.iter_mut().enumerate() {
                        *o += *ap0.add(i * k + p0 + p + lane_i) * bv;
                    }
                }
                for (lane_i, &v) in acc.iter().enumerate() {
                    out[(p + lane_i) * n + jj] = v;
                }
            }
            p += MR;
        }
        // Row remainder: i-ascending axpy into the (zeroed) output row.
        for pp in p..rows {
            let out_row = &mut out[pp * n..(pp + 1) * n];
            for i in 0..m {
                let av = a[i * k + p0 + pp];
                let b_row = &b[i * n..(i + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
    }
}

/// The original naive kernels, kept verbatim as the oracle for the
/// property tests in `tests/kernel_properties.rs` — the tiled/parallel
/// paths must agree with these to exact f32 equality.
#[doc(hidden)]
pub mod reference {
    use super::Tensor;

    /// Naive `a · b` with the zero-skip inner loop the crate shipped with.
    pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
        assert_eq!(a.cols(), b.rows(), "matmul dimension mismatch");
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut out = Tensor::zeros(m, n);
        for i in 0..m {
            let a_row = a.row(i);
            let out_row = &mut out.data_mut()[i * n..(i + 1) * n];
            for (p, &av) in a_row.iter().enumerate().take(k) {
                if av == 0.0 {
                    continue;
                }
                let b_row = &b.data()[p * n..(p + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    /// Naive `aᵀ · b`.
    pub fn t_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        assert_eq!(a.rows(), b.rows(), "t_matmul dimension mismatch");
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut out = Tensor::zeros(k, n);
        for i in 0..m {
            let a_row = &a.data()[i * k..(i + 1) * k];
            let b_row = &b.data()[i * n..(i + 1) * n];
            for (p, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[p * n..(p + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
        out
    }

    /// Naive `a · bᵀ`.
    pub fn matmul_t(a: &Tensor, b: &Tensor) -> Tensor {
        assert_eq!(a.cols(), b.cols(), "matmul_t dimension mismatch");
        let (m, k, n) = (a.rows(), a.cols(), b.rows());
        let mut out = Tensor::zeros(m, n);
        for i in 0..m {
            let a_row = &a.data()[i * k..(i + 1) * k];
            for j in 0..n {
                let b_row = &b.data()[j * k..(j + 1) * k];
                let mut acc = 0.0;
                for (&av, &bv) in a_row.iter().zip(b_row) {
                    acc += av * bv;
                }
                out.data[i * n + j] = acc;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(rows: usize, cols: usize, v: &[f32]) -> Tensor {
        Tensor::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_small_known() {
        let a = t(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = t(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_skips_zero_rows_correctly() {
        let a = t(1, 3, &[0., 2., 0.]);
        let b = t(3, 2, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.matmul(&b).data(), &[6., 8.]);
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = t(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let b = t(3, 2, &[1., 0., 0., 1., 1., 1.]);
        // aᵀ·b where aᵀ is 2×3.
        let c = a.t_matmul(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 2);
        // aᵀ = [[1,3,5],[2,4,6]]; aᵀ·b = [[1+0+5, 0+3+5],[2+0+6, 0+4+6]]
        assert_eq!(c.data(), &[6., 8., 8., 10.]);
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = t(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = t(2, 3, &[1., 1., 1., 2., 0., 1.]);
        // a·bᵀ: 2×2
        let c = a.matmul_t(&b);
        assert_eq!(c.data(), &[6., 5., 15., 14.]);
    }

    #[test]
    fn transposed_products_agree_with_plain_matmul() {
        // Random-ish data: verify t_matmul(a, b) == transpose(a) · b.
        let a = t(
            4,
            3,
            &(0..12).map(|i| (i as f32) * 0.5 - 2.0).collect::<Vec<_>>(),
        );
        let b = t(
            4,
            2,
            &(0..8).map(|i| (i as f32) * 0.25 + 1.0).collect::<Vec<_>>(),
        );
        let mut at = Tensor::zeros(3, 4);
        for r in 0..4 {
            for c in 0..3 {
                at.set(c, r, a.get(r, c));
            }
        }
        assert_eq!(a.t_matmul(&b), at.matmul(&b));

        let mut bt = Tensor::zeros(2, 4);
        for r in 0..4 {
            for c in 0..2 {
                bt.set(c, r, b.get(r, c));
            }
        }
        // a is 4×3; matmul_t needs matching cols: use (4×3)·(2×3)ᵀ
        let b2 = t(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let mut b2t = Tensor::zeros(3, 2);
        for r in 0..2 {
            for c in 0..3 {
                b2t.set(c, r, b2.get(r, c));
            }
        }
        assert_eq!(a.matmul_t(&b2), a.matmul(&b2t));
    }

    #[test]
    fn broadcast_and_col_sums_are_inverse_shapes() {
        let mut a = Tensor::zeros(3, 2);
        a.add_row_broadcast(&[1.0, -2.0]);
        assert_eq!(a.data(), &[1., -2., 1., -2., 1., -2.]);
        assert_eq!(a.col_sums(), vec![3.0, -6.0]);
    }

    #[test]
    fn concat_split_roundtrip() {
        let a = t(2, 2, &[1., 2., 3., 4.]);
        let b = t(2, 1, &[9., 8.]);
        let c = Tensor::concat_cols(&[&a, &b]);
        assert_eq!(c.cols(), 3);
        assert_eq!(c.row(0), &[1., 2., 9.]);
        let parts = c.split_cols(&[2, 1]);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        t(2, 3, &[0.; 6]).matmul(&t(2, 2, &[0.; 4]));
    }

    #[test]
    fn transpose_involution_and_matmul_identity() {
        let a = t(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let at = a.transpose();
        assert_eq!(at.rows(), 3);
        assert_eq!(at.get(0, 1), 4.0);
        assert_eq!(at.transpose(), a);
        // a·b == (bᵀ·aᵀ)ᵀ
        let b = t(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let lhs = a.matmul(&b);
        let rhs = b.transpose().matmul(&a.transpose()).transpose();
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn scale_add_map_norm() {
        let mut a = t(1, 3, &[1., -2., 2.]);
        a.scale(2.0);
        assert_eq!(a.data(), &[2., -4., 4.]);
        a.add_assign(&t(1, 3, &[1., 1., 1.]));
        assert_eq!(a.data(), &[3., -3., 5.]);
        let abs = a.map(f32::abs);
        assert_eq!(abs.data(), &[3., 3., 5.]);
        assert!((t(1, 2, &[3., 4.]).frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "add_assign shape mismatch")]
    fn add_assign_rejects_mismatch() {
        let mut a = Tensor::zeros(1, 2);
        a.add_assign(&Tensor::zeros(2, 1));
    }

    #[test]
    fn row_accessors() {
        let mut a = t(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.row(1), &[4., 5., 6.]);
        a.row_mut(0)[2] = 9.;
        assert_eq!(a.get(0, 2), 9.);
    }
}
