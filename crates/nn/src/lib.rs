//! # ds-nn
//!
//! A minimal, dependency-free CPU neural-network library — the substrate
//! that replaces PyTorch in this reproduction. It provides exactly what the
//! MSCN model needs:
//!
//! * [`tensor::Tensor`] — row-major `f32` matrices with the handful of BLAS
//!   ops used by training (matmul, transposed matmuls, broadcasts), backed
//!   by register-blocked micro-kernels with a zero-skip fast path for
//!   one-hot/bitmap inputs;
//! * [`pool`] — deterministic intra-op parallelism: kernels split output
//!   rows across scoped threads with bit-identical results at any count;
//! * [`linear::Linear`] — fully-connected layers with explicit
//!   forward/backward and gradient accumulation;
//! * [`ops`] — activations (ReLU/sigmoid) and the *segment mean* used for
//!   masked average-pooling over variable-size sets;
//! * [`optim`] — SGD and Adam;
//! * [`loss`] — the mean q-error objective of the paper, plus MSE;
//! * [`serialize`] — a versioned binary codec for model weights;
//! * [`frozen`] — serving-only frozen inference artifacts: f32 or int8
//!   weights in gather-friendly layout with a fused per-query forward.
//!
//! Everything is deterministic given a seed, and every backward pass is
//! validated against finite differences in the test suite.

pub mod frozen;
pub mod linear;
pub mod loss;
pub mod ops;
pub mod optim;
pub mod pool;
pub mod regularize;
pub mod serialize;
pub mod tensor;

pub use frozen::{FrozenLinear, FrozenModel, FrozenScratch, IndexSet, QuantMode};
pub use linear::Linear;
pub use loss::{mse_loss, LabelNormalizer, QErrorLoss};
pub use optim::{Adam, Sgd};
pub use pool::PoolConfig;
pub use regularize::{clip_grad_norm, dropout, dropout_backward, StepLr};
pub use tensor::{Kernel, Tensor};
