//! Regularization and training-stability utilities: inverted dropout,
//! global-norm gradient clipping, and a step learning-rate schedule.
//!
//! The reference MSCN trains without these (small model, big data), but a
//! downstream user fitting sketches to small or noisy databases will reach
//! for them; they are wired into the training loop as opt-in knobs.

use rand::{rngs::StdRng, RngExt, SeedableRng};

use crate::linear::Linear;
use crate::tensor::Tensor;

/// Inverted dropout: zeroes each element with probability `p` and scales
/// survivors by `1/(1-p)` so the expected activation is unchanged. Returns
/// the output and the mask for the backward pass. Deterministic in `seed`.
pub fn dropout(x: &Tensor, p: f32, seed: u64) -> (Tensor, Tensor) {
    assert!((0.0..1.0).contains(&p), "dropout rate must be in [0, 1)");
    if p == 0.0 {
        let mask = Tensor::from_vec(x.rows(), x.cols(), vec![1.0; x.data().len()]);
        return (x.clone(), mask);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let scale = 1.0 / (1.0 - p);
    let mut mask = Tensor::zeros(x.rows(), x.cols());
    let mut out = Tensor::zeros(x.rows(), x.cols());
    for i in 0..x.data().len() {
        if rng.random::<f32>() >= p {
            mask.data_mut()[i] = scale;
            out.data_mut()[i] = x.data()[i] * scale;
        }
    }
    (out, mask)
}

/// Backward of [`dropout`]: elementwise product with the saved mask.
pub fn dropout_backward(mask: &Tensor, grad_out: &Tensor) -> Tensor {
    assert_eq!(mask.rows(), grad_out.rows());
    assert_eq!(mask.cols(), grad_out.cols());
    let data = mask
        .data()
        .iter()
        .zip(grad_out.data())
        .map(|(&m, &g)| m * g)
        .collect();
    Tensor::from_vec(grad_out.rows(), grad_out.cols(), data)
}

/// Clips the accumulated gradients of the given layers to a global L2 norm
/// of at most `max_norm`. Returns the pre-clip norm.
pub fn clip_grad_norm(layers: &mut [&mut Linear], max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "max_norm must be positive");
    let mut sq_sum = 0.0f64;
    for layer in layers.iter_mut() {
        layer.for_each_param_mut(|_, _, g| sq_sum += (g as f64) * (g as f64));
    }
    let norm = (sq_sum as f32).sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for layer in layers.iter_mut() {
            layer.scale_gradients(scale);
        }
    }
    norm
}

/// A step learning-rate schedule: `lr = base · gamma^(epoch / step)`.
#[derive(Debug, Clone, Copy)]
pub struct StepLr {
    base: f32,
    gamma: f32,
    step: usize,
}

impl StepLr {
    /// Creates a schedule decaying by `gamma` every `step` epochs.
    ///
    /// # Panics
    /// Panics on non-positive parameters.
    pub fn new(base: f32, gamma: f32, step: usize) -> Self {
        assert!(base > 0.0 && base.is_finite(), "bad base lr");
        assert!(gamma > 0.0 && gamma <= 1.0, "gamma must be in (0, 1]");
        assert!(step > 0, "step must be positive");
        Self { base, gamma, step }
    }

    /// Learning rate for `epoch` (0-based).
    pub fn lr_at(&self, epoch: usize) -> f32 {
        self.base * self.gamma.powi((epoch / self.step) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dropout_zero_rate_is_identity() {
        let x = Tensor::from_vec(2, 2, vec![1.0, -2.0, 3.0, 4.0]);
        let (y, mask) = dropout(&x, 0.0, 1);
        assert_eq!(y, x);
        assert!(mask.data().iter().all(|&m| m == 1.0));
    }

    #[test]
    fn dropout_preserves_expectation() {
        let n = 10_000;
        let x = Tensor::from_vec(1, n, vec![1.0; n]);
        let (y, _) = dropout(&x, 0.3, 7);
        let mean: f32 = y.data().iter().sum::<f32>() / n as f32;
        assert!((mean - 1.0).abs() < 0.05, "mean={mean}");
        // Survivors are scaled by 1/(1-p).
        let survivors: Vec<f32> = y.data().iter().copied().filter(|&v| v != 0.0).collect();
        assert!(survivors.iter().all(|&v| (v - 1.0 / 0.7).abs() < 1e-6));
    }

    #[test]
    fn dropout_is_deterministic_in_seed() {
        let x = Tensor::from_vec(1, 100, vec![2.0; 100]);
        let (a, _) = dropout(&x, 0.5, 3);
        let (b, _) = dropout(&x, 0.5, 3);
        let (c, _) = dropout(&x, 0.5, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn dropout_backward_masks_gradient() {
        let x = Tensor::from_vec(1, 50, vec![1.0; 50]);
        let (_, mask) = dropout(&x, 0.4, 9);
        let g = Tensor::from_vec(1, 50, vec![1.0; 50]);
        let gx = dropout_backward(&mask, &g);
        for (m, gi) in mask.data().iter().zip(gx.data()) {
            assert_eq!(*gi, *m);
        }
    }

    #[test]
    fn clip_grad_norm_scales_large_gradients() {
        let mut l = Linear::new(2, 2, 1);
        let x = Tensor::from_vec(1, 2, vec![10.0, 10.0]);
        let g = Tensor::from_vec(1, 2, vec![10.0, 10.0]);
        l.backward(&x, &g);
        let pre = clip_grad_norm(&mut [&mut l], 1.0);
        assert!(pre > 1.0);
        let mut sq = 0.0f32;
        l.for_each_param_mut(|_, _, g| sq += g * g);
        assert!((sq.sqrt() - 1.0).abs() < 1e-4, "post-norm {}", sq.sqrt());
    }

    #[test]
    fn clip_grad_norm_leaves_small_gradients_alone() {
        let mut l = Linear::new(2, 1, 2);
        let x = Tensor::from_vec(1, 2, vec![0.01, 0.01]);
        let g = Tensor::from_vec(1, 1, vec![0.01]);
        l.backward(&x, &g);
        let mut before = Vec::new();
        l.for_each_param_mut(|_, _, g| before.push(g));
        let pre = clip_grad_norm(&mut [&mut l], 1.0);
        assert!(pre < 1.0);
        let mut after = Vec::new();
        l.for_each_param_mut(|_, _, g| after.push(g));
        assert_eq!(before, after);
    }

    #[test]
    fn step_lr_decays_in_steps() {
        let s = StepLr::new(1e-3, 0.5, 10);
        assert_eq!(s.lr_at(0), 1e-3);
        assert_eq!(s.lr_at(9), 1e-3);
        assert!((s.lr_at(10) - 5e-4).abs() < 1e-10);
        assert!((s.lr_at(25) - 2.5e-4).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "dropout rate")]
    fn dropout_rejects_bad_rate() {
        dropout(&Tensor::zeros(1, 1), 1.0, 0);
    }
}
