//! Deterministic intra-op parallelism for the tensor kernels.
//!
//! The contract mirrors `ds_storage::exec::parallel`: work is split into
//! **disjoint, contiguous output-row ranges**, one per scoped worker thread.
//! Because every output element is computed by exactly one thread with an
//! identical per-element accumulation order, results are bit-for-bit
//! independent of the thread count — `threads = 1` and `threads = 64`
//! produce the same bytes. This is what keeps training reproducible while
//! still scaling across cores.

/// Thread-count configuration threaded through the model, the training
/// loop, and the sketch builder. `threads = 1` means fully serial kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolConfig {
    threads: usize,
}

/// Minimum multiply-add count before a kernel fans out to worker threads;
/// below this the spawn/join overhead dominates any parallel win. Purely a
/// performance heuristic — results are identical either way.
const PAR_MIN_FLOPS: usize = 1 << 15;

impl PoolConfig {
    /// A pool running `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// The serial configuration.
    pub fn single() -> Self {
        Self::new(1)
    }

    /// Configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Worker count a kernel should actually use for a job with `rows`
    /// independent output rows and roughly `flops` multiply-adds.
    pub fn threads_for(&self, rows: usize, flops: usize) -> usize {
        if self.threads <= 1 || flops < PAR_MIN_FLOPS {
            1
        } else {
            self.threads.min(rows.max(1))
        }
    }
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self::single()
    }
}

/// Runs `f` over disjoint contiguous row blocks of a `rows × cols`
/// row-major buffer, fanning out across `threads` scoped workers. `f`
/// receives `(first_row, block)` where `block` covers complete rows
/// starting at `first_row`. With `threads <= 1` it runs inline.
pub fn for_each_row_block<F>(data: &mut [f32], rows: usize, cols: usize, threads: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    debug_assert_eq!(data.len(), rows * cols);
    if data.is_empty() {
        return;
    }
    let t = threads.max(1).min(rows);
    let obs = ds_obs::global();
    if obs.is_enabled() {
        // Dispatch accounting: how often kernels stay serial vs fan out,
        // and how many workers the parallel dispatches actually used.
        if t == 1 {
            obs.count("nn/dispatch/serial", 1);
        } else {
            obs.count("nn/dispatch/parallel", 1);
            obs.count("nn/dispatch/worker_threads", t as u64);
        }
    }
    if t == 1 {
        f(0, data);
        return;
    }
    let block_rows = rows.div_ceil(t);
    std::thread::scope(|s| {
        for (bi, block) in data.chunks_mut(block_rows * cols).enumerate() {
            let f = &f;
            s.spawn(move || f(bi * block_rows, block));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_config_clamps_and_gates() {
        let p = PoolConfig::new(0);
        assert_eq!(p.threads(), 1);
        let p = PoolConfig::new(8);
        assert_eq!(p.threads_for(100, 10), 1, "tiny job stays serial");
        assert_eq!(p.threads_for(100, PAR_MIN_FLOPS), 8);
        assert_eq!(p.threads_for(3, PAR_MIN_FLOPS), 3, "capped by rows");
        assert_eq!(PoolConfig::default(), PoolConfig::single());
    }

    #[test]
    fn row_blocks_are_disjoint_and_complete() {
        for threads in [1, 2, 3, 7, 16] {
            let (rows, cols) = (11, 3);
            let mut data = vec![0.0f32; rows * cols];
            for_each_row_block(&mut data, rows, cols, threads, |first_row, block| {
                for (r, row) in block.chunks_mut(cols).enumerate() {
                    for v in row.iter_mut() {
                        *v += (first_row + r) as f32 + 1.0;
                    }
                }
            });
            // Every row written exactly once with its own index.
            for r in 0..rows {
                for c in 0..cols {
                    assert_eq!(data[r * cols + c], r as f32 + 1.0, "t={threads} r={r}");
                }
            }
        }
    }

    #[test]
    fn empty_work_is_a_noop() {
        let mut data: Vec<f32> = Vec::new();
        for_each_row_block(&mut data, 0, 4, 8, |_, _| panic!("no work expected"));
        for_each_row_block(&mut data, 4, 0, 8, |_, _| panic!("no work expected"));
    }
}
