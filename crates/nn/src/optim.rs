//! Optimizers: plain SGD and Adam (Kingma & Ba, 2015). MSCN trains with
//! Adam at learning rate 1e-3; SGD exists for ablations and tests.

use std::collections::HashMap;

use crate::linear::Linear;

/// Stochastic gradient descent: `p ← p - lr · g`.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// Creates SGD with the given learning rate.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "bad learning rate");
        Self { lr }
    }

    /// Applies one update to `layer` and clears its gradients.
    pub fn step(&mut self, layer: &mut Linear) {
        let lr = self.lr;
        layer.for_each_param_mut(|_, p, g| *p -= lr * g);
        layer.zero_grad();
    }
}

/// Per-layer Adam state.
#[derive(Debug, Clone)]
struct AdamState {
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

/// Adam optimizer. Layers are identified by a caller-chosen id so one
/// optimizer instance can drive a whole model.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    states: HashMap<usize, AdamState>,
}

impl Adam {
    /// Creates Adam with standard hyper-parameters (β₁=0.9, β₂=0.999,
    /// ε=1e-8).
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0 && lr.is_finite(), "bad learning rate");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            states: HashMap::new(),
        }
    }

    /// Learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (for schedules). Momentum state is kept.
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0 && lr.is_finite(), "bad learning rate");
        self.lr = lr;
    }

    /// Applies one Adam update to `layer` (identified by `id`) and clears
    /// its gradients.
    ///
    /// # Panics
    /// Panics if the same `id` is reused for a layer of a different size.
    pub fn step(&mut self, id: usize, layer: &mut Linear) {
        let n = layer.num_params();
        let state = self.states.entry(id).or_insert_with(|| AdamState {
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
        });
        assert_eq!(
            state.m.len(),
            n,
            "layer id {id} reused with different shape"
        );
        state.t += 1;
        let t = state.t as f32;
        let (b1, b2, eps, lr) = (self.beta1, self.beta2, self.eps, self.lr);
        let bc1 = 1.0 - b1.powf(t);
        let bc2 = 1.0 - b2.powf(t);
        let (m, v) = (&mut state.m, &mut state.v);
        layer.for_each_param_mut(|i, p, g| {
            m[i] = b1 * m[i] + (1.0 - b1) * g;
            v[i] = b2 * v[i] + (1.0 - b2) * g * g;
            let mhat = m[i] / bc1;
            let vhat = v[i] / bc2;
            *p -= lr * mhat / (vhat.sqrt() + eps);
        });
        layer.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    /// Trains y = 2x + 1 with a single linear layer.
    fn fit(optimizer: &mut dyn FnMut(&mut Linear), steps: usize) -> f32 {
        let mut layer = Linear::new(1, 1, 3);
        let xs: Vec<f32> = (0..16).map(|i| i as f32 / 8.0 - 1.0).collect();
        let mut last_loss = f32::MAX;
        for _ in 0..steps {
            let x = Tensor::from_vec(16, 1, xs.clone());
            let y = layer.forward(&x);
            // L = mean((y - (2x+1))²)
            let mut grad = Tensor::zeros(16, 1);
            let mut loss = 0.0;
            for (i, (&xi, &yi)) in xs.iter().zip(y.data()).enumerate() {
                let target = 2.0 * xi + 1.0;
                let diff = yi - target;
                loss += diff * diff / 16.0;
                grad.data_mut()[i] = 2.0 * diff / 16.0;
            }
            layer.backward(&x, &grad);
            optimizer(&mut layer);
            last_loss = loss;
        }
        last_loss
    }

    #[test]
    fn sgd_converges_on_linear_regression() {
        let mut sgd = Sgd::new(0.5);
        let loss = fit(&mut |l| sgd.step(l), 200);
        assert!(loss < 1e-4, "loss={loss}");
    }

    #[test]
    fn adam_converges_on_linear_regression() {
        let mut adam = Adam::new(0.05);
        let loss = fit(&mut |l| adam.step(0, l), 300);
        assert!(loss < 1e-4, "loss={loss}");
    }

    #[test]
    fn adam_state_is_per_layer() {
        let mut adam = Adam::new(0.01);
        let mut l1 = Linear::new(2, 2, 1);
        let mut l2 = Linear::new(3, 1, 2);
        let x1 = Tensor::from_vec(1, 2, vec![1.0, 1.0]);
        let x2 = Tensor::from_vec(1, 3, vec![1.0, 1.0, 1.0]);
        l1.backward(&x1, &Tensor::from_vec(1, 2, vec![1.0, 1.0]));
        l2.backward(&x2, &Tensor::from_vec(1, 1, vec![1.0]));
        adam.step(0, &mut l1);
        adam.step(1, &mut l2);
        assert_eq!(adam.states.len(), 2);
    }

    #[test]
    #[should_panic(expected = "reused with different shape")]
    fn adam_rejects_id_reuse_across_shapes() {
        let mut adam = Adam::new(0.01);
        let mut l1 = Linear::new(2, 2, 1);
        let mut l2 = Linear::new(3, 1, 2);
        adam.step(0, &mut l1);
        adam.step(0, &mut l2);
    }

    #[test]
    fn step_zeroes_gradients() {
        let mut adam = Adam::new(0.01);
        let mut l = Linear::new(2, 1, 5);
        let x = Tensor::from_vec(1, 2, vec![1.0, -1.0]);
        l.backward(&x, &Tensor::from_vec(1, 1, vec![1.0]));
        adam.step(0, &mut l);
        let mut any_grad = false;
        l.for_each_param_mut(|_, _, g| any_grad |= g != 0.0);
        assert!(!any_grad);
    }
}
