//! Training objectives.
//!
//! The paper trains "with the objective of minimizing the mean q-error"
//! (Moerkotte et al.): `q = max(est/true, true/est) ≥ 1`. The model's
//! sigmoid output is a *normalized log-cardinality*; [`LabelNormalizer`]
//! maps between that space and raw cardinalities, and [`QErrorLoss`]
//! differentiates the q-error through the de-normalization.

use crate::tensor::Tensor;

/// Maps cardinalities to the `[0, 1]` training target space and back:
/// `y = (ln c - ln c_min) / (ln c_max - ln c_min)`, following the paper
/// ("we logarithmize and then normalize cardinalities using the maximum
/// cardinality present in the training data").
///
/// Cardinalities are clamped to ≥ 1 so that empty results are representable.
///
/// ```
/// use ds_nn::loss::LabelNormalizer;
/// let norm = LabelNormalizer::fit(&[1, 100, 10_000]);
/// let y = norm.normalize(100);
/// assert!(y > 0.0 && y < 1.0);
/// let back = norm.denormalize(y);
/// assert!((back - 100.0).abs() / 100.0 < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LabelNormalizer {
    ln_min: f64,
    ln_max: f64,
}

impl LabelNormalizer {
    /// Fits the normalizer to the label range of the training data.
    /// Degenerate ranges (all labels equal) get an artificial +1 span.
    pub fn fit(labels: &[u64]) -> Self {
        let max = labels.iter().copied().max().unwrap_or(1).max(1);
        // The minimum is pinned at 1 (log 0-cardinality is clamped).
        let ln_min = 0.0;
        let mut ln_max = (max as f64).ln();
        if ln_max <= ln_min {
            ln_max = ln_min + 1.0;
        }
        Self { ln_min, ln_max }
    }

    /// Rebuilds from raw bounds (deserialization).
    pub fn from_bounds(ln_min: f64, ln_max: f64) -> Self {
        assert!(ln_max > ln_min, "degenerate normalizer bounds");
        Self { ln_min, ln_max }
    }

    /// `(ln_min, ln_max)` bounds.
    pub fn bounds(&self) -> (f64, f64) {
        (self.ln_min, self.ln_max)
    }

    /// Cardinality → normalized target in `[0, 1]` (clamped).
    pub fn normalize(&self, card: u64) -> f32 {
        let c = (card.max(1)) as f64;
        let y = (c.ln() - self.ln_min) / (self.ln_max - self.ln_min);
        y.clamp(0.0, 1.0) as f32
    }

    /// Normalized model output → cardinality estimate (≥ 1).
    pub fn denormalize(&self, y: f32) -> f64 {
        let y = y.clamp(0.0, 1.0) as f64;
        (y * (self.ln_max - self.ln_min) + self.ln_min).exp()
    }

    /// Scale factor `d(card)/d(y) / card = ln_max - ln_min`, used by the
    /// q-error gradient.
    fn log_span(&self) -> f64 {
        self.ln_max - self.ln_min
    }
}

/// The q-error of a single estimate (both sides clamped to ≥ 1).
pub fn qerror_scalar(estimate: f64, truth: f64) -> f64 {
    let e = estimate.max(1.0);
    let t = truth.max(1.0);
    (e / t).max(t / e)
}

/// Mean q-error loss over a batch, differentiable w.r.t. the model's
/// normalized outputs.
#[derive(Debug, Clone)]
pub struct QErrorLoss {
    norm: LabelNormalizer,
}

impl QErrorLoss {
    /// Creates the loss for a given label normalizer.
    pub fn new(norm: LabelNormalizer) -> Self {
        Self { norm }
    }

    /// The underlying normalizer.
    pub fn normalizer(&self) -> &LabelNormalizer {
        &self.norm
    }

    /// Computes `(mean q-error, ∂L/∂y)` for normalized outputs `y`
    /// (batch × 1) against true cardinalities.
    ///
    /// With `c(y) = exp(s·y + ln_min)` and `s = ln_max - ln_min`:
    /// `q = c/t` if `c > t` (then `∂q/∂y = s·c/t`), else `q = t/c`
    /// (then `∂q/∂y = -s·t/c`). The loss is averaged over the batch.
    pub fn forward_backward(&self, y: &Tensor, truths: &[u64]) -> (f64, Tensor) {
        assert_eq!(y.cols(), 1, "expected (batch × 1) outputs");
        assert_eq!(y.rows(), truths.len(), "batch size mismatch");
        let n = truths.len();
        assert!(n > 0, "empty batch");
        let s = self.norm.log_span();
        let mut grad = Tensor::zeros(n, 1);
        let mut total = 0.0;
        for (i, (&yi, &truth)) in y.data().iter().zip(truths).enumerate() {
            let est = self.norm.denormalize(yi).max(1.0);
            let t = (truth.max(1)) as f64;
            let (q, dq_dy) = if est >= t {
                (est / t, s * est / t)
            } else {
                (t / est, -s * t / est)
            };
            total += q;
            grad.data_mut()[i] = (dq_dy / n as f64) as f32;
        }
        (total / n as f64, grad)
    }
}

/// Mean squared error on normalized labels (the ablation alternative):
/// returns `(loss, ∂L/∂y)`.
pub fn mse_loss(y: &Tensor, targets: &[f32]) -> (f64, Tensor) {
    assert_eq!(y.cols(), 1, "expected (batch × 1) outputs");
    assert_eq!(y.rows(), targets.len(), "batch size mismatch");
    let n = targets.len();
    assert!(n > 0, "empty batch");
    let mut grad = Tensor::zeros(n, 1);
    let mut total = 0.0;
    for (i, (&yi, &t)) in y.data().iter().zip(targets).enumerate() {
        let diff = (yi - t) as f64;
        total += diff * diff;
        grad.data_mut()[i] = (2.0 * diff / n as f64) as f32;
    }
    (total / n as f64, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizer_roundtrip() {
        let norm = LabelNormalizer::fit(&[1, 50, 10_000]);
        for c in [1u64, 2, 99, 10_000] {
            let y = norm.normalize(c);
            assert!((0.0..=1.0).contains(&y));
            let back = norm.denormalize(y);
            let q = qerror_scalar(back, c as f64);
            assert!(q < 1.01, "c={c} back={back} q={q}");
        }
    }

    #[test]
    fn normalizer_clamps_out_of_range() {
        let norm = LabelNormalizer::fit(&[1, 100]);
        assert_eq!(norm.normalize(0), 0.0);
        assert_eq!(norm.normalize(1_000_000), 1.0);
        assert!((norm.denormalize(-0.5) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_labels_get_positive_span() {
        let norm = LabelNormalizer::fit(&[1, 1, 1]);
        let (lo, hi) = norm.bounds();
        assert!(hi > lo);
        let empty = LabelNormalizer::fit(&[]);
        let (lo2, hi2) = empty.bounds();
        assert!(hi2 > lo2);
    }

    #[test]
    fn qerror_scalar_symmetric_and_minimal_at_truth() {
        assert_eq!(qerror_scalar(10.0, 10.0), 1.0);
        assert_eq!(qerror_scalar(100.0, 10.0), 10.0);
        assert_eq!(qerror_scalar(10.0, 100.0), 10.0);
        // 0-clamping: estimating 0 for truth 5 is q=5, not infinite.
        assert_eq!(qerror_scalar(0.0, 5.0), 5.0);
    }

    #[test]
    fn qerror_loss_is_one_at_perfect_prediction() {
        let norm = LabelNormalizer::fit(&[1, 1000]);
        let loss = QErrorLoss::new(norm.clone());
        let y = Tensor::from_vec(1, 1, vec![norm.normalize(50)]);
        let (l, g) = loss.forward_backward(&y, &[50]);
        assert!(l < 1.02, "loss={l}");
        // q-error has a kink at q = 1: the gradient magnitude is bounded by
        // the log-span of the normalizer, not by 0.
        let (lo, hi) = norm.bounds();
        assert!(g.data()[0].abs() as f64 <= (hi - lo) * 1.05);
    }

    #[test]
    fn qerror_gradient_matches_finite_difference() {
        let norm = LabelNormalizer::fit(&[1, 100_000]);
        let loss = QErrorLoss::new(norm);
        let truths = [500u64, 3, 40_000];
        let y = Tensor::from_vec(3, 1, vec![0.3, 0.8, 0.5]);
        let (_, grad) = loss.forward_backward(&y, &truths);
        let eps = 1e-4_f32;
        for i in 0..3 {
            let mut yp = y.clone();
            yp.data_mut()[i] += eps;
            let mut ym = y.clone();
            ym.data_mut()[i] -= eps;
            let (lp, _) = loss.forward_backward(&yp, &truths);
            let (lm, _) = loss.forward_backward(&ym, &truths);
            let num = (lp - lm) / (2.0 * eps as f64);
            let ana = grad.data()[i] as f64;
            let rel = (num - ana).abs() / num.abs().max(1.0);
            assert!(rel < 2e-2, "i={i} num={num} ana={ana}");
        }
    }

    #[test]
    fn qerror_gradient_signs_push_toward_truth() {
        let norm = LabelNormalizer::fit(&[1, 10_000]);
        let loss = QErrorLoss::new(norm.clone());
        // Overestimate → positive gradient (decrease y).
        let hi = Tensor::from_vec(1, 1, vec![0.99]);
        let (_, g_hi) = loss.forward_backward(&hi, &[10]);
        assert!(g_hi.data()[0] > 0.0);
        // Underestimate → negative gradient (increase y).
        let lo = Tensor::from_vec(1, 1, vec![0.01]);
        let (_, g_lo) = loss.forward_backward(&lo, &[5000]);
        assert!(g_lo.data()[0] < 0.0);
    }

    #[test]
    fn mse_loss_and_gradient() {
        let y = Tensor::from_vec(2, 1, vec![0.5, 0.0]);
        let (l, g) = mse_loss(&y, &[0.0, 0.0]);
        assert!((l - 0.125).abs() < 1e-9);
        assert!((g.data()[0] - 0.5).abs() < 1e-6);
        assert_eq!(g.data()[1], 0.0);
    }
}
