//! A flat-vector baseline model — the ablation behind §2's design claim.
//!
//! The paper argues for *set semantics*: "the cardinality of a query is
//! independent of its query plan — e.g., both (A ⋈ B) ⋈ C and A ⋈ (B ⋈ C)
//! can be represented as {A, B, C}", differentiating MSCN from
//! "other learning-based approaches" that featurize queries as flat
//! vectors. This module implements that flat alternative faithfully so the
//! claim can be measured (experiment E11): one fixed-width vector per
//! query — table membership bits, join membership bits, a `(op one-hot,
//! literal)` slot per vocabulary column, and the concatenated sample
//! bitmaps — fed to a plain 2-hidden-layer MLP trained with the same
//! q-error objective.
//!
//! The flat encoding is permutation-invariant only by construction of its
//! slots; its weakness is capacity/shape, not input ordering: every column
//! gets a slot whether or not the query uses it, conjunctions of multiple
//! predicates on one column collapse into one slot, and there is no
//! weight sharing across set elements.

use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};

use ds_nn::linear::Linear;
use ds_nn::loss::{LabelNormalizer, QErrorLoss};
use ds_nn::ops::{relu, relu_backward, sigmoid, sigmoid_backward};
use ds_nn::optim::Adam;
use ds_nn::tensor::Tensor;
use ds_query::query::Query;
use ds_storage::sample::TableSample;

use crate::featurize::Featurizer;

/// Flat featurization on top of the shared [`Featurizer`] vocabulary.
#[derive(Debug, Clone)]
pub struct FlatFeaturizer {
    vocab: Featurizer,
}

impl FlatFeaturizer {
    /// Wraps the shared vocabulary.
    pub fn new(vocab: Featurizer) -> Self {
        Self { vocab }
    }

    /// Width of the flat vector: tables + joins + 4·columns + bitmaps.
    pub fn dim(&self) -> usize {
        let bitmaps = if self.vocab.use_bitmaps() {
            self.vocab.num_tables() * self.vocab.sample_size()
        } else {
            0
        };
        self.vocab.num_tables()
            + self.vocab.joins().len()
            + 4 * self.vocab.columns().len()
            + bitmaps
    }

    /// Encodes one query as a flat vector.
    pub fn featurize(&self, query: &Query, samples: &[TableSample]) -> Vec<f32> {
        let nt = self.vocab.num_tables();
        let nj = self.vocab.joins().len();
        let nc = self.vocab.columns().len();
        let mut v = vec![0.0f32; self.dim()];
        for &t in &query.tables {
            v[t.0] = 1.0;
        }
        for j in &query.joins {
            if let Some(idx) = self.vocab.joins().iter().position(|e| *e == j.canonical()) {
                v[nt + idx] = 1.0;
            }
        }
        for (cr, p) in query.qualified_predicates() {
            if let Some(idx) = self.vocab.columns().iter().position(|c| *c == cr) {
                let base = nt + nj + 4 * idx;
                // The flat slots keep the paper's 3-op layout; IN/LIKE
                // collapse to a mid-scale literal with no op bit — the
                // flat ablation is measured on the cmp vocabulary.
                if let Some((op, lit)) = p.as_cmp() {
                    v[base + op.index()] = 1.0;
                    v[base + 3] = self.vocab.normalize_literal(idx, lit);
                } else {
                    v[base + 3] = 0.5;
                }
            }
        }
        if self.vocab.use_bitmaps() {
            let bm_base = nt + nj + 4 * nc;
            for &t in &query.tables {
                let preds = query.preds_of(t);
                let bm = samples[t.0].qualifying_bitmap(&preds);
                for i in bm.iter_ones() {
                    v[bm_base + t.0 * self.vocab.sample_size() + i] = 1.0;
                }
            }
        }
        v
    }

    /// Batches queries into a `(n × dim)` matrix.
    pub fn batch(&self, queries: &[Query], samples: &[TableSample]) -> Tensor {
        let mut data = Vec::with_capacity(queries.len() * self.dim());
        for q in queries {
            data.extend(self.featurize(q, samples));
        }
        Tensor::from_vec(queries.len(), self.dim(), data)
    }
}

/// The flat 2-hidden-layer MLP with sigmoid head.
#[derive(Debug, Clone)]
pub struct FlatModel {
    l1: Linear,
    l2: Linear,
    l3: Linear,
}

impl FlatModel {
    /// Creates a model for flat vectors of width `dim`.
    pub fn new(dim: usize, hidden: usize, seed: u64) -> Self {
        Self {
            l1: Linear::new(dim, hidden, seed ^ 0x11),
            l2: Linear::new(hidden, hidden, seed ^ 0x22),
            l3: Linear::new(hidden, 1, seed ^ 0x33),
        }
    }

    /// Scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.l1.num_params() + self.l2.num_params() + self.l3.num_params()
    }

    /// Forward pass: normalized outputs in `(0, 1)`.
    pub fn predict(&self, x: &Tensor) -> Vec<f32> {
        let a1 = relu(&self.l1.forward(x));
        let a2 = relu(&self.l2.forward(&a1));
        sigmoid(&self.l3.forward(&a2)).data().to_vec()
    }

    fn train_step(
        &mut self,
        x: &Tensor,
        truths: &[u64],
        loss: &QErrorLoss,
        adam: &mut Adam,
    ) -> f64 {
        let z1 = self.l1.forward(x);
        let a1 = relu(&z1);
        let z2 = self.l2.forward(&a1);
        let a2 = relu(&z2);
        let z3 = self.l3.forward(&a2);
        let y = sigmoid(&z3);
        let (l, grad_y) = loss.forward_backward(&y, truths);
        let g_z3 = sigmoid_backward(&y, &grad_y);
        let g_a2 = self.l3.backward(&a2, &g_z3);
        let g_z2 = relu_backward(&z2, &g_a2);
        let g_a1 = self.l2.backward(&a1, &g_z2);
        let g_z1 = relu_backward(&z1, &g_a1);
        self.l1.backward(x, &g_z1);
        adam.step(0, &mut self.l1);
        adam.step(1, &mut self.l2);
        adam.step(2, &mut self.l3);
        l
    }

    /// Trains with mini-batch Adam on the q-error objective; mirrors the
    /// MSCN training loop so E11 compares models, not trainers.
    #[allow(clippy::too_many_arguments)]
    pub fn train(
        &mut self,
        featurizer: &FlatFeaturizer,
        samples: &[TableSample],
        queries: &[Query],
        labels: &[u64],
        normalizer: &LabelNormalizer,
        epochs: usize,
        batch_size: usize,
        seed: u64,
    ) -> f64 {
        assert_eq!(queries.len(), labels.len(), "query/label length mismatch");
        assert!(!queries.is_empty() && batch_size > 0);
        let x_all: Vec<Vec<f32>> = queries
            .iter()
            .map(|q| featurizer.featurize(q, samples))
            .collect();
        let loss = QErrorLoss::new(normalizer.clone());
        let mut adam = Adam::new(1e-3);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut idx: Vec<usize> = (0..queries.len()).collect();
        let mut last = f64::NAN;
        for _ in 0..epochs {
            idx.shuffle(&mut rng);
            let mut sum = 0.0;
            let mut n = 0;
            for chunk in idx.chunks(batch_size) {
                let mut data = Vec::with_capacity(chunk.len() * featurizer.dim());
                for &i in chunk {
                    data.extend_from_slice(&x_all[i]);
                }
                let x = Tensor::from_vec(chunk.len(), featurizer.dim(), data);
                let truths: Vec<u64> = chunk.iter().map(|&i| labels[i]).collect();
                sum += self.train_step(&x, &truths, &loss, &mut adam);
                n += 1;
            }
            last = sum / n as f64;
        }
        last
    }

    /// Estimates cardinalities for a workload.
    pub fn estimate_batch(
        &self,
        featurizer: &FlatFeaturizer,
        samples: &[TableSample],
        queries: &[Query],
        normalizer: &LabelNormalizer,
    ) -> Vec<f64> {
        if queries.is_empty() {
            return Vec::new();
        }
        let x = featurizer.batch(queries, samples);
        self.predict(&x)
            .into_iter()
            .map(|y| normalizer.denormalize(y).max(1.0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::qerror;
    use ds_est::oracle::TrueCardinalityOracle;
    use ds_est::CardinalityEstimator;
    use ds_query::workloads::imdb_predicate_columns;
    use ds_query::{GeneratorConfig, QueryGenerator};
    use ds_storage::gen::{imdb_database, ImdbConfig};
    use ds_storage::sample::sample_all;

    fn setup() -> (
        ds_storage::catalog::Database,
        Vec<TableSample>,
        FlatFeaturizer,
    ) {
        let db = imdb_database(&ImdbConfig::tiny(1));
        let samples = sample_all(&db, 16, 2);
        let vocab = Featurizer::build(&db, &imdb_predicate_columns(&db), 16);
        (db, samples, FlatFeaturizer::new(vocab))
    }

    #[test]
    fn dim_formula_and_vector_shape() {
        let (db, samples, f) = setup();
        // 6 tables + 5 joins + 4·9 columns + 6·16 bitmap bits.
        assert_eq!(f.dim(), 6 + 5 + 36 + 96);
        let q = ds_query::parser::parse_query(
            &db,
            "SELECT COUNT(*) FROM title, movie_keyword \
             WHERE movie_keyword.movie_id = title.id AND title.production_year > 2000",
        )
        .unwrap();
        let v = f.featurize(&q, &samples);
        assert_eq!(v.len(), f.dim());
        // Two table bits and one join bit set.
        assert_eq!(v[..6].iter().sum::<f32>(), 2.0);
        assert_eq!(v[6..11].iter().sum::<f32>(), 1.0);
    }

    #[test]
    fn flat_encoding_is_plan_order_invariant() {
        let (db, samples, f) = setup();
        let qa = ds_query::parser::parse_query(
            &db,
            "SELECT COUNT(*) FROM title, movie_keyword, cast_info \
             WHERE movie_keyword.movie_id = title.id AND cast_info.movie_id = title.id",
        )
        .unwrap();
        let mut qb = qa.clone();
        qb.tables.reverse();
        qb.joins.reverse();
        assert_eq!(f.featurize(&qa, &samples), f.featurize(&qb, &samples));
    }

    #[test]
    fn flat_model_trains_to_useful_accuracy() {
        let db = imdb_database(&ImdbConfig::tiny(3));
        let samples = sample_all(&db, 16, 5);
        let cols = imdb_predicate_columns(&db);
        let vocab = Featurizer::build(&db, &cols, 16);
        let f = FlatFeaturizer::new(vocab);
        let mut gen = QueryGenerator::new(&db, GeneratorConfig::new(cols, 7));
        let queries = gen.generate_batch(300);
        let oracle = TrueCardinalityOracle::new(&db);
        let labels = oracle.label_batch(&queries, 1).unwrap();
        let normalizer = LabelNormalizer::fit(&labels);
        let mut model = FlatModel::new(f.dim(), 24, 9);
        let first = model.train(&f, &samples, &queries, &labels, &normalizer, 1, 64, 1);
        let last = model.train(&f, &samples, &queries, &labels, &normalizer, 10, 64, 2);
        assert!(last < first, "loss did not decrease: {first} → {last}");
        // Sanity: median q-error on the training queries is small-ish.
        let ests = model.estimate_batch(&f, &samples, &queries, &normalizer);
        let mut qs: Vec<f64> = queries
            .iter()
            .zip(&ests)
            .map(|(q, &e)| qerror(e, oracle.estimate(q)))
            .collect();
        qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = qs[qs.len() / 2];
        assert!(median < 15.0, "flat model median q-error {median}");
    }

    #[test]
    fn empty_batch_is_fine() {
        let (_db, samples, f) = setup();
        let model = FlatModel::new(f.dim(), 8, 1);
        let normalizer = LabelNormalizer::fit(&[1, 10]);
        assert!(model
            .estimate_batch(&f, &samples, &[], &normalizer)
            .is_empty());
    }
}
