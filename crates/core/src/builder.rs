//! The four-step sketch-creation pipeline of Figure 1a:
//!
//! 1. **Define** — choose tables (a database) and parameters: number of
//!    materialized samples, training queries, epochs.
//! 2. **Generate** training queries — uniformly choose tables, columns, and
//!    predicate types; draw literals from the database.
//! 3. **Execute** training queries — against the database for true
//!    cardinalities (in parallel, as with "multiple HyPer instances") and
//!    against the materialized samples for bitmaps.
//! 4. **Train** — featurize and train the MSCN for the requested epochs.

use std::time::{Duration, Instant};

use ds_nn::frozen::QuantMode;
use ds_nn::loss::LabelNormalizer;
use ds_query::query::Query;
use ds_query::{GeneratorConfig, QueryGenerator};
use ds_storage::catalog::{ColRef, Database};
use ds_storage::exec::ExecError;
use ds_storage::sample::sample_all;

use crate::featurize::Featurizer;
use crate::mscn::{MscnConfig, MscnModel};
use crate::sketch::DeepSketch;
use crate::train::{train_with_callback, EpochStats, LossKind, TrainConfig, TrainingReport};

/// Progress events emitted during sketch construction — the demo lets
/// users "monitor the training progress, including the execution of
/// training queries and the training of the deep learning model".
#[derive(Debug, Clone)]
pub enum BuildProgress {
    /// Step 1+2 finished: samples drawn, queries generated.
    QueriesGenerated {
        /// Number of training queries.
        count: usize,
    },
    /// Step 3 progress: a chunk of training queries has been executed.
    LabelsExecuted {
        /// Queries labeled so far.
        done: usize,
        /// Total queries to label.
        total: usize,
    },
    /// Step 4 progress: one training epoch finished.
    EpochCompleted {
        /// The epoch's statistics.
        stats: EpochStats,
        /// Total epochs requested.
        total: usize,
    },
}

/// Errors during sketch construction.
#[derive(Debug)]
pub enum BuildError {
    /// A generated training query failed to execute (indicates schema
    /// metadata corruption — generated queries are valid by construction).
    Execution(ExecError),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::Execution(e) => write!(f, "training-query execution failed: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<ExecError> for BuildError {
    fn from(e: ExecError) -> Self {
        BuildError::Execution(e)
    }
}

/// Wall-clock cost breakdown of the four pipeline steps — the data behind
/// the training-cost discussion in §3.
#[derive(Debug, Clone)]
pub struct BuildReport {
    /// Step 1+2: sampling + query generation time.
    pub generation: Duration,
    /// Step 3: executing training queries for labels.
    pub execution: Duration,
    /// Step 4a: building the featurizer (vocabulary + encoders).
    pub featurization: Duration,
    /// Step 4b (featurize the workload + train).
    pub training: TrainingReport,
    /// Number of training queries used.
    pub num_queries: usize,
    /// Serialized sketch size in bytes.
    pub footprint_bytes: usize,
}

/// Builder for [`DeepSketch`]es, mirroring the demo's "define a sketch"
/// form.
#[derive(Debug, Clone)]
pub struct SketchBuilder<'a> {
    db: &'a Database,
    predicate_columns: Vec<ColRef>,
    tables: Option<Vec<ds_storage::catalog::TableId>>,
    training_queries: usize,
    epochs: usize,
    sample_size: usize,
    hidden_units: usize,
    batch_size: usize,
    max_tables: usize,
    max_predicates: usize,
    learning_rate: f32,
    loss: LossKind,
    use_bitmaps: bool,
    validation_frac: f64,
    early_stop_patience: Option<usize>,
    restore_best: bool,
    threads: usize,
    quantization: QuantMode,
    seed: u64,
    in_frac: f64,
    like_frac: f64,
    max_in_list: usize,
    schema_v2: bool,
    pred_bitmap_bits: usize,
}

/// Training queries probed by the freeze accuracy gate at finalize. A
/// prefix of the training workload suffices: the gate compares two
/// numerical paths over the *same* weights, not model generalization.
const FREEZE_PROBES: usize = 256;

impl<'a> SketchBuilder<'a> {
    /// Starts a builder over a database with the given predicate-eligible
    /// columns. Defaults: 10 000 training queries (the demo's "sufficient
    /// for a small number of tables"), 25 epochs, 1000 samples per table.
    pub fn new(db: &'a Database, predicate_columns: Vec<ColRef>) -> Self {
        Self {
            db,
            predicate_columns,
            tables: None,
            training_queries: 10_000,
            epochs: 25,
            sample_size: 1000,
            hidden_units: 128,
            batch_size: 128,
            max_tables: 3,
            max_predicates: 3,
            learning_rate: 1e-3,
            loss: LossKind::QError,
            use_bitmaps: true,
            validation_frac: 0.1,
            early_stop_patience: None,
            restore_best: false,
            threads: 1,
            quantization: QuantMode::F32,
            seed: 0xD5_5EED,
            in_frac: 0.0,
            like_frac: 0.0,
            max_in_list: 4,
            schema_v2: false,
            pred_bitmap_bits: 0,
        }
    }

    /// Restricts the sketch to a subset of tables — step 1 of Figure 1a
    /// ("users need to select a subset of tables"). Training queries and
    /// predicate columns are confined to this subset; `max_tables` is
    /// clamped to its size.
    pub fn tables(mut self, tables: Vec<ds_storage::catalog::TableId>) -> Self {
        assert!(!tables.is_empty(), "table subset must not be empty");
        self.predicate_columns
            .retain(|cr| tables.contains(&cr.table));
        self.tables = Some(tables);
        self
    }

    /// Number of training queries (step 2).
    pub fn training_queries(mut self, n: usize) -> Self {
        self.training_queries = n;
        self
    }

    /// Number of training epochs (step 4).
    pub fn epochs(mut self, n: usize) -> Self {
        self.epochs = n;
        self
    }

    /// Materialized sample tuples per base table.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Hidden width of the MSCN MLPs.
    pub fn hidden_units(mut self, n: usize) -> Self {
        self.hidden_units = n;
        self
    }

    /// Mini-batch size.
    pub fn batch_size(mut self, n: usize) -> Self {
        self.batch_size = n;
        self
    }

    /// Maximum tables per generated training query.
    pub fn max_tables(mut self, n: usize) -> Self {
        self.max_tables = n;
        self
    }

    /// Maximum predicates per generated training query.
    pub fn max_predicates(mut self, n: usize) -> Self {
        self.max_predicates = n;
        self
    }

    /// Adam learning rate.
    pub fn learning_rate(mut self, lr: f32) -> Self {
        self.learning_rate = lr;
        self
    }

    /// Training objective.
    pub fn loss(mut self, loss: LossKind) -> Self {
        self.loss = loss;
        self
    }

    /// Include sample bitmaps in table features (ablation knob).
    pub fn use_bitmaps(mut self, on: bool) -> Self {
        self.use_bitmaps = on;
        self
    }

    /// Validation holdout fraction.
    pub fn validation_frac(mut self, f: f64) -> Self {
        self.validation_frac = f;
        self
    }

    /// Stop training when validation has not improved for `patience`
    /// epochs (requires a validation split).
    pub fn early_stop_patience(mut self, patience: usize) -> Self {
        self.early_stop_patience = Some(patience);
        self
    }

    /// Ship the weights of the best validation epoch instead of the last.
    pub fn restore_best(mut self, on: bool) -> Self {
        self.restore_best = on;
        self
    }

    /// Worker threads for the whole pipeline: training-query execution,
    /// the training matmul kernels, and the built sketch's batched
    /// serving. Results are bit-identical at any thread count.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n.max(1);
        self
    }

    /// Quantization mode of the frozen serving artifact produced at
    /// finalize (f32 by default; int8 halves the artifact's weight bytes
    /// at a small, gate-bounded accuracy cost).
    pub fn quantization(mut self, mode: QuantMode) -> Self {
        self.quantization = mode;
        self
    }

    /// Master seed (drives sampling, generation, init, and shuffling).
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Mixes `IN (…)` and `LIKE` predicates into the training workload at
    /// the given per-predicate fractions. Off by default — the default
    /// query stream stays bit-identical to the comparison-only generator.
    pub fn extended_ops(mut self, in_frac: f64, like_frac: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&(in_frac + like_frac)),
            "in_frac + like_frac must lie in [0, 1]"
        );
        self.in_frac = in_frac;
        self.like_frac = like_frac;
        self
    }

    /// Maximum literal count in generated `IN` lists (default 4).
    pub fn max_in_list(mut self, n: usize) -> Self {
        self.max_in_list = n.max(2);
        self
    }

    /// Switches the featurizer to the extended schema v2 (operator-kind
    /// one-hots + per-predicate sample-bitmap features of the given width).
    /// Bits are clamped to the sample size. Schema v1 sketches remain the
    /// default and stay byte-compatible on the wire.
    pub fn feature_schema_v2(mut self, pred_bitmap_bits: usize) -> Self {
        self.schema_v2 = true;
        self.pred_bitmap_bits = pred_bitmap_bits;
        self
    }

    /// Runs the pipeline and returns the sketch.
    pub fn build(self) -> Result<DeepSketch, BuildError> {
        self.build_with_report().map(|(s, _)| s)
    }

    /// Runs the pipeline, also returning the cost breakdown.
    pub fn build_with_report(self) -> Result<(DeepSketch, BuildReport), BuildError> {
        self.build_with_progress(&mut |_| {})
    }

    /// Runs the pipeline, reporting progress events along the way.
    pub fn build_with_progress(
        self,
        on_progress: &mut dyn FnMut(BuildProgress),
    ) -> Result<(DeepSketch, BuildReport), BuildError> {
        let obs = ds_obs::global();
        let _build_span = obs.span("build");
        // Steps 1-2: samples + training queries.
        let t0 = Instant::now();
        let gen_span = obs.span("generate");
        let samples = sample_all(self.db, self.sample_size, self.seed ^ 0x5A);
        let mut gen_cfg = GeneratorConfig::new(self.predicate_columns.clone(), self.seed ^ 0x9E);
        gen_cfg.max_tables = match &self.tables {
            Some(t) => self.max_tables.min(t.len()),
            None => self.max_tables,
        };
        gen_cfg.max_predicates = self.max_predicates;
        gen_cfg.allowed_tables = self.tables.clone();
        gen_cfg.in_frac = self.in_frac;
        gen_cfg.like_frac = self.like_frac;
        gen_cfg.max_in_list = self.max_in_list;
        let mut generator = QueryGenerator::new(self.db, gen_cfg);
        let queries: Vec<Query> = generator.generate_batch(self.training_queries);
        let generation = t0.elapsed();
        drop(gen_span);
        if obs.is_enabled() {
            obs.count("build/queries_generated", queries.len() as u64);
        }
        on_progress(BuildProgress::QueriesGenerated {
            count: queries.len(),
        });

        // Step 3: execute for labels, in chunks so progress is observable.
        let t1 = Instant::now();
        let exec_span = obs.span("execute");
        let exec_queries: Vec<_> = queries.iter().map(Query::to_exec).collect();
        let chunk_size = (exec_queries.len() / 20).max(1);
        let mut labels = Vec::with_capacity(exec_queries.len());
        for chunk in exec_queries.chunks(chunk_size) {
            labels.extend(ds_storage::exec::count_batch(self.db, chunk, self.threads)?);
            on_progress(BuildProgress::LabelsExecuted {
                done: labels.len(),
                total: exec_queries.len(),
            });
        }
        let execution = t1.elapsed();
        drop(exec_span);

        // Step 4a: build the featurizer (vocabulary + encoders).
        let t2 = Instant::now();
        let feat_span = obs.span("featurize");
        let mut featurizer = Featurizer::build_with_options(
            self.db,
            &self.predicate_columns,
            self.sample_size,
            self.use_bitmaps,
        );
        if self.schema_v2 {
            featurizer = featurizer.with_schema_v2(self.pred_bitmap_bits);
        }
        let featurization = t2.elapsed();
        drop(feat_span);
        let normalizer = LabelNormalizer::fit(&labels);
        let mut model = MscnModel::new(
            featurizer.table_dim(),
            featurizer.join_dim(),
            featurizer.pred_dim(),
            MscnConfig {
                hidden: self.hidden_units,
                seed: self.seed ^ 0xC0DE,
            },
        );
        let train_cfg = TrainConfig {
            epochs: self.epochs,
            batch_size: self.batch_size,
            lr: self.learning_rate,
            seed: self.seed ^ 0x7EA1,
            validation_frac: self.validation_frac,
            loss: self.loss,
            early_stop_patience: self.early_stop_patience,
            restore_best: self.restore_best,
            grad_clip: None,
            lr_decay: None,
            threads: self.threads,
        };
        let total_epochs = self.epochs;
        let training = train_with_callback(
            &mut model,
            &featurizer,
            &samples,
            &queries,
            &labels,
            &normalizer,
            &train_cfg,
            &mut |stats| {
                on_progress(BuildProgress::EpochCompleted {
                    stats: stats.clone(),
                    total: total_epochs,
                })
            },
        );

        let mut sketch = DeepSketch::from_parts(
            model,
            featurizer,
            samples,
            normalizer,
            self.db.name().to_string(),
        );
        sketch.set_threads(self.threads);
        // The selected epoch's holdout q-error distribution ships inside
        // the sketch as the reference for online drift detection.
        if let Some(baseline) = crate::monitor::baseline_from_qerrors(&training.holdout_qerrors) {
            sketch.set_baseline(baseline);
        }
        // Freeze the serving artifact, gated on accuracy: a prefix of the
        // training queries probes frozen-vs-reference estimates, and a
        // gate miss leaves the sketch on the reference path with a
        // warning counter instead of shipping a drifted artifact.
        let probes = &queries[..queries.len().min(FREEZE_PROBES)];
        if let Err(worst) = sketch.freeze_gated(
            self.quantization,
            probes,
            crate::sketch::FREEZE_GATE_MAX_DELTA,
        ) {
            if obs.is_enabled() {
                obs.count("build/freeze_gate_failures", 1);
            }
            let _ = worst;
        }
        let footprint_bytes = sketch.footprint_bytes();
        let report = BuildReport {
            generation,
            execution,
            featurization,
            training,
            num_queries: queries.len(),
            footprint_bytes,
        };
        Ok((sketch, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{qerror, QErrorSummary};
    use ds_est::oracle::TrueCardinalityOracle;
    use ds_est::CardinalityEstimator;
    use ds_query::workloads::imdb_predicate_columns;
    use ds_storage::gen::{imdb_database, ImdbConfig};

    #[test]
    fn pipeline_produces_working_sketch_with_report() {
        let db = imdb_database(&ImdbConfig::tiny(2));
        let (sketch, report) = SketchBuilder::new(&db, imdb_predicate_columns(&db))
            .training_queries(300)
            .epochs(6)
            .sample_size(24)
            .hidden_units(24)
            .seed(11)
            .build_with_report()
            .expect("pipeline");
        assert_eq!(report.num_queries, 300);
        assert_eq!(report.training.epochs.len(), 6);
        assert!(report.footprint_bytes > 0);
        // The sketch should clearly beat random guessing on held-out
        // generated queries: its validation q-error must be finite and sane.
        let val = report.training.final_val_qerror().unwrap();
        assert!(val < 50.0, "val q-error {val}");
        let _ = sketch.estimate_batch(&ds_query::workloads::job_light::job_light_workload(&db, 1));
    }

    #[test]
    fn sketch_beats_wild_guessing_on_workload() {
        let db = imdb_database(&ImdbConfig::tiny(3));
        let sketch = SketchBuilder::new(&db, imdb_predicate_columns(&db))
            .training_queries(500)
            .epochs(10)
            .sample_size(32)
            .hidden_units(32)
            .seed(5)
            .build()
            .expect("pipeline");
        let oracle = TrueCardinalityOracle::new(&db);
        let wl = ds_query::workloads::job_light::job_light_workload(&db, 9);
        let qs: Vec<f64> = wl
            .iter()
            .map(|q| qerror(sketch.estimate(q), oracle.estimate(q)))
            .collect();
        let summary = QErrorSummary::from_qerrors(&qs);
        // Tiny data + tiny model: just require a sane median.
        assert!(summary.median < 25.0, "median q-error {}", summary.median);
    }

    #[test]
    fn progress_events_cover_all_steps_in_order() {
        use super::BuildProgress;
        let db = imdb_database(&ImdbConfig::tiny(9));
        let mut events = Vec::new();
        let (_, report) = SketchBuilder::new(&db, imdb_predicate_columns(&db))
            .training_queries(120)
            .epochs(3)
            .sample_size(8)
            .hidden_units(8)
            .seed(17)
            .build_with_progress(&mut |p| events.push(p))
            .expect("pipeline");
        // First event: queries generated.
        assert!(matches!(
            events.first(),
            Some(BuildProgress::QueriesGenerated { count: 120 })
        ));
        // Label progress is monotone and ends at the total.
        let label_done: Vec<usize> = events
            .iter()
            .filter_map(|e| match e {
                BuildProgress::LabelsExecuted { done, .. } => Some(*done),
                _ => None,
            })
            .collect();
        assert!(!label_done.is_empty());
        assert!(label_done.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*label_done.last().unwrap(), 120);
        // One epoch event per epoch, in order.
        let epochs: Vec<usize> = events
            .iter()
            .filter_map(|e| match e {
                BuildProgress::EpochCompleted { stats, total } => {
                    assert_eq!(*total, 3);
                    Some(stats.epoch)
                }
                _ => None,
            })
            .collect();
        assert_eq!(epochs, vec![0, 1, 2]);
        assert_eq!(report.training.epochs.len(), 3);
    }

    #[test]
    fn deterministic_given_seed() {
        let db = imdb_database(&ImdbConfig::tiny(4));
        let build = |seed| {
            SketchBuilder::new(&db, imdb_predicate_columns(&db))
                .training_queries(100)
                .epochs(2)
                .sample_size(8)
                .hidden_units(8)
                .seed(seed)
                .build()
                .expect("pipeline")
        };
        let a = build(1);
        let b = build(1);
        assert_eq!(a.to_bytes(), b.to_bytes());
        let c = build(2);
        assert_ne!(a.to_bytes(), c.to_bytes());
    }

    #[test]
    fn v2_schema_with_extended_ops_trains_and_roundtrips() {
        let db = imdb_database(&ImdbConfig::tiny(7));
        let sketch = SketchBuilder::new(&db, imdb_predicate_columns(&db))
            .training_queries(200)
            .epochs(3)
            .sample_size(16)
            .hidden_units(16)
            .extended_ops(0.2, 0.2)
            .feature_schema_v2(8)
            .seed(21)
            .build()
            .expect("pipeline");
        assert_eq!(
            sketch.featurizer().schema(),
            crate::featurize::FeatureSchema::V2
        );
        assert_eq!(sketch.featurizer().pred_bitmap_bits(), 8);
        let bytes = sketch.to_bytes();
        let back = crate::sketch::DeepSketch::from_bytes(&bytes).expect("roundtrip");
        assert_eq!(back.to_bytes(), bytes);
        // IN and LIKE queries flow through the full estimate path.
        for sql in [
            "SELECT COUNT(*) FROM title WHERE title.production_year IN (1990, 1995, 2000)",
            "SELECT COUNT(*) FROM title WHERE title.production_year LIKE '19%'",
        ] {
            let q = ds_query::parser::parse_query(&db, sql).unwrap();
            let e = sketch.estimate(&q);
            assert!(e.is_finite() && e >= 1.0, "{sql} -> {e}");
        }
    }

    #[test]
    fn threads_do_not_change_results() {
        let db = imdb_database(&ImdbConfig::tiny(5));
        let build = |threads| {
            SketchBuilder::new(&db, imdb_predicate_columns(&db))
                .training_queries(80)
                .epochs(2)
                .sample_size(8)
                .hidden_units(8)
                .threads(threads)
                .seed(6)
                .build()
                .expect("pipeline")
        };
        assert_eq!(build(1).to_bytes(), build(4).to_bytes());
    }
}
