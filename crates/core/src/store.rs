//! The sketch registry behind the demo's `SHOW SKETCHES` pane.
//!
//! §3 of the paper: "we offer pre-built (high quality) models that can be
//! queried right away" and "we allow users to train new models while
//! querying existing ones". The [`SketchStore`] provides exactly that: a
//! named collection of sketches that can be queried concurrently while new
//! sketches train on background threads, plus directory persistence for the
//! pre-built models.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use parking_lot::RwLock;

use ds_est::{CardinalityEstimator, EstimateError};
use ds_nn::serialize::DecodeError;
use ds_query::query::Query;
use ds_storage::catalog::Database;

use crate::builder::{BuildError, BuildReport, SketchBuilder};
use crate::sketch::DeepSketch;

/// Status of a named sketch in the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SketchStatus {
    /// Training is running on a background thread.
    Training,
    /// Trained and queryable.
    Ready,
    /// Background training failed.
    Failed(String),
}

/// Errors raised by store operations.
#[derive(Debug)]
pub enum StoreError {
    /// No sketch registered under this name.
    UnknownSketch(String),
    /// The sketch exists but is still training (or failed).
    NotReady(String, SketchStatus),
    /// A sketch with this name already exists.
    Duplicate(String),
    /// Disk I/O failed.
    Io(std::io::Error),
    /// A persisted sketch failed to decode.
    Decode(DecodeError),
    /// Training failed.
    Build(BuildError),
    /// The sketch was found but could not answer the query.
    Estimate(EstimateError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::UnknownSketch(n) => write!(f, "unknown sketch '{n}'"),
            StoreError::NotReady(n, s) => write!(f, "sketch '{n}' is not ready: {s:?}"),
            StoreError::Duplicate(n) => write!(f, "sketch '{n}' already exists"),
            StoreError::Io(e) => write!(f, "sketch store I/O error: {e}"),
            StoreError::Decode(e) => write!(f, "sketch decode error: {e}"),
            StoreError::Build(e) => write!(f, "sketch training failed: {e}"),
            StoreError::Estimate(e) => write!(f, "estimation failed: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

enum Slot {
    Training {
        // Mutex only to make the containing map `Sync`; the receiver is
        // ever touched under the slots write lock.
        rx: Mutex<Receiver<Result<(DeepSketch, BuildReport), String>>>,
        handle: Option<JoinHandle<()>>,
    },
    Ready {
        sketch: Arc<DeepSketch>,
        report: Option<BuildReport>,
    },
    Failed(String),
}

/// A named, concurrently queryable collection of Deep Sketches with
/// background training. `Sync`: share one store across threads.
pub struct SketchStore {
    slots: RwLock<HashMap<String, Slot>>,
}

impl Default for SketchStore {
    fn default() -> Self {
        Self::new()
    }
}

impl SketchStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self {
            slots: RwLock::new(HashMap::new()),
        }
    }

    /// Registers an already-trained sketch under `name` ("pre-built
    /// models that can be queried right away").
    pub fn insert(&self, name: impl Into<String>, sketch: DeepSketch) -> Result<(), StoreError> {
        let name = name.into();
        let mut slots = self.slots.write();
        if slots.contains_key(&name) {
            return Err(StoreError::Duplicate(name));
        }
        slots.insert(
            name,
            Slot::Ready {
                sketch: Arc::new(sketch),
                report: None,
            },
        );
        ds_obs::global().count("store/inserts", 1);
        Ok(())
    }

    /// Starts training a sketch on a background thread; the store stays
    /// fully queryable meanwhile. The builder must borrow a `'static`
    /// database (use an [`Arc<Database>`]).
    pub fn train_in_background(
        &self,
        name: impl Into<String>,
        db: Arc<Database>,
        configure: impl FnOnce(SketchBuilder<'_>) -> SketchBuilder<'_> + Send + 'static,
        predicate_columns: Vec<ds_storage::catalog::ColRef>,
    ) -> Result<(), StoreError> {
        let name = name.into();
        {
            let slots = self.slots.read();
            if slots.contains_key(&name) {
                return Err(StoreError::Duplicate(name));
            }
        }
        let (tx, rx): (Sender<_>, Receiver<_>) = channel();
        let handle = std::thread::spawn(move || {
            let builder = configure(SketchBuilder::new(&db, predicate_columns));
            let result = builder.build_with_report().map_err(|e| e.to_string());
            let _ = tx.send(result);
        });
        let mut slots = self.slots.write();
        if slots.contains_key(&name) {
            // Raced with a concurrent insert; let the thread finish and drop.
            return Err(StoreError::Duplicate(name));
        }
        slots.insert(
            name,
            Slot::Training {
                rx: Mutex::new(rx),
                handle: Some(handle),
            },
        );
        Ok(())
    }

    /// Polls training threads for completion, then reports every sketch's
    /// status, sorted by name (the `SHOW SKETCHES` listing).
    pub fn list(&self) -> Vec<(String, SketchStatus)> {
        self.poll();
        let slots = self.slots.read();
        let mut out: Vec<(String, SketchStatus)> = slots
            .iter()
            .map(|(n, s)| {
                let status = match s {
                    Slot::Training { .. } => SketchStatus::Training,
                    Slot::Ready { .. } => SketchStatus::Ready,
                    Slot::Failed(e) => SketchStatus::Failed(e.clone()),
                };
                (n.clone(), status)
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Status of one sketch.
    pub fn status(&self, name: &str) -> Result<SketchStatus, StoreError> {
        self.poll();
        let slots = self.slots.read();
        match slots.get(name) {
            None => Err(StoreError::UnknownSketch(name.to_string())),
            Some(Slot::Training { .. }) => Ok(SketchStatus::Training),
            Some(Slot::Ready { .. }) => Ok(SketchStatus::Ready),
            Some(Slot::Failed(e)) => Ok(SketchStatus::Failed(e.clone())),
        }
    }

    /// Fetches a ready sketch for querying.
    pub fn get(&self, name: &str) -> Result<Arc<DeepSketch>, StoreError> {
        self.poll();
        let slots = self.slots.read();
        match slots.get(name) {
            None => Err(StoreError::UnknownSketch(name.to_string())),
            Some(Slot::Ready { sketch, .. }) => Ok(Arc::clone(sketch)),
            Some(Slot::Training { .. }) => Err(StoreError::NotReady(
                name.to_string(),
                SketchStatus::Training,
            )),
            Some(Slot::Failed(e)) => Err(StoreError::NotReady(
                name.to_string(),
                SketchStatus::Failed(e.clone()),
            )),
        }
    }

    /// Convenience: estimate with a named sketch. Malformed queries (tables
    /// or columns outside the sketch's vocabulary) surface as
    /// [`StoreError::Estimate`] rather than panicking — this is the serving
    /// route.
    pub fn estimate(&self, name: &str, query: &Query) -> Result<f64, StoreError> {
        self.get(name)?
            .try_estimate(query)
            .map_err(StoreError::Estimate)
    }

    /// Batched convenience: one coalesced forward pass through a named
    /// sketch, with per-query results (bit-identical to looping
    /// [`SketchStore::estimate`]).
    pub fn estimate_batch(
        &self,
        name: &str,
        queries: &[Query],
    ) -> Result<Vec<Result<f64, EstimateError>>, StoreError> {
        Ok(self.get(name)?.try_estimate_batch(queries))
    }

    /// A [`CardinalityEstimator`] handle bound to one named sketch, so the
    /// store plugs into anything consuming the common trait. The handle
    /// resolves the name on every call: it stays valid across background
    /// retraining and swaps to the new model the moment it becomes ready.
    pub fn handle<'a>(&'a self, name: &str) -> StoreHandle<'a> {
        StoreHandle {
            store: self,
            name: name.to_string(),
        }
    }

    /// The build report of a background-trained sketch, if available.
    pub fn report(&self, name: &str) -> Option<BuildReport> {
        self.poll();
        let slots = self.slots.read();
        match slots.get(name) {
            Some(Slot::Ready { report, .. }) => report.clone(),
            _ => None,
        }
    }

    /// Blocks until `name` finishes training (ready or failed).
    pub fn wait(&self, name: &str) -> Result<Arc<DeepSketch>, StoreError> {
        // Take the join handle out so we can block without holding the lock.
        let handle = {
            let mut slots = self.slots.write();
            match slots.get_mut(name) {
                None => return Err(StoreError::UnknownSketch(name.to_string())),
                Some(Slot::Training { handle, .. }) => handle.take(),
                Some(_) => None,
            }
        };
        if let Some(h) = handle {
            let _ = h.join();
        }
        self.poll();
        self.get(name)
    }

    /// Removes a sketch (any state). Returns true if it existed.
    pub fn remove(&self, name: &str) -> bool {
        let existed = self.slots.write().remove(name).is_some();
        if existed {
            ds_obs::global().count("store/removes", 1);
        }
        existed
    }

    /// Persists every ready sketch to `dir` as `<name>.sketch`.
    pub fn save_dir(&self, dir: &Path) -> Result<usize, StoreError> {
        self.poll();
        std::fs::create_dir_all(dir)?;
        let slots = self.slots.read();
        let mut saved = 0;
        for (name, slot) in slots.iter() {
            if let Slot::Ready { sketch, .. } = slot {
                std::fs::write(dir.join(format!("{name}.sketch")), sketch.to_bytes())?;
                saved += 1;
            }
        }
        Ok(saved)
    }

    /// Loads every `*.sketch` file from `dir` ("pre-built models").
    /// Existing names are skipped; returns the loaded names.
    pub fn load_dir(&self, dir: &Path) -> Result<Vec<String>, StoreError> {
        let mut loaded = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let path: PathBuf = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("sketch") {
                continue;
            }
            let Some(name) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            let bytes = std::fs::read(&path)?;
            let sketch = DeepSketch::from_bytes(&bytes).map_err(StoreError::Decode)?;
            if self.insert(name.to_string(), sketch).is_ok() {
                loaded.push(name.to_string());
            }
        }
        loaded.sort();
        Ok(loaded)
    }

    /// Harvests finished background trainings into ready/failed slots.
    fn poll(&self) {
        let mut slots = self.slots.write();
        let names: Vec<String> = slots
            .iter()
            .filter(|(_, s)| matches!(s, Slot::Training { .. }))
            .map(|(n, _)| n.clone())
            .collect();
        for name in names {
            let done = {
                let Slot::Training { rx, .. } = slots.get_mut(&name).expect("just listed") else {
                    continue;
                };
                let rx = rx.get_mut().expect("training receiver mutex");
                match rx.try_recv() {
                    Ok(result) => Some(result),
                    Err(TryRecvError::Empty) => None,
                    Err(TryRecvError::Disconnected) => {
                        Some(Err("training thread vanished".to_string()))
                    }
                }
            };
            if let Some(result) = done {
                let obs = ds_obs::global();
                let slot = match result {
                    Ok((sketch, report)) => {
                        // A Training slot becoming Ready is the atomic swap
                        // serving traffic observes.
                        obs.count("store/swaps_ready", 1);
                        Slot::Ready {
                            sketch: Arc::new(sketch),
                            report: Some(report),
                        }
                    }
                    Err(e) => {
                        obs.count("store/swaps_failed", 1);
                        Slot::Failed(e)
                    }
                };
                slots.insert(name, slot);
            }
        }
    }
}

/// A named-sketch view of a [`SketchStore`] implementing
/// [`CardinalityEstimator`] — the store's entry into the workspace-wide
/// estimator interface. Store-level failures (unknown name, still
/// training) map to [`EstimateError::Unavailable`].
pub struct StoreHandle<'a> {
    store: &'a SketchStore,
    name: String,
}

impl StoreHandle<'_> {
    /// The sketch name this handle resolves.
    pub fn sketch_name(&self) -> &str {
        &self.name
    }

    fn resolve(&self) -> Result<Arc<DeepSketch>, EstimateError> {
        self.store.get(&self.name).map_err(|e| match e {
            StoreError::Decode(d) => EstimateError::Decode(d.to_string()),
            other => EstimateError::Unavailable(other.to_string()),
        })
    }
}

impl CardinalityEstimator for StoreHandle<'_> {
    fn name(&self) -> &str {
        &self.name
    }

    /// Infallible path: unavailable or unanswerable queries degrade to the
    /// 1.0 floor every estimator clamps to.
    fn estimate(&self, query: &Query) -> f64 {
        self.try_estimate(query).unwrap_or(1.0)
    }

    fn try_estimate(&self, query: &Query) -> Result<f64, EstimateError> {
        self.resolve()?.try_estimate(query)
    }

    fn estimate_batch(&self, queries: &[Query]) -> Vec<f64> {
        match self.resolve() {
            Ok(sketch) => sketch
                .try_estimate_batch(queries)
                .into_iter()
                .map(|r| r.unwrap_or(1.0))
                .collect(),
            Err(_) => vec![1.0; queries.len()],
        }
    }

    fn try_estimate_batch(&self, queries: &[Query]) -> Vec<Result<f64, EstimateError>> {
        match self.resolve() {
            Ok(sketch) => sketch.try_estimate_batch(queries),
            Err(e) => queries.iter().map(|_| Err(e.clone())).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_query::parser::parse_query;
    use ds_query::workloads::imdb_predicate_columns;
    use ds_storage::gen::{imdb_database, ImdbConfig};

    fn tiny_sketch(db: &Database, seed: u64) -> DeepSketch {
        SketchBuilder::new(db, imdb_predicate_columns(db))
            .training_queries(120)
            .epochs(2)
            .sample_size(8)
            .hidden_units(8)
            .seed(seed)
            .build()
            .expect("tiny sketch")
    }

    #[test]
    fn insert_get_estimate() {
        let db = imdb_database(&ImdbConfig::tiny(1));
        let store = SketchStore::new();
        store.insert("imdb", tiny_sketch(&db, 1)).unwrap();
        assert_eq!(store.status("imdb").unwrap(), SketchStatus::Ready);
        let q = parse_query(&db, "SELECT COUNT(*) FROM title WHERE title.kind_id = 1").unwrap();
        assert!(store.estimate("imdb", &q).unwrap() >= 1.0);
        assert!(matches!(
            store.estimate("nope", &q),
            Err(StoreError::UnknownSketch(_))
        ));
    }

    #[test]
    fn handle_is_a_cardinality_estimator() {
        let db = imdb_database(&ImdbConfig::tiny(6));
        let store = SketchStore::new();
        store.insert("imdb", tiny_sketch(&db, 3)).unwrap();
        let q = parse_query(&db, "SELECT COUNT(*) FROM title WHERE title.kind_id = 1").unwrap();

        let handle = store.handle("imdb");
        assert_eq!(handle.name(), "imdb");
        assert_eq!(handle.sketch_name(), "imdb");
        let direct = store.get("imdb").unwrap().estimate_one(&q);
        assert_eq!(handle.estimate(&q), direct);
        assert_eq!(handle.try_estimate(&q), Ok(direct));
        assert_eq!(
            handle.estimate_batch(std::slice::from_ref(&q)),
            vec![direct]
        );
        assert_eq!(
            handle.try_estimate_batch(std::slice::from_ref(&q)),
            vec![Ok(direct)]
        );

        // A handle to a missing sketch degrades (estimate) or errors
        // (try_estimate) — it never panics.
        let missing = store.handle("nope");
        assert_eq!(missing.estimate(&q), 1.0);
        assert!(matches!(
            missing.try_estimate(&q),
            Err(EstimateError::Unavailable(_))
        ));
        assert_eq!(missing.estimate_batch(std::slice::from_ref(&q)), vec![1.0]);
        assert!(missing.try_estimate_batch(std::slice::from_ref(&q))[0].is_err());
    }

    #[test]
    fn store_estimate_batch_matches_singles() {
        let db = imdb_database(&ImdbConfig::tiny(7));
        let store = SketchStore::new();
        store.insert("s", tiny_sketch(&db, 4)).unwrap();
        let wl = ds_query::workloads::job_light::job_light_workload(&db, 3);
        let batch = store.estimate_batch("s", &wl).unwrap();
        for (q, b) in wl.iter().zip(batch) {
            assert_eq!(b, Ok(store.estimate("s", q).unwrap()));
        }
        assert!(matches!(
            store.estimate_batch("missing", &wl),
            Err(StoreError::UnknownSketch(_))
        ));
    }

    #[test]
    fn duplicate_names_rejected() {
        let db = imdb_database(&ImdbConfig::tiny(2));
        let store = SketchStore::new();
        store.insert("a", tiny_sketch(&db, 1)).unwrap();
        assert!(matches!(
            store.insert("a", tiny_sketch(&db, 2)),
            Err(StoreError::Duplicate(_))
        ));
    }

    #[test]
    fn background_training_while_querying() {
        let db = Arc::new(imdb_database(&ImdbConfig::tiny(3)));
        let store = SketchStore::new();
        store.insert("prebuilt", tiny_sketch(&db, 5)).unwrap();

        let cols = imdb_predicate_columns(&db);
        store
            .train_in_background(
                "fresh",
                Arc::clone(&db),
                |b| {
                    b.training_queries(150)
                        .epochs(2)
                        .sample_size(8)
                        .hidden_units(8)
                        .seed(9)
                },
                cols,
            )
            .unwrap();

        // The pre-built model keeps answering while 'fresh' trains.
        let q = parse_query(&db, "SELECT COUNT(*) FROM title WHERE title.kind_id = 1").unwrap();
        assert!(store.estimate("prebuilt", &q).unwrap() >= 1.0);

        // Eventually the new sketch becomes ready.
        let fresh = store.wait("fresh").unwrap();
        assert!(fresh.estimate_one(&q) >= 1.0);
        assert_eq!(store.status("fresh").unwrap(), SketchStatus::Ready);
        assert!(store.report("fresh").is_some());
        let listing = store.list();
        assert_eq!(listing.len(), 2);
        assert!(listing.iter().all(|(_, s)| *s == SketchStatus::Ready));
    }

    #[test]
    fn save_and_load_directory() {
        let db = imdb_database(&ImdbConfig::tiny(4));
        let store = SketchStore::new();
        store.insert("one", tiny_sketch(&db, 1)).unwrap();
        store.insert("two", tiny_sketch(&db, 2)).unwrap();
        let dir = std::env::temp_dir().join(format!("ds_store_test_{}", std::process::id()));
        let saved = store.save_dir(&dir).unwrap();
        assert_eq!(saved, 2);

        let restored = SketchStore::new();
        let names = restored.load_dir(&dir).unwrap();
        assert_eq!(names, vec!["one".to_string(), "two".to_string()]);
        let q = parse_query(&db, "SELECT COUNT(*) FROM title").unwrap();
        assert_eq!(
            store.estimate("one", &q).unwrap(),
            restored.estimate("one", &q).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn remove_and_unknown_statuses() {
        let db = imdb_database(&ImdbConfig::tiny(5));
        let store = SketchStore::new();
        store.insert("gone", tiny_sketch(&db, 1)).unwrap();
        assert!(store.remove("gone"));
        assert!(!store.remove("gone"));
        assert!(matches!(
            store.status("gone"),
            Err(StoreError::UnknownSketch(_))
        ));
    }
}
