//! The sketch registry behind the demo's `SHOW SKETCHES` pane.
//!
//! §3 of the paper: "we offer pre-built (high quality) models that can be
//! queried right away" and "we allow users to train new models while
//! querying existing ones". The [`SketchStore`] provides exactly that: a
//! named collection of sketches that can be queried concurrently while new
//! sketches train on background threads, plus directory persistence for the
//! pre-built models.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use parking_lot::RwLock;

use ds_est::{CardinalityEstimator, EstimateError};
use ds_nn::serialize::DecodeError;
use ds_query::query::Query;
use ds_storage::catalog::Database;

use crate::builder::{BuildError, BuildReport, SketchBuilder};
use crate::monitor::{MonitorRegistry, QErrorMonitor};
use crate::sketch::DeepSketch;
use crate::snapshot::{self, SketchSnapshot, SnapshotError};

/// Status of a named sketch in the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SketchStatus {
    /// Training is running on a background thread.
    Training,
    /// Trained and queryable.
    Ready,
    /// Background training failed.
    Failed(String),
}

/// Errors raised by store operations.
#[derive(Debug)]
pub enum StoreError {
    /// No sketch registered under this name.
    UnknownSketch(String),
    /// The sketch exists but is still training (or failed).
    NotReady(String, SketchStatus),
    /// A sketch with this name already exists.
    Duplicate(String),
    /// Disk I/O failed.
    Io(std::io::Error),
    /// A persisted sketch failed to decode.
    Decode(DecodeError),
    /// Training failed.
    Build(BuildError),
    /// The sketch was found but could not answer the query.
    Estimate(EstimateError),
    /// A crash-safe snapshot failed to write or read.
    Snapshot(SnapshotError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::UnknownSketch(n) => write!(f, "unknown sketch '{n}'"),
            StoreError::NotReady(n, s) => write!(f, "sketch '{n}' is not ready: {s:?}"),
            StoreError::Duplicate(n) => write!(f, "sketch '{n}' already exists"),
            StoreError::Io(e) => write!(f, "sketch store I/O error: {e}"),
            StoreError::Decode(e) => write!(f, "sketch decode error: {e}"),
            StoreError::Build(e) => write!(f, "sketch training failed: {e}"),
            StoreError::Estimate(e) => write!(f, "estimation failed: {e}"),
            StoreError::Snapshot(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<SnapshotError> for StoreError {
    fn from(e: SnapshotError) -> Self {
        StoreError::Snapshot(e)
    }
}

enum Slot {
    Training {
        // Mutex only to make the containing map `Sync`; the receiver is
        // ever touched under the slots write lock.
        rx: Mutex<Receiver<Result<(DeepSketch, BuildReport), String>>>,
        handle: Option<JoinHandle<()>>,
    },
    Ready {
        sketch: Arc<DeepSketch>,
        report: Option<BuildReport>,
        /// Store-wide monotonic generation assigned when this model became
        /// ready. Every insert, recovery, and background-training swap gets
        /// a fresh generation, so "same name" never implies "same model":
        /// consumers that must not mix models across a swap (the serving
        /// layer's request coalescer) key on the generation.
        generation: u64,
    },
    Failed(String),
}

/// A named, concurrently queryable collection of Deep Sketches with
/// background training. `Sync`: share one store across threads.
pub struct SketchStore {
    slots: RwLock<HashMap<String, Slot>>,
    /// Last generation handed out; see [`Slot::Ready::generation`].
    generations: AtomicU64,
}

impl Default for SketchStore {
    fn default() -> Self {
        Self::new()
    }
}

/// Why [`SketchStore::open_dir`] refused a snapshot file and moved it to
/// `<dir>/quarantine/`. The reason is typed so operators (and the serving
/// layer's startup log) can tell data corruption apart from a
/// configuration problem without re-reading the bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuarantineReason {
    /// The bytes failed to decode: truncated, bit-flipped, or a checksum
    /// mismatch.
    Corrupt(String),
    /// The checksummed body is valid but disagrees with the filename about
    /// the sketch name or generation — the filename is untrusted and lost.
    NameMismatch,
    /// The embedded rolling-monitor state failed to restore.
    MonitorState,
    /// The sketch decodes cleanly but its feature schema does not match
    /// the vocabulary this server was configured to serve — loading it
    /// would answer queries with features the model was never trained on.
    SchemaMismatch {
        /// The schema the server expects.
        expected: crate::featurize::FeatureSchema,
        /// The schema the snapshot actually carries.
        found: crate::featurize::FeatureSchema,
    },
}

impl std::fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuarantineReason::Corrupt(e) => write!(f, "corrupt snapshot: {e}"),
            QuarantineReason::NameMismatch => {
                write!(f, "snapshot body disagrees with its filename")
            }
            QuarantineReason::MonitorState => write!(f, "monitor state failed to restore"),
            QuarantineReason::SchemaMismatch { expected, found } => write!(
                f,
                "feature schema mismatch: server vocabulary expects {expected:?}, snapshot carries {found:?}"
            ),
        }
    }
}

/// What [`SketchStore::open_dir`] found on disk: the sketches it
/// recovered, the corrupt files it moved aside, and the debris it cleaned
/// up. Recovery never fails startup because of a bad file — it degrades to
/// an older generation (or skips the sketch) and reports what happened.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// Recovered sketches: `(name, generation)` actually serving.
    pub loaded: Vec<(String, u64)>,
    /// Corrupt or mismatched snapshot files moved to `<dir>/quarantine/`,
    /// each with the typed reason it was refused.
    pub quarantined: Vec<(PathBuf, QuarantineReason)>,
    /// Valid snapshots superseded by a newer valid generation, left in
    /// place (they are the rollback target if the newest is later lost).
    pub stale: Vec<PathBuf>,
    /// In-flight `.tmp` files from an interrupted write, deleted (they
    /// were never durable, so removing them loses nothing).
    pub removed_temps: Vec<PathBuf>,
}

/// What [`SketchStore::swap`] displaced: the previous model (kept alive by
/// its `Arc`, so in-flight estimates and a later rollback both keep
/// working) and the generations on either side of the swap.
#[derive(Debug, Clone)]
pub struct SwapOutcome {
    /// The model that was serving until this swap.
    pub previous: Arc<DeepSketch>,
    /// The generation the previous model served under.
    pub previous_generation: u64,
    /// The fresh generation the replacement now serves under.
    pub generation: u64,
}

/// What [`SketchStore::adopt_snapshot`] decided about an offered snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdoptOutcome {
    /// The snapshot's generation won and now serves under its name.
    Adopted {
        /// The generation now serving.
        generation: u64,
    },
    /// A generation at least as new already serves; the offer was ignored.
    Stale {
        /// The generation already serving.
        current: u64,
        /// The generation that was offered.
        offered: u64,
    },
}

impl SketchStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self {
            slots: RwLock::new(HashMap::new()),
            generations: AtomicU64::new(0),
        }
    }

    fn next_generation(&self) -> u64 {
        self.generations.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Registers an already-trained sketch under `name` ("pre-built
    /// models that can be queried right away").
    pub fn insert(&self, name: impl Into<String>, sketch: DeepSketch) -> Result<(), StoreError> {
        let generation = self.next_generation();
        self.insert_with_generation(name, sketch, generation)
    }

    fn insert_with_generation(
        &self,
        name: impl Into<String>,
        sketch: DeepSketch,
        generation: u64,
    ) -> Result<(), StoreError> {
        let name = name.into();
        let mut slots = self.slots.write();
        if slots.contains_key(&name) {
            return Err(StoreError::Duplicate(name));
        }
        slots.insert(
            name,
            Slot::Ready {
                sketch: Arc::new(sketch),
                report: None,
                generation,
            },
        );
        ds_obs::global().count("store/inserts", 1);
        Ok(())
    }

    /// Starts training a sketch on a background thread; the store stays
    /// fully queryable meanwhile. The builder must borrow a `'static`
    /// database (use an [`Arc<Database>`]).
    pub fn train_in_background(
        &self,
        name: impl Into<String>,
        db: Arc<Database>,
        configure: impl FnOnce(SketchBuilder<'_>) -> SketchBuilder<'_> + Send + 'static,
        predicate_columns: Vec<ds_storage::catalog::ColRef>,
    ) -> Result<(), StoreError> {
        let name = name.into();
        {
            let slots = self.slots.read();
            if slots.contains_key(&name) {
                return Err(StoreError::Duplicate(name));
            }
        }
        let (tx, rx): (Sender<_>, Receiver<_>) = channel();
        let handle = std::thread::spawn(move || {
            let builder = configure(SketchBuilder::new(&db, predicate_columns));
            let result = builder.build_with_report().map_err(|e| e.to_string());
            let _ = tx.send(result);
        });
        let mut slots = self.slots.write();
        if slots.contains_key(&name) {
            // Raced with a concurrent insert; let the thread finish and drop.
            return Err(StoreError::Duplicate(name));
        }
        slots.insert(
            name,
            Slot::Training {
                rx: Mutex::new(rx),
                handle: Some(handle),
            },
        );
        Ok(())
    }

    /// Polls training threads for completion, then reports every sketch's
    /// status, sorted by name (the `SHOW SKETCHES` listing).
    pub fn list(&self) -> Vec<(String, SketchStatus)> {
        self.poll();
        let slots = self.slots.read();
        let mut out: Vec<(String, SketchStatus)> = slots
            .iter()
            .map(|(n, s)| {
                let status = match s {
                    Slot::Training { .. } => SketchStatus::Training,
                    Slot::Ready { .. } => SketchStatus::Ready,
                    Slot::Failed(e) => SketchStatus::Failed(e.clone()),
                };
                (n.clone(), status)
            })
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Reserves a fresh, never-served generation from the store's counter
    /// without publishing anything under it. The lifecycle tier keys
    /// shadow-scoring batches on a reserved generation so mirrored
    /// candidate traffic can never coalesce with live traffic (the batcher
    /// only merges jobs that share a key).
    pub fn reserve_generation(&self) -> u64 {
        self.next_generation()
    }

    /// Atomically replaces the ready model under `name` with `sketch`,
    /// assigning a fresh generation — the hot-swap primitive behind the
    /// retrain lifecycle. Requests already holding the old `Arc` finish
    /// against the old model; every later lookup sees the new one. The
    /// generation bump invalidates generation-keyed consumers (estimate
    /// cache, request coalescer) exactly like a background-training swap.
    /// Rolling back is just another `swap` with [`SwapOutcome::previous`]:
    /// the restored model serves under a *newer* generation, never a
    /// recycled one.
    pub fn swap(&self, name: &str, sketch: Arc<DeepSketch>) -> Result<SwapOutcome, StoreError> {
        let mut slots = self.slots.write();
        match slots.get_mut(name) {
            None => Err(StoreError::UnknownSketch(name.to_string())),
            Some(Slot::Ready {
                sketch: slot_sketch,
                report,
                generation,
            }) => {
                let next = self.next_generation();
                let previous = std::mem::replace(slot_sketch, sketch);
                let previous_generation = *generation;
                *generation = next;
                // The displaced model's build report no longer describes
                // what serves.
                *report = None;
                ds_obs::global().count("store/hot_swaps", 1);
                Ok(SwapOutcome {
                    previous,
                    previous_generation,
                    generation: next,
                })
            }
            Some(Slot::Training { .. }) => Err(StoreError::NotReady(
                name.to_string(),
                SketchStatus::Training,
            )),
            Some(Slot::Failed(e)) => Err(StoreError::NotReady(
                name.to_string(),
                SketchStatus::Failed(e.clone()),
            )),
        }
    }

    /// Status of one sketch.
    pub fn status(&self, name: &str) -> Result<SketchStatus, StoreError> {
        self.poll();
        let slots = self.slots.read();
        match slots.get(name) {
            None => Err(StoreError::UnknownSketch(name.to_string())),
            Some(Slot::Training { .. }) => Ok(SketchStatus::Training),
            Some(Slot::Ready { .. }) => Ok(SketchStatus::Ready),
            Some(Slot::Failed(e)) => Ok(SketchStatus::Failed(e.clone())),
        }
    }

    /// Fetches a ready sketch for querying.
    pub fn get(&self, name: &str) -> Result<Arc<DeepSketch>, StoreError> {
        self.get_with_generation(name).map(|(sketch, _)| sketch)
    }

    /// Fetches a ready sketch together with its store generation. The
    /// generation uniquely identifies *this* model: after a remove/insert
    /// or background-training swap under the same name, the generation
    /// changes, so holders can detect (and refuse to mix state across)
    /// model swaps.
    pub fn get_with_generation(&self, name: &str) -> Result<(Arc<DeepSketch>, u64), StoreError> {
        self.poll();
        let slots = self.slots.read();
        match slots.get(name) {
            None => Err(StoreError::UnknownSketch(name.to_string())),
            Some(Slot::Ready {
                sketch, generation, ..
            }) => Ok((Arc::clone(sketch), *generation)),
            Some(Slot::Training { .. }) => Err(StoreError::NotReady(
                name.to_string(),
                SketchStatus::Training,
            )),
            Some(Slot::Failed(e)) => Err(StoreError::NotReady(
                name.to_string(),
                SketchStatus::Failed(e.clone()),
            )),
        }
    }

    /// The generation of a ready sketch, or `None` while it is missing,
    /// training, or failed.
    pub fn generation(&self, name: &str) -> Option<u64> {
        self.get_with_generation(name).ok().map(|(_, g)| g)
    }

    /// Convenience: estimate with a named sketch. Malformed queries (tables
    /// or columns outside the sketch's vocabulary) surface as
    /// [`StoreError::Estimate`] rather than panicking — this is the serving
    /// route.
    pub fn estimate(&self, name: &str, query: &Query) -> Result<f64, StoreError> {
        self.get(name)?
            .try_estimate(query)
            .map_err(StoreError::Estimate)
    }

    /// Batched convenience: one coalesced forward pass through a named
    /// sketch, with per-query results (bit-identical to looping
    /// [`SketchStore::estimate`]).
    pub fn estimate_batch(
        &self,
        name: &str,
        queries: &[Query],
    ) -> Result<Vec<Result<f64, EstimateError>>, StoreError> {
        Ok(self.get(name)?.try_estimate_batch(queries))
    }

    /// A [`CardinalityEstimator`] handle bound to one named sketch, so the
    /// store plugs into anything consuming the common trait. The handle
    /// resolves the name on every call: it stays valid across background
    /// retraining and swaps to the new model the moment it becomes ready.
    pub fn handle<'a>(&'a self, name: &str) -> StoreHandle<'a> {
        StoreHandle {
            store: self,
            name: name.to_string(),
        }
    }

    /// The build report of a background-trained sketch, if available.
    pub fn report(&self, name: &str) -> Option<BuildReport> {
        self.poll();
        let slots = self.slots.read();
        match slots.get(name) {
            Some(Slot::Ready { report, .. }) => report.clone(),
            _ => None,
        }
    }

    /// Blocks until `name` finishes training (ready or failed).
    pub fn wait(&self, name: &str) -> Result<Arc<DeepSketch>, StoreError> {
        // Take the join handle out so we can block without holding the lock.
        let handle = {
            let mut slots = self.slots.write();
            match slots.get_mut(name) {
                None => return Err(StoreError::UnknownSketch(name.to_string())),
                Some(Slot::Training { handle, .. }) => handle.take(),
                Some(_) => None,
            }
        };
        if let Some(h) = handle {
            let _ = h.join();
        }
        self.poll();
        self.get(name)
    }

    /// Removes a sketch (any state). Returns true if it existed.
    pub fn remove(&self, name: &str) -> bool {
        let existed = self.slots.write().remove(name).is_some();
        if existed {
            ds_obs::global().count("store/removes", 1);
        }
        existed
    }

    /// Persists every ready sketch to `dir` as `<name>.sketch`.
    pub fn save_dir(&self, dir: &Path) -> Result<usize, StoreError> {
        self.poll();
        std::fs::create_dir_all(dir)?;
        let slots = self.slots.read();
        let mut saved = 0;
        for (name, slot) in slots.iter() {
            if let Slot::Ready { sketch, .. } = slot {
                std::fs::write(dir.join(format!("{name}.sketch")), sketch.to_bytes())?;
                saved += 1;
            }
        }
        Ok(saved)
    }

    /// Loads every `*.sketch` file from `dir` ("pre-built models").
    /// Existing names are skipped; returns the loaded names.
    pub fn load_dir(&self, dir: &Path) -> Result<Vec<String>, StoreError> {
        let mut loaded = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let path: PathBuf = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("sketch") {
                continue;
            }
            let Some(name) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            let bytes = std::fs::read(&path)?;
            let sketch = DeepSketch::from_bytes(&bytes).map_err(StoreError::Decode)?;
            if self.insert(name.to_string(), sketch).is_ok() {
                loaded.push(name.to_string());
            }
        }
        loaded.sort();
        Ok(loaded)
    }

    /// Atomically snapshots one ready sketch to `dir` at its current
    /// generation, carrying its rolling q-error monitor state when
    /// `monitors` has one for it (the sketch's training-time baseline
    /// always travels inside the sketch bytes). Older durable generations
    /// of the same name are pruned down to the previous one, so a crash
    /// mid-write can never leave the sketch without a valid snapshot.
    pub fn save_snapshot(
        &self,
        dir: &Path,
        name: &str,
        monitors: Option<&MonitorRegistry>,
    ) -> Result<PathBuf, StoreError> {
        let (sketch, generation) = self.get_with_generation(name)?;
        let state = monitors.and_then(|m| m.get(name)).map(|m| m.export_state());
        let path = snapshot::write_snapshot(dir, name, generation, &sketch, state.as_ref())?;
        ds_obs::global().count("store/snapshots_written", 1);
        Self::prune_snapshots(dir, name, generation);
        Ok(path)
    }

    /// Encodes one ready sketch into the checksummed `DSNP` byte layout
    /// without touching disk — the payload the fleet tier ships over the
    /// wire (`SNAPSHOT`). Byte-identical to what [`SketchStore::save_snapshot`]
    /// would persist for the same generation and monitor state, so a
    /// receiver can validate a shipped blob exactly like a recovered file.
    /// Returns the bytes together with the generation they capture.
    pub fn export_snapshot(
        &self,
        name: &str,
        monitors: Option<&MonitorRegistry>,
    ) -> Result<(Vec<u8>, u64), StoreError> {
        let (sketch, generation) = self.get_with_generation(name)?;
        if !snapshot::valid_snapshot_name(name) {
            return Err(StoreError::Snapshot(SnapshotError::InvalidName(
                name.to_string(),
            )));
        }
        let state = monitors.and_then(|m| m.get(name)).map(|m| m.export_state());
        let bytes = snapshot::encode_snapshot(name, generation, &sketch, state.as_ref());
        Ok((bytes, generation))
    }

    /// Adopts a decoded snapshot shipped from a fleet peer, newest-wins:
    /// the offer is ignored when a ready sketch of the same name already
    /// serves at an equal or newer generation, and otherwise replaces
    /// whatever slot holds the name (including training or failed slots —
    /// a validated remote model beats a broken local one). The store's
    /// generation counter is raised to at least the adopted generation, so
    /// later local inserts keep sorting after every adopted model, and the
    /// sketch's rolling monitor state travels with it when `monitors` is
    /// given.
    pub fn adopt_snapshot(
        &self,
        snap: SketchSnapshot,
        monitors: Option<&MonitorRegistry>,
    ) -> Result<AdoptOutcome, StoreError> {
        if !snapshot::valid_snapshot_name(&snap.name) {
            return Err(StoreError::Snapshot(SnapshotError::InvalidName(snap.name)));
        }
        let monitor = match &snap.monitor {
            None => None,
            Some(state) => match QErrorMonitor::from_state(state) {
                Some(m) => Some(m),
                None => {
                    return Err(StoreError::Snapshot(SnapshotError::Corrupt(
                        "snapshot monitor state failed to restore".to_string(),
                    )))
                }
            },
        };
        let mut slots = self.slots.write();
        if let Some(Slot::Ready { generation, .. }) = slots.get(&snap.name) {
            if *generation >= snap.generation {
                return Ok(AdoptOutcome::Stale {
                    current: *generation,
                    offered: snap.generation,
                });
            }
        }
        slots.insert(
            snap.name.clone(),
            Slot::Ready {
                sketch: Arc::new(snap.sketch),
                report: None,
                generation: snap.generation,
            },
        );
        self.generations
            .fetch_max(snap.generation, Ordering::Relaxed);
        if let (Some(registry), Some(m)) = (monitors, monitor) {
            registry.restore(&snap.name, m);
        }
        ds_obs::global().count("store/snapshots_adopted", 1);
        Ok(AdoptOutcome::Adopted {
            generation: snap.generation,
        })
    }

    /// Snapshots every ready sketch (see [`SketchStore::save_snapshot`]).
    /// Returns how many were written.
    pub fn save_snapshots(
        &self,
        dir: &Path,
        monitors: Option<&MonitorRegistry>,
    ) -> Result<usize, StoreError> {
        self.poll();
        let names: Vec<String> = {
            let slots = self.slots.read();
            slots
                .iter()
                .filter(|(_, s)| matches!(s, Slot::Ready { .. }))
                .map(|(n, _)| n.clone())
                .collect()
        };
        let mut saved = 0;
        for name in names {
            match self.save_snapshot(dir, &name, monitors) {
                Ok(_) => saved += 1,
                // The sketch was removed between the listing and the save;
                // nothing to persist.
                Err(StoreError::UnknownSketch(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(saved)
    }

    /// Best-effort cleanup of durable generations older than the previous
    /// one. Keeping `newest` *and* its predecessor means the crash window
    /// of the next snapshot write still has a fallback on disk; everything
    /// older is noise. Failures are ignored — pruning is an optimization,
    /// never a correctness requirement.
    fn prune_snapshots(dir: &Path, name: &str, newest: u64) {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return;
        };
        let mut generations: Vec<(u64, PathBuf)> = entries
            .flatten()
            .filter_map(|e| {
                let path = e.path();
                let (n, generation) =
                    snapshot::parse_snapshot_filename(path.file_name()?.to_str()?)?;
                (n == name && generation < newest).then_some((generation, path))
            })
            .collect();
        generations.sort_by_key(|(g, _)| std::cmp::Reverse(*g));
        for (_, path) in generations.into_iter().skip(1) {
            std::fs::remove_file(path).ok();
        }
    }

    /// Warm-restart recovery: rebuilds a store (and the monitor registry
    /// that goes with it) from the snapshots in `dir`.
    ///
    /// For every sketch name the newest snapshot that fully validates wins;
    /// corrupt files — truncated, bit-flipped, or lying about their name or
    /// generation — are moved to `<dir>/quarantine/` and recovery falls
    /// back to the next older generation instead of failing startup.
    /// Leftover `.tmp` files from an interrupted write are deleted (they
    /// were never durable). Only I/O errors on the directory itself abort.
    pub fn open_dir(dir: &Path) -> Result<(Self, MonitorRegistry, RecoveryReport), StoreError> {
        Self::open_dir_with_vocabulary(dir, None)
    }

    /// As [`SketchStore::open_dir`], but additionally enforces the server's
    /// configured feature-schema vocabulary: a snapshot that decodes
    /// cleanly but carries a different [`crate::featurize::FeatureSchema`]
    /// is quarantined with [`QuarantineReason::SchemaMismatch`] instead of
    /// silently serving features its model was never trained on. Recovery
    /// falls back to the next older generation of the same name, exactly as
    /// for corruption.
    pub fn open_dir_with_vocabulary(
        dir: &Path,
        expected_schema: Option<crate::featurize::FeatureSchema>,
    ) -> Result<(Self, MonitorRegistry, RecoveryReport), StoreError> {
        let store = Self::new();
        let monitors = MonitorRegistry::new();
        let mut report = RecoveryReport::default();

        // Group durable snapshot files by sketch name, newest first.
        let mut by_name: HashMap<String, Vec<(u64, PathBuf)>> = HashMap::new();
        for entry in std::fs::read_dir(dir)? {
            let path = entry?.path();
            if !path.is_file() {
                continue;
            }
            let Some(file_name) = path.file_name().and_then(|f| f.to_str()) else {
                continue;
            };
            match snapshot::parse_snapshot_filename(file_name) {
                Some((name, generation)) => {
                    by_name.entry(name).or_default().push((generation, path));
                }
                None if file_name.ends_with(&format!(".{}", snapshot::SNAPSHOT_TMP_EXT)) => {
                    std::fs::remove_file(&path).ok();
                    report.removed_temps.push(path);
                }
                None => {}
            }
        }

        let mut max_generation = 0u64;
        let mut names: Vec<String> = by_name.keys().cloned().collect();
        names.sort();
        for name in names {
            let mut candidates = by_name.remove(&name).expect("listed above");
            candidates.sort_by_key(|(g, _)| std::cmp::Reverse(*g));
            let mut recovered = false;
            for (generation, path) in candidates {
                if recovered {
                    report.stale.push(path);
                    continue;
                }
                match snapshot::read_snapshot(&path) {
                    // The filename is untrusted; the checksummed body is
                    // authoritative and must agree with it.
                    Ok(snap) if snap.name == name && snap.generation == generation => {
                        let found = snap.sketch.featurizer().schema();
                        if let Some(expected) = expected_schema {
                            if found != expected {
                                Self::quarantine(
                                    dir,
                                    &path,
                                    &mut report,
                                    QuarantineReason::SchemaMismatch { expected, found },
                                );
                                continue;
                            }
                        }
                        if let Some(state) = &snap.monitor {
                            match QErrorMonitor::from_state(state) {
                                Some(m) => monitors.restore(&name, m),
                                None => {
                                    Self::quarantine(
                                        dir,
                                        &path,
                                        &mut report,
                                        QuarantineReason::MonitorState,
                                    );
                                    continue;
                                }
                            }
                        }
                        store.insert_with_generation(&name, snap.sketch, generation)?;
                        max_generation = max_generation.max(generation);
                        report.loaded.push((name.clone(), generation));
                        recovered = true;
                    }
                    Ok(_) | Err(SnapshotError::Io(_)) if !path.exists() => {
                        // Raced with a concurrent prune; nothing to recover.
                    }
                    Ok(_) => {
                        Self::quarantine(dir, &path, &mut report, QuarantineReason::NameMismatch)
                    }
                    Err(e) => Self::quarantine(
                        dir,
                        &path,
                        &mut report,
                        QuarantineReason::Corrupt(e.to_string()),
                    ),
                }
            }
        }
        // Future generations must sort after everything recovered.
        store.generations.store(max_generation, Ordering::Relaxed);
        Ok((store, monitors, report))
    }

    /// Moves a corrupt snapshot into `<dir>/quarantine/` (falling back to
    /// deletion if the move fails) so the next recovery does not re-read
    /// it, and the bytes stay available for a post-mortem.
    fn quarantine(dir: &Path, path: &Path, report: &mut RecoveryReport, reason: QuarantineReason) {
        let qdir = dir.join("quarantine");
        let target = qdir.join(path.file_name().unwrap_or_else(|| "corrupt.snap".as_ref()));
        let moved =
            std::fs::create_dir_all(&qdir).is_ok() && std::fs::rename(path, &target).is_ok();
        if !moved {
            std::fs::remove_file(path).ok();
        }
        ds_obs::global().count("store/snapshots_quarantined", 1);
        report.quarantined.push((target, reason));
    }

    /// Harvests finished background trainings into ready/failed slots.
    fn poll(&self) {
        let mut slots = self.slots.write();
        let names: Vec<String> = slots
            .iter()
            .filter(|(_, s)| matches!(s, Slot::Training { .. }))
            .map(|(n, _)| n.clone())
            .collect();
        for name in names {
            let done = {
                let Slot::Training { rx, .. } = slots.get_mut(&name).expect("just listed") else {
                    continue;
                };
                let rx = rx.get_mut().expect("training receiver mutex");
                match rx.try_recv() {
                    Ok(result) => Some(result),
                    Err(TryRecvError::Empty) => None,
                    Err(TryRecvError::Disconnected) => {
                        Some(Err("training thread vanished".to_string()))
                    }
                }
            };
            if let Some(result) = done {
                let obs = ds_obs::global();
                let slot = match result {
                    Ok((sketch, report)) => {
                        // A Training slot becoming Ready is the atomic swap
                        // serving traffic observes.
                        obs.count("store/swaps_ready", 1);
                        Slot::Ready {
                            sketch: Arc::new(sketch),
                            report: Some(report),
                            generation: self.next_generation(),
                        }
                    }
                    Err(e) => {
                        obs.count("store/swaps_failed", 1);
                        Slot::Failed(e)
                    }
                };
                slots.insert(name, slot);
            }
        }
    }
}

/// A named-sketch view of a [`SketchStore`] implementing
/// [`CardinalityEstimator`] — the store's entry into the workspace-wide
/// estimator interface. Store-level failures (unknown name, still
/// training) map to [`EstimateError::Unavailable`].
pub struct StoreHandle<'a> {
    store: &'a SketchStore,
    name: String,
}

impl StoreHandle<'_> {
    /// The sketch name this handle resolves.
    pub fn sketch_name(&self) -> &str {
        &self.name
    }

    fn resolve(&self) -> Result<Arc<DeepSketch>, EstimateError> {
        self.store.get(&self.name).map_err(|e| match e {
            StoreError::Decode(d) => EstimateError::Decode(d.to_string()),
            other => EstimateError::Unavailable(other.to_string()),
        })
    }
}

impl CardinalityEstimator for StoreHandle<'_> {
    fn name(&self) -> &str {
        &self.name
    }

    /// Infallible path: unavailable or unanswerable queries degrade to the
    /// 1.0 floor every estimator clamps to.
    fn estimate(&self, query: &Query) -> f64 {
        self.try_estimate(query).unwrap_or(1.0)
    }

    fn try_estimate(&self, query: &Query) -> Result<f64, EstimateError> {
        self.resolve()?.try_estimate(query)
    }

    fn estimate_batch(&self, queries: &[Query]) -> Vec<f64> {
        match self.resolve() {
            Ok(sketch) => sketch
                .try_estimate_batch(queries)
                .into_iter()
                .map(|r| r.unwrap_or(1.0))
                .collect(),
            Err(_) => vec![1.0; queries.len()],
        }
    }

    fn try_estimate_batch(&self, queries: &[Query]) -> Vec<Result<f64, EstimateError>> {
        match self.resolve() {
            Ok(sketch) => sketch.try_estimate_batch(queries),
            Err(e) => queries.iter().map(|_| Err(e.clone())).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_query::parser::parse_query;
    use ds_query::workloads::imdb_predicate_columns;
    use ds_storage::gen::{imdb_database, ImdbConfig};

    fn tiny_sketch(db: &Database, seed: u64) -> DeepSketch {
        SketchBuilder::new(db, imdb_predicate_columns(db))
            .training_queries(120)
            .epochs(2)
            .sample_size(8)
            .hidden_units(8)
            .seed(seed)
            .build()
            .expect("tiny sketch")
    }

    #[test]
    fn insert_get_estimate() {
        let db = imdb_database(&ImdbConfig::tiny(1));
        let store = SketchStore::new();
        store.insert("imdb", tiny_sketch(&db, 1)).unwrap();
        assert_eq!(store.status("imdb").unwrap(), SketchStatus::Ready);
        let q = parse_query(&db, "SELECT COUNT(*) FROM title WHERE title.kind_id = 1").unwrap();
        assert!(store.estimate("imdb", &q).unwrap() >= 1.0);
        assert!(matches!(
            store.estimate("nope", &q),
            Err(StoreError::UnknownSketch(_))
        ));
    }

    #[test]
    fn swap_replaces_the_ready_model_under_a_fresh_generation() {
        let db = imdb_database(&ImdbConfig::tiny(31));
        let store = SketchStore::new();
        store.insert("imdb", tiny_sketch(&db, 11)).unwrap();
        let (old, old_gen) = store.get_with_generation("imdb").unwrap();
        let q = parse_query(&db, "SELECT COUNT(*) FROM title WHERE title.kind_id = 1").unwrap();
        let old_estimate = old.estimate_one(&q);

        let replacement = Arc::new(tiny_sketch(&db, 12));
        let new_estimate = replacement.estimate_one(&q);
        let outcome = store.swap("imdb", Arc::clone(&replacement)).unwrap();
        assert_eq!(outcome.previous_generation, old_gen);
        assert!(
            outcome.generation > old_gen,
            "swap must advance the generation"
        );
        assert!(
            Arc::ptr_eq(&outcome.previous, &old),
            "swap must hand back the displaced model"
        );
        assert_eq!(store.generation("imdb"), Some(outcome.generation));
        assert_eq!(
            store.estimate("imdb", &q).unwrap().to_bits(),
            new_estimate.to_bits()
        );
        // The displaced Arc still answers — in-flight requests finish
        // against the old model.
        assert_eq!(
            outcome.previous.estimate_one(&q).to_bits(),
            old_estimate.to_bits()
        );

        // Rollback is just another swap; it gets a *newer* generation.
        let rolled = store.swap("imdb", outcome.previous).unwrap();
        assert!(rolled.generation > outcome.generation);
        assert_eq!(
            store.estimate("imdb", &q).unwrap().to_bits(),
            old_estimate.to_bits()
        );

        assert!(matches!(
            store.swap("nope", replacement),
            Err(StoreError::UnknownSketch(_))
        ));
    }

    #[test]
    fn reserved_generations_never_collide_with_published_ones() {
        let db = imdb_database(&ImdbConfig::tiny(32));
        let store = SketchStore::new();
        store.insert("imdb", tiny_sketch(&db, 13)).unwrap();
        let live = store.generation("imdb").unwrap();
        let shadow = store.reserve_generation();
        assert!(shadow > live);
        let outcome = store.swap("imdb", Arc::new(tiny_sketch(&db, 14))).unwrap();
        assert!(
            outcome.generation > shadow,
            "a swap after a reservation must sort after it"
        );
    }

    #[test]
    fn handle_is_a_cardinality_estimator() {
        let db = imdb_database(&ImdbConfig::tiny(6));
        let store = SketchStore::new();
        store.insert("imdb", tiny_sketch(&db, 3)).unwrap();
        let q = parse_query(&db, "SELECT COUNT(*) FROM title WHERE title.kind_id = 1").unwrap();

        let handle = store.handle("imdb");
        assert_eq!(handle.name(), "imdb");
        assert_eq!(handle.sketch_name(), "imdb");
        let direct = store.get("imdb").unwrap().estimate_one(&q);
        assert_eq!(handle.estimate(&q), direct);
        assert_eq!(handle.try_estimate(&q), Ok(direct));
        assert_eq!(
            handle.estimate_batch(std::slice::from_ref(&q)),
            vec![direct]
        );
        assert_eq!(
            handle.try_estimate_batch(std::slice::from_ref(&q)),
            vec![Ok(direct)]
        );

        // A handle to a missing sketch degrades (estimate) or errors
        // (try_estimate) — it never panics.
        let missing = store.handle("nope");
        assert_eq!(missing.estimate(&q), 1.0);
        assert!(matches!(
            missing.try_estimate(&q),
            Err(EstimateError::Unavailable(_))
        ));
        assert_eq!(missing.estimate_batch(std::slice::from_ref(&q)), vec![1.0]);
        assert!(missing.try_estimate_batch(std::slice::from_ref(&q))[0].is_err());
    }

    #[test]
    fn store_estimate_batch_matches_singles() {
        let db = imdb_database(&ImdbConfig::tiny(7));
        let store = SketchStore::new();
        store.insert("s", tiny_sketch(&db, 4)).unwrap();
        let wl = ds_query::workloads::job_light::job_light_workload(&db, 3);
        let batch = store.estimate_batch("s", &wl).unwrap();
        for (q, b) in wl.iter().zip(batch) {
            assert_eq!(b, Ok(store.estimate("s", q).unwrap()));
        }
        assert!(matches!(
            store.estimate_batch("missing", &wl),
            Err(StoreError::UnknownSketch(_))
        ));
    }

    #[test]
    fn duplicate_names_rejected() {
        let db = imdb_database(&ImdbConfig::tiny(2));
        let store = SketchStore::new();
        store.insert("a", tiny_sketch(&db, 1)).unwrap();
        assert!(matches!(
            store.insert("a", tiny_sketch(&db, 2)),
            Err(StoreError::Duplicate(_))
        ));
    }

    #[test]
    fn background_training_while_querying() {
        let db = Arc::new(imdb_database(&ImdbConfig::tiny(3)));
        let store = SketchStore::new();
        store.insert("prebuilt", tiny_sketch(&db, 5)).unwrap();

        let cols = imdb_predicate_columns(&db);
        store
            .train_in_background(
                "fresh",
                Arc::clone(&db),
                |b| {
                    b.training_queries(150)
                        .epochs(2)
                        .sample_size(8)
                        .hidden_units(8)
                        .seed(9)
                },
                cols,
            )
            .unwrap();

        // The pre-built model keeps answering while 'fresh' trains.
        let q = parse_query(&db, "SELECT COUNT(*) FROM title WHERE title.kind_id = 1").unwrap();
        assert!(store.estimate("prebuilt", &q).unwrap() >= 1.0);

        // Eventually the new sketch becomes ready.
        let fresh = store.wait("fresh").unwrap();
        assert!(fresh.estimate_one(&q) >= 1.0);
        assert_eq!(store.status("fresh").unwrap(), SketchStatus::Ready);
        assert!(store.report("fresh").is_some());
        let listing = store.list();
        assert_eq!(listing.len(), 2);
        assert!(listing.iter().all(|(_, s)| *s == SketchStatus::Ready));
    }

    #[test]
    fn save_and_load_directory() {
        let db = imdb_database(&ImdbConfig::tiny(4));
        let store = SketchStore::new();
        store.insert("one", tiny_sketch(&db, 1)).unwrap();
        store.insert("two", tiny_sketch(&db, 2)).unwrap();
        let dir = std::env::temp_dir().join(format!("ds_store_test_{}", std::process::id()));
        let saved = store.save_dir(&dir).unwrap();
        assert_eq!(saved, 2);

        let restored = SketchStore::new();
        let names = restored.load_dir(&dir).unwrap();
        assert_eq!(names, vec!["one".to_string(), "two".to_string()]);
        let q = parse_query(&db, "SELECT COUNT(*) FROM title").unwrap();
        assert_eq!(
            store.estimate("one", &q).unwrap(),
            restored.estimate("one", &q).unwrap()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn generations_are_unique_across_swaps() {
        let db = imdb_database(&ImdbConfig::tiny(8));
        let store = SketchStore::new();
        store.insert("a", tiny_sketch(&db, 1)).unwrap();
        store.insert("b", tiny_sketch(&db, 2)).unwrap();
        let (sketch_a, gen_a) = store.get_with_generation("a").unwrap();
        let gen_b = store.generation("b").unwrap();
        assert_ne!(gen_a, gen_b, "every ready slot gets its own generation");
        // Remove + re-insert under the same name must change the generation
        // even though the name is identical — that is what lets consumers
        // detect a model swap.
        assert!(store.remove("a"));
        store.insert("a", tiny_sketch(&db, 3)).unwrap();
        let (sketch_a2, gen_a2) = store.get_with_generation("a").unwrap();
        assert_ne!(gen_a, gen_a2);
        assert!(!Arc::ptr_eq(&sketch_a, &sketch_a2));
        assert_eq!(store.generation("missing"), None);
    }

    #[test]
    fn snapshot_save_and_open_dir_roundtrip() {
        let db = imdb_database(&ImdbConfig::tiny(9));
        let store = SketchStore::new();
        store.insert("one", tiny_sketch(&db, 1)).unwrap();
        store.insert("two", tiny_sketch(&db, 2)).unwrap();
        let monitors = crate::monitor::MonitorRegistry::new();
        for i in 0..10u32 {
            monitors.monitor("one").record("t0", (i + 1) as f64, 1.0);
        }
        let dir = std::env::temp_dir().join(format!("ds_snap_rt_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        assert_eq!(store.save_snapshots(&dir, Some(&monitors)).unwrap(), 2);

        let (restored, restored_monitors, report) = SketchStore::open_dir(&dir).unwrap();
        assert_eq!(report.loaded.len(), 2);
        assert!(report.quarantined.is_empty());
        // Models answer bit-identically and keep their generations.
        let q = parse_query(&db, "SELECT COUNT(*) FROM title WHERE title.kind_id = 1").unwrap();
        for name in ["one", "two"] {
            assert_eq!(
                restored.estimate(name, &q).unwrap(),
                store.estimate(name, &q).unwrap(),
                "{name}"
            );
            assert_eq!(restored.generation(name), store.generation(name), "{name}");
        }
        // Monitor windows survived the restart.
        let m = restored_monitors.get("one").expect("monitor recovered");
        assert_eq!(m.samples(), 10);
        assert_eq!(
            m.export_state(),
            monitors.get("one").unwrap().export_state()
        );
        assert!(restored_monitors.get("two").is_none());
        // New work on the recovered store sorts after everything restored.
        let max_recovered = report.loaded.iter().map(|(_, g)| *g).max().unwrap();
        restored.insert("three", tiny_sketch(&db, 3)).unwrap();
        assert!(restored.generation("three").unwrap() > max_recovered);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_dir_quarantines_corruption_and_recovers_previous_generation() {
        let db = imdb_database(&ImdbConfig::tiny(10));
        let store = SketchStore::new();
        store.insert("s", tiny_sketch(&db, 1)).unwrap();
        let dir = std::env::temp_dir().join(format!("ds_snap_q_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let good = store.save_snapshot(&dir, "s", None).unwrap();

        // A newer generation arrives torn: bit-flipped mid-file.
        let gen = store.generation("s").unwrap();
        let bytes = crate::snapshot::encode_snapshot("s", gen + 1, &store.get("s").unwrap(), None);
        let fault = crate::snapshot::WriteFault {
            bit_flip: Some((bytes.len() / 2, 0x10)),
            ..Default::default()
        };
        crate::snapshot::write_snapshot_bytes(&dir, "s", gen + 1, &bytes, &fault).unwrap();
        // Plus an interrupted write that never renamed.
        let crash = crate::snapshot::WriteFault {
            crash_before_rename: true,
            ..Default::default()
        };
        crate::snapshot::write_snapshot_bytes(&dir, "s", gen + 2, &bytes, &crash).unwrap();

        let (restored, _, report) = SketchStore::open_dir(&dir).unwrap();
        // The torn newest generation is quarantined, the previous durable
        // one serves, the tmp debris is gone.
        assert_eq!(report.loaded, vec![("s".to_string(), gen)]);
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(report.removed_temps.len(), 1);
        assert!(good.exists(), "durable previous generation left in place");
        assert!(dir.join("quarantine").read_dir().unwrap().count() == 1);
        let q = parse_query(&db, "SELECT COUNT(*) FROM title").unwrap();
        assert_eq!(
            restored.estimate("s", &q).unwrap(),
            store.estimate("s", &q).unwrap()
        );
        // A filename/content mismatch is also quarantined, not trusted.
        let lying = crate::snapshot::encode_snapshot("other", 99, &store.get("s").unwrap(), None);
        crate::snapshot::write_snapshot_bytes(&dir, "s", gen + 3, &lying, &Default::default())
            .unwrap();
        let (_, _, report2) = SketchStore::open_dir(&dir).unwrap();
        assert_eq!(report2.loaded, vec![("s".to_string(), gen)]);
        assert_eq!(report2.quarantined.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_dir_with_vocabulary_quarantines_schema_mismatch() {
        use crate::featurize::FeatureSchema;
        let db = imdb_database(&ImdbConfig::tiny(13));
        let v2 = SketchBuilder::new(&db, imdb_predicate_columns(&db))
            .training_queries(120)
            .epochs(2)
            .sample_size(8)
            .hidden_units(8)
            .feature_schema_v2(4)
            .seed(1)
            .build()
            .expect("v2 sketch");
        let store = SketchStore::new();
        store.insert("mixed", v2).unwrap();
        let dir = std::env::temp_dir().join(format!("ds_snap_vocab_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        store.save_snapshot(&dir, "mixed", None).unwrap();

        // A v1-vocabulary server refuses the v2 snapshot with a typed
        // reason instead of serving features the model never saw.
        let (restored, _, report) =
            SketchStore::open_dir_with_vocabulary(&dir, Some(FeatureSchema::V1)).unwrap();
        assert!(report.loaded.is_empty());
        assert_eq!(report.quarantined.len(), 1);
        assert_eq!(
            report.quarantined[0].1,
            QuarantineReason::SchemaMismatch {
                expected: FeatureSchema::V1,
                found: FeatureSchema::V2,
            }
        );
        assert!(matches!(
            restored.get("mixed"),
            Err(StoreError::UnknownSketch(_))
        ));
        let rendered = report.quarantined[0].1.to_string();
        assert!(rendered.contains("server vocabulary"), "{rendered}");

        // A matching vocabulary (or no vocabulary at all) loads it fine.
        std::fs::remove_dir_all(&dir).ok();
        store.save_snapshot(&dir, "mixed", None).unwrap();
        let (ok_store, _, ok_report) =
            SketchStore::open_dir_with_vocabulary(&dir, Some(FeatureSchema::V2)).unwrap();
        assert_eq!(ok_report.loaded.len(), 1);
        assert!(ok_report.quarantined.is_empty());
        assert!(ok_store.get("mixed").is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn snapshot_pruning_keeps_newest_two_generations() {
        let db = imdb_database(&ImdbConfig::tiny(11));
        let store = SketchStore::new();
        store.insert("p", tiny_sketch(&db, 1)).unwrap();
        let dir = std::env::temp_dir().join(format!("ds_snap_p_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        // Three swap cycles: remove + insert bumps the generation each time.
        for seed in [2u64, 3, 4] {
            store.save_snapshot(&dir, "p", None).unwrap();
            store.remove("p");
            store.insert("p", tiny_sketch(&db, seed)).unwrap();
        }
        store.save_snapshot(&dir, "p", None).unwrap();
        let snaps: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .flatten()
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|f| f.ends_with(".snap"))
            .collect();
        assert_eq!(snaps.len(), 2, "newest + previous only: {snaps:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn export_matches_save_snapshot_and_adopt_is_newest_wins() {
        let db = imdb_database(&ImdbConfig::tiny(12));
        let store = SketchStore::new();
        store.insert("ship", tiny_sketch(&db, 1)).unwrap();
        let monitors = MonitorRegistry::new();
        for i in 0..5u32 {
            monitors.monitor("ship").record("t", (i + 2) as f64, 1.0);
        }
        // The wire export is byte-identical to the durable snapshot file.
        let (bytes, generation) = store.export_snapshot("ship", Some(&monitors)).unwrap();
        let dir = std::env::temp_dir().join(format!("ds_export_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let path = store.save_snapshot(&dir, "ship", Some(&monitors)).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), bytes);
        assert_eq!(generation, store.generation("ship").unwrap());
        std::fs::remove_dir_all(&dir).ok();

        // A replica adopts the shipped blob and serves bit-identically.
        let replica = SketchStore::new();
        let replica_monitors = MonitorRegistry::new();
        let snap = crate::snapshot::decode_snapshot(&bytes).unwrap();
        assert_eq!(
            replica
                .adopt_snapshot(snap, Some(&replica_monitors))
                .unwrap(),
            AdoptOutcome::Adopted { generation }
        );
        let q = parse_query(&db, "SELECT COUNT(*) FROM title").unwrap();
        assert_eq!(
            replica.estimate("ship", &q).unwrap(),
            store.estimate("ship", &q).unwrap()
        );
        assert_eq!(replica.generation("ship"), Some(generation));
        assert_eq!(replica_monitors.get("ship").unwrap().samples(), 5);

        // Re-offering the same generation is stale, not a duplicate error.
        let snap_again = crate::snapshot::decode_snapshot(&bytes).unwrap();
        assert_eq!(
            replica.adopt_snapshot(snap_again, None).unwrap(),
            AdoptOutcome::Stale {
                current: generation,
                offered: generation
            }
        );
        // Local inserts after adoption sort strictly newer.
        replica.insert("local", tiny_sketch(&db, 2)).unwrap();
        assert!(replica.generation("local").unwrap() > generation);
        // A newer shipped generation replaces the served model.
        let newer = crate::snapshot::SketchSnapshot {
            name: "ship".to_string(),
            generation: generation + 100,
            sketch: tiny_sketch(&db, 3),
            monitor: None,
        };
        assert_eq!(
            replica.adopt_snapshot(newer, None).unwrap(),
            AdoptOutcome::Adopted {
                generation: generation + 100
            }
        );
        assert_eq!(replica.generation("ship"), Some(generation + 100));
    }

    #[test]
    fn remove_and_unknown_statuses() {
        let db = imdb_database(&ImdbConfig::tiny(5));
        let store = SketchStore::new();
        store.insert("gone", tiny_sketch(&db, 1)).unwrap();
        assert!(store.remove("gone"));
        assert!(!store.remove("gone"));
        assert!(matches!(
            store.status("gone"),
            Err(StoreError::UnknownSketch(_))
        ));
    }
}
