//! A fleet of table-subset sketches with query routing — the natural
//! companion of the [`crate::advisor`]: build one sketch per recommended
//! table subset, then route each incoming query to the smallest sketch
//! that covers it.
//!
//! Together, advisor + fleet close the loop the paper leaves open in §4:
//! instead of one monolithic sketch over the whole schema, the database
//! keeps several focused sketches, each cheaper to train and more accurate
//! on its slice of the workload.

use ds_est::{CardinalityEstimator, EstimateError};
use ds_query::query::Query;
use ds_storage::catalog::{Database, TableId};

use crate::advisor::Advice;
use crate::builder::{BuildError, SketchBuilder};
use crate::sketch::DeepSketch;

/// A routed collection of table-subset sketches.
#[derive(Debug)]
pub struct SketchFleet {
    /// (sorted table subset, sketch), ordered by subset size ascending so
    /// that routing finds the smallest covering sketch first.
    members: Vec<(Vec<TableId>, DeepSketch)>,
    name: String,
}

/// Routing outcome for a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Covered by the member at this index.
    Member(usize),
    /// No member covers the query's table set.
    Uncovered,
}

impl SketchFleet {
    /// Assembles a fleet from pre-built sketches and their table subsets.
    ///
    /// # Panics
    /// Panics if `members` is empty or a subset is empty.
    pub fn new(members: Vec<(Vec<TableId>, DeepSketch)>) -> Self {
        assert!(!members.is_empty(), "fleet needs at least one sketch");
        let mut members: Vec<(Vec<TableId>, DeepSketch)> = members
            .into_iter()
            .map(|(mut tables, sketch)| {
                assert!(!tables.is_empty(), "empty table subset");
                tables.sort_unstable();
                (tables, sketch)
            })
            .collect();
        members.sort_by_key(|(t, _)| t.len());
        Self {
            members,
            name: "Sketch Fleet".to_string(),
        }
    }

    /// Trains one sketch per advisor recommendation. `configure` customizes
    /// the shared training parameters (queries, epochs, sample size, …).
    pub fn build_from_advice(
        db: &Database,
        advice: &Advice,
        predicate_columns: Vec<ds_storage::catalog::ColRef>,
        configure: impl Fn(SketchBuilder<'_>) -> SketchBuilder<'_>,
    ) -> Result<Self, BuildError> {
        assert!(
            !advice.recommendations.is_empty(),
            "advice contains no recommendations"
        );
        let mut members = Vec::with_capacity(advice.recommendations.len());
        for (i, rec) in advice.recommendations.iter().enumerate() {
            let builder = SketchBuilder::new(db, predicate_columns.clone())
                .tables(rec.tables.clone())
                .seed(0xF1EE7 ^ i as u64);
            let sketch = configure(builder).build()?;
            members.push((rec.tables.clone(), sketch));
        }
        Ok(Self::new(members))
    }

    /// Number of member sketches.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True if the fleet has no members (never: construction forbids it).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The member table subsets, smallest first.
    pub fn subsets(&self) -> impl Iterator<Item = &[TableId]> {
        self.members.iter().map(|(t, _)| t.as_slice())
    }

    /// Routes a query to the smallest covering member.
    pub fn route(&self, query: &Query) -> Route {
        for (i, (tables, _)) in self.members.iter().enumerate() {
            if query.tables.iter().all(|t| tables.contains(t)) {
                return Route::Member(i);
            }
        }
        Route::Uncovered
    }

    /// Estimates via the routed member, or `None` if uncovered.
    pub fn route_estimate(&self, query: &Query) -> Option<f64> {
        match self.route(query) {
            Route::Member(i) => Some(self.members[i].1.estimate_one(query)),
            Route::Uncovered => None,
        }
    }

    /// Total serialized footprint of all members.
    pub fn footprint_bytes(&self) -> usize {
        self.members.iter().map(|(_, s)| s.footprint_bytes()).sum()
    }
}

impl CardinalityEstimator for SketchFleet {
    fn name(&self) -> &str {
        &self.name
    }

    /// Routed estimate; uncovered queries fall back to 1.0 (callers that
    /// care should use [`CardinalityEstimator::try_estimate`]).
    fn estimate(&self, query: &Query) -> f64 {
        self.route_estimate(query).unwrap_or(1.0)
    }

    /// Routed estimate with uncovered queries (and queries a member cannot
    /// validate) reported as typed errors.
    fn try_estimate(&self, query: &Query) -> Result<f64, EstimateError> {
        match self.route(query) {
            Route::Member(i) => self.members[i].1.try_estimate(query),
            Route::Uncovered => Err(EstimateError::Unroutable {
                tables: query.tables.iter().map(|t| t.0).collect(),
            }),
        }
    }

    /// Batched estimation that routes first, then runs one coalesced
    /// [`DeepSketch::estimate_batch`] per member instead of one forward
    /// pass per query. Uncovered queries get the same 1.0 fallback as
    /// [`CardinalityEstimator::estimate`]; results are bit-identical to the
    /// looped path because each member's batch kernel is.
    fn estimate_batch(&self, queries: &[Query]) -> Vec<f64> {
        let mut out = vec![1.0f64; queries.len()];
        // Per-member gather: (query index, query) grouped by routed member.
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); self.members.len()];
        for (qi, q) in queries.iter().enumerate() {
            if let Route::Member(i) = self.route(q) {
                groups[i].push(qi);
            }
        }
        for (member, idxs) in self.members.iter().zip(&groups) {
            if idxs.is_empty() {
                continue;
            }
            let grouped: Vec<Query> = idxs.iter().map(|&qi| queries[qi].clone()).collect();
            for (&qi, est) in idxs.iter().zip(member.1.estimate_batch(&grouped)) {
                out[qi] = est;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::advisor::{recommend, AdvisorConfig};
    use crate::metrics::qerror;
    use ds_est::oracle::TrueCardinalityOracle;
    use ds_query::workloads::imdb_predicate_columns;
    use ds_query::workloads::job_light::job_light_workload;
    use ds_storage::gen::{imdb_database, ImdbConfig};

    fn db() -> Database {
        imdb_database(&ImdbConfig::tiny(8))
    }

    fn quick(b: SketchBuilder<'_>) -> SketchBuilder<'_> {
        b.training_queries(250)
            .epochs(4)
            .sample_size(16)
            .hidden_units(16)
    }

    #[test]
    fn builds_from_advice_and_routes() {
        let db = db();
        let wl = job_light_workload(&db, 1);
        let advice = recommend(
            &db,
            &wl,
            &AdvisorConfig {
                max_tables_per_sketch: 5,
                max_sketches: 2,
                sample_size: 16,
                hidden_units: 16,
            },
        );
        let fleet =
            SketchFleet::build_from_advice(&db, &advice, imdb_predicate_columns(&db), quick)
                .expect("fleet");
        assert_eq!(fleet.len(), advice.recommendations.len());

        let mut covered = 0;
        for q in &wl {
            match fleet.route(q) {
                Route::Member(i) => {
                    assert!(i < fleet.len());
                    assert!(fleet.try_estimate(q).unwrap() >= 1.0);
                    covered += 1;
                }
                Route::Uncovered => assert!(matches!(
                    fleet.try_estimate(q),
                    Err(EstimateError::Unroutable { .. })
                )),
            }
        }
        let expected = (advice.coverage * wl.len() as f64).round() as usize;
        assert_eq!(covered, expected);
        assert!(fleet.footprint_bytes() > 0);
    }

    #[test]
    fn batched_estimates_match_looped_routing() {
        let db = db();
        let wl = job_light_workload(&db, 2);
        let advice = recommend(
            &db,
            &wl,
            &AdvisorConfig {
                max_tables_per_sketch: 3,
                max_sketches: 2,
                sample_size: 16,
                hidden_units: 16,
            },
        );
        let fleet =
            SketchFleet::build_from_advice(&db, &advice, imdb_predicate_columns(&db), quick)
                .expect("fleet");
        // The per-member grouped batch path must return exactly what the
        // looped single-query path does, covered and uncovered alike.
        let looped: Vec<f64> = wl.iter().map(|q| fleet.estimate(q)).collect();
        assert_eq!(fleet.estimate_batch(&wl), looped);
    }

    #[test]
    fn routing_prefers_the_smallest_covering_member() {
        let db = db();
        let title = db.table_id("title").unwrap();
        let mk = db.table_id("movie_keyword").unwrap();
        let ci = db.table_id("cast_info").unwrap();
        let cols = imdb_predicate_columns(&db);
        let small = quick(SketchBuilder::new(&db, cols.clone()).tables(vec![title, mk]))
            .seed(1)
            .build()
            .unwrap();
        let big = quick(SketchBuilder::new(&db, cols.clone()).tables(vec![title, mk, ci]))
            .seed(2)
            .build()
            .unwrap();
        let fleet = SketchFleet::new(vec![(vec![title, mk, ci], big), (vec![title, mk], small)]);
        let mut q = Query::new();
        q.add_table(&db, "title").unwrap();
        q.add_table(&db, "movie_keyword").unwrap();
        // Smallest covering member (2 tables) wins.
        assert_eq!(fleet.route(&q), Route::Member(0));
        assert_eq!(fleet.subsets().next().unwrap().len(), 2);
    }

    #[test]
    fn restricted_sketches_are_still_sane_estimators() {
        let db = db();
        let title = db.table_id("title").unwrap();
        let mk = db.table_id("movie_keyword").unwrap();
        let sketch =
            quick(SketchBuilder::new(&db, imdb_predicate_columns(&db)).tables(vec![title, mk]))
                .training_queries(400)
                .epochs(8)
                .seed(3)
                .build()
                .unwrap();
        let oracle = TrueCardinalityOracle::new(&db);
        let wl: Vec<Query> = job_light_workload(&db, 5)
            .into_iter()
            .filter(|q| q.tables.iter().all(|t| *t == title || *t == mk))
            .collect();
        assert!(!wl.is_empty());
        let qs: Vec<f64> = wl
            .iter()
            .map(|q| qerror(sketch.estimate_one(q), oracle.estimate(q)))
            .collect();
        let median = crate::metrics::QErrorSummary::from_qerrors(&qs).median;
        assert!(median < 30.0, "median {median}");
    }

    #[test]
    #[should_panic(expected = "at least one sketch")]
    fn empty_fleet_rejected() {
        SketchFleet::new(vec![]);
    }
}
