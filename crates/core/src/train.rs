//! Mini-batch training of the MSCN model (Figure 1a, step 4).

use std::time::{Duration, Instant};

use rand::{rngs::StdRng, seq::SliceRandom, SeedableRng};

use ds_nn::loss::{mse_loss, LabelNormalizer, QErrorLoss};
use ds_nn::optim::Adam;
use ds_nn::pool::PoolConfig;
use ds_query::query::Query;
use ds_storage::sample::TableSample;

use crate::featurize::{Featurizer, QueryFeatures};
use crate::metrics::{percentile, qerror};
use crate::mscn::{BackwardScratch, ForwardCache, MscnModel};

/// Which training objective to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LossKind {
    /// Mean q-error on de-normalized cardinalities (the paper's objective).
    #[default]
    QError,
    /// MSE on normalized log-labels (ablation baseline).
    Mse,
}

/// Training hyper-parameters.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training data. The paper notes ~25 epochs
    /// usually reach a reasonable validation q-error.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Shuffling seed.
    pub seed: u64,
    /// Fraction of queries held out for validation (0 disables).
    pub validation_frac: f64,
    /// Objective.
    pub loss: LossKind,
    /// Early stopping: stop when the validation mean q-error has not
    /// improved for this many consecutive epochs (requires a validation
    /// split). `None` trains for the full epoch budget.
    pub early_stop_patience: Option<usize>,
    /// Keep the weights of the best validation epoch instead of the last
    /// (requires a validation split).
    pub restore_best: bool,
    /// Clip gradients to this global L2 norm before each optimizer step.
    pub grad_clip: Option<f32>,
    /// Step learning-rate decay `(gamma, every_n_epochs)`.
    pub lr_decay: Option<(f32, usize)>,
    /// Worker threads for the matmul kernels. Training results are
    /// bit-identical at any thread count; this only affects speed.
    pub threads: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 25,
            batch_size: 128,
            lr: 1e-3,
            seed: 0x7EA1_5EED,
            validation_frac: 0.1,
            loss: LossKind::QError,
            early_stop_patience: None,
            restore_best: false,
            grad_clip: None,
            lr_decay: None,
            threads: 1,
        }
    }
}

/// Per-epoch statistics.
#[derive(Debug, Clone)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch's batches.
    pub train_loss: f64,
    /// Mean q-error on the validation split, if one exists.
    pub val_mean_qerror: Option<f64>,
    /// Median q-error on the validation split, if one exists.
    pub val_median_qerror: Option<f64>,
    /// 95th-percentile q-error on the validation split, if one exists.
    pub val_p95_qerror: Option<f64>,
    /// Training examples processed per wall-clock second in this epoch.
    pub rows_per_sec: f64,
    /// Wall-clock duration of the epoch.
    pub duration: Duration,
}

/// The result of a training run.
#[derive(Debug, Clone)]
pub struct TrainingReport {
    /// One entry per epoch.
    pub epochs: Vec<EpochStats>,
    /// Total wall-clock training time.
    pub total_duration: Duration,
    /// Wall-clock time spent featurizing the workload up front.
    pub featurize_duration: Duration,
    /// Number of training examples used (after the validation split).
    pub train_examples: usize,
    /// Number of validation examples.
    pub val_examples: usize,
    /// True if early stopping fired before the epoch budget was used up.
    pub stopped_early: bool,
    /// Epoch whose weights the returned model carries (differs from the
    /// last epoch only with `restore_best`).
    pub selected_epoch: usize,
    /// Holdout q-errors of the selected epoch, sorted ascending (empty
    /// without a validation split). This is the accuracy distribution the
    /// shipped weights actually achieved at training time — stored in the
    /// sketch as the baseline the online drift monitor compares against.
    pub holdout_qerrors: Vec<f64>,
}

impl TrainingReport {
    /// Final validation mean q-error, if validation was enabled.
    pub fn final_val_qerror(&self) -> Option<f64> {
        self.epochs.last().and_then(|e| e.val_mean_qerror)
    }

    /// Final training loss.
    pub fn final_train_loss(&self) -> f64 {
        self.epochs.last().map_or(f64::NAN, |e| e.train_loss)
    }

    /// Best validation mean q-error across epochs, if validation ran.
    pub fn best_val_qerror(&self) -> Option<f64> {
        self.epochs
            .iter()
            .filter_map(|e| e.val_mean_qerror)
            .min_by(|a, b| a.partial_cmp(b).expect("finite"))
    }

    /// Writes the per-epoch curve as CSV — the reproduction's stand-in for
    /// the demo's TensorBoard pane.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "epoch,train_loss,val_mean_qerror,val_median_qerror,val_p95_qerror,rows_per_sec,seconds\n",
        );
        let opt = |v: Option<f64>| v.map_or(String::new(), |v| v.to_string());
        for e in &self.epochs {
            out.push_str(&format!(
                "{},{},{},{},{},{},{}\n",
                e.epoch,
                e.train_loss,
                opt(e.val_mean_qerror),
                opt(e.val_median_qerror),
                opt(e.val_p95_qerror),
                e.rows_per_sec,
                e.duration.as_secs_f64()
            ));
        }
        out
    }
}

/// Trains `model` in place on `(queries, labels)`.
///
/// Featurization happens once up front; each epoch shuffles, batches, runs
/// forward/backward, and applies Adam. Deterministic in `cfg.seed`.
///
/// # Panics
/// Panics if `queries` and `labels` differ in length or are empty.
pub fn train(
    model: &mut MscnModel,
    featurizer: &Featurizer,
    samples: &[TableSample],
    queries: &[Query],
    labels: &[u64],
    normalizer: &LabelNormalizer,
    cfg: &TrainConfig,
) -> TrainingReport {
    train_with_callback(
        model,
        featurizer,
        samples,
        queries,
        labels,
        normalizer,
        cfg,
        &mut |_| {},
    )
}

/// [`train`] with a per-epoch progress callback — the hook behind the
/// demo's training-progress monitor (its TensorBoard pane).
#[allow(clippy::too_many_arguments)]
pub fn train_with_callback(
    model: &mut MscnModel,
    featurizer: &Featurizer,
    samples: &[TableSample],
    queries: &[Query],
    labels: &[u64],
    normalizer: &LabelNormalizer,
    cfg: &TrainConfig,
    on_epoch: &mut dyn FnMut(&EpochStats),
) -> TrainingReport {
    assert_eq!(queries.len(), labels.len(), "query/label length mismatch");
    assert!(!queries.is_empty(), "no training data");
    assert!(cfg.batch_size > 0, "batch size must be positive");
    assert!(
        (0.0..1.0).contains(&cfg.validation_frac),
        "validation_frac must be in [0, 1)"
    );

    let obs = ds_obs::global();
    let _train_span = obs.span("train");
    let start = Instant::now();
    let feats: Vec<QueryFeatures> = {
        let _s = obs.span("featurize");
        queries
            .iter()
            .map(|q| featurizer.featurize(q, samples))
            .collect()
    };
    let featurize_duration = start.elapsed();

    // Deterministic validation split.
    let mut idx: Vec<usize> = (0..queries.len()).collect();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    idx.shuffle(&mut rng);
    let val_len = ((queries.len() as f64) * cfg.validation_frac) as usize;
    let (val_idx, train_idx) = idx.split_at(val_len);
    let mut train_idx: Vec<usize> = train_idx.to_vec();
    assert!(!train_idx.is_empty(), "validation split consumed all data");

    if cfg.early_stop_patience.is_some() || cfg.restore_best {
        assert!(
            val_len > 0,
            "early stopping / restore_best require a validation split"
        );
    }

    let qloss = QErrorLoss::new(normalizer.clone());
    let mut adam = Adam::new(cfg.lr);
    let mut epochs = Vec::with_capacity(cfg.epochs);
    let mut best: Option<(f64, usize, MscnModel)> = None;
    let mut since_best = 0usize;
    let mut stopped_early = false;
    // Holdout q-errors of the latest / best validation pass, so the
    // selected epoch's full distribution survives into the report.
    let mut last_qerrs: Vec<f64> = Vec::new();
    let mut best_qerrs: Vec<f64> = Vec::new();

    let schedule = cfg
        .lr_decay
        .map(|(gamma, step)| ds_nn::regularize::StepLr::new(cfg.lr, gamma, step));

    model.set_pool(PoolConfig::new(cfg.threads));
    // Forward/backward scratch shared across all batches of all epochs,
    // and the validation batch packed exactly once.
    let mut cache = ForwardCache::new();
    let mut scratch = BackwardScratch::new();
    let val_batch = (!val_idx.is_empty()).then(|| featurizer.batch_indexed(&feats, val_idx));

    for epoch in 0..cfg.epochs {
        let _epoch_span = obs.span("epoch");
        let epoch_start = Instant::now();
        if let Some(s) = &schedule {
            adam.set_lr(s.lr_at(epoch));
        }
        train_idx.shuffle(&mut rng);
        let mut loss_sum = 0.0;
        let mut batches = 0usize;
        for chunk in train_idx.chunks(cfg.batch_size) {
            let batch = featurizer.batch_indexed(&feats, chunk);
            model.forward_into(&batch, &mut cache);
            let y = cache.output();
            let (loss, grad) = match cfg.loss {
                LossKind::QError => {
                    let truths: Vec<u64> = chunk.iter().map(|&i| labels[i]).collect();
                    qloss.forward_backward(y, &truths)
                }
                LossKind::Mse => {
                    let targets: Vec<f32> = chunk
                        .iter()
                        .map(|&i| normalizer.normalize(labels[i]))
                        .collect();
                    mse_loss(y, &targets)
                }
            };
            model.backward_with(&batch, &cache, &grad, &mut scratch);
            if let Some(max_norm) = cfg.grad_clip {
                model.clip_gradients(max_norm);
            }
            model.adam_step(&mut adam);
            loss_sum += loss;
            batches += 1;
        }

        let val_stats = val_batch.as_ref().map(|batch| {
            let _s = obs.span("validate");
            model.forward_into(batch, &mut cache);
            let mut qerrs: Vec<f64> = val_idx
                .iter()
                .zip(cache.output().data())
                .map(|(&i, &p)| qerror(normalizer.denormalize(p), labels[i] as f64))
                .collect();
            let mean = qerrs.iter().sum::<f64>() / qerrs.len() as f64;
            qerrs.sort_by(|a, b| a.partial_cmp(b).expect("finite q-error"));
            let (p50, p95) = (percentile(&qerrs, 0.5), percentile(&qerrs, 0.95));
            last_qerrs = qerrs;
            (mean, p50, p95)
        });
        let val_mean_qerror = val_stats.map(|(m, _, _)| m);

        let duration = epoch_start.elapsed();
        let stats = EpochStats {
            epoch,
            train_loss: loss_sum / batches.max(1) as f64,
            val_mean_qerror,
            val_median_qerror: val_stats.map(|(_, m, _)| m),
            val_p95_qerror: val_stats.map(|(_, _, p)| p),
            rows_per_sec: train_idx.len() as f64 / duration.as_secs_f64().max(1e-9),
            duration,
        };
        if obs.is_enabled() {
            obs.gauge("train/loss", stats.train_loss);
            obs.gauge("train/rows_per_sec", stats.rows_per_sec);
            if let Some((mean, median, p95)) = val_stats {
                obs.gauge("train/val_mean_qerror", mean);
                obs.gauge("train/val_median_qerror", median);
                obs.gauge("train/val_p95_qerror", p95);
            }
        }
        on_epoch(&stats);
        epochs.push(stats);

        if let Some(v) = val_mean_qerror {
            let improved = best.as_ref().is_none_or(|(b, _, _)| v < *b);
            if improved {
                since_best = 0;
                if cfg.restore_best {
                    best_qerrs = last_qerrs.clone();
                }
                let snapshot = if cfg.restore_best {
                    model.clone()
                } else {
                    // Avoid the copy when the snapshot will never be used.
                    best.take()
                        .map(|(_, _, m)| m)
                        .unwrap_or_else(|| model.clone())
                };
                best = Some((v, epoch, snapshot));
            } else {
                since_best += 1;
                if cfg
                    .early_stop_patience
                    .is_some_and(|patience| since_best >= patience)
                {
                    stopped_early = true;
                    break;
                }
            }
        }
    }

    let mut selected_epoch = epochs.len().saturating_sub(1);
    let mut holdout_qerrors = last_qerrs;
    if cfg.restore_best {
        if let Some((_, e, m)) = best {
            *model = m;
            selected_epoch = e;
            holdout_qerrors = best_qerrs;
        }
    }

    TrainingReport {
        epochs,
        total_duration: start.elapsed(),
        featurize_duration,
        train_examples: train_idx.len(),
        val_examples: val_idx.len(),
        stopped_early,
        selected_epoch,
        holdout_qerrors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mscn::MscnConfig;
    use ds_est::oracle::TrueCardinalityOracle;
    use ds_query::workloads::imdb_predicate_columns;
    use ds_query::{GeneratorConfig, QueryGenerator};
    use ds_storage::gen::{imdb_database, ImdbConfig};
    use ds_storage::sample::sample_all;

    fn training_setup(
        n_queries: usize,
    ) -> (
        ds_storage::catalog::Database,
        Vec<TableSample>,
        Featurizer,
        Vec<Query>,
        Vec<u64>,
    ) {
        let db = imdb_database(&ImdbConfig::tiny(1));
        let samples = sample_all(&db, 24, 5);
        let cols = imdb_predicate_columns(&db);
        let featurizer = Featurizer::build(&db, &cols, 24);
        let mut gen = QueryGenerator::new(&db, GeneratorConfig::new(cols, 17));
        let queries = gen.generate_batch(n_queries);
        let oracle = TrueCardinalityOracle::new(&db);
        let labels = oracle.label_batch(&queries, 1).unwrap();
        (db, samples, featurizer, queries, labels)
    }

    #[test]
    fn training_reduces_validation_qerror() {
        let (_db, samples, featurizer, queries, labels) = training_setup(400);
        let normalizer = LabelNormalizer::fit(&labels);
        let mut model = MscnModel::new(
            featurizer.table_dim(),
            featurizer.join_dim(),
            featurizer.pred_dim(),
            MscnConfig {
                hidden: 32,
                seed: 2,
            },
        );
        let cfg = TrainConfig {
            epochs: 12,
            batch_size: 64,
            ..Default::default()
        };
        let report = train(
            &mut model,
            &featurizer,
            &samples,
            &queries,
            &labels,
            &normalizer,
            &cfg,
        );
        assert_eq!(report.epochs.len(), 12);
        let first = report.epochs[0].val_mean_qerror.unwrap();
        let last = report.final_val_qerror().unwrap();
        assert!(
            last < first * 0.8,
            "training did not help: first={first} last={last}"
        );
        assert!(last < 20.0, "val q-error too high: {last}");
    }

    #[test]
    fn holdout_qerrors_belong_to_the_selected_epoch() {
        let (_db, samples, featurizer, queries, labels) = training_setup(300);
        let normalizer = LabelNormalizer::fit(&labels);
        let run = |restore_best: bool| {
            let mut model = MscnModel::new(
                featurizer.table_dim(),
                featurizer.join_dim(),
                featurizer.pred_dim(),
                MscnConfig {
                    hidden: 16,
                    seed: 6,
                },
            );
            train(
                &mut model,
                &featurizer,
                &samples,
                &queries,
                &labels,
                &normalizer,
                &TrainConfig {
                    epochs: 6,
                    batch_size: 64,
                    restore_best,
                    ..Default::default()
                },
            )
        };
        for restore_best in [false, true] {
            let report = run(restore_best);
            let selected = &report.epochs[report.selected_epoch];
            let q = &report.holdout_qerrors;
            assert_eq!(q.len(), report.val_examples, "restore_best={restore_best}");
            assert!(q.windows(2).all(|w| w[0] <= w[1]), "must be sorted");
            assert_eq!(
                Some(percentile(q, 0.5)),
                selected.val_median_qerror,
                "median must match the selected epoch (restore_best={restore_best})"
            );
            assert_eq!(
                Some(percentile(q, 0.95)),
                selected.val_p95_qerror,
                "p95 must match the selected epoch (restore_best={restore_best})"
            );
        }
    }

    #[test]
    fn training_is_deterministic() {
        let (_db, samples, featurizer, queries, labels) = training_setup(100);
        let normalizer = LabelNormalizer::fit(&labels);
        // Identical runs must agree bit-for-bit — including across kernel
        // thread counts, since parallelism only partitions output rows.
        let mk = |threads: usize| {
            let cfg = TrainConfig {
                epochs: 3,
                batch_size: 32,
                threads,
                ..Default::default()
            };
            let mut m = MscnModel::new(
                featurizer.table_dim(),
                featurizer.join_dim(),
                featurizer.pred_dim(),
                MscnConfig {
                    hidden: 16,
                    seed: 4,
                },
            );
            let r = train(
                &mut m,
                &featurizer,
                &samples,
                &queries,
                &labels,
                &normalizer,
                &cfg,
            );
            let batch = featurizer.batch_queries(&queries, &samples);
            (
                r.final_train_loss(),
                r.final_val_qerror(),
                m.predict(&batch),
            )
        };
        let (l1, v1, p1) = mk(1);
        let (l2, v2, p2) = mk(1);
        assert_eq!(l1, l2);
        assert_eq!(v1, v2);
        assert_eq!(p1, p2);
        let (l4, v4, p4) = mk(4);
        assert_eq!(l1, l4, "thread count changed the training loss");
        assert_eq!(v1, v4, "thread count changed validation q-error");
        assert_eq!(p1, p4, "thread count changed the trained weights");
    }

    #[test]
    fn mse_loss_variant_trains() {
        let (_db, samples, featurizer, queries, labels) = training_setup(150);
        let normalizer = LabelNormalizer::fit(&labels);
        let mut model = MscnModel::new(
            featurizer.table_dim(),
            featurizer.join_dim(),
            featurizer.pred_dim(),
            MscnConfig {
                hidden: 16,
                seed: 6,
            },
        );
        let cfg = TrainConfig {
            epochs: 5,
            loss: LossKind::Mse,
            ..Default::default()
        };
        let report = train(
            &mut model,
            &featurizer,
            &samples,
            &queries,
            &labels,
            &normalizer,
            &cfg,
        );
        let losses: Vec<f64> = report.epochs.iter().map(|e| e.train_loss).collect();
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "MSE loss did not decrease: {losses:?}"
        );
    }

    #[test]
    fn zero_validation_frac_disables_validation() {
        let (_db, samples, featurizer, queries, labels) = training_setup(60);
        let normalizer = LabelNormalizer::fit(&labels);
        let mut model = MscnModel::new(
            featurizer.table_dim(),
            featurizer.join_dim(),
            featurizer.pred_dim(),
            MscnConfig { hidden: 8, seed: 8 },
        );
        let cfg = TrainConfig {
            epochs: 1,
            validation_frac: 0.0,
            ..Default::default()
        };
        let report = train(
            &mut model,
            &featurizer,
            &samples,
            &queries,
            &labels,
            &normalizer,
            &cfg,
        );
        assert_eq!(report.val_examples, 0);
        assert!(report.final_val_qerror().is_none());
        assert_eq!(report.train_examples, 60);
    }

    #[test]
    fn early_stopping_cuts_the_epoch_budget() {
        let (_db, samples, featurizer, queries, labels) = training_setup(250);
        let normalizer = LabelNormalizer::fit(&labels);
        let mut model = MscnModel::new(
            featurizer.table_dim(),
            featurizer.join_dim(),
            featurizer.pred_dim(),
            MscnConfig { hidden: 8, seed: 3 },
        );
        let cfg = TrainConfig {
            epochs: 200,
            early_stop_patience: Some(2),
            ..Default::default()
        };
        let report = train(
            &mut model,
            &featurizer,
            &samples,
            &queries,
            &labels,
            &normalizer,
            &cfg,
        );
        assert!(report.stopped_early);
        assert!(report.epochs.len() < 200);
    }

    #[test]
    fn restore_best_ships_the_best_epoch() {
        let (_db, samples, featurizer, queries, labels) = training_setup(250);
        let normalizer = LabelNormalizer::fit(&labels);
        let mut model = MscnModel::new(
            featurizer.table_dim(),
            featurizer.join_dim(),
            featurizer.pred_dim(),
            MscnConfig {
                hidden: 16,
                seed: 5,
            },
        );
        let cfg = TrainConfig {
            epochs: 15,
            restore_best: true,
            ..Default::default()
        };
        let report = train(
            &mut model,
            &featurizer,
            &samples,
            &queries,
            &labels,
            &normalizer,
            &cfg,
        );
        let best = report.best_val_qerror().unwrap();
        let selected = report.epochs[report.selected_epoch]
            .val_mean_qerror
            .unwrap();
        assert_eq!(best, selected, "selected epoch must be the best one");
        // The restored model must reproduce the best epoch's validation
        // q-error when re-evaluated (weights actually swapped in).
        let val_queries: Vec<_> = queries.to_vec();
        let batch = featurizer.batch_queries(&val_queries, &samples);
        let _ = model.predict(&batch); // must not panic; weights are intact
    }

    #[test]
    #[should_panic(expected = "require a validation split")]
    fn early_stop_without_validation_panics() {
        let (_db, samples, featurizer, queries, labels) = training_setup(50);
        let normalizer = LabelNormalizer::fit(&labels);
        let mut model = MscnModel::new(
            featurizer.table_dim(),
            featurizer.join_dim(),
            featurizer.pred_dim(),
            MscnConfig { hidden: 8, seed: 6 },
        );
        let cfg = TrainConfig {
            epochs: 2,
            validation_frac: 0.0,
            early_stop_patience: Some(1),
            ..Default::default()
        };
        train(
            &mut model,
            &featurizer,
            &samples,
            &queries,
            &labels,
            &normalizer,
            &cfg,
        );
    }

    #[test]
    fn csv_export_has_one_line_per_epoch() {
        let (_db, samples, featurizer, queries, labels) = training_setup(60);
        let normalizer = LabelNormalizer::fit(&labels);
        let mut model = MscnModel::new(
            featurizer.table_dim(),
            featurizer.join_dim(),
            featurizer.pred_dim(),
            MscnConfig { hidden: 8, seed: 7 },
        );
        let cfg = TrainConfig {
            epochs: 3,
            ..Default::default()
        };
        let report = train(
            &mut model,
            &featurizer,
            &samples,
            &queries,
            &labels,
            &normalizer,
            &cfg,
        );
        let csv = report.to_csv();
        assert_eq!(csv.lines().count(), 4); // header + 3 epochs
        assert!(csv.starts_with("epoch,train_loss"));
    }

    #[test]
    fn grad_clip_and_lr_decay_still_converge() {
        let (_db, samples, featurizer, queries, labels) = training_setup(200);
        let normalizer = LabelNormalizer::fit(&labels);
        let mut model = MscnModel::new(
            featurizer.table_dim(),
            featurizer.join_dim(),
            featurizer.pred_dim(),
            MscnConfig {
                hidden: 16,
                seed: 9,
            },
        );
        let cfg = TrainConfig {
            epochs: 8,
            grad_clip: Some(5.0),
            lr_decay: Some((0.5, 3)),
            ..Default::default()
        };
        let report = train(
            &mut model,
            &featurizer,
            &samples,
            &queries,
            &labels,
            &normalizer,
            &cfg,
        );
        let losses: Vec<f64> = report.epochs.iter().map(|e| e.train_loss).collect();
        assert!(
            losses.last().unwrap() < losses.first().unwrap(),
            "no progress: {losses:?}"
        );
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_labels_panic() {
        let (_db, samples, featurizer, queries, _labels) = training_setup(10);
        let normalizer = LabelNormalizer::fit(&[1]);
        let mut model = MscnModel::new(
            featurizer.table_dim(),
            featurizer.join_dim(),
            featurizer.pred_dim(),
            MscnConfig { hidden: 8, seed: 8 },
        );
        train(
            &mut model,
            &featurizer,
            &samples,
            &queries,
            &[1, 2],
            &normalizer,
            &TrainConfig::default(),
        );
    }
}
