//! Online accuracy monitoring for served sketches.
//!
//! A deployed learned estimator fails *silently*: when the data or the
//! workload drifts away from what the model was trained on, estimates
//! degrade with no crash, no error — just worse plans. This module closes
//! the loop the literature says is missing ("Are We Ready For Learned
//! Cardinality Estimation?", Wang et al. 2021): production feeds observed
//! true cardinalities back (`FEEDBACK` wire command), each observation
//! becomes a q-error sample in a rolling window, and
//! [`crate::maintain::accuracy_drift`] compares the rolling distribution
//! against the training-time holdout baseline stored inside the sketch.
//!
//! Q-errors are dimensionless ratios ≥ 1 concentrated near 1, where the
//! log₂ histogram's buckets are uselessly coarse — so every q-error is
//! scaled by [`QERR_SCALE`] before recording (1.0 → 1000, 2.0 → 2000),
//! giving the buckets sub-2× resolution exactly where drift shows up.
//! Baseline and rolling windows use the same scale, so bucket-quantile
//! comparisons between them are apples-to-apples: identical distributions
//! produce identical bucketed quantiles, and a real 4× degradation moves
//! the rolling median two buckets regardless of machine or workload size.

use std::collections::HashMap;
use std::sync::Arc;

use ds_obs::{HistogramSnapshot, LogHistogram, WindowedHistogram};
use parking_lot::RwLock;

use crate::metrics::qerror;

/// Fixed-point scale applied to q-errors before histogram recording.
pub const QERR_SCALE: f64 = 1000.0;

/// Rolling-window generations per monitor.
pub const WINDOW_SLOTS: usize = 4;

/// Samples per window generation; the window therefore covers the last
/// 3×–4× this many feedback observations.
pub const WINDOW_SLOT_CAPACITY: u64 = 256;

/// Scales a q-error for histogram recording. Values are clamped to ≥ 1
/// (a q-error below 1 is impossible by definition) and non-finite inputs
/// saturate at `u64::MAX / 2` so they never wrap.
pub fn scale_qerror(q: f64) -> u64 {
    if !q.is_finite() {
        return u64::MAX / 2;
    }
    let scaled = (q.max(1.0) * QERR_SCALE).round();
    if scaled >= (u64::MAX / 2) as f64 {
        u64::MAX / 2
    } else {
        scaled as u64
    }
}

/// Descale a histogram value back into q-error units.
pub fn descale_qerror(v: u64) -> f64 {
    v as f64 / QERR_SCALE
}

/// Builds the training-time baseline histogram from the holdout q-errors
/// of the selected epoch (see
/// [`crate::train::TrainingReport::holdout_qerrors`]). Returns `None`
/// when there was no validation split to learn a baseline from.
pub fn baseline_from_qerrors(qerrs: &[f64]) -> Option<HistogramSnapshot> {
    if qerrs.is_empty() {
        return None;
    }
    let h = LogHistogram::new();
    for &q in qerrs {
        h.record(scale_qerror(q));
    }
    Some(h.snapshot())
}

/// Rolling q-error monitor for one served sketch: a sketch-wide window
/// plus one window per query template, all fed by `FEEDBACK`
/// observations. Recording is lock-free on the sketch-wide path and takes
/// a brief read lock on the template map (write lock only the first time
/// a template is seen).
#[derive(Debug)]
pub struct QErrorMonitor {
    overall: WindowedHistogram,
    templates: RwLock<HashMap<String, Arc<WindowedHistogram>>>,
    slots: usize,
    slot_capacity: u64,
}

impl Default for QErrorMonitor {
    fn default() -> Self {
        Self::new(WINDOW_SLOTS, WINDOW_SLOT_CAPACITY)
    }
}

impl QErrorMonitor {
    /// Creates a monitor whose windows keep `slots` generations of
    /// `slot_capacity` samples each.
    pub fn new(slots: usize, slot_capacity: u64) -> Self {
        Self {
            overall: WindowedHistogram::new(slots, slot_capacity),
            templates: RwLock::new(HashMap::new()),
            slots,
            slot_capacity,
        }
    }

    /// Records one feedback observation: the estimate the sketch produced
    /// and the true cardinality the system later observed. Returns the
    /// q-error that was recorded.
    pub fn record(&self, template: &str, estimate: f64, actual: f64) -> f64 {
        let q = qerror(estimate, actual.max(1.0));
        let scaled = scale_qerror(q);
        self.overall.record(scaled);
        let existing = self.templates.read().get(template).cloned();
        let window = existing.unwrap_or_else(|| {
            Arc::clone(
                self.templates
                    .write()
                    .entry(template.to_string())
                    .or_insert_with(|| {
                        Arc::new(WindowedHistogram::new(self.slots, self.slot_capacity))
                    }),
            )
        });
        window.record(scaled);
        q
    }

    /// Feedback observations currently inside the sketch-wide window.
    pub fn samples(&self) -> u64 {
        self.overall.count()
    }

    /// The rolling sketch-wide q-error distribution (scaled units).
    pub fn rolling(&self) -> HistogramSnapshot {
        self.overall.merged()
    }

    /// The rolling distribution of one query template, if it has feedback.
    pub fn template_rolling(&self, template: &str) -> Option<HistogramSnapshot> {
        self.templates.read().get(template).map(|w| w.merged())
    }

    /// All templates with feedback, sorted by name, with their rolling
    /// distributions.
    pub fn templates(&self) -> Vec<(String, HistogramSnapshot)> {
        let mut out: Vec<(String, HistogramSnapshot)> = self
            .templates
            .read()
            .iter()
            .map(|(k, w)| (k.clone(), w.merged()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Clears every window (e.g. after the sketch was retrained).
    pub fn reset(&self) {
        self.overall.reset();
        self.templates.write().clear();
    }

    /// Freezes the monitor's complete window state — geometry, rotation
    /// cursors, and every per-template window — into a plain-data value
    /// that snapshots can serialize. Restoring with
    /// [`QErrorMonitor::from_state`] resumes drift tracking exactly where
    /// the exported monitor left off.
    pub fn export_state(&self) -> MonitorState {
        let mut templates: Vec<(String, Vec<u64>)> = self
            .templates
            .read()
            .iter()
            .map(|(k, w)| (k.clone(), w.to_words()))
            .collect();
        templates.sort_by(|a, b| a.0.cmp(&b.0));
        MonitorState {
            overall: self.overall.to_words(),
            templates,
        }
    }

    /// Rebuilds a monitor from an exported state. Returns `None` when any
    /// window fails validation or a template window's geometry disagrees
    /// with the sketch-wide window (all windows of one monitor share
    /// `slots`/`slot_capacity` by construction).
    pub fn from_state(state: &MonitorState) -> Option<Self> {
        let overall = WindowedHistogram::from_words(&state.overall)?;
        let (slots, slot_capacity) = (overall.slots(), overall.slot_capacity());
        let mut templates = HashMap::with_capacity(state.templates.len());
        for (name, words) in &state.templates {
            let w = WindowedHistogram::from_words(words)?;
            if w.slots() != slots || w.slot_capacity() != slot_capacity {
                return None;
            }
            templates.insert(name.clone(), Arc::new(w));
        }
        Some(Self {
            overall,
            templates: RwLock::new(templates),
            slots,
            slot_capacity,
        })
    }
}

/// Plain-data copy of a [`QErrorMonitor`]'s full rolling-window state, in
/// the `u64`-word encoding of [`WindowedHistogram::to_words`]. This is
/// what crash-safe snapshots persist so a warm restart keeps the drift
/// signal instead of starting the windows cold.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MonitorState {
    /// Sketch-wide window words.
    pub overall: Vec<u64>,
    /// Per-template window words, sorted by template name.
    pub templates: Vec<(String, Vec<u64>)>,
}

/// Monitors for every served sketch, keyed by store name. Shared between
/// the serving layer (records feedback) and maintenance (reads drift).
#[derive(Debug, Default)]
pub struct MonitorRegistry {
    monitors: RwLock<HashMap<String, Arc<QErrorMonitor>>>,
}

impl MonitorRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The monitor for `sketch`, created on first use.
    pub fn monitor(&self, sketch: &str) -> Arc<QErrorMonitor> {
        if let Some(m) = self.monitors.read().get(sketch) {
            return Arc::clone(m);
        }
        Arc::clone(self.monitors.write().entry(sketch.to_string()).or_default())
    }

    /// The monitor for `sketch` if any feedback ever arrived for it.
    pub fn get(&self, sketch: &str) -> Option<Arc<QErrorMonitor>> {
        self.monitors.read().get(sketch).cloned()
    }

    /// Names of all monitored sketches, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.monitors.read().keys().cloned().collect();
        names.sort();
        names
    }

    /// Installs a restored monitor for `sketch` (warm-restart recovery),
    /// replacing any existing one.
    pub fn restore(&self, sketch: &str, monitor: QErrorMonitor) {
        self.monitors
            .write()
            .insert(sketch.to_string(), Arc::new(monitor));
    }

    /// Drops the monitor of a removed/retrained sketch.
    pub fn remove(&self, sketch: &str) -> bool {
        self.monitors.write().remove(sketch).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_clamps_and_roundtrips() {
        assert_eq!(scale_qerror(1.0), 1000);
        assert_eq!(scale_qerror(2.5), 2500);
        assert_eq!(scale_qerror(0.5), 1000, "q-error below 1 is clamped");
        assert_eq!(scale_qerror(f64::INFINITY), u64::MAX / 2);
        assert_eq!(scale_qerror(f64::NAN), u64::MAX / 2);
        assert_eq!(descale_qerror(3000), 3.0);
    }

    #[test]
    fn baseline_reflects_the_holdout_distribution() {
        assert!(baseline_from_qerrors(&[]).is_none());
        let b = baseline_from_qerrors(&[1.0, 1.1, 1.2, 2.0, 8.0]).unwrap();
        assert_eq!(b.count(), 5);
        assert_eq!(b.min(), 1000);
        assert_eq!(b.max(), 8000);
        // Median in scaled units sits in the right bucket range.
        let p50 = b.quantile(0.5);
        assert!((1000..=2048).contains(&p50), "p50={p50}");
    }

    #[test]
    fn monitor_tracks_overall_and_per_template() {
        let m = QErrorMonitor::default();
        // Estimate 10 vs actual 10 → q-error 1; estimate 10 vs 40 → 4.
        assert_eq!(m.record("t1", 10.0, 10.0), 1.0);
        assert_eq!(m.record("t2", 10.0, 40.0), 4.0);
        assert_eq!(m.samples(), 2);
        assert_eq!(m.rolling().count(), 2);
        assert_eq!(m.template_rolling("t1").unwrap().count(), 1);
        assert_eq!(m.template_rolling("t1").unwrap().max(), 1000);
        assert_eq!(m.template_rolling("t2").unwrap().max(), 4000);
        assert!(m.template_rolling("t3").is_none());
        let templates = m.templates();
        assert_eq!(templates.len(), 2);
        assert_eq!(templates[0].0, "t1");
        // Actual cardinality 0 is clamped to 1, not a division blow-up.
        let q = m.record("t1", 5.0, 0.0);
        assert_eq!(q, 5.0);
        m.reset();
        assert_eq!(m.samples(), 0);
        assert!(m.templates().is_empty());
    }

    #[test]
    fn registry_creates_and_removes_monitors() {
        let r = MonitorRegistry::new();
        assert!(r.get("imdb").is_none());
        let m = r.monitor("imdb");
        m.record("t", 2.0, 1.0);
        assert_eq!(r.get("imdb").unwrap().samples(), 1);
        assert!(std::ptr::eq(&*r.monitor("imdb"), &*m));
        assert_eq!(r.names(), vec!["imdb".to_string()]);
        assert!(r.remove("imdb"));
        assert!(!r.remove("imdb"));
        assert!(r.get("imdb").is_none());
    }

    #[test]
    fn monitor_state_roundtrips_and_resumes() {
        let m = QErrorMonitor::new(3, 8);
        for i in 0..20u32 {
            m.record(&format!("tpl{}", i % 2), (i + 1) as f64, 1.0);
        }
        let state = m.export_state();
        let restored = QErrorMonitor::from_state(&state).expect("roundtrip");
        assert_eq!(restored.samples(), m.samples());
        assert_eq!(restored.rolling(), m.rolling());
        assert_eq!(restored.templates(), m.templates());
        // Exporting the restored monitor is bit-identical.
        assert_eq!(restored.export_state(), state);
        // And it keeps recording/rotating like the original would.
        restored.record("tpl0", 2.0, 1.0);
        assert_eq!(restored.samples(), m.samples() + 1);
    }

    #[test]
    fn monitor_state_rejects_corruption() {
        let m = QErrorMonitor::new(2, 4);
        m.record("t", 3.0, 1.0);
        let good = m.export_state();
        assert!(QErrorMonitor::from_state(&good).is_some());
        let mut bad = good.clone();
        bad.overall.pop();
        assert!(QErrorMonitor::from_state(&bad).is_none());
        // Template window with mismatched geometry is rejected.
        let mut mismatched = good.clone();
        mismatched
            .templates
            .push(("other".into(), WindowedHistogram::new(5, 4).to_words()));
        assert!(QErrorMonitor::from_state(&mismatched).is_none());
        let mut bad_template = good;
        if let Some((_, words)) = bad_template.templates.first_mut() {
            words[3] ^= 1; // slot count no longer matches its buckets
        }
        assert!(QErrorMonitor::from_state(&bad_template).is_none());
    }

    #[test]
    fn concurrent_feedback_is_not_lost() {
        let m = std::sync::Arc::new(QErrorMonitor::new(4, 1_000_000));
        std::thread::scope(|s| {
            for t in 0..8 {
                let m = std::sync::Arc::clone(&m);
                s.spawn(move || {
                    for i in 0..500 {
                        m.record(&format!("tpl{}", i % 3), (t * i) as f64 + 1.0, 1.0);
                    }
                });
            }
        });
        assert_eq!(m.samples(), 4000);
        let total: u64 = m.templates().iter().map(|(_, h)| h.count()).sum();
        assert_eq!(total, 4000);
    }
}
