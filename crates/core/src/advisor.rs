//! The sketch advisor — §4's open question, implemented.
//!
//! "One question — that we currently outsource to our users — is for which
//! schema parts we should build such sketches." Given a database and a
//! representative workload, the advisor recommends a small set of sketches
//! (connected table subsets) that covers the workload, trading coverage
//! against footprint: a sketch over tables `S` can answer a query iff the
//! query's tables are a subset of `S`.
//!
//! The algorithm is greedy weighted set cover over the connected subgraphs
//! of the schema's join graph: repeatedly pick the candidate with the best
//! newly-covered-queries per estimated footprint ratio.

use std::collections::HashSet;

use ds_query::query::Query;
use ds_query::JoinGraph;
use ds_storage::catalog::{Database, TableId};

/// Advisor tuning knobs.
#[derive(Debug, Clone)]
pub struct AdvisorConfig {
    /// Largest table subset a single sketch may span.
    pub max_tables_per_sketch: usize,
    /// Maximum number of sketches to recommend.
    pub max_sketches: usize,
    /// Sample size per table (drives the footprint estimate).
    pub sample_size: usize,
    /// Hidden width (drives the model-size part of the footprint estimate).
    pub hidden_units: usize,
}

impl Default for AdvisorConfig {
    fn default() -> Self {
        Self {
            max_tables_per_sketch: 5,
            max_sketches: 3,
            sample_size: 1000,
            hidden_units: 128,
        }
    }
}

/// One recommended sketch.
#[derive(Debug, Clone)]
pub struct SketchRecommendation {
    /// Tables the sketch should span (sorted).
    pub tables: Vec<TableId>,
    /// Indices into the workload of the queries this sketch answers that no
    /// earlier recommendation answers.
    pub newly_covered: Vec<usize>,
    /// Estimated serialized footprint in bytes.
    pub est_footprint_bytes: usize,
}

/// The advisor's full answer.
#[derive(Debug, Clone)]
pub struct Advice {
    /// Recommended sketches, in greedy order (most valuable first).
    pub recommendations: Vec<SketchRecommendation>,
    /// Fraction of workload queries covered by the recommendations.
    pub coverage: f64,
    /// Workload indices no recommendation covers (e.g. queries touching
    /// more tables than `max_tables_per_sketch`).
    pub uncovered: Vec<usize>,
}

/// Rough footprint model: per-table samples (values × 8 bytes) plus the
/// MSCN parameters (4 bytes each) for the table subset's feature widths.
pub fn estimate_footprint(
    db: &Database,
    tables: &[TableId],
    sample_size: usize,
    hidden: usize,
) -> usize {
    let sample_bytes: usize = tables
        .iter()
        .map(|&t| {
            let cols = db.table(t).columns().len();
            sample_size.min(db.table(t).num_rows()) * cols * 8
        })
        .sum();
    let table_dim = tables.len() + sample_size;
    let join_dim = db.foreign_keys().len().max(1);
    // Predicate columns ≈ non-key columns of the subset.
    let pred_cols: usize = tables
        .iter()
        .map(|&t| db.table(t).columns().len().saturating_sub(2))
        .sum();
    let pred_dim = pred_cols + 4;
    let params = (table_dim + 1) * hidden
        + (join_dim + 1) * hidden
        + (pred_dim + 1) * hidden
        + 2 * (hidden + 1) * hidden
        + (3 * hidden + 1) * hidden
        + hidden
        + 1;
    sample_bytes + params * 4
}

/// Enumerates all connected subsets of the join graph with `1..=max_size`
/// tables, sorted ascending. Single-table subsets are always connected.
pub fn connected_subsets(db: &Database, max_size: usize) -> Vec<Vec<TableId>> {
    let graph = JoinGraph::from_database(db);
    let n = db.num_tables();
    let mut out: HashSet<Vec<TableId>> = HashSet::new();
    // Grow subsets from every start table.
    let mut frontier: Vec<Vec<TableId>> = (0..n).map(|t| vec![TableId(t)]).collect();
    for subset in &frontier {
        out.insert(subset.clone());
    }
    for _ in 1..max_size {
        let mut next = Vec::new();
        for subset in &frontier {
            for &t in subset {
                for &(nb, _) in graph.neighbors(t) {
                    if !subset.contains(&nb) {
                        let mut grown = subset.clone();
                        grown.push(nb);
                        grown.sort_unstable();
                        if out.insert(grown.clone()) {
                            next.push(grown);
                        }
                    }
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }
    let mut sorted: Vec<Vec<TableId>> = out.into_iter().collect();
    sorted.sort();
    sorted
}

/// Recommends sketches for a workload via greedy coverage-per-byte.
pub fn recommend(db: &Database, workload: &[Query], cfg: &AdvisorConfig) -> Advice {
    assert!(cfg.max_tables_per_sketch >= 1);
    let candidates = connected_subsets(db, cfg.max_tables_per_sketch);

    // Which queries each candidate covers.
    let query_tables: Vec<Vec<TableId>> = workload
        .iter()
        .map(|q| {
            let mut t = q.tables.clone();
            t.sort_unstable();
            t
        })
        .collect();
    let covers = |cand: &[TableId], qi: usize| query_tables[qi].iter().all(|t| cand.contains(t));

    let mut uncovered_set: HashSet<usize> = (0..workload.len()).collect();
    let mut recommendations = Vec::new();

    while recommendations.len() < cfg.max_sketches && !uncovered_set.is_empty() {
        let mut best: Option<(f64, &Vec<TableId>, Vec<usize>)> = None;
        for cand in &candidates {
            let newly: Vec<usize> = uncovered_set
                .iter()
                .copied()
                .filter(|&qi| covers(cand, qi))
                .collect();
            if newly.is_empty() {
                continue;
            }
            let footprint = estimate_footprint(db, cand, cfg.sample_size, cfg.hidden_units) as f64;
            let score = newly.len() as f64 / footprint;
            let better = match &best {
                None => true,
                Some((s, b, n)) => {
                    score > *s || (score == *s && (newly.len(), cand.len()) > (n.len(), b.len()))
                }
            };
            if better {
                best = Some((score, cand, newly));
            }
        }
        let Some((_, cand, mut newly)) = best else {
            break;
        };
        newly.sort_unstable();
        for &qi in &newly {
            uncovered_set.remove(&qi);
        }
        recommendations.push(SketchRecommendation {
            tables: cand.clone(),
            est_footprint_bytes: estimate_footprint(db, cand, cfg.sample_size, cfg.hidden_units),
            newly_covered: newly,
        });
    }

    let mut uncovered: Vec<usize> = uncovered_set.into_iter().collect();
    uncovered.sort_unstable();
    let coverage = if workload.is_empty() {
        1.0
    } else {
        1.0 - uncovered.len() as f64 / workload.len() as f64
    };
    Advice {
        recommendations,
        coverage,
        uncovered,
    }
}

/// One sketch the online drift monitor flagged as stale — the advisor's
/// answer to "*when* should we rebuild", complementing [`recommend`]'s
/// "*what* should we build".
#[derive(Debug, Clone)]
pub struct RetrainAdvice {
    /// Store name of the stale sketch.
    pub sketch: String,
    /// The accuracy-drift evidence behind the recommendation.
    pub drift: crate::maintain::AccuracyDrift,
}

impl std::fmt::Display for RetrainAdvice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "retrain '{}': {}", self.sketch, self.drift)
    }
}

/// Scans every ready sketch in `store` against its feedback monitor and
/// returns the ones whose staleness signal fires, most severe first.
/// Sketches without a stored baseline or without feedback are skipped —
/// no evidence, no recommendation.
pub fn recommend_retraining(
    store: &crate::store::SketchStore,
    monitors: &crate::monitor::MonitorRegistry,
    ratio_threshold: f64,
    min_samples: u64,
) -> Vec<RetrainAdvice> {
    let mut out = Vec::new();
    for (name, _) in store.list() {
        let Ok(sketch) = store.get(&name) else {
            continue; // still training, or failed — nothing to judge
        };
        let Some(baseline) = sketch.baseline() else {
            continue;
        };
        let Some(monitor) = monitors.get(&name) else {
            continue;
        };
        let Some(drift) = crate::maintain::accuracy_drift(baseline, &monitor.rolling()) else {
            continue;
        };
        if drift.is_stale(ratio_threshold, min_samples) {
            out.push(RetrainAdvice {
                sketch: name,
                drift,
            });
        }
    }
    out.sort_by(|a, b| {
        b.drift
            .severity()
            .partial_cmp(&a.drift.severity())
            .expect("finite severity")
            .then_with(|| a.sketch.cmp(&b.sketch))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ds_query::workloads::job_light::job_light_workload;
    use ds_storage::gen::{imdb_database, tpch_database, ImdbConfig, TpchConfig};

    #[test]
    fn connected_subsets_of_the_imdb_star() {
        let db = imdb_database(&ImdbConfig::tiny(1));
        let subsets = connected_subsets(&db, 2);
        // 6 singletons + 5 star edges.
        assert_eq!(subsets.len(), 11);
        let all = connected_subsets(&db, 6);
        // Star with hub h and 5 leaves: connected subsets are singletons
        // (6) plus {h} ∪ (any non-empty leaf subset) (2^5 - 1 = 31).
        assert_eq!(all.len(), 37);
        for s in &all {
            assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted {s:?}");
        }
    }

    #[test]
    fn full_coverage_with_one_big_sketch() {
        let db = imdb_database(&ImdbConfig::tiny(2));
        let wl = job_light_workload(&db, 1);
        let cfg = AdvisorConfig {
            max_tables_per_sketch: 6,
            max_sketches: 5,
            ..Default::default()
        };
        let advice = recommend(&db, &wl, &cfg);
        assert_eq!(advice.coverage, 1.0);
        assert!(advice.uncovered.is_empty());
        // Every covered index appears exactly once across recommendations.
        let mut seen = HashSet::new();
        for r in &advice.recommendations {
            for &qi in &r.newly_covered {
                assert!(seen.insert(qi), "query {qi} double-counted");
            }
        }
        assert_eq!(seen.len(), wl.len());
    }

    #[test]
    fn small_sketches_leave_big_queries_uncovered() {
        let db = imdb_database(&ImdbConfig::tiny(3));
        let wl = job_light_workload(&db, 2);
        let cfg = AdvisorConfig {
            max_tables_per_sketch: 2,
            max_sketches: 10,
            ..Default::default()
        };
        let advice = recommend(&db, &wl, &cfg);
        // 3+-table queries cannot be covered by 2-table sketches.
        let big = wl.iter().filter(|q| q.tables.len() > 2).count();
        assert_eq!(advice.uncovered.len(), big);
        assert!(advice.coverage < 1.0);
        for r in &advice.recommendations {
            assert!(r.tables.len() <= 2);
            assert!(!r.newly_covered.is_empty());
        }
    }

    #[test]
    fn budget_caps_recommendation_count() {
        let db = imdb_database(&ImdbConfig::tiny(4));
        let wl = job_light_workload(&db, 3);
        let cfg = AdvisorConfig {
            max_tables_per_sketch: 3,
            max_sketches: 1,
            ..Default::default()
        };
        let advice = recommend(&db, &wl, &cfg);
        assert_eq!(advice.recommendations.len(), 1);
    }

    #[test]
    fn footprint_grows_with_tables_and_samples() {
        let db = imdb_database(&ImdbConfig::tiny(5));
        let one = vec![TableId(0)];
        let two = vec![TableId(0), TableId(5)];
        let f1 = estimate_footprint(&db, &one, 100, 64);
        let f2 = estimate_footprint(&db, &two, 100, 64);
        let f1_big = estimate_footprint(&db, &one, 400, 64);
        assert!(f2 > f1);
        assert!(f1_big > f1);
    }

    #[test]
    fn footprint_estimate_is_in_the_ballpark() {
        // Compare the advisor's estimate with a really-built sketch.
        use crate::builder::SketchBuilder;
        use ds_query::workloads::imdb_predicate_columns;
        let db = imdb_database(&ImdbConfig::tiny(6));
        let sketch = SketchBuilder::new(&db, imdb_predicate_columns(&db))
            .training_queries(100)
            .epochs(1)
            .sample_size(50)
            .hidden_units(32)
            .seed(1)
            .build()
            .expect("sketch");
        let all: Vec<TableId> = (0..db.num_tables()).map(TableId).collect();
        let est = estimate_footprint(&db, &all, 50, 32);
        let real = sketch.footprint_bytes();
        let ratio = est as f64 / real as f64;
        assert!(
            (0.3..3.0).contains(&ratio),
            "estimate {est} vs real {real} (ratio {ratio:.2})"
        );
    }

    #[test]
    fn works_on_chain_schemas_too() {
        let db = tpch_database(&TpchConfig::tiny(1));
        let subsets = connected_subsets(&db, 3);
        // Must include the chain {customer, orders, lineitem}.
        let chain: Vec<TableId> = ["customer", "orders", "lineitem"]
            .iter()
            .map(|n| db.table_id(n).unwrap())
            .collect();
        let mut sorted = chain.clone();
        sorted.sort_unstable();
        assert!(subsets.contains(&sorted));
        // But not the disconnected {region, lineitem}.
        let mut bad = vec![
            db.table_id("region").unwrap(),
            db.table_id("lineitem").unwrap(),
        ];
        bad.sort_unstable();
        assert!(!subsets.contains(&bad));
    }

    #[test]
    fn empty_workload_is_fully_covered() {
        let db = imdb_database(&ImdbConfig::tiny(7));
        let advice = recommend(&db, &[], &AdvisorConfig::default());
        assert_eq!(advice.coverage, 1.0);
        assert!(advice.recommendations.is_empty());
    }

    #[test]
    fn retraining_is_recommended_only_for_drifted_sketches() {
        use crate::builder::SketchBuilder;
        use crate::monitor::{baseline_from_qerrors, MonitorRegistry};
        use crate::store::SketchStore;
        use ds_query::workloads::imdb_predicate_columns;

        let db = imdb_database(&ImdbConfig::tiny(8));
        let base = SketchBuilder::new(&db, imdb_predicate_columns(&db))
            .training_queries(60)
            .epochs(1)
            .sample_size(16)
            .hidden_units(16)
            .seed(2)
            .build()
            .expect("sketch");
        // Identical holdout baselines for all three, so only the feedback
        // stream decides which one is flagged.
        let baseline = baseline_from_qerrors(&[1.0, 1.1, 1.3, 1.8, 2.5]).unwrap();
        let mut healthy = base.clone();
        healthy.set_baseline(baseline.clone());
        let mut drifted = base.clone();
        drifted.set_baseline(baseline.clone());
        let mut quiet = base.clone();
        quiet.set_baseline(baseline);

        let store = SketchStore::new();
        store.insert("healthy", healthy).unwrap();
        store.insert("drifted", drifted).unwrap();
        store.insert("quiet", quiet).unwrap();

        let monitors = MonitorRegistry::new();
        for i in 0..60 {
            // Healthy feedback replays the baseline distribution...
            let q = [1.0, 1.1, 1.3, 1.8, 2.5][i % 5];
            monitors.monitor("healthy").record("t", q, 1.0);
            // ...while the drifted sketch is off by ~10x.
            monitors.monitor("drifted").record("t", 10.0 * q, 1.0);
        }
        // "quiet" never receives feedback at all.

        let advice = super::recommend_retraining(
            &store,
            &monitors,
            crate::maintain::DEFAULT_DRIFT_RATIO,
            crate::maintain::DEFAULT_MIN_SAMPLES,
        );
        assert_eq!(advice.len(), 1, "{advice:?}");
        assert_eq!(advice[0].sketch, "drifted");
        assert!(advice[0].drift.severity() > 2.0);
        assert!(advice[0].to_string().contains("drifted"));

        // Too little evidence → no recommendation even if severe.
        let sparse = MonitorRegistry::new();
        sparse.monitor("drifted").record("t", 100.0, 1.0);
        assert!(super::recommend_retraining(
            &store,
            &sparse,
            crate::maintain::DEFAULT_DRIFT_RATIO,
            crate::maintain::DEFAULT_MIN_SAMPLES,
        )
        .is_empty());
    }
}
