//! The multi-set convolutional network (MSCN) of the paper.
//!
//! "For each set, it has a separate module, comprised of one fully-connected
//! multi-layer perceptron (MLP) per set element with shared parameters. We
//! average module outputs, concatenate them, and feed them into a final
//! output MLP, which captures correlations between sets and outputs a
//! cardinality estimate."
//!
//! Concretely, with hidden width `h`:
//!
//! ```text
//! tables  (nt × dt) ─ MLP₂(ReLU) ─ mean ─┐
//! joins   (nj × dj) ─ MLP₂(ReLU) ─ mean ─┼─ concat (b × 3h) ─ MLP(ReLU) ─ σ → ŷ ∈ (0,1)
//! preds   (np × dp) ─ MLP₂(ReLU) ─ mean ─┘
//! ```
//!
//! Weight sharing across set elements comes for free: every element is a
//! row of the flattened batch matrix and the same [`Linear`] is applied to
//! all rows; the segment mean then pools per query.

use ds_nn::frozen::{FrozenLinear, FrozenModel, QuantMode};
use ds_nn::linear::Linear;
use ds_nn::ops::{
    relu_backward_inplace, relu_into, segment_mean_backward_into, segment_mean_into,
    sigmoid_backward_into, sigmoid_scalar, Segments,
};
use ds_nn::optim::Adam;
use ds_nn::pool::PoolConfig;
use ds_nn::serialize::{DecodeError, Decoder, Encoder};
use ds_nn::tensor::{Kernel, Tensor};

use crate::featurize::FeatureBatch;

/// Hyper-parameters of the MSCN model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MscnConfig {
    /// Hidden width of every MLP (the paper/MSCN code uses 256; smaller
    /// values train faster on CPU with modest quality loss).
    pub hidden: usize,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl Default for MscnConfig {
    fn default() -> Self {
        Self {
            hidden: 128,
            seed: 0x5EED_CAFE,
        }
    }
}

/// One two-layer ReLU set module with shared weights across set elements.
#[derive(Debug, Clone)]
struct SetModule {
    l1: Linear,
    l2: Linear,
}

/// Forward cache of one set module: pre-activations (for the ReLU masks in
/// backward), the hidden activation (for `l2`'s weight gradient), and the
/// pooled per-query output. The raw input and segments are *not* cloned —
/// backward reads them straight from the [`FeatureBatch`].
#[derive(Default)]
struct SetCache {
    z1: Tensor,
    a1: Tensor,
    z2: Tensor,
    a2: Tensor,
    pooled: Tensor,
}

/// Reusable backward scratch of one set module.
#[derive(Default)]
struct SetScratch {
    g_a: Tensor,
    g_b: Tensor,
    gw: Tensor,
}

impl SetModule {
    fn new(in_dim: usize, hidden: usize, seed: u64) -> Self {
        Self {
            l1: Linear::new(in_dim, hidden, seed),
            l2: Linear::new(hidden, hidden, seed ^ 0xABCD),
        }
    }

    /// Applies the element MLP and mean-pools per segment into `cache`.
    /// The input layer runs the zero-skip kernel — set-element features
    /// are one-hot/bitmap rows that are mostly zero.
    fn forward_into(&self, x: &Tensor, segs: &Segments, pool: PoolConfig, cache: &mut SetCache) {
        self.l1.forward_into(x, Kernel::Sparse, pool, &mut cache.z1);
        relu_into(&cache.z1, &mut cache.a1);
        self.l2
            .forward_into(&cache.a1, Kernel::Dense, pool, &mut cache.z2);
        relu_into(&cache.z2, &mut cache.a2);
        segment_mean_into(&cache.a2, segs, &mut cache.pooled);
    }

    /// Accumulates gradients for both layers. The gradient w.r.t. the raw
    /// input features is never needed, so `l1` only accumulates — the
    /// whole `grad · Wᵀ` product of the widest layer is skipped.
    fn backward_with(
        &mut self,
        x: &Tensor,
        segs: &Segments,
        cache: &SetCache,
        grad_pooled: &Tensor,
        pool: PoolConfig,
        s: &mut SetScratch,
    ) {
        segment_mean_backward_into(cache.z1.rows(), grad_pooled, segs, &mut s.g_a);
        relu_backward_inplace(&cache.z2, &mut s.g_a); // g_a is now ∂L/∂z2
        self.l2
            .accumulate_grads(&cache.a1, &s.g_a, Kernel::Dense, pool, &mut s.gw);
        self.l2.input_grad_into(&s.g_a, pool, &mut s.g_b);
        relu_backward_inplace(&cache.z1, &mut s.g_b); // g_b is now ∂L/∂z1
        self.l1
            .accumulate_grads(x, &s.g_b, Kernel::Sparse, pool, &mut s.gw);
    }

    fn num_params(&self) -> usize {
        self.l1.num_params() + self.l2.num_params()
    }
}

/// The MSCN model: three set modules plus the output MLP.
#[derive(Debug, Clone)]
pub struct MscnModel {
    tables: SetModule,
    joins: SetModule,
    preds: SetModule,
    out1: Linear,
    out2: Linear,
    hidden: usize,
    pool: PoolConfig,
}

/// Forward cache for one batch, consumed by [`MscnModel::backward`]. All
/// buffers are reused across [`MscnModel::forward_into`] calls, so a
/// training loop that keeps one cache alive allocates nothing per batch.
#[derive(Default)]
pub struct ForwardCache {
    t: SetCache,
    j: SetCache,
    p: SetCache,
    concat: Tensor,
    z3: Tensor,
    a3: Tensor,
    y: Tensor,
}

impl ForwardCache {
    /// An empty cache; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }

    /// The sigmoid outputs of the forward pass that filled this cache
    /// (batch × 1).
    pub fn output(&self) -> &Tensor {
        &self.y
    }
}

/// Reusable backward scratch, the companion of [`ForwardCache`].
#[derive(Default)]
pub struct BackwardScratch {
    g_z4: Tensor,
    g_a3: Tensor,
    g_concat: Tensor,
    g_parts: [Tensor; 3],
    gw: Tensor,
    set: SetScratch,
}

impl BackwardScratch {
    /// An empty scratch arena; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Serialization magic for model payloads.
const MAGIC: &[u8; 4] = b"MSCN";
const VERSION: u32 = 1;

impl MscnModel {
    /// Creates a model for the given feature dimensions.
    pub fn new(table_dim: usize, join_dim: usize, pred_dim: usize, cfg: MscnConfig) -> Self {
        assert!(cfg.hidden > 0, "hidden width must be positive");
        let h = cfg.hidden;
        Self {
            tables: SetModule::new(table_dim, h, cfg.seed ^ 0x01),
            joins: SetModule::new(join_dim, h, cfg.seed ^ 0x02),
            preds: SetModule::new(pred_dim, h, cfg.seed ^ 0x03),
            out1: Linear::new(3 * h, h, cfg.seed ^ 0x04),
            out2: Linear::new(h, 1, cfg.seed ^ 0x05),
            hidden: h,
            pool: PoolConfig::single(),
        }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Thread pool used by the matmul kernels. Results are bit-identical
    /// at any thread count; this only affects speed.
    pub fn pool(&self) -> PoolConfig {
        self.pool
    }

    /// Sets the kernel thread pool (see [`MscnModel::pool`]).
    pub fn set_pool(&mut self, pool: PoolConfig) {
        self.pool = pool;
    }

    /// Expected input dimensions `(table, join, pred)`.
    pub fn input_dims(&self) -> (usize, usize, usize) {
        (
            self.tables.l1.in_dim(),
            self.joins.l1.in_dim(),
            self.preds.l1.in_dim(),
        )
    }

    /// Total scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.tables.num_params()
            + self.joins.num_params()
            + self.preds.num_params()
            + self.out1.num_params()
            + self.out2.num_params()
    }

    /// Forward pass: returns per-query normalized outputs `(batch × 1)` in
    /// `(0, 1)` plus the cache for a subsequent backward pass.
    pub fn forward(&self, batch: &FeatureBatch) -> (Tensor, ForwardCache) {
        let mut cache = ForwardCache::new();
        self.forward_into(batch, &mut cache);
        (cache.y.clone(), cache)
    }

    /// [`MscnModel::forward`] into a reusable cache; read the outputs via
    /// [`ForwardCache::output`]. This is the allocation-free hot path.
    pub fn forward_into(&self, batch: &FeatureBatch, cache: &mut ForwardCache) {
        let obs = ds_obs::global();
        let _fwd = obs.span("forward");
        let pool = self.pool;
        {
            let _s = obs.span("tables");
            self.tables
                .forward_into(&batch.tables, &batch.table_segs, pool, &mut cache.t);
        }
        {
            let _s = obs.span("joins");
            self.joins
                .forward_into(&batch.joins, &batch.join_segs, pool, &mut cache.j);
        }
        {
            let _s = obs.span("preds");
            self.preds
                .forward_into(&batch.preds, &batch.pred_segs, pool, &mut cache.p);
        }
        let _out = obs.span("output");
        Tensor::concat_cols_into(
            &[&cache.t.pooled, &cache.j.pooled, &cache.p.pooled],
            &mut cache.concat,
        );
        self.out1
            .forward_into(&cache.concat, Kernel::Dense, pool, &mut cache.z3);
        relu_into(&cache.z3, &mut cache.a3);
        self.out2
            .forward_into(&cache.a3, Kernel::Dense, pool, &mut cache.y);
        for v in cache.y.data_mut() {
            *v = sigmoid_scalar(*v);
        }
    }

    /// Inference-only forward: per-query normalized outputs.
    pub fn predict(&self, batch: &FeatureBatch) -> Vec<f32> {
        let (y, _) = self.forward(batch);
        y.data().to_vec()
    }

    /// Backward pass: accumulates gradients in every layer. `batch` must
    /// be the batch of the matching forward pass, `grad_y` is `∂L/∂y`
    /// with `y` the sigmoid output.
    pub fn backward(&mut self, batch: &FeatureBatch, cache: &ForwardCache, grad_y: &Tensor) {
        let mut scratch = BackwardScratch::new();
        self.backward_with(batch, cache, grad_y, &mut scratch);
    }

    /// [`MscnModel::backward`] with a reusable scratch arena.
    pub fn backward_with(
        &mut self,
        batch: &FeatureBatch,
        cache: &ForwardCache,
        grad_y: &Tensor,
        s: &mut BackwardScratch,
    ) {
        let obs = ds_obs::global();
        let _bwd = obs.span("backward");
        let pool = self.pool;
        {
            let _s = obs.span("output");
            sigmoid_backward_into(&cache.y, grad_y, &mut s.g_z4);
            self.out2
                .accumulate_grads(&cache.a3, &s.g_z4, Kernel::Dense, pool, &mut s.gw);
            self.out2.input_grad_into(&s.g_z4, pool, &mut s.g_a3);
            relu_backward_inplace(&cache.z3, &mut s.g_a3); // now ∂L/∂z3
            self.out1
                .accumulate_grads(&cache.concat, &s.g_a3, Kernel::Dense, pool, &mut s.gw);
            self.out1.input_grad_into(&s.g_a3, pool, &mut s.g_concat);
        }
        let h = self.hidden;
        s.g_concat.split_cols_into(&[h, h, h], &mut s.g_parts);
        {
            let _s = obs.span("tables");
            self.tables.backward_with(
                &batch.tables,
                &batch.table_segs,
                &cache.t,
                &s.g_parts[0],
                pool,
                &mut s.set,
            );
        }
        {
            let _s = obs.span("joins");
            self.joins.backward_with(
                &batch.joins,
                &batch.join_segs,
                &cache.j,
                &s.g_parts[1],
                pool,
                &mut s.set,
            );
        }
        let _s = obs.span("preds");
        self.preds.backward_with(
            &batch.preds,
            &batch.pred_segs,
            &cache.p,
            &s.g_parts[2],
            pool,
            &mut s.set,
        );
    }

    /// Clips the accumulated gradients of all layers to a global L2 norm;
    /// returns the pre-clip norm.
    pub fn clip_gradients(&mut self, max_norm: f32) -> f32 {
        ds_nn::regularize::clip_grad_norm(
            &mut [
                &mut self.tables.l1,
                &mut self.tables.l2,
                &mut self.joins.l1,
                &mut self.joins.l2,
                &mut self.preds.l1,
                &mut self.preds.l2,
                &mut self.out1,
                &mut self.out2,
            ],
            max_norm,
        )
    }

    /// One Adam update over all layers (clears gradients).
    pub fn adam_step(&mut self, adam: &mut Adam) {
        adam.step(0, &mut self.tables.l1);
        adam.step(1, &mut self.tables.l2);
        adam.step(2, &mut self.joins.l1);
        adam.step(3, &mut self.joins.l2);
        adam.step(4, &mut self.preds.l1);
        adam.step(5, &mut self.preds.l2);
        adam.step(6, &mut self.out1);
        adam.step(7, &mut self.out2);
    }

    /// Converts the trained weights into a serving-only [`FrozenModel`]:
    /// every layer is copied (f32) or quantized (int8, per-input-row
    /// scales) into the gather-friendly frozen layout. The reference
    /// model keeps owning training and the batch path; the frozen
    /// artifact only serves single-query estimates.
    pub fn freeze(&self, mode: QuantMode) -> FrozenModel {
        FrozenModel::new(
            FrozenLinear::from_linear(&self.tables.l1, mode),
            FrozenLinear::from_linear(&self.tables.l2, mode),
            FrozenLinear::from_linear(&self.joins.l1, mode),
            FrozenLinear::from_linear(&self.joins.l2, mode),
            FrozenLinear::from_linear(&self.preds.l1, mode),
            FrozenLinear::from_linear(&self.preds.l2, mode),
            FrozenLinear::from_linear(&self.out1, mode),
            FrozenLinear::from_linear(&self.out2, mode),
        )
    }

    /// Serializes the model (versioned).
    pub fn encode(&self, e: &mut Encoder) {
        e.header(MAGIC, VERSION);
        e.u64(self.hidden as u64);
        for l in [
            &self.tables.l1,
            &self.tables.l2,
            &self.joins.l1,
            &self.joins.l2,
            &self.preds.l1,
            &self.preds.l2,
            &self.out1,
            &self.out2,
        ] {
            e.linear(l);
        }
    }

    /// Deserializes a model written by [`MscnModel::encode`].
    pub fn decode(d: &mut Decoder) -> Result<Self, DecodeError> {
        let version = d.header(MAGIC)?;
        if version != VERSION {
            return Err(DecodeError::BadHeader(format!(
                "unsupported MSCN version {version}"
            )));
        }
        let hidden = d.u64()? as usize;
        let t1 = d.linear()?;
        let t2 = d.linear()?;
        let j1 = d.linear()?;
        let j2 = d.linear()?;
        let p1 = d.linear()?;
        let p2 = d.linear()?;
        let out1 = d.linear()?;
        let out2 = d.linear()?;
        if out2.out_dim() != 1 || out1.in_dim() != 3 * hidden {
            return Err(DecodeError::Corrupt("inconsistent MSCN shapes".into()));
        }
        Ok(Self {
            tables: SetModule { l1: t1, l2: t2 },
            joins: SetModule { l1: j1, l2: j2 },
            preds: SetModule { l1: p1, l2: p2 },
            out1,
            out2,
            hidden,
            // The pool is a runtime knob, never serialized: a sketch must
            // produce the same bytes regardless of the builder's threads.
            pool: PoolConfig::single(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featurize::Featurizer;
    use ds_query::workloads::imdb_predicate_columns;
    use ds_query::GeneratorConfig;
    use ds_query::QueryGenerator;
    use ds_storage::gen::{imdb_database, ImdbConfig};
    use ds_storage::sample::sample_all;

    fn small_batch() -> (FeatureBatch, Featurizer) {
        let db = imdb_database(&ImdbConfig::tiny(1));
        let samples = sample_all(&db, 16, 2);
        let f = Featurizer::build(&db, &imdb_predicate_columns(&db), 16);
        let mut gen =
            QueryGenerator::new(&db, GeneratorConfig::new(imdb_predicate_columns(&db), 11));
        let qs = gen.generate_batch(8);
        (f.batch_queries(&qs, &samples), f)
    }

    #[test]
    fn forward_outputs_are_probabilities() {
        let (batch, f) = small_batch();
        let model = MscnModel::new(
            f.table_dim(),
            f.join_dim(),
            f.pred_dim(),
            MscnConfig {
                hidden: 16,
                seed: 3,
            },
        );
        let (y, _) = model.forward(&batch);
        assert_eq!(y.rows(), 8);
        assert_eq!(y.cols(), 1);
        for &v in y.data() {
            assert!(v > 0.0 && v < 1.0, "sigmoid output {v}");
        }
    }

    #[test]
    fn forward_is_deterministic_and_seed_dependent() {
        let (batch, f) = small_batch();
        let cfg = MscnConfig { hidden: 8, seed: 5 };
        let m1 = MscnModel::new(f.table_dim(), f.join_dim(), f.pred_dim(), cfg);
        let m2 = MscnModel::new(f.table_dim(), f.join_dim(), f.pred_dim(), cfg);
        assert_eq!(m1.predict(&batch), m2.predict(&batch));
        let m3 = MscnModel::new(
            f.table_dim(),
            f.join_dim(),
            f.pred_dim(),
            MscnConfig { hidden: 8, seed: 6 },
        );
        assert_ne!(m1.predict(&batch), m3.predict(&batch));
    }

    #[test]
    fn permutation_invariance_over_sets() {
        // The model must be invariant to the order of set elements:
        // {A,B,C} ≡ {C,B,A} (the Deep Sets property).
        let db = imdb_database(&ImdbConfig::tiny(3));
        let samples = sample_all(&db, 16, 2);
        let cols = imdb_predicate_columns(&db);
        let f = Featurizer::build(&db, &cols, 16);
        let sql_a = "SELECT COUNT(*) FROM title, movie_keyword, cast_info \
                     WHERE movie_keyword.movie_id = title.id AND cast_info.movie_id = title.id";
        let qa = ds_query::parser::parse_query(&db, sql_a).unwrap();
        // Same query, tables and joins listed in a different order.
        let mut qb = qa.clone();
        qb.tables.reverse();
        qb.joins.reverse();
        let model = MscnModel::new(
            f.table_dim(),
            f.join_dim(),
            f.pred_dim(),
            MscnConfig {
                hidden: 16,
                seed: 9,
            },
        );
        let ba = f.batch_queries(std::slice::from_ref(&qa), &samples);
        let bb = f.batch_queries(std::slice::from_ref(&qb), &samples);
        let ya = model.predict(&ba)[0];
        let yb = model.predict(&bb)[0];
        assert!(
            (ya - yb).abs() < 1e-6,
            "not permutation invariant: {ya} vs {yb}"
        );
    }

    #[test]
    fn gradient_check_through_whole_model() {
        // Finite-difference check of ∂L/∂θ for a few parameters of each
        // layer with L = sum(y).
        let (batch, f) = small_batch();
        let mut model = MscnModel::new(
            f.table_dim(),
            f.join_dim(),
            f.pred_dim(),
            MscnConfig { hidden: 6, seed: 1 },
        );
        let (y, cache) = model.forward(&batch);
        let ones = Tensor::from_vec(y.rows(), 1, vec![1.0; y.rows()]);
        model.backward(&batch, &cache, &ones);

        let loss = |m: &MscnModel| -> f32 { m.predict(&batch).iter().sum() };
        let eps = 3e-3_f32;

        // Probe a parameter in out2 and one in the predicate module l1.
        let base = model.clone();
        let mut checked = 0;
        for probe in 0..2 {
            let (ana, num) = match probe {
                0 => {
                    let mut g = 0.0;
                    model.out2.for_each_param_mut(|i, _, grad| {
                        if i == 0 {
                            g = grad;
                        }
                    });
                    let mut mp = base.clone();
                    let mut mm = base.clone();
                    mp.out2.for_each_param_mut(|i, p, _| {
                        if i == 0 {
                            *p += eps;
                        }
                    });
                    mm.out2.for_each_param_mut(|i, p, _| {
                        if i == 0 {
                            *p -= eps;
                        }
                    });
                    (g, (loss(&mp) - loss(&mm)) / (2.0 * eps))
                }
                _ => {
                    let mut g = 0.0;
                    model.preds.l1.for_each_param_mut(|i, _, grad| {
                        if i == 3 {
                            g = grad;
                        }
                    });
                    let mut mp = base.clone();
                    let mut mm = base.clone();
                    mp.preds.l1.for_each_param_mut(|i, p, _| {
                        if i == 3 {
                            *p += eps;
                        }
                    });
                    mm.preds.l1.for_each_param_mut(|i, p, _| {
                        if i == 3 {
                            *p -= eps;
                        }
                    });
                    (g, (loss(&mp) - loss(&mm)) / (2.0 * eps))
                }
            };
            let tol = 0.05_f32.max(num.abs() * 0.15);
            assert!(
                (ana - num).abs() <= tol,
                "probe {probe}: analytic {ana} vs numeric {num}"
            );
            checked += 1;
        }
        assert_eq!(checked, 2);
    }

    #[test]
    fn encode_decode_preserves_predictions() {
        let (batch, f) = small_batch();
        let model = MscnModel::new(
            f.table_dim(),
            f.join_dim(),
            f.pred_dim(),
            MscnConfig {
                hidden: 12,
                seed: 7,
            },
        );
        let mut e = Encoder::new();
        model.encode(&mut e);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        let restored = MscnModel::decode(&mut d).unwrap();
        assert_eq!(model.predict(&batch), restored.predict(&batch));
        assert_eq!(model.num_params(), restored.num_params());
    }

    #[test]
    fn decode_rejects_garbage() {
        let mut d = Decoder::new(b"not a model");
        assert!(MscnModel::decode(&mut d).is_err());
    }

    #[test]
    fn param_count_formula() {
        let m = MscnModel::new(10, 4, 7, MscnConfig { hidden: 8, seed: 0 });
        // 3 set modules: (in+1)*8 + (8+1)*8 each; out1: (24+1)*8; out2: (8+1)*1.
        let expect = (10 + 1) * 8
            + (8 + 1) * 8
            + (4 + 1) * 8
            + (8 + 1) * 8
            + (7 + 1) * 8
            + (8 + 1) * 8
            + (24 + 1) * 8
            + (8 + 1);
        assert_eq!(m.num_params(), expect);
    }
}
