//! The multi-set convolutional network (MSCN) of the paper.
//!
//! "For each set, it has a separate module, comprised of one fully-connected
//! multi-layer perceptron (MLP) per set element with shared parameters. We
//! average module outputs, concatenate them, and feed them into a final
//! output MLP, which captures correlations between sets and outputs a
//! cardinality estimate."
//!
//! Concretely, with hidden width `h`:
//!
//! ```text
//! tables  (nt × dt) ─ MLP₂(ReLU) ─ mean ─┐
//! joins   (nj × dj) ─ MLP₂(ReLU) ─ mean ─┼─ concat (b × 3h) ─ MLP(ReLU) ─ σ → ŷ ∈ (0,1)
//! preds   (np × dp) ─ MLP₂(ReLU) ─ mean ─┘
//! ```
//!
//! Weight sharing across set elements comes for free: every element is a
//! row of the flattened batch matrix and the same [`Linear`] is applied to
//! all rows; the segment mean then pools per query.

use ds_nn::linear::Linear;
use ds_nn::ops::{
    relu, relu_backward, segment_mean, segment_mean_backward, sigmoid, sigmoid_backward, Segments,
};
use ds_nn::optim::Adam;
use ds_nn::serialize::{Decoder, DecodeError, Encoder};
use ds_nn::tensor::Tensor;

use crate::featurize::FeatureBatch;

/// Hyper-parameters of the MSCN model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MscnConfig {
    /// Hidden width of every MLP (the paper/MSCN code uses 256; smaller
    /// values train faster on CPU with modest quality loss).
    pub hidden: usize,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl Default for MscnConfig {
    fn default() -> Self {
        Self {
            hidden: 128,
            seed: 0x5EED_CAFE,
        }
    }
}

/// One two-layer ReLU set module with shared weights across set elements.
#[derive(Debug, Clone)]
struct SetModule {
    l1: Linear,
    l2: Linear,
}

/// Forward cache of one set module.
struct SetCache {
    x: Tensor,
    z1: Tensor,
    a1: Tensor,
    z2: Tensor,
    segs: Segments,
}

impl SetModule {
    fn new(in_dim: usize, hidden: usize, seed: u64) -> Self {
        Self {
            l1: Linear::new(in_dim, hidden, seed),
            l2: Linear::new(hidden, hidden, seed ^ 0xABCD),
        }
    }

    /// Applies the element MLP and mean-pools per segment.
    fn forward(&self, x: &Tensor, segs: &Segments) -> (Tensor, SetCache) {
        let z1 = self.l1.forward(x);
        let a1 = relu(&z1);
        let z2 = self.l2.forward(&a1);
        let a2 = relu(&z2);
        let pooled = segment_mean(&a2, segs);
        (
            pooled,
            SetCache {
                x: x.clone(),
                z1,
                a1,
                z2,
                segs: segs.clone(),
            },
        )
    }

    fn backward(&mut self, cache: &SetCache, grad_pooled: &Tensor) {
        let g_a2 = segment_mean_backward(cache.x.rows(), grad_pooled, &cache.segs);
        let g_z2 = relu_backward(&cache.z2, &g_a2);
        let g_a1 = self.l2.backward(&cache.a1, &g_z2);
        let g_z1 = relu_backward(&cache.z1, &g_a1);
        self.l1.backward(&cache.x, &g_z1);
    }

    fn num_params(&self) -> usize {
        self.l1.num_params() + self.l2.num_params()
    }
}

/// The MSCN model: three set modules plus the output MLP.
#[derive(Debug, Clone)]
pub struct MscnModel {
    tables: SetModule,
    joins: SetModule,
    preds: SetModule,
    out1: Linear,
    out2: Linear,
    hidden: usize,
}

/// Forward cache for one batch, consumed by [`MscnModel::backward`].
pub struct ForwardCache {
    t: SetCache,
    j: SetCache,
    p: SetCache,
    concat: Tensor,
    z3: Tensor,
    a3: Tensor,
    y: Tensor,
}

/// Serialization magic for model payloads.
const MAGIC: &[u8; 4] = b"MSCN";
const VERSION: u32 = 1;

impl MscnModel {
    /// Creates a model for the given feature dimensions.
    pub fn new(table_dim: usize, join_dim: usize, pred_dim: usize, cfg: MscnConfig) -> Self {
        assert!(cfg.hidden > 0, "hidden width must be positive");
        let h = cfg.hidden;
        Self {
            tables: SetModule::new(table_dim, h, cfg.seed ^ 0x01),
            joins: SetModule::new(join_dim, h, cfg.seed ^ 0x02),
            preds: SetModule::new(pred_dim, h, cfg.seed ^ 0x03),
            out1: Linear::new(3 * h, h, cfg.seed ^ 0x04),
            out2: Linear::new(h, 1, cfg.seed ^ 0x05),
            hidden: h,
        }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Expected input dimensions `(table, join, pred)`.
    pub fn input_dims(&self) -> (usize, usize, usize) {
        (
            self.tables.l1.in_dim(),
            self.joins.l1.in_dim(),
            self.preds.l1.in_dim(),
        )
    }

    /// Total scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.tables.num_params()
            + self.joins.num_params()
            + self.preds.num_params()
            + self.out1.num_params()
            + self.out2.num_params()
    }

    /// Forward pass: returns per-query normalized outputs `(batch × 1)` in
    /// `(0, 1)` plus the cache for a subsequent backward pass.
    pub fn forward(&self, batch: &FeatureBatch) -> (Tensor, ForwardCache) {
        let (pt, ct) = self.tables.forward(&batch.tables, &batch.table_segs);
        let (pj, cj) = self.joins.forward(&batch.joins, &batch.join_segs);
        let (pp, cp) = self.preds.forward(&batch.preds, &batch.pred_segs);
        let concat = Tensor::concat_cols(&[&pt, &pj, &pp]);
        let z3 = self.out1.forward(&concat);
        let a3 = relu(&z3);
        let z4 = self.out2.forward(&a3);
        let y = sigmoid(&z4);
        (
            y.clone(),
            ForwardCache {
                t: ct,
                j: cj,
                p: cp,
                concat,
                z3,
                a3,
                y,
            },
        )
    }

    /// Inference-only forward: per-query normalized outputs.
    pub fn predict(&self, batch: &FeatureBatch) -> Vec<f32> {
        let (y, _) = self.forward(batch);
        y.data().to_vec()
    }

    /// Backward pass: accumulates gradients in every layer.
    /// `grad_y` is `∂L/∂y` with `y` the sigmoid output.
    pub fn backward(&mut self, cache: &ForwardCache, grad_y: &Tensor) {
        let g_z4 = sigmoid_backward(&cache.y, grad_y);
        let g_a3 = self.out2.backward(&cache.a3, &g_z4);
        let g_z3 = relu_backward(&cache.z3, &g_a3);
        let g_concat = self.out1.backward(&cache.concat, &g_z3);
        let h = self.hidden;
        let parts = g_concat.split_cols(&[h, h, h]);
        self.tables.backward(&cache.t, &parts[0]);
        self.joins.backward(&cache.j, &parts[1]);
        self.preds.backward(&cache.p, &parts[2]);
    }

    /// Clips the accumulated gradients of all layers to a global L2 norm;
    /// returns the pre-clip norm.
    pub fn clip_gradients(&mut self, max_norm: f32) -> f32 {
        ds_nn::regularize::clip_grad_norm(
            &mut [
                &mut self.tables.l1,
                &mut self.tables.l2,
                &mut self.joins.l1,
                &mut self.joins.l2,
                &mut self.preds.l1,
                &mut self.preds.l2,
                &mut self.out1,
                &mut self.out2,
            ],
            max_norm,
        )
    }

    /// One Adam update over all layers (clears gradients).
    pub fn adam_step(&mut self, adam: &mut Adam) {
        adam.step(0, &mut self.tables.l1);
        adam.step(1, &mut self.tables.l2);
        adam.step(2, &mut self.joins.l1);
        adam.step(3, &mut self.joins.l2);
        adam.step(4, &mut self.preds.l1);
        adam.step(5, &mut self.preds.l2);
        adam.step(6, &mut self.out1);
        adam.step(7, &mut self.out2);
    }

    /// Serializes the model (versioned).
    pub fn encode(&self, e: &mut Encoder) {
        e.header(MAGIC, VERSION);
        e.u64(self.hidden as u64);
        for l in [
            &self.tables.l1,
            &self.tables.l2,
            &self.joins.l1,
            &self.joins.l2,
            &self.preds.l1,
            &self.preds.l2,
            &self.out1,
            &self.out2,
        ] {
            e.linear(l);
        }
    }

    /// Deserializes a model written by [`MscnModel::encode`].
    pub fn decode(d: &mut Decoder) -> Result<Self, DecodeError> {
        let version = d.header(MAGIC)?;
        if version != VERSION {
            return Err(DecodeError::BadHeader(format!(
                "unsupported MSCN version {version}"
            )));
        }
        let hidden = d.u64()? as usize;
        let t1 = d.linear()?;
        let t2 = d.linear()?;
        let j1 = d.linear()?;
        let j2 = d.linear()?;
        let p1 = d.linear()?;
        let p2 = d.linear()?;
        let out1 = d.linear()?;
        let out2 = d.linear()?;
        if out2.out_dim() != 1 || out1.in_dim() != 3 * hidden {
            return Err(DecodeError::Corrupt("inconsistent MSCN shapes".into()));
        }
        Ok(Self {
            tables: SetModule { l1: t1, l2: t2 },
            joins: SetModule { l1: j1, l2: j2 },
            preds: SetModule { l1: p1, l2: p2 },
            out1,
            out2,
            hidden,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::featurize::Featurizer;
    use ds_query::workloads::imdb_predicate_columns;
    use ds_query::GeneratorConfig;
    use ds_query::QueryGenerator;
    use ds_storage::gen::{imdb_database, ImdbConfig};
    use ds_storage::sample::sample_all;

    fn small_batch() -> (FeatureBatch, Featurizer) {
        let db = imdb_database(&ImdbConfig::tiny(1));
        let samples = sample_all(&db, 16, 2);
        let f = Featurizer::build(&db, &imdb_predicate_columns(&db), 16);
        let mut gen = QueryGenerator::new(
            &db,
            GeneratorConfig::new(imdb_predicate_columns(&db), 11),
        );
        let qs = gen.generate_batch(8);
        (f.batch_queries(&qs, &samples), f)
    }

    #[test]
    fn forward_outputs_are_probabilities() {
        let (batch, f) = small_batch();
        let model = MscnModel::new(
            f.table_dim(),
            f.join_dim(),
            f.pred_dim(),
            MscnConfig { hidden: 16, seed: 3 },
        );
        let (y, _) = model.forward(&batch);
        assert_eq!(y.rows(), 8);
        assert_eq!(y.cols(), 1);
        for &v in y.data() {
            assert!(v > 0.0 && v < 1.0, "sigmoid output {v}");
        }
    }

    #[test]
    fn forward_is_deterministic_and_seed_dependent() {
        let (batch, f) = small_batch();
        let cfg = MscnConfig { hidden: 8, seed: 5 };
        let m1 = MscnModel::new(f.table_dim(), f.join_dim(), f.pred_dim(), cfg);
        let m2 = MscnModel::new(f.table_dim(), f.join_dim(), f.pred_dim(), cfg);
        assert_eq!(m1.predict(&batch), m2.predict(&batch));
        let m3 = MscnModel::new(
            f.table_dim(),
            f.join_dim(),
            f.pred_dim(),
            MscnConfig { hidden: 8, seed: 6 },
        );
        assert_ne!(m1.predict(&batch), m3.predict(&batch));
    }

    #[test]
    fn permutation_invariance_over_sets() {
        // The model must be invariant to the order of set elements:
        // {A,B,C} ≡ {C,B,A} (the Deep Sets property).
        let db = imdb_database(&ImdbConfig::tiny(3));
        let samples = sample_all(&db, 16, 2);
        let cols = imdb_predicate_columns(&db);
        let f = Featurizer::build(&db, &cols, 16);
        let sql_a = "SELECT COUNT(*) FROM title, movie_keyword, cast_info \
                     WHERE movie_keyword.movie_id = title.id AND cast_info.movie_id = title.id";
        let qa = ds_query::parser::parse_query(&db, sql_a).unwrap();
        // Same query, tables and joins listed in a different order.
        let mut qb = qa.clone();
        qb.tables.reverse();
        qb.joins.reverse();
        let model = MscnModel::new(
            f.table_dim(),
            f.join_dim(),
            f.pred_dim(),
            MscnConfig { hidden: 16, seed: 9 },
        );
        let ba = f.batch_queries(std::slice::from_ref(&qa), &samples);
        let bb = f.batch_queries(std::slice::from_ref(&qb), &samples);
        let ya = model.predict(&ba)[0];
        let yb = model.predict(&bb)[0];
        assert!((ya - yb).abs() < 1e-6, "not permutation invariant: {ya} vs {yb}");
    }

    #[test]
    fn gradient_check_through_whole_model() {
        // Finite-difference check of ∂L/∂θ for a few parameters of each
        // layer with L = sum(y).
        let (batch, f) = small_batch();
        let mut model = MscnModel::new(
            f.table_dim(),
            f.join_dim(),
            f.pred_dim(),
            MscnConfig { hidden: 6, seed: 1 },
        );
        let (y, cache) = model.forward(&batch);
        let ones = Tensor::from_vec(y.rows(), 1, vec![1.0; y.rows()]);
        model.backward(&cache, &ones);

        let loss = |m: &MscnModel| -> f32 { m.predict(&batch).iter().sum() };
        let eps = 3e-3_f32;

        // Probe a parameter in out2 and one in the predicate module l1.
        let base = model.clone();
        let mut checked = 0;
        for probe in 0..2 {
            let (ana, num) = match probe {
                0 => {
                    let mut g = 0.0;
                    model.out2.for_each_param_mut(|i, _, grad| {
                        if i == 0 {
                            g = grad;
                        }
                    });
                    let mut mp = base.clone();
                    let mut mm = base.clone();
                    mp.out2.for_each_param_mut(|i, p, _| {
                        if i == 0 {
                            *p += eps;
                        }
                    });
                    mm.out2.for_each_param_mut(|i, p, _| {
                        if i == 0 {
                            *p -= eps;
                        }
                    });
                    (g, (loss(&mp) - loss(&mm)) / (2.0 * eps))
                }
                _ => {
                    let mut g = 0.0;
                    model.preds.l1.for_each_param_mut(|i, _, grad| {
                        if i == 3 {
                            g = grad;
                        }
                    });
                    let mut mp = base.clone();
                    let mut mm = base.clone();
                    mp.preds.l1.for_each_param_mut(|i, p, _| {
                        if i == 3 {
                            *p += eps;
                        }
                    });
                    mm.preds.l1.for_each_param_mut(|i, p, _| {
                        if i == 3 {
                            *p -= eps;
                        }
                    });
                    (g, (loss(&mp) - loss(&mm)) / (2.0 * eps))
                }
            };
            let tol = 0.05_f32.max(num.abs() * 0.15);
            assert!(
                (ana - num).abs() <= tol,
                "probe {probe}: analytic {ana} vs numeric {num}"
            );
            checked += 1;
        }
        assert_eq!(checked, 2);
    }

    #[test]
    fn encode_decode_preserves_predictions() {
        let (batch, f) = small_batch();
        let model = MscnModel::new(
            f.table_dim(),
            f.join_dim(),
            f.pred_dim(),
            MscnConfig { hidden: 12, seed: 7 },
        );
        let mut e = Encoder::new();
        model.encode(&mut e);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        let restored = MscnModel::decode(&mut d).unwrap();
        assert_eq!(model.predict(&batch), restored.predict(&batch));
        assert_eq!(model.num_params(), restored.num_params());
    }

    #[test]
    fn decode_rejects_garbage() {
        let mut d = Decoder::new(b"not a model");
        assert!(MscnModel::decode(&mut d).is_err());
    }

    #[test]
    fn param_count_formula() {
        let m = MscnModel::new(10, 4, 7, MscnConfig { hidden: 8, seed: 0 });
        // 3 set modules: (in+1)*8 + (8+1)*8 each; out1: (24+1)*8; out2: (8+1)*1.
        let expect = (10 + 1) * 8
            + (8 + 1) * 8
            + (4 + 1) * 8
            + (8 + 1) * 8
            + (7 + 1) * 8
            + (8 + 1) * 8
            + (24 + 1) * 8
            + (8 + 1);
        assert_eq!(m.num_params(), expect);
    }
}
