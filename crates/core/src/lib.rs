//! # ds-core
//!
//! The paper's primary contribution: **Deep Sketches** — compact learned
//! models of databases that estimate `SELECT COUNT(*)` result sizes — and
//! the multi-set convolutional network (MSCN) powering them.
//!
//! The crate provides:
//!
//! * [`featurize`] — the query featurization of §2: one-hot tables, joins,
//!   columns, operators; min-max-normalized literals; qualifying-sample
//!   bitmaps.
//! * [`mscn`] — the MSCN model: three shared-weight set MLPs with mean
//!   pooling, concatenation, and an output MLP with sigmoid.
//! * [`train`] — mini-batch training minimizing mean q-error.
//! * [`builder`] — the 4-step pipeline of Figure 1a.
//! * [`sketch`] — the [`sketch::DeepSketch`] wrapper: model + samples,
//!   serializable, milliseconds to query.
//! * [`template`] — query templates with placeholders (Figure 2).
//! * [`metrics`] — q-error percentile summaries (Table 1).
//! * [`monitor`] — online q-error monitoring from production feedback,
//!   feeding the accuracy-drift detector in [`maintain`].
//! * [`lifecycle`] — the closed loop on top of the advisor: harvest
//!   graded queries, retrain off the hot path, shadow-score, hot-swap
//!   with snapshot-first rollback.

pub mod advisor;
pub mod builder;
pub mod featurize;
pub mod flat;
pub mod fleet;
pub mod lifecycle;
pub mod maintain;
pub mod metrics;
pub mod monitor;
pub mod mscn;
pub mod sketch;
pub mod snapshot;
pub mod store;
pub mod template;
pub mod train;

pub use advisor::{
    recommend, recommend_retraining, Advice, AdvisorConfig, RetrainAdvice, SketchRecommendation,
};
pub use builder::{BuildProgress, BuildReport, SketchBuilder};
pub use featurize::{FeatureBatch, Featurizer, QueryFeatures, QueryIndexFeatures};
pub use flat::{FlatFeaturizer, FlatModel};
pub use fleet::{Route, SketchFleet};
pub use lifecycle::{
    HarvestEntry, HarvestSet, LifecycleConfig, LifecycleCounters, LifecycleEvent, LifecycleManager,
    LifecyclePhase, LifecycleStatus,
};
pub use maintain::{
    accuracy_drift, detect_drift, refresh_samples, AccuracyDrift, DriftReport, DEFAULT_DRIFT_RATIO,
    DEFAULT_MIN_SAMPLES,
};
pub use metrics::{qerror, QErrorSummary};
pub use monitor::{MonitorRegistry, MonitorState, QErrorMonitor};
pub use mscn::{MscnConfig, MscnModel};
pub use sketch::{DeepSketch, SketchInfo, FREEZE_GATE_MAX_DELTA};

pub use ds_nn::frozen::QuantMode;
pub use snapshot::{SketchSnapshot, SnapshotError, WriteFault};
pub use store::{
    QuarantineReason, RecoveryReport, SketchStatus, SketchStore, StoreError, StoreHandle,
    SwapOutcome,
};
pub use template::{QueryTemplate, TemplateInstance, ValueFn};
pub use train::{LossKind, TrainConfig, TrainingReport};
