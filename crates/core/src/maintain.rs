//! Sketch maintenance: drift detection and sample refresh.
//!
//! The paper closes with "more research is needed to automate the training
//! and utilization of Deep Sketches in query optimizers". A deployed
//! sketch is a snapshot: as the database evolves, its materialized samples
//! and learned weights go stale. This module provides the two operational
//! primitives that automation needs:
//!
//! * [`detect_drift`] — compares the sketch's stored samples against fresh
//!   samples from the live database with a two-sample Kolmogorov–Smirnov
//!   statistic per column, yielding a retrain signal;
//! * [`refresh_samples`] — redraws
//!   the materialized samples without retraining, which already repairs
//!   the bitmap features and template literal pools cheaply.

use ds_storage::catalog::{Database, TableId};
use ds_storage::sample::{sample_all, TableSample};

use crate::sketch::DeepSketch;

/// Drift of one table's sample against the live data.
#[derive(Debug, Clone)]
pub struct TableDrift {
    /// The table.
    pub table: TableId,
    /// Live row count.
    pub rows_now: usize,
    /// Per-column `(name, KS statistic ∈ [0, 1])`, in column order.
    pub column_drifts: Vec<(String, f64)>,
}

impl TableDrift {
    /// Largest per-column drift of this table.
    pub fn max_drift(&self) -> f64 {
        self.column_drifts
            .iter()
            .map(|&(_, d)| d)
            .fold(0.0, f64::max)
    }
}

/// The result of a drift check.
#[derive(Debug, Clone)]
pub struct DriftReport {
    /// Per-table drift, in table-id order.
    pub per_table: Vec<TableDrift>,
    /// Largest KS statistic across all columns of all tables. Surrogate
    /// key columns inflate this on any growing table; prefer
    /// [`DriftReport::predicate_drift`] for retrain decisions.
    pub max_drift: f64,
    /// Largest KS statistic restricted to the featurizer's *predicate
    /// columns* — the only columns whose distribution the model actually
    /// consumes (via literal normalization and sample bitmaps).
    pub predicate_drift: f64,
}

impl DriftReport {
    /// True when any *predicate* column drifted beyond `threshold`
    /// (0.1–0.2 is a reasonable retrain trigger for 100+-tuple samples).
    pub fn needs_retraining(&self, threshold: f64) -> bool {
        self.predicate_drift > threshold
    }

    /// The most-drifted `(table, column, drift)` triple, if any.
    pub fn worst(&self) -> Option<(TableId, &str, f64)> {
        self.per_table
            .iter()
            .flat_map(|t| {
                t.column_drifts
                    .iter()
                    .map(move |(c, d)| (t.table, c.as_str(), *d))
            })
            .max_by(|a, b| a.2.partial_cmp(&b.2).expect("finite drift"))
    }
}

/// Two-sample Kolmogorov–Smirnov statistic of two integer samples:
/// `sup |F_a(x) − F_b(x)| ∈ [0, 1]`. Empty inputs give 1.0 when exactly
/// one side is empty, 0.0 when both are.
pub fn ks_statistic(a: &[i64], b: &[i64]) -> f64 {
    match (a.is_empty(), b.is_empty()) {
        (true, true) => return 0.0,
        (true, false) | (false, true) => return 1.0,
        _ => {}
    }
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_unstable();
    sb.sort_unstable();
    let (mut i, mut j) = (0usize, 0usize);
    let (na, nb) = (sa.len() as f64, sb.len() as f64);
    let mut max_gap = 0.0f64;
    while i < sa.len() && j < sb.len() {
        let x = sa[i].min(sb[j]);
        while i < sa.len() && sa[i] <= x {
            i += 1;
        }
        while j < sb.len() && sb[j] <= x {
            j += 1;
        }
        let gap = (i as f64 / na - j as f64 / nb).abs();
        max_gap = max_gap.max(gap);
    }
    max_gap
}

/// Compares the sketch's stored samples with fresh samples drawn from
/// `db` (same nominal size, seeded by `seed`).
///
/// # Panics
/// Panics if `db` has a different table count than the sketch expects.
pub fn detect_drift(sketch: &DeepSketch, db: &Database, seed: u64) -> DriftReport {
    assert_eq!(
        db.num_tables(),
        sketch.samples().len(),
        "database shape changed — retrain rather than drift-check"
    );
    let fresh = sample_all(db, sketch.featurizer().sample_size(), seed);
    let vocab = sketch.featurizer().columns();
    let mut per_table = Vec::with_capacity(db.num_tables());
    let mut max_drift = 0.0f64;
    let mut predicate_drift = 0.0f64;
    for (old, new) in sketch.samples().iter().zip(&fresh) {
        let table = old.table_id();
        let mut column_drifts = Vec::new();
        for (ci, col) in old.rows().columns().iter().enumerate() {
            let a: Vec<i64> = (0..col.len()).filter_map(|r| col.get(r)).collect();
            let new_col = new.rows().column(ci);
            let b: Vec<i64> = (0..new_col.len()).filter_map(|r| new_col.get(r)).collect();
            let d = ks_statistic(&a, &b);
            max_drift = max_drift.max(d);
            if vocab.iter().any(|cr| cr.table == table && cr.col == ci) {
                predicate_drift = predicate_drift.max(d);
            }
            column_drifts.push((col.name().to_string(), d));
        }
        per_table.push(TableDrift {
            table,
            rows_now: db.table(table).num_rows(),
            column_drifts,
        });
    }
    DriftReport {
        per_table,
        max_drift,
        predicate_drift,
    }
}

/// Redraws the sketch's materialized samples from `db`, keeping the
/// learned weights. Returns the refreshed sketch.
///
/// **Caveat (measured in experiment E12):** the sample bitmaps are part of
/// the *learned input distribution* — a model trained against v1 samples
/// can get *worse* when handed bitmaps over substantially different data.
/// Use refresh for template literal pools and small drifts; once
/// [`detect_drift`] fires on predicate columns, retrain.
pub fn refresh_samples(sketch: &DeepSketch, db: &Database, seed: u64) -> DeepSketch {
    assert_eq!(
        db.num_tables(),
        sketch.samples().len(),
        "database shape changed — rebuild the sketch instead"
    );
    let fresh: Vec<TableSample> = sample_all(db, sketch.featurizer().sample_size(), seed);
    let mut refreshed = DeepSketch::from_parts(
        sketch.model().clone(),
        sketch.featurizer().clone(),
        fresh,
        sketch.normalizer().clone(),
        sketch.database_name().to_string(),
    );
    // The weights are unchanged, so the training-time accuracy baseline
    // still describes this sketch.
    if let Some(b) = sketch.baseline() {
        refreshed.set_baseline(b.clone());
    }
    refreshed
}

/// Default ratio threshold for [`AccuracyDrift::is_stale`]: the rolling
/// median or p95 q-error exceeding 2× its training-time counterpart is a
/// real degradation, not bucket noise (buckets are 2×-wide, so a ratio
/// > 2 means the quantile moved at least one whole bucket).
pub const DEFAULT_DRIFT_RATIO: f64 = 2.0;

/// Default minimum feedback sample count before
/// [`AccuracyDrift::is_stale`] may fire — below this, rolling quantiles
/// are too noisy to act on.
pub const DEFAULT_MIN_SAMPLES: u64 = 50;

/// Accuracy drift of a served sketch: its rolling feedback q-error
/// distribution compared against the training-time holdout baseline
/// stored inside the sketch. Complements [`DriftReport`], which looks at
/// the *data* — this looks at the *model's observed accuracy*, catching
/// workload shift and correlation changes that leave per-column
/// distributions untouched.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyDrift {
    /// Training-time holdout median q-error.
    pub baseline_p50: f64,
    /// Training-time holdout 95th-percentile q-error.
    pub baseline_p95: f64,
    /// Rolling feedback median q-error.
    pub rolling_p50: f64,
    /// Rolling feedback 95th-percentile q-error.
    pub rolling_p95: f64,
    /// `rolling_p50 / baseline_p50`.
    pub ratio_p50: f64,
    /// `rolling_p95 / baseline_p95`.
    pub ratio_p95: f64,
    /// Feedback observations inside the rolling window.
    pub samples: u64,
}

impl AccuracyDrift {
    /// Severity of the drift: the worse of the two quantile ratios
    /// (1.0 ≈ healthy, 2.0 = a whole bucket worse, …).
    pub fn severity(&self) -> f64 {
        self.ratio_p50.max(self.ratio_p95)
    }

    /// The staleness signal: true when the window holds at least
    /// `min_samples` observations and either quantile ratio exceeds
    /// `ratio_threshold`. See [`DEFAULT_DRIFT_RATIO`] /
    /// [`DEFAULT_MIN_SAMPLES`] for the standard knobs.
    pub fn is_stale(&self, ratio_threshold: f64, min_samples: u64) -> bool {
        self.samples >= min_samples && self.severity() > ratio_threshold
    }
}

impl std::fmt::Display for AccuracyDrift {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "q-error p50 {:.2} vs baseline {:.2} ({:.2}x), p95 {:.2} vs {:.2} ({:.2}x), n={}",
            self.rolling_p50,
            self.baseline_p50,
            self.ratio_p50,
            self.rolling_p95,
            self.baseline_p95,
            self.ratio_p95,
            self.samples
        )
    }
}

/// Compares a rolling feedback q-error distribution against the
/// training-time baseline (both in [`crate::monitor::QERR_SCALE`]d
/// units, both bucketed the same way, so identical distributions give
/// ratios of exactly 1.0). Returns `None` when the baseline is empty —
/// with no reference there is nothing to drift from.
pub fn accuracy_drift(
    baseline: &ds_obs::HistogramSnapshot,
    rolling: &ds_obs::HistogramSnapshot,
) -> Option<AccuracyDrift> {
    if baseline.count() == 0 {
        return None;
    }
    let b50 = crate::monitor::descale_qerror(baseline.quantile(0.5).max(1));
    let b95 = crate::monitor::descale_qerror(baseline.quantile(0.95).max(1));
    let r50 = crate::monitor::descale_qerror(rolling.quantile(0.5));
    let r95 = crate::monitor::descale_qerror(rolling.quantile(0.95));
    Some(AccuracyDrift {
        baseline_p50: b50,
        baseline_p95: b95,
        rolling_p50: r50,
        rolling_p95: r95,
        ratio_p50: r50 / b50,
        ratio_p95: r95 / b95,
        samples: rolling.count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SketchBuilder;
    use ds_query::workloads::imdb_predicate_columns;
    use ds_storage::gen::{imdb_database, ImdbConfig};

    fn tiny_sketch(db: &Database) -> DeepSketch {
        SketchBuilder::new(db, imdb_predicate_columns(db))
            .training_queries(150)
            .epochs(2)
            .sample_size(32)
            .hidden_units(8)
            .seed(4)
            .build()
            .expect("sketch")
    }

    #[test]
    fn ks_statistic_basics() {
        assert_eq!(ks_statistic(&[], &[]), 0.0);
        assert_eq!(ks_statistic(&[1, 2], &[]), 1.0);
        // Identical samples → 0.
        assert_eq!(ks_statistic(&[1, 2, 3], &[1, 2, 3]), 0.0);
        // Disjoint supports → 1.
        assert_eq!(ks_statistic(&[1, 2, 3], &[10, 11]), 1.0);
        // Shifted uniform: moderate drift.
        let a: Vec<i64> = (0..100).collect();
        let b: Vec<i64> = (50..150).collect();
        let d = ks_statistic(&a, &b);
        assert!((d - 0.5).abs() < 0.05, "d={d}");
        // Symmetry.
        assert_eq!(ks_statistic(&a, &b), ks_statistic(&b, &a));
    }

    #[test]
    fn no_drift_against_the_same_database() {
        let db = imdb_database(&ImdbConfig::tiny(31));
        let sketch = tiny_sketch(&db);
        let report = detect_drift(&sketch, &db, 99);
        // Different sample seeds give small sampling noise, not drift.
        assert!(report.max_drift < 0.35, "max drift {}", report.max_drift);
        assert!(report.predicate_drift <= report.max_drift);
        assert!(!report.needs_retraining(0.5));
        assert_eq!(report.per_table.len(), 6);
    }

    #[test]
    fn evolved_database_is_flagged() {
        let db = imdb_database(&ImdbConfig::tiny(31));
        let sketch = tiny_sketch(&db);
        // "Evolution": a database with a very different year/popularity mix
        // (different seed and scale) — the drift check must fire.
        let evolved = imdb_database(&ImdbConfig {
            movies: 900,
            keywords: 40,
            companies: 40,
            persons: 300,
            seed: 777,
        });
        let report = detect_drift(&sketch, &evolved, 99);
        assert!(
            report.needs_retraining(0.3),
            "drift not detected on predicate columns: {}",
            report.predicate_drift
        );
        let (t, col, d) = report.worst().expect("some drift");
        assert!(d >= report.per_table[t.0].max_drift() * 0.999);
        assert!(!col.is_empty());
    }

    #[test]
    fn refresh_samples_keeps_weights_but_tracks_new_data() {
        let db = imdb_database(&ImdbConfig::tiny(32));
        let sketch = tiny_sketch(&db);
        let refreshed = refresh_samples(&sketch, &db, 12345);
        // Model identical.
        assert_eq!(sketch.model().num_params(), refreshed.model().num_params());
        // Samples differ (different seed) but are drawn from the same data.
        assert_ne!(
            sketch.samples()[0].row_ids(),
            refreshed.samples()[0].row_ids()
        );
        let report = detect_drift(&refreshed, &db, 7);
        assert!(report.max_drift < 0.35);
        // Still estimates sanely.
        let q = ds_query::parser::parse_query(
            &db,
            "SELECT COUNT(*) FROM title WHERE title.production_year > 2000",
        )
        .unwrap();
        use ds_est::CardinalityEstimator;
        assert!(refreshed.estimate(&q) >= 1.0);
    }

    #[test]
    fn accuracy_drift_fires_on_degradation_and_stays_silent_when_stationary() {
        use crate::monitor::{baseline_from_qerrors, QErrorMonitor};

        let baseline = baseline_from_qerrors(&[1.0, 1.1, 1.3, 1.8, 2.5, 4.0]).unwrap();

        // Stationary: feedback drawn from the same distribution → ratios
        // stay at 1 and the signal is silent even with plenty of samples.
        let healthy = QErrorMonitor::default();
        for _ in 0..20 {
            for q in [1.0, 1.1, 1.3, 1.8, 2.5, 4.0] {
                healthy.record("t", q, 1.0);
            }
        }
        let d = accuracy_drift(&baseline, &healthy.rolling()).unwrap();
        assert_eq!(d.ratio_p50, 1.0, "{d}");
        assert_eq!(d.ratio_p95, 1.0, "{d}");
        assert!(!d.is_stale(DEFAULT_DRIFT_RATIO, DEFAULT_MIN_SAMPLES));

        // Drifted: q-errors 8× worse across the board → both ratios blow
        // past the threshold and the staleness signal fires.
        let drifted = QErrorMonitor::default();
        for _ in 0..20 {
            for q in [8.0, 8.8, 10.4, 14.4, 20.0, 32.0] {
                drifted.record("t", q, 1.0);
            }
        }
        let d = accuracy_drift(&baseline, &drifted.rolling()).unwrap();
        assert!(d.ratio_p50 > DEFAULT_DRIFT_RATIO, "{d}");
        assert!(d.is_stale(DEFAULT_DRIFT_RATIO, DEFAULT_MIN_SAMPLES));
        assert!(d.severity() >= d.ratio_p50.max(d.ratio_p95) - 1e-12);

        // Too few samples: even severe drift must not fire.
        let sparse = QErrorMonitor::default();
        for q in [50.0, 60.0] {
            sparse.record("t", q, 1.0);
        }
        let d = accuracy_drift(&baseline, &sparse.rolling()).unwrap();
        assert!(d.severity() > DEFAULT_DRIFT_RATIO);
        assert!(!d.is_stale(DEFAULT_DRIFT_RATIO, DEFAULT_MIN_SAMPLES));

        // No baseline → no signal at all.
        assert!(accuracy_drift(&ds_obs::HistogramSnapshot::new(), &drifted.rolling()).is_none());
    }

    #[test]
    fn refresh_preserves_the_accuracy_baseline() {
        let db = imdb_database(&ImdbConfig::tiny(34));
        let sketch = tiny_sketch(&db);
        assert!(sketch.baseline().is_some());
        let refreshed = refresh_samples(&sketch, &db, 5);
        assert_eq!(refreshed.baseline(), sketch.baseline());
    }

    #[test]
    #[should_panic(expected = "database shape changed")]
    fn shape_change_is_rejected() {
        let db = imdb_database(&ImdbConfig::tiny(33));
        let sketch = tiny_sketch(&db);
        let other = ds_storage::gen::tpch_database(&ds_storage::gen::TpchConfig::tiny(1));
        detect_drift(&sketch, &other, 1);
    }
}
