//! The automated retrain-and-hot-swap lifecycle: the closed loop that
//! turns a servable sketch into a *self-maintaining* one.
//!
//! "Are We Ready For Learned Cardinality Estimation?" identifies
//! staleness under data drift as the production blocker for learned
//! estimators; PR 4's advisor ([`crate::advisor::recommend_retraining`])
//! detects the drift but leaves the fix to a human. This module closes
//! the loop as a per-sketch state machine driven by a periodic `tick`:
//!
//! ```text
//!          FEEDBACK            advisor fires &            training
//!          harvested           enough harvested           finishes
//!  Idle ─────────────▶ Harvesting ────────────▶ Training ─────────▶ Shadow
//!                          ▲                                          │
//!                          │          gate rejected                   │ gate passed:
//!                          │◀─────────────────────────────────────────┤ snapshot old,
//!                          │                                          ▼ atomic swap
//!                          │      promoted (guard held) ┌──────── Watching
//!                          │◀────────────────────────────┘            │
//!                          │      rolled back (guard tripped:         │
//!                          │◀─────────────────────────────────────────┘
//!                          │       swap the old model back in)
//! ```
//!
//! * **Harvesting** — FEEDBACK-graded queries (SQL + true cardinality)
//!   accumulate in a bounded, deduplicated [`HarvestSet`], keyed on the
//!   serving tier's canonical template key plus the predicate literals.
//! * **Training** — when the drift advisor fires and enough labeled
//!   queries are harvested, a candidate trains on a dedicated background
//!   thread; the live sketch keeps serving untouched.
//! * **Shadow** — the candidate is scored against the live sketch on
//!   mirrored traffic. Mirrored jobs run under a *reserved* store
//!   generation so the request coalescer can never merge candidate and
//!   live work; the candidate never serves a client response.
//! * **Swap / Watching** — if the candidate's shadow q-error median beats
//!   the gate, the old generation is snapshotted (crash-safe `DSNP`) and
//!   the candidate is hot-swapped in via [`SketchStore::swap`]. The first
//!   post-swap window is watched: if the fresh model's q-error regresses
//!   past the guard ratio, the old model is swapped straight back in.
//!
//! Candidates and in-flight training are deliberately *not* durable: a
//! crash mid-retrain loses nothing but CPU time — the harvest set is
//! persisted separately (`DSHV` files, same checksum discipline as
//! `DSNP`) and a warm restart resumes harvesting from where it left off.

use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use ds_nn::frozen::QuantMode;
use ds_nn::loss::LabelNormalizer;
use ds_query::parser::parse_query;
use ds_query::query::Query;
use ds_storage::catalog::Database;

use crate::advisor::recommend_retraining;
use crate::maintain::{DEFAULT_DRIFT_RATIO, DEFAULT_MIN_SAMPLES};
use crate::metrics::qerror;
use crate::monitor::{baseline_from_qerrors, MonitorRegistry};
use crate::mscn::{MscnConfig, MscnModel};
use crate::sketch::{DeepSketch, FREEZE_GATE_MAX_DELTA};
use crate::snapshot::{checksum, valid_snapshot_name, SnapshotError};
use crate::store::SketchStore;
use crate::train::{train, LossKind, TrainConfig};

/// Magic bytes of a durable harvest-set file.
pub const HARVEST_MAGIC: [u8; 4] = *b"DSHV";

/// Current harvest-set format version.
pub const HARVEST_VERSION: u32 = 1;

/// File extension of durable harvest sets (`<sketch>.harvest`).
pub const HARVEST_EXT: &str = "harvest";

/// Decode cap on the entry count — far above any real harvest set.
pub const MAX_HARVEST_ENTRIES: u64 = 1 << 20;

/// Decode cap on one dedup key.
pub const MAX_HARVEST_KEY_LEN: u64 = 1 << 10;

/// Decode cap on one harvested SQL string.
pub const MAX_HARVEST_SQL_LEN: u64 = 1 << 16;

/// Number of freeze-gate probe queries for a retrained candidate.
const CANDIDATE_FREEZE_PROBES: usize = 64;

/// Hard cap on buffered shadow/guard score vectors, so a stuck gate can
/// never grow memory without bound.
const MAX_SCORE_SAMPLES: usize = 4096;

// ---------------------------------------------------------------------------
// Harvest set
// ---------------------------------------------------------------------------

/// One harvested training example: a FEEDBACK-graded query with its true
/// cardinality, deduplicated by canonical key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HarvestEntry {
    /// Canonical dedup key (template key + predicate literals).
    pub key: String,
    /// The query's SQL, re-parsed at retrain time.
    pub sql: String,
    /// True cardinality reported over FEEDBACK — the training label.
    pub actual: u64,
    /// Monotonic observation sequence; newest wins on dedup, oldest is
    /// evicted on overflow.
    pub seq: u64,
}

/// A bounded, deduplicated incremental training set harvested from
/// FEEDBACK traffic. Duplicate keys keep only the newest observation
/// (drifted data re-labels a repeated query); overflow evicts the
/// least-recently-observed entry.
#[derive(Debug, Clone)]
pub struct HarvestSet {
    capacity: usize,
    next_seq: u64,
    entries: HashMap<String, HarvestEntry>,
}

impl HarvestSet {
    /// An empty set holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            next_seq: 0,
            entries: HashMap::new(),
        }
    }

    /// Number of distinct harvested queries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been harvested.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The bound this set enforces.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drops every entry (after a candidate consumed the set).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Records one graded query. Returns `true` when the key is new.
    /// Oversized keys or SQL (beyond the decode caps) are refused rather
    /// than harvested — they could never round-trip through the durable
    /// format.
    pub fn observe(&mut self, key: &str, sql: &str, actual: u64) -> bool {
        if key.is_empty()
            || key.len() as u64 > MAX_HARVEST_KEY_LEN
            || sql.len() as u64 > MAX_HARVEST_SQL_LEN
        {
            return false;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        if let Some(entry) = self.entries.get_mut(key) {
            entry.sql = sql.to_string();
            entry.actual = actual;
            entry.seq = seq;
            return false;
        }
        if self.entries.len() >= self.capacity {
            if let Some(oldest) = self
                .entries
                .values()
                .min_by_key(|e| e.seq)
                .map(|e| e.key.clone())
            {
                self.entries.remove(&oldest);
            }
        }
        self.entries.insert(
            key.to_string(),
            HarvestEntry {
                key: key.to_string(),
                sql: sql.to_string(),
                actual,
                seq,
            },
        );
        true
    }

    /// The harvested entries in observation order (oldest first) — the
    /// deterministic order the durable format stores.
    pub fn entries(&self) -> Vec<HarvestEntry> {
        let mut out: Vec<HarvestEntry> = self.entries.values().cloned().collect();
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Encodes the set into the checksummed `DSHV` byte layout:
    ///
    /// ```text
    /// "DSHV" | version u32 | count u64
    ///   | per entry: key str | sql str | actual u64 | seq u64
    /// | FNV-1a-64 checksum over everything above
    /// ```
    ///
    /// Entries are stored sorted by `seq`, so encoding is canonical: any
    /// accepted byte string re-encodes to itself.
    pub fn encode(&self) -> Vec<u8> {
        let entries = self.entries();
        let mut buf = Vec::with_capacity(64 + entries.len() * 96);
        buf.extend_from_slice(&HARVEST_MAGIC);
        buf.extend_from_slice(&HARVEST_VERSION.to_le_bytes());
        put_u64(&mut buf, entries.len() as u64);
        for e in &entries {
            put_str(&mut buf, &e.key);
            put_str(&mut buf, &e.sql);
            put_u64(&mut buf, e.actual);
            put_u64(&mut buf, e.seq);
        }
        let sum = checksum(&buf);
        put_u64(&mut buf, sum);
        buf
    }

    /// Decodes and fully validates a `DSHV` byte string. Every length
    /// field is bounds-checked before allocation, duplicate keys and
    /// non-ascending sequence numbers are rejected as corrupt, and the
    /// checksum trailer must match — this function never panics on
    /// arbitrary input. When the file holds more than `capacity` entries
    /// the newest `capacity` survive.
    pub fn decode(bytes: &[u8], capacity: usize) -> Result<Self, SnapshotError> {
        if bytes.len() < 4 + 4 + 8 + 8 {
            return Err(SnapshotError::Truncated);
        }
        if bytes[..4] != HARVEST_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version == 0 || version > HARVEST_VERSION {
            return Err(SnapshotError::BadVersion(version));
        }
        let (body, trailer) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
        let actual_sum = checksum(body);
        if stored != actual_sum {
            return Err(SnapshotError::ChecksumMismatch {
                stored,
                actual: actual_sum,
            });
        }
        let mut cur = Cursor { buf: &body[8..] };
        let count = cur.bounded_len(MAX_HARVEST_ENTRIES, "harvest entry count")?;
        let mut set = Self::new(capacity.max(1));
        let mut last_seq: Option<u64> = None;
        for _ in 0..count {
            let key = cur.string(MAX_HARVEST_KEY_LEN, "harvest key")?;
            let sql = cur.string(MAX_HARVEST_SQL_LEN, "harvest sql")?;
            let actual = cur.u64()?;
            let seq = cur.u64()?;
            if key.is_empty() {
                return Err(SnapshotError::Corrupt("empty harvest key".to_string()));
            }
            if last_seq.is_some_and(|prev| seq <= prev) {
                return Err(SnapshotError::Corrupt(
                    "harvest sequence numbers not ascending".to_string(),
                ));
            }
            last_seq = Some(seq);
            let entry = HarvestEntry {
                key: key.clone(),
                sql,
                actual,
                seq,
            };
            if set.entries.insert(key, entry).is_some() {
                return Err(SnapshotError::Corrupt("duplicate harvest key".to_string()));
            }
        }
        if !cur.buf.is_empty() {
            return Err(SnapshotError::Corrupt(format!(
                "{} trailing bytes after harvest entries",
                cur.buf.len()
            )));
        }
        set.next_seq = last_seq.map_or(0, |s| s + 1);
        // Enforce the bound on oversized files: evict oldest-first.
        while set.entries.len() > set.capacity {
            let oldest = set
                .entries
                .values()
                .min_by_key(|e| e.seq)
                .map(|e| e.key.clone())
                .expect("non-empty");
            set.entries.remove(&oldest);
        }
        Ok(set)
    }

    /// Durably writes the set as `<dir>/<name>.harvest` — temp file,
    /// fsync, atomic rename, directory fsync — so a crash leaves either
    /// the old file or the new one, never a torn mix.
    pub fn save(&self, dir: &Path, name: &str) -> Result<PathBuf, SnapshotError> {
        if !valid_snapshot_name(name) {
            return Err(SnapshotError::InvalidName(name.to_string()));
        }
        std::fs::create_dir_all(dir).map_err(SnapshotError::Io)?;
        let final_path = dir.join(format!("{name}.{HARVEST_EXT}"));
        let tmp_path = dir.join(format!("{name}.{HARVEST_EXT}.tmp"));
        let bytes = self.encode();
        {
            let mut f = std::fs::File::create(&tmp_path).map_err(SnapshotError::Io)?;
            use std::io::Write as _;
            f.write_all(&bytes).map_err(SnapshotError::Io)?;
            f.sync_all().map_err(SnapshotError::Io)?;
        }
        std::fs::rename(&tmp_path, &final_path).map_err(SnapshotError::Io)?;
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
        Ok(final_path)
    }

    /// Loads `<dir>/<name>.harvest` if present. `Ok(None)` when the file
    /// does not exist; decode failures surface as typed errors so a
    /// corrupt file is never silently adopted.
    pub fn load(dir: &Path, name: &str, capacity: usize) -> Result<Option<Self>, SnapshotError> {
        if !valid_snapshot_name(name) {
            return Err(SnapshotError::InvalidName(name.to_string()));
        }
        let path = dir.join(format!("{name}.{HARVEST_EXT}"));
        match std::fs::read(&path) {
            Ok(bytes) => Self::decode(&bytes, capacity).map(Some),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(SnapshotError::Io(e)),
        }
    }
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

/// Bounds-checked reader over untrusted harvest bytes (the snapshot
/// module's cursor is private to it; the discipline is identical).
struct Cursor<'a> {
    buf: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.buf.len() < n {
            return Err(SnapshotError::Truncated);
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        Ok(head)
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn bounded_len(&mut self, cap: u64, what: &str) -> Result<usize, SnapshotError> {
        let n = self.u64()?;
        if n > cap {
            return Err(SnapshotError::Corrupt(format!(
                "{what} length {n} too large"
            )));
        }
        Ok(n as usize)
    }

    fn string(&mut self, cap: u64, what: &str) -> Result<String, SnapshotError> {
        let n = self.bounded_len(cap, what)?;
        String::from_utf8(self.take(n)?.to_vec())
            .map_err(|_| SnapshotError::Corrupt(format!("{what} is not UTF-8")))
    }
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Tuning for the retrain-and-hot-swap lifecycle.
#[derive(Debug, Clone)]
pub struct LifecycleConfig {
    /// Bound on the per-sketch harvest set.
    pub harvest_capacity: usize,
    /// Minimum harvested queries before a retrain may start.
    pub min_harvest: usize,
    /// Drift severity (rolling/baseline q-error ratio) that arms a
    /// retrain, fed to [`recommend_retraining`].
    pub drift_ratio: f64,
    /// Minimum rolling-window samples before drift is trusted.
    pub drift_min_samples: u64,
    /// Mirrored feedback pairs required before the shadow gate decides.
    pub shadow_min_samples: usize,
    /// The candidate's shadow q-error median must be at most
    /// `live_median * shadow_gate_ratio` to be promoted.
    pub shadow_gate_ratio: f64,
    /// Post-swap graded queries required before the guard decides.
    pub guard_min_samples: usize,
    /// Auto-rollback fires when the post-swap q-error median exceeds
    /// `guard_baseline * guard_ratio` (the baseline is the candidate's
    /// own shadow median — "worse than it shadowed" means regression).
    pub guard_ratio: f64,
    /// Epochs for the incremental retrain (small: it refines, not
    /// rebuilds).
    pub train_epochs: usize,
    /// Threads for the background training (off the serving path).
    pub train_threads: usize,
    /// Seed for candidate weight init and shuffling.
    pub seed: u64,
    /// Cadence of the daemon's state-machine tick.
    pub tick_interval: Duration,
    /// Test hook: corrupt every promoted candidate *after* the shadow
    /// gate passes, so rollback drills exercise the guard
    /// deterministically (models an undetectably-bad candidate).
    pub poison_candidates: bool,
}

impl Default for LifecycleConfig {
    fn default() -> Self {
        Self {
            harvest_capacity: 1024,
            min_harvest: 64,
            drift_ratio: DEFAULT_DRIFT_RATIO,
            drift_min_samples: DEFAULT_MIN_SAMPLES,
            shadow_min_samples: 32,
            shadow_gate_ratio: 1.1,
            guard_min_samples: 32,
            guard_ratio: 2.0,
            train_epochs: 8,
            train_threads: 1,
            seed: 0x11FE_C0DE,
            tick_interval: Duration::from_millis(200),
            poison_candidates: false,
        }
    }
}

impl LifecycleConfig {
    /// Checks every invariant; the serving config surfaces violations as
    /// its own typed error.
    pub fn validate(&self) -> Result<(), String> {
        if self.harvest_capacity == 0 {
            return Err("lifecycle harvest_capacity must be > 0".to_string());
        }
        if self.min_harvest == 0 || self.min_harvest > self.harvest_capacity {
            return Err("lifecycle min_harvest must be in 1..=harvest_capacity".to_string());
        }
        if self.drift_ratio.is_nan() || self.drift_ratio <= 0.0 {
            return Err("lifecycle drift_ratio must be > 0".to_string());
        }
        if self.shadow_min_samples == 0 {
            return Err("lifecycle shadow_min_samples must be > 0".to_string());
        }
        if self.shadow_gate_ratio.is_nan() || self.shadow_gate_ratio <= 0.0 {
            return Err("lifecycle shadow_gate_ratio must be > 0".to_string());
        }
        if self.guard_min_samples == 0 {
            return Err("lifecycle guard_min_samples must be > 0".to_string());
        }
        if self.guard_ratio.is_nan() || self.guard_ratio < 1.0 {
            return Err("lifecycle guard_ratio must be >= 1".to_string());
        }
        if self.train_epochs == 0 {
            return Err("lifecycle train_epochs must be > 0".to_string());
        }
        if self.train_threads == 0 {
            return Err("lifecycle train_threads must be > 0".to_string());
        }
        if self.tick_interval.is_zero() {
            return Err("lifecycle tick_interval must be > 0".to_string());
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Phases, status, events
// ---------------------------------------------------------------------------

/// Where one sketch stands in the lifecycle state machine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum LifecyclePhase {
    /// Nothing harvested, nothing in flight.
    #[default]
    Idle,
    /// Graded queries are accumulating; no retrain armed yet.
    Harvesting,
    /// A candidate is training on a background thread.
    Training,
    /// A trained candidate is being shadow-scored on mirrored traffic.
    Shadow,
    /// A candidate was swapped in; the guard window is still open.
    Watching,
}

impl LifecyclePhase {
    /// Stable wire/metrics name.
    pub fn as_str(&self) -> &'static str {
        match self {
            LifecyclePhase::Idle => "idle",
            LifecyclePhase::Harvesting => "harvesting",
            LifecyclePhase::Training => "training",
            LifecyclePhase::Shadow => "shadow",
            LifecyclePhase::Watching => "watching",
        }
    }

    /// Stable numeric code for Prometheus gauges.
    pub fn code(&self) -> u8 {
        match self {
            LifecyclePhase::Idle => 0,
            LifecyclePhase::Harvesting => 1,
            LifecyclePhase::Training => 2,
            LifecyclePhase::Shadow => 3,
            LifecyclePhase::Watching => 4,
        }
    }
}

impl std::fmt::Display for LifecyclePhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A point-in-time view of one sketch's lifecycle, for the `LIFECYCLE`
/// wire verb and the STATS gauges.
#[derive(Debug, Clone)]
pub struct LifecycleStatus {
    /// Sketch name.
    pub sketch: String,
    /// Current phase.
    pub phase: LifecyclePhase,
    /// Distinct queries currently harvested.
    pub harvested: usize,
    /// Mirrored feedback pairs scored so far in the shadow phase.
    pub shadow_samples: usize,
    /// Live model's median shadow q-error (0 until samples exist).
    pub shadow_live_p50: f64,
    /// Candidate's median shadow q-error (0 until samples exist).
    pub shadow_candidate_p50: f64,
}

/// Monotonic counters across every sketch the manager drives.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LifecycleCounters {
    /// Distinct queries ever harvested.
    pub harvested: u64,
    /// Background retrains started.
    pub retrains_started: u64,
    /// Background retrains that failed (candidate abandoned).
    pub retrains_failed: u64,
    /// Candidates rejected by the shadow gate.
    pub gate_rejects: u64,
    /// Hot-swaps performed (promotions *and* rollback re-swaps).
    pub swaps: u64,
    /// Guard-triggered rollbacks.
    pub rollbacks: u64,
    /// Candidates that survived the guard window.
    pub promotions: u64,
}

/// What one [`LifecycleManager::tick`] decided.
#[derive(Debug, Clone)]
pub enum LifecycleEvent {
    /// Drift fired with enough harvest; a candidate started training.
    RetrainStarted {
        /// Sketch being retrained.
        sketch: String,
        /// Harvested examples handed to the trainer.
        harvested: usize,
    },
    /// Background training failed; the candidate was abandoned.
    TrainingFailed {
        /// Sketch whose retrain failed.
        sketch: String,
        /// The trainer's error.
        error: String,
    },
    /// A trained candidate entered shadow scoring.
    ShadowStarted {
        /// Sketch being shadowed.
        sketch: String,
        /// Reserved batcher key for mirrored candidate traffic.
        shadow_generation: u64,
    },
    /// The shadow gate rejected the candidate.
    GateRejected {
        /// Sketch whose candidate was rejected.
        sketch: String,
        /// Live model's shadow q-error median.
        live_p50: f64,
        /// Candidate's shadow q-error median.
        candidate_p50: f64,
    },
    /// The candidate was hot-swapped in (old generation snapshotted
    /// first when a snapshot directory is configured).
    Swapped {
        /// Sketch that was swapped.
        sketch: String,
        /// Generation that was serving before the swap.
        previous_generation: u64,
        /// Generation now serving.
        generation: u64,
        /// Durable snapshot of the old generation, when written.
        snapshot: Option<PathBuf>,
    },
    /// The guard tripped; the previous model was swapped back in.
    RolledBack {
        /// Sketch that was rolled back.
        sketch: String,
        /// Fresh generation the restored model serves under.
        generation: u64,
    },
    /// The guard window closed clean; the candidate is now the model.
    Promoted {
        /// Sketch whose candidate survived.
        sketch: String,
        /// Generation it serves under.
        generation: u64,
    },
}

// ---------------------------------------------------------------------------
// Manager
// ---------------------------------------------------------------------------

struct TrainingJob {
    rx: Receiver<Result<DeepSketch, String>>,
    handle: Option<JoinHandle<()>>,
}

struct ShadowCandidate {
    sketch: Arc<DeepSketch>,
    shadow_generation: u64,
    live_q: Vec<f64>,
    candidate_q: Vec<f64>,
}

struct WatchState {
    previous: Arc<DeepSketch>,
    generation: u64,
    guard_p50: f64,
    qerrors: Vec<f64>,
}

#[derive(Default)]
struct SketchState {
    phase: LifecyclePhase,
    harvest: Option<HarvestSet>,
    harvest_dirty: bool,
    training: Option<TrainingJob>,
    candidate: Option<ShadowCandidate>,
    watch: Option<WatchState>,
}

#[derive(Default)]
struct Counters {
    harvested: AtomicU64,
    retrains_started: AtomicU64,
    retrains_failed: AtomicU64,
    gate_rejects: AtomicU64,
    swaps: AtomicU64,
    rollbacks: AtomicU64,
    promotions: AtomicU64,
}

/// Drives the retrain-and-hot-swap state machine for every sketch that
/// receives feedback. `Sync`: the serving tier shares one manager between
/// its request handlers (harvest/guard recording) and the maintain daemon
/// (ticks and shadow scoring).
pub struct LifecycleManager {
    cfg: LifecycleConfig,
    states: Mutex<HashMap<String, SketchState>>,
    /// Sketches currently in the shadow phase — lets the serving hot path
    /// skip the state lock entirely when nothing is being shadowed.
    shadow_active: AtomicU64,
    poison: AtomicBool,
    counters: Counters,
}

impl LifecycleManager {
    /// A manager with validated configuration.
    pub fn new(cfg: LifecycleConfig) -> Result<Self, String> {
        cfg.validate()?;
        let poison = AtomicBool::new(cfg.poison_candidates);
        Ok(Self {
            cfg,
            states: Mutex::new(HashMap::new()),
            shadow_active: AtomicU64::new(0),
            poison,
            counters: Counters::default(),
        })
    }

    /// The configuration this manager runs with.
    pub fn config(&self) -> &LifecycleConfig {
        &self.cfg
    }

    /// Arms or disarms candidate poisoning (see
    /// [`LifecycleConfig::poison_candidates`]); rollback drills toggle
    /// this at runtime.
    pub fn set_poison(&self, armed: bool) {
        self.poison.store(armed, Ordering::SeqCst);
    }

    /// Whether candidate poisoning is currently armed.
    pub fn poison_armed(&self) -> bool {
        self.poison.load(Ordering::SeqCst)
    }

    /// Records one FEEDBACK-graded query: harvests it for incremental
    /// retraining and, while the post-swap guard window is open, grades
    /// the freshly swapped model against it.
    pub fn observe_feedback(&self, sketch: &str, key: &str, sql: &str, estimate: f64, actual: u64) {
        let mut states = self.states.lock().expect("lifecycle states");
        let state = states.entry(sketch.to_string()).or_default();
        if let Some(watch) = state.watch.as_mut() {
            if watch.qerrors.len() < MAX_SCORE_SAMPLES {
                watch.qerrors.push(qerror(estimate, actual.max(1) as f64));
            }
        }
        let harvest = state
            .harvest
            .get_or_insert_with(|| HarvestSet::new(self.cfg.harvest_capacity));
        if harvest.observe(key, sql, actual) {
            self.counters.harvested.fetch_add(1, Ordering::Relaxed);
        }
        state.harvest_dirty = true;
        if state.phase == LifecyclePhase::Idle && !harvest.is_empty() {
            state.phase = LifecyclePhase::Harvesting;
        }
    }

    /// The candidate to mirror traffic onto, with its reserved batcher
    /// generation — `None` unless `sketch` is in the shadow phase. The
    /// fast path is one relaxed atomic load when nothing is shadowing
    /// anywhere.
    pub fn shadow_pair(&self, sketch: &str) -> Option<(Arc<DeepSketch>, u64)> {
        if self.shadow_active.load(Ordering::Relaxed) == 0 {
            return None;
        }
        let states = self.states.lock().expect("lifecycle states");
        let state = states.get(sketch)?;
        let candidate = state.candidate.as_ref()?;
        (state.phase == LifecyclePhase::Shadow)
            .then(|| (Arc::clone(&candidate.sketch), candidate.shadow_generation))
    }

    /// Whether `sketch` is currently being shadow-scored (the hot path's
    /// cheap pre-check before cloning a query for mirroring).
    pub fn shadowing(&self, sketch: &str) -> bool {
        self.shadow_pair(sketch).is_some()
    }

    /// Records one mirrored scoring pair: the live model's and the
    /// candidate's q-error on the same graded query.
    pub fn observe_shadow(&self, sketch: &str, live_q: f64, candidate_q: f64) {
        let mut states = self.states.lock().expect("lifecycle states");
        let Some(state) = states.get_mut(sketch) else {
            return;
        };
        let Some(candidate) = state.candidate.as_mut() else {
            return;
        };
        if candidate.live_q.len() < MAX_SCORE_SAMPLES {
            candidate.live_q.push(live_q);
            candidate.candidate_q.push(candidate_q);
        }
    }

    /// Test/bench hook: places an already-trained candidate directly into
    /// the shadow phase (skipping Harvesting/Training), exactly as if a
    /// background retrain had just finished. Drills use this to exercise
    /// the gate, swap, and rollback paths deterministically.
    pub fn install_candidate(&self, store: &SketchStore, sketch: &str, candidate: DeepSketch) {
        let shadow_generation = store.reserve_generation();
        let mut states = self.states.lock().expect("lifecycle states");
        let state = states.entry(sketch.to_string()).or_default();
        if state.phase == LifecyclePhase::Shadow {
            self.shadow_active.fetch_sub(1, Ordering::Relaxed);
        }
        state.training = None;
        state.candidate = Some(ShadowCandidate {
            sketch: Arc::new(candidate),
            shadow_generation,
            live_q: Vec::new(),
            candidate_q: Vec::new(),
        });
        state.phase = LifecyclePhase::Shadow;
        self.shadow_active.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time view of one sketch (even if it has no lifecycle
    /// state yet — that reads as `Idle`).
    pub fn status(&self, sketch: &str) -> LifecycleStatus {
        let states = self.states.lock().expect("lifecycle states");
        match states.get(sketch) {
            Some(state) => Self::status_of(sketch, state),
            None => LifecycleStatus {
                sketch: sketch.to_string(),
                phase: LifecyclePhase::Idle,
                harvested: 0,
                shadow_samples: 0,
                shadow_live_p50: 0.0,
                shadow_candidate_p50: 0.0,
            },
        }
    }

    /// Status of every sketch with lifecycle state, sorted by name.
    pub fn statuses(&self) -> Vec<LifecycleStatus> {
        let states = self.states.lock().expect("lifecycle states");
        let mut out: Vec<LifecycleStatus> = states
            .iter()
            .map(|(name, state)| Self::status_of(name, state))
            .collect();
        out.sort_by(|a, b| a.sketch.cmp(&b.sketch));
        out
    }

    fn status_of(name: &str, state: &SketchState) -> LifecycleStatus {
        let (n, live, cand) = match &state.candidate {
            Some(c) if !c.live_q.is_empty() => {
                (c.live_q.len(), median(&c.live_q), median(&c.candidate_q))
            }
            _ => (0, 0.0, 0.0),
        };
        LifecycleStatus {
            sketch: name.to_string(),
            phase: state.phase,
            harvested: state.harvest.as_ref().map_or(0, HarvestSet::len),
            shadow_samples: n,
            shadow_live_p50: live,
            shadow_candidate_p50: cand,
        }
    }

    /// A snapshot of the manager-wide counters.
    pub fn counters(&self) -> LifecycleCounters {
        LifecycleCounters {
            harvested: self.counters.harvested.load(Ordering::Relaxed),
            retrains_started: self.counters.retrains_started.load(Ordering::Relaxed),
            retrains_failed: self.counters.retrains_failed.load(Ordering::Relaxed),
            gate_rejects: self.counters.gate_rejects.load(Ordering::Relaxed),
            swaps: self.counters.swaps.load(Ordering::Relaxed),
            rollbacks: self.counters.rollbacks.load(Ordering::Relaxed),
            promotions: self.counters.promotions.load(Ordering::Relaxed),
        }
    }

    /// Durably writes every harvest set that changed since the last
    /// persist (`<dir>/<sketch>.harvest`). Returns how many were written.
    pub fn persist_harvests(&self, dir: &Path) -> usize {
        let mut states = self.states.lock().expect("lifecycle states");
        let mut written = 0;
        for (name, state) in states.iter_mut() {
            if !state.harvest_dirty {
                continue;
            }
            let Some(harvest) = state.harvest.as_ref() else {
                continue;
            };
            if harvest.save(dir, name).is_ok() {
                state.harvest_dirty = false;
                written += 1;
            }
        }
        written
    }

    /// Reloads every `<sketch>.harvest` file in `dir` — the warm-restart
    /// path. Corrupt files are skipped (the set re-harvests from live
    /// traffic); returns how many sets were restored.
    pub fn load_harvests(&self, dir: &Path) -> usize {
        let Ok(entries) = std::fs::read_dir(dir) else {
            return 0;
        };
        let mut loaded = 0;
        let mut states = self.states.lock().expect("lifecycle states");
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some(HARVEST_EXT) {
                continue;
            }
            let Some(name) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            let Ok(Some(set)) = HarvestSet::load(dir, name, self.cfg.harvest_capacity) else {
                continue;
            };
            self.counters
                .harvested
                .fetch_add(set.len() as u64, Ordering::Relaxed);
            let state = states.entry(name.to_string()).or_default();
            if state.phase == LifecyclePhase::Idle && !set.is_empty() {
                state.phase = LifecyclePhase::Harvesting;
            }
            state.harvest = Some(set);
            state.harvest_dirty = false;
            loaded += 1;
        }
        loaded
    }

    /// One state-machine step for every sketch: polls background
    /// training, arms retrains off the drift advisor, decides shadow
    /// gates, performs snapshot-then-swap, and closes guard windows
    /// (promotion or rollback). Returns what happened.
    pub fn tick(
        &self,
        store: &SketchStore,
        monitors: &MonitorRegistry,
        db: &Arc<Database>,
        snapshot_dir: Option<&Path>,
    ) -> Vec<LifecycleEvent> {
        let advised: HashSet<String> = recommend_retraining(
            store,
            monitors,
            self.cfg.drift_ratio,
            self.cfg.drift_min_samples,
        )
        .into_iter()
        .map(|a| a.sketch)
        .collect();

        let mut events = Vec::new();
        let mut states = self.states.lock().expect("lifecycle states");
        for (name, state) in states.iter_mut() {
            match state.phase {
                LifecyclePhase::Idle | LifecyclePhase::Harvesting => {
                    let harvested = state.harvest.as_ref().map_or(0, HarvestSet::len);
                    if advised.contains(name) && harvested >= self.cfg.min_harvest {
                        let Ok(live) = store.get(name) else {
                            continue;
                        };
                        let entries = state.harvest.as_ref().expect("non-empty").entries();
                        state.training = Some(spawn_retrain(
                            name.clone(),
                            live,
                            Arc::clone(db),
                            entries,
                            self.cfg.clone(),
                        ));
                        state.phase = LifecyclePhase::Training;
                        self.counters
                            .retrains_started
                            .fetch_add(1, Ordering::Relaxed);
                        ds_obs::global().count("lifecycle/retrains_started", 1);
                        events.push(LifecycleEvent::RetrainStarted {
                            sketch: name.clone(),
                            harvested,
                        });
                    }
                }
                LifecyclePhase::Training => {
                    let Some(job) = state.training.as_mut() else {
                        state.phase = LifecyclePhase::Idle;
                        continue;
                    };
                    let outcome = match job.rx.try_recv() {
                        Ok(result) => result,
                        Err(TryRecvError::Empty) => continue,
                        Err(TryRecvError::Disconnected) => {
                            Err("training thread died without a result".to_string())
                        }
                    };
                    if let Some(handle) = job.handle.take() {
                        let _ = handle.join();
                    }
                    state.training = None;
                    match outcome {
                        Ok(candidate) => {
                            let shadow_generation = store.reserve_generation();
                            state.candidate = Some(ShadowCandidate {
                                sketch: Arc::new(candidate),
                                shadow_generation,
                                live_q: Vec::new(),
                                candidate_q: Vec::new(),
                            });
                            state.phase = LifecyclePhase::Shadow;
                            self.shadow_active.fetch_add(1, Ordering::Relaxed);
                            events.push(LifecycleEvent::ShadowStarted {
                                sketch: name.clone(),
                                shadow_generation,
                            });
                        }
                        Err(error) => {
                            self.counters
                                .retrains_failed
                                .fetch_add(1, Ordering::Relaxed);
                            ds_obs::global().count("lifecycle/retrains_failed", 1);
                            // Drop the harvest that produced the failure:
                            // retrying the same set would fail the same way.
                            if let Some(h) = state.harvest.as_mut() {
                                h.clear();
                            }
                            state.harvest_dirty = true;
                            state.phase = LifecyclePhase::Idle;
                            events.push(LifecycleEvent::TrainingFailed {
                                sketch: name.clone(),
                                error,
                            });
                        }
                    }
                }
                LifecyclePhase::Shadow => {
                    let Some(candidate) = state.candidate.as_ref() else {
                        state.phase = LifecyclePhase::Idle;
                        continue;
                    };
                    if candidate.live_q.len() < self.cfg.shadow_min_samples {
                        continue;
                    }
                    let live_p50 = median(&candidate.live_q);
                    let candidate_p50 = median(&candidate.candidate_q);
                    let candidate = state.candidate.take().expect("checked above");
                    self.shadow_active.fetch_sub(1, Ordering::Relaxed);
                    if candidate_p50 <= live_p50 * self.cfg.shadow_gate_ratio {
                        // Snapshot the serving generation before touching
                        // it — the durable rollback target even across a
                        // crash.
                        let snapshot = snapshot_dir
                            .and_then(|dir| store.save_snapshot(dir, name, Some(monitors)).ok());
                        let promoted = if self.poison.load(Ordering::SeqCst) {
                            Arc::new(poisoned_clone(&candidate.sketch))
                        } else {
                            candidate.sketch
                        };
                        match store.swap(name, promoted) {
                            Ok(outcome) => {
                                // The rolling window graded the *old*
                                // model; reset so drift detection restarts
                                // cleanly against the new one.
                                if let Some(m) = monitors.get(name) {
                                    m.reset();
                                }
                                state.watch = Some(WatchState {
                                    previous: outcome.previous,
                                    generation: outcome.generation,
                                    guard_p50: candidate_p50.max(1.0),
                                    qerrors: Vec::new(),
                                });
                                state.phase = LifecyclePhase::Watching;
                                self.counters.swaps.fetch_add(1, Ordering::Relaxed);
                                ds_obs::global().count("lifecycle/swaps", 1);
                                events.push(LifecycleEvent::Swapped {
                                    sketch: name.clone(),
                                    previous_generation: outcome.previous_generation,
                                    generation: outcome.generation,
                                    snapshot,
                                });
                            }
                            Err(_) => {
                                // The sketch vanished (removed or failed)
                                // mid-shadow; abandon the candidate.
                                state.phase = LifecyclePhase::Idle;
                            }
                        }
                    } else {
                        self.counters.gate_rejects.fetch_add(1, Ordering::Relaxed);
                        ds_obs::global().count("lifecycle/gate_rejects", 1);
                        if let Some(h) = state.harvest.as_mut() {
                            h.clear();
                        }
                        state.harvest_dirty = true;
                        state.phase = LifecyclePhase::Idle;
                        events.push(LifecycleEvent::GateRejected {
                            sketch: name.clone(),
                            live_p50,
                            candidate_p50,
                        });
                    }
                }
                LifecyclePhase::Watching => {
                    let Some(watch) = state.watch.as_ref() else {
                        state.phase = LifecyclePhase::Idle;
                        continue;
                    };
                    if watch.qerrors.len() < self.cfg.guard_min_samples {
                        continue;
                    }
                    let post_p50 = median(&watch.qerrors);
                    let watch = state.watch.take().expect("checked above");
                    if post_p50 > watch.guard_p50 * self.cfg.guard_ratio {
                        match store.swap(name, watch.previous) {
                            Ok(outcome) => {
                                if let Some(m) = monitors.get(name) {
                                    m.reset();
                                }
                                self.counters.rollbacks.fetch_add(1, Ordering::Relaxed);
                                self.counters.swaps.fetch_add(1, Ordering::Relaxed);
                                ds_obs::global().count("lifecycle/rollbacks", 1);
                                events.push(LifecycleEvent::RolledBack {
                                    sketch: name.clone(),
                                    generation: outcome.generation,
                                });
                            }
                            Err(_) => {
                                // Nothing ready to roll back over; the
                                // durable snapshot remains the recovery
                                // path.
                            }
                        }
                    } else {
                        self.counters.promotions.fetch_add(1, Ordering::Relaxed);
                        ds_obs::global().count("lifecycle/promotions", 1);
                        events.push(LifecycleEvent::Promoted {
                            sketch: name.clone(),
                            generation: watch.generation,
                        });
                    }
                    if let Some(h) = state.harvest.as_mut() {
                        h.clear();
                    }
                    state.harvest_dirty = true;
                    state.phase = LifecyclePhase::Idle;
                }
            }
        }
        events
    }
}

/// Median of a non-empty slice (0 when empty — callers gate on sample
/// counts first).
fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    sorted[sorted.len() / 2]
}

fn spawn_retrain(
    name: String,
    live: Arc<DeepSketch>,
    db: Arc<Database>,
    entries: Vec<HarvestEntry>,
    cfg: LifecycleConfig,
) -> TrainingJob {
    let (tx, rx) = sync_channel(1);
    let handle = std::thread::Builder::new()
        .name(format!("ds-lifecycle-train-{name}"))
        .spawn(move || {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                train_candidate(&live, &db, &entries, &cfg)
            }))
            .unwrap_or_else(|_| Err("candidate training panicked".to_string()));
            let _ = tx.send(result);
        })
        .expect("spawn lifecycle trainer");
    TrainingJob {
        rx,
        handle: Some(handle),
    }
}

/// Trains a candidate from the harvested set, reusing the live sketch's
/// featurizer, materialized samples, and hidden width — the incremental
/// refinement path, not a full rebuild. Runs on a background thread;
/// every failure is a `String` the state machine turns into
/// [`LifecycleEvent::TrainingFailed`].
fn train_candidate(
    live: &DeepSketch,
    db: &Arc<Database>,
    entries: &[HarvestEntry],
    cfg: &LifecycleConfig,
) -> Result<DeepSketch, String> {
    let mut queries: Vec<Query> = Vec::with_capacity(entries.len());
    let mut labels: Vec<u64> = Vec::with_capacity(entries.len());
    for entry in entries {
        // Harvested SQL crossed the wire and a process restart; re-parse
        // defensively and skip what no longer parses.
        if let Ok(q) = parse_query(db, &entry.sql) {
            queries.push(q);
            labels.push(entry.actual);
        }
    }
    if queries.is_empty() {
        return Err("no harvested query re-parsed against the catalog".to_string());
    }
    let featurizer = live.featurizer().clone();
    let samples = live.samples().to_vec();
    let normalizer = LabelNormalizer::fit(&labels);
    let mut model = MscnModel::new(
        featurizer.table_dim(),
        featurizer.join_dim(),
        featurizer.pred_dim(),
        MscnConfig {
            hidden: live.model().hidden(),
            seed: cfg.seed ^ 0xC0DE,
        },
    );
    let train_cfg = TrainConfig {
        epochs: cfg.train_epochs,
        batch_size: 32.min(queries.len().max(1)),
        lr: 1e-3,
        seed: cfg.seed ^ 0x7EA1,
        validation_frac: 0.15,
        loss: LossKind::QError,
        early_stop_patience: None,
        restore_best: false,
        grad_clip: None,
        lr_decay: None,
        threads: cfg.train_threads,
    };
    let report = train(
        &mut model,
        &featurizer,
        &samples,
        &queries,
        &labels,
        &normalizer,
        &train_cfg,
    );
    let mut candidate = DeepSketch::from_parts(
        model,
        featurizer,
        samples,
        normalizer,
        live.database_name().to_string(),
    );
    candidate.set_threads(cfg.train_threads);
    if let Some(baseline) = baseline_from_qerrors(&report.holdout_qerrors) {
        candidate.set_baseline(baseline);
    }
    // Freeze for serving speed, gated on accuracy exactly like the
    // builder; a gate miss serves the reference path instead.
    let probes = &queries[..queries.len().min(CANDIDATE_FREEZE_PROBES)];
    if candidate
        .freeze_gated(QuantMode::F32, probes, FREEZE_GATE_MAX_DELTA)
        .is_err()
    {
        ds_obs::global().count("lifecycle/freeze_gate_failures", 1);
    }
    Ok(candidate)
}

/// The rollback drill's "undetectably bad candidate": same weights, but a
/// label normalizer fit to an absurd range, so every denormalized
/// estimate is off by orders of magnitude. The shadow gate scored the
/// healthy candidate; this corruption appears only *after* promotion,
/// which is exactly the failure the post-swap guard exists to catch.
fn poisoned_clone(candidate: &DeepSketch) -> DeepSketch {
    let bad = LabelNormalizer::fit(&[1, 1 << 44]);
    let mut poisoned = DeepSketch::from_parts(
        candidate.model().clone(),
        candidate.featurizer().clone(),
        candidate.samples().to_vec(),
        bad,
        candidate.database_name().to_string(),
    );
    if let Some(baseline) = candidate.baseline() {
        poisoned.set_baseline(baseline.clone());
    }
    poisoned
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::SketchBuilder;
    use ds_query::sqlgen::to_sql;
    use ds_query::workloads::imdb_predicate_columns;
    use ds_query::{GeneratorConfig, QueryGenerator};
    use ds_storage::gen::{imdb_database, ImdbConfig};
    use std::time::Instant;

    fn tiny_sketch(db: &Database, seed: u64) -> DeepSketch {
        SketchBuilder::new(db, imdb_predicate_columns(db))
            .training_queries(120)
            .epochs(2)
            .sample_size(8)
            .hidden_units(8)
            .seed(seed)
            .build()
            .expect("tiny sketch")
    }

    fn graded_workload(db: &Database, n: usize, seed: u64) -> Vec<(String, Query, u64)> {
        let mut generator =
            QueryGenerator::new(db, GeneratorConfig::new(imdb_predicate_columns(db), seed));
        let queries = generator.generate_batch(n);
        let execs: Vec<_> = queries.iter().map(Query::to_exec).collect();
        let labels = ds_storage::exec::count_batch(db, &execs, 1).expect("labels");
        queries
            .into_iter()
            .zip(labels)
            .map(|(q, label)| (to_sql(db, &q), q, label))
            .collect()
    }

    fn fast_cfg() -> LifecycleConfig {
        LifecycleConfig {
            harvest_capacity: 256,
            min_harvest: 12,
            drift_ratio: 0.01, // any feedback at all reads as drift
            drift_min_samples: 4,
            shadow_min_samples: 8,
            shadow_gate_ratio: 1.1,
            guard_min_samples: 8,
            guard_ratio: 2.0,
            train_epochs: 2,
            train_threads: 1,
            seed: 7,
            tick_interval: Duration::from_millis(25),
            poison_candidates: false,
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ds_lifecycle_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn harvest_dedupes_keeps_newest_and_evicts_oldest() {
        let mut set = HarvestSet::new(3);
        assert!(set.observe("a", "SELECT 1", 10));
        assert!(!set.observe("a", "SELECT 1", 99), "same key is an update");
        assert_eq!(set.len(), 1);
        assert_eq!(set.entries()[0].actual, 99, "newest observation wins");

        assert!(set.observe("b", "q", 2));
        assert!(set.observe("c", "q", 3));
        assert!(set.observe("d", "q", 4), "overflow evicts, not refuses");
        assert_eq!(set.len(), 3);
        let keys: Vec<String> = set.entries().into_iter().map(|e| e.key).collect();
        assert_eq!(
            keys,
            vec!["b", "c", "d"],
            "oldest (a) evicted, seq order kept"
        );

        // Oversized fields are refused outright.
        let long_key = "k".repeat(MAX_HARVEST_KEY_LEN as usize + 1);
        assert!(!set.observe(&long_key, "q", 1));
        assert!(!set.observe("", "q", 1));
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn harvest_roundtrips_and_rejects_corruption() {
        let mut set = HarvestSet::new(64);
        set.observe("k1", "SELECT COUNT(*) FROM title", 42);
        set.observe(
            "k2",
            "SELECT COUNT(*) FROM title WHERE title.kind_id = 1",
            7,
        );
        set.observe("k1", "SELECT COUNT(*) FROM title", 43);
        let bytes = set.encode();

        let decoded = HarvestSet::decode(&bytes, 64).unwrap();
        assert_eq!(decoded.entries(), set.entries());
        assert_eq!(decoded.encode(), bytes, "canonical re-encode");

        // Another observation continues the sequence without collisions.
        let mut resumed = decoded.clone();
        assert!(resumed.observe("k3", "q", 1));
        assert!(resumed.entries()[2].seq > resumed.entries()[1].seq);

        // Bit flip in the body → checksum mismatch.
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        assert!(matches!(
            HarvestSet::decode(&flipped, 64),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));

        // Truncation → typed error, never a panic.
        for cut in [0, 3, 9, bytes.len() - 1] {
            assert!(HarvestSet::decode(&bytes[..cut], 64).is_err());
        }

        // A huge count field (with a fixed-up checksum) → Corrupt, before
        // any allocation.
        let mut huge = bytes.clone();
        huge[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        let body_len = huge.len() - 8;
        let sum = checksum(&huge[..body_len]);
        huge[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            HarvestSet::decode(&huge, 64),
            Err(SnapshotError::Corrupt(_))
        ));

        // Wrong magic.
        let mut magic = bytes.clone();
        magic[0] = b'X';
        assert!(matches!(
            HarvestSet::decode(&magic, 64),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn harvest_saves_and_loads_durably() {
        let dir = temp_dir("harvest_io");
        let mut set = HarvestSet::new(16);
        set.observe("k", "SELECT COUNT(*) FROM title", 5);
        let path = set.save(&dir, "imdb").unwrap();
        assert!(path.ends_with("imdb.harvest"));
        let loaded = HarvestSet::load(&dir, "imdb", 16).unwrap().unwrap();
        assert_eq!(loaded.entries(), set.entries());
        assert!(HarvestSet::load(&dir, "other", 16).unwrap().is_none());
        assert!(set.save(&dir, "../evil").is_err(), "names are validated");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_validation_catches_each_bad_knob() {
        assert!(LifecycleConfig::default().validate().is_ok());
        let defaults = LifecycleConfig::default();
        let c = LifecycleConfig {
            min_harvest: defaults.harvest_capacity + 1,
            ..defaults.clone()
        };
        assert!(c.validate().is_err());
        let c = LifecycleConfig {
            guard_ratio: 0.5,
            ..defaults.clone()
        };
        assert!(c.validate().is_err());
        let c = LifecycleConfig {
            tick_interval: Duration::ZERO,
            ..defaults.clone()
        };
        assert!(c.validate().is_err());
        let c = LifecycleConfig {
            train_epochs: 0,
            ..defaults
        };
        assert!(LifecycleManager::new(c).is_err());
    }

    /// The full happy path with a *real* background retrain: drift fires,
    /// a candidate trains off the harvested set, shadow-gates in, the old
    /// generation is snapshotted, the swap bumps the generation, and the
    /// clean guard window promotes.
    #[test]
    fn drift_retrain_shadow_swap_promote_end_to_end() {
        let db = Arc::new(imdb_database(&ImdbConfig::tiny(21)));
        let store = SketchStore::new();
        store.insert("imdb", tiny_sketch(&db, 5)).unwrap();
        let first_generation = store.generation("imdb").unwrap();
        let monitors = MonitorRegistry::new();
        let manager = LifecycleManager::new(fast_cfg()).unwrap();
        let snap_dir = temp_dir("cycle");

        // Graded traffic: estimates from the live model, true labels from
        // the database. The deliberately-low drift threshold arms the
        // retrain as soon as the windows fill.
        let monitor = monitors.monitor("imdb");
        for (sql, query, actual) in graded_workload(&db, 24, 99) {
            let estimate = store.estimate("imdb", &query).unwrap();
            monitor.record("t", estimate, actual.max(1) as f64);
            manager.observe_feedback("imdb", &sql, &sql, estimate, actual);
        }
        assert_eq!(manager.status("imdb").phase, LifecyclePhase::Harvesting);

        let events = manager.tick(&store, &monitors, &db, Some(&snap_dir));
        assert!(
            events
                .iter()
                .any(|e| matches!(e, LifecycleEvent::RetrainStarted { .. })),
            "drift + harvest must arm a retrain, got {events:?}"
        );
        assert_eq!(manager.status("imdb").phase, LifecyclePhase::Training);

        // Poll until the background trainer hands over a candidate.
        let deadline = Instant::now() + Duration::from_secs(120);
        while manager.status("imdb").phase == LifecyclePhase::Training {
            assert!(Instant::now() < deadline, "training never finished");
            manager.tick(&store, &monitors, &db, Some(&snap_dir));
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(manager.status("imdb").phase, LifecyclePhase::Shadow);
        assert!(manager.shadowing("imdb"));

        // Mirrored scoring says the candidate is clearly better.
        for _ in 0..8 {
            manager.observe_shadow("imdb", 8.0, 1.5);
        }
        let events = manager.tick(&store, &monitors, &db, Some(&snap_dir));
        let Some(LifecycleEvent::Swapped {
            previous_generation,
            generation,
            snapshot,
            ..
        }) = events
            .iter()
            .find(|e| matches!(e, LifecycleEvent::Swapped { .. }))
        else {
            panic!("shadow gate must pass and swap, got {events:?}");
        };
        assert_eq!(*previous_generation, first_generation);
        assert!(*generation > first_generation);
        assert_eq!(store.generation("imdb"), Some(*generation));
        let snapshot = snapshot.as_ref().expect("old generation snapshotted");
        assert!(snapshot.exists(), "durable rollback target written");
        assert!(!manager.shadowing("imdb"));

        // A healthy guard window: graded estimates match reality.
        for _ in 0..8 {
            manager.observe_feedback("imdb", "w", "SELECT COUNT(*) FROM title", 100.0, 100);
        }
        let events = manager.tick(&store, &monitors, &db, Some(&snap_dir));
        assert!(
            events
                .iter()
                .any(|e| matches!(e, LifecycleEvent::Promoted { .. })),
            "clean guard window must promote, got {events:?}"
        );
        let counters = manager.counters();
        assert_eq!(counters.swaps, 1);
        assert_eq!(counters.promotions, 1);
        assert_eq!(counters.rollbacks, 0);
        assert_eq!(counters.retrains_started, 1);
        assert_eq!(manager.status("imdb").phase, LifecyclePhase::Idle);
        let _ = std::fs::remove_dir_all(&snap_dir);
    }

    /// A poisoned candidate passes the shadow gate (it is corrupted only
    /// after the gate), regresses in the guard window, and is rolled back
    /// to the exact previous model.
    #[test]
    fn poisoned_candidate_is_rolled_back() {
        let db = Arc::new(imdb_database(&ImdbConfig::tiny(22)));
        let store = SketchStore::new();
        store.insert("imdb", tiny_sketch(&db, 6)).unwrap();
        let q = parse_query(&db, "SELECT COUNT(*) FROM title WHERE title.kind_id = 1").unwrap();
        let before = store.estimate("imdb", &q).unwrap();
        let monitors = MonitorRegistry::new();
        let manager = LifecycleManager::new(fast_cfg()).unwrap();
        manager.set_poison(true);
        assert!(manager.poison_armed());

        manager.install_candidate(&store, "imdb", tiny_sketch(&db, 7));
        for _ in 0..8 {
            manager.observe_shadow("imdb", 8.0, 1.5);
        }
        let events = manager.tick(&store, &monitors, &db, None);
        assert!(
            events
                .iter()
                .any(|e| matches!(e, LifecycleEvent::Swapped { .. })),
            "gate scores the healthy candidate, so the swap proceeds"
        );
        let poisoned_estimate = store.estimate("imdb", &q).unwrap();
        assert!(
            (poisoned_estimate / before).max(before / poisoned_estimate) > 10.0,
            "poisoned model must be wildly off ({before} → {poisoned_estimate})"
        );

        // Graded post-swap traffic exposes the regression.
        for _ in 0..8 {
            manager.observe_feedback("imdb", "w", "SELECT COUNT(*) FROM title", 1.0e9, 10);
        }
        let events = manager.tick(&store, &monitors, &db, None);
        assert!(
            events
                .iter()
                .any(|e| matches!(e, LifecycleEvent::RolledBack { .. })),
            "guard must trip and roll back, got {events:?}"
        );
        let restored = store.estimate("imdb", &q).unwrap();
        assert_eq!(
            restored.to_bits(),
            before.to_bits(),
            "rollback restores the previous model bit-exactly"
        );
        let counters = manager.counters();
        assert_eq!(counters.rollbacks, 1);
        assert_eq!(counters.swaps, 2, "the rollback itself is a swap");
        assert_eq!(counters.promotions, 0);
    }

    /// A candidate that shadows worse than the live model never swaps.
    #[test]
    fn shadow_gate_rejects_a_worse_candidate() {
        let db = Arc::new(imdb_database(&ImdbConfig::tiny(23)));
        let store = SketchStore::new();
        store.insert("imdb", tiny_sketch(&db, 8)).unwrap();
        let generation = store.generation("imdb").unwrap();
        let monitors = MonitorRegistry::new();
        let manager = LifecycleManager::new(fast_cfg()).unwrap();

        manager.install_candidate(&store, "imdb", tiny_sketch(&db, 9));
        for _ in 0..8 {
            manager.observe_shadow("imdb", 1.2, 50.0);
        }
        let events = manager.tick(&store, &monitors, &db, None);
        assert!(
            events
                .iter()
                .any(|e| matches!(e, LifecycleEvent::GateRejected { .. })),
            "worse candidate must be rejected, got {events:?}"
        );
        assert_eq!(
            store.generation("imdb"),
            Some(generation),
            "no swap on rejection"
        );
        assert_eq!(manager.counters().gate_rejects, 1);
        assert_eq!(manager.counters().swaps, 0);
        assert_eq!(manager.status("imdb").phase, LifecyclePhase::Idle);
    }

    /// A harvest set whose SQL no longer parses fails training cleanly:
    /// the candidate is abandoned, the harvest dropped, and the machine
    /// returns to Idle (never wedged in Training).
    #[test]
    fn unparseable_harvest_fails_training_and_recovers() {
        let db = Arc::new(imdb_database(&ImdbConfig::tiny(24)));
        let store = SketchStore::new();
        store.insert("imdb", tiny_sketch(&db, 10)).unwrap();
        let monitors = MonitorRegistry::new();
        let manager = LifecycleManager::new(fast_cfg()).unwrap();

        let monitor = monitors.monitor("imdb");
        for i in 0..16 {
            monitor.record("t", 100.0, 5.0);
            manager.observe_feedback("imdb", &format!("k{i}"), "THIS IS NOT SQL", 100.0, 5);
        }
        let events = manager.tick(&store, &monitors, &db, None);
        assert!(events
            .iter()
            .any(|e| matches!(e, LifecycleEvent::RetrainStarted { .. })));
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let events = manager.tick(&store, &monitors, &db, None);
            if events
                .iter()
                .any(|e| matches!(e, LifecycleEvent::TrainingFailed { .. }))
            {
                break;
            }
            assert!(Instant::now() < deadline, "trainer never reported failure");
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(manager.counters().retrains_failed, 1);
        assert_eq!(manager.status("imdb").phase, LifecyclePhase::Idle);
        assert_eq!(
            manager.status("imdb").harvested,
            0,
            "the failing harvest is dropped, not retried forever"
        );
    }

    /// Harvest sets survive a restart through persist/load.
    #[test]
    fn harvests_persist_across_a_manager_restart() {
        let dir = temp_dir("persist");
        let manager = LifecycleManager::new(fast_cfg()).unwrap();
        manager.observe_feedback("imdb", "k1", "SELECT COUNT(*) FROM title", 10.0, 12);
        manager.observe_feedback("imdb", "k2", "SELECT COUNT(*) FROM title", 11.0, 13);
        assert_eq!(manager.persist_harvests(&dir), 1);
        assert_eq!(manager.persist_harvests(&dir), 0, "clean sets are skipped");

        let restarted = LifecycleManager::new(fast_cfg()).unwrap();
        assert_eq!(restarted.load_harvests(&dir), 1);
        let status = restarted.status("imdb");
        assert_eq!(status.harvested, 2);
        assert_eq!(status.phase, LifecyclePhase::Harvesting);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
