//! The q-error metric and the percentile summary used throughout the
//! paper's evaluation (Table 1 reports median, 90th, 95th, 99th, max, and
//! mean q-error).

use ds_nn::loss::qerror_scalar;

/// The q-error of an estimate: `max(est/true, true/est) ≥ 1`, with both
/// sides clamped to ≥ 1 tuple (Moerkotte et al., PVLDB 2009).
pub fn qerror(estimate: f64, truth: f64) -> f64 {
    qerror_scalar(estimate, truth)
}

/// The percentile summary of a set of q-errors, in the layout of Table 1.
///
/// ```
/// use ds_core::metrics::QErrorSummary;
/// let s = QErrorSummary::from_pairs(&[(10.0, 20.0), (100.0, 100.0), (5.0, 1.0)]);
/// assert_eq!(s.max, 5.0);
/// assert_eq!(s.count, 3);
/// println!("{}", s.table_row("Deep Sketch"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QErrorSummary {
    /// 50th percentile.
    pub median: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Number of samples summarized.
    pub count: usize,
}

impl QErrorSummary {
    /// Summarizes a set of q-errors.
    ///
    /// # Panics
    /// Panics on an empty input.
    pub fn from_qerrors(qerrors: &[f64]) -> Self {
        assert!(!qerrors.is_empty(), "cannot summarize zero q-errors");
        let mut sorted = qerrors.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite q-errors"));
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Self {
            median: percentile(&sorted, 0.50),
            p90: percentile(&sorted, 0.90),
            p95: percentile(&sorted, 0.95),
            p99: percentile(&sorted, 0.99),
            max: *sorted.last().expect("non-empty"),
            mean,
            count: sorted.len(),
        }
    }

    /// Summarizes paired (estimate, truth) data.
    pub fn from_pairs(pairs: &[(f64, f64)]) -> Self {
        let qs: Vec<f64> = pairs.iter().map(|&(e, t)| qerror(e, t)).collect();
        Self::from_qerrors(&qs)
    }

    /// Formats one row of the paper's Table 1: `median 90th 95th 99th max
    /// mean` with three significant digits.
    pub fn table_row(&self, label: &str) -> String {
        format!(
            "{label:<12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            sig3(self.median),
            sig3(self.p90),
            sig3(self.p95),
            sig3(self.p99),
            sig3(self.max),
            sig3(self.mean),
        )
    }

    /// The header matching [`QErrorSummary::table_row`].
    pub fn table_header() -> String {
        format!(
            "{:<12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "", "median", "90th", "95th", "99th", "max", "mean"
        )
    }
}

/// Linear-interpolated percentile of an ascending-sorted slice,
/// `p ∈ [0, 1]`.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of nothing");
    assert!((0.0..=1.0).contains(&p), "p out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Three-significant-digit formatting as in the paper (3.82, 78.4, 362, 1110).
fn sig3(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    if v == 0.0 {
        return "0".to_string();
    }
    let mag = v.abs().log10().floor() as i32;
    let decimals = (2 - mag).max(0) as usize;
    format!("{v:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qerror_is_symmetric_ratio() {
        assert_eq!(qerror(10.0, 100.0), 10.0);
        assert_eq!(qerror(100.0, 10.0), 10.0);
        assert_eq!(qerror(7.0, 7.0), 1.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
        assert_eq!(percentile(&v, 0.5), 2.5);
        assert!((percentile(&v, 0.9) - 3.7).abs() < 1e-9);
        assert_eq!(percentile(&[5.0], 0.3), 5.0);
    }

    #[test]
    fn summary_of_known_distribution() {
        let qs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = QErrorSummary::from_qerrors(&qs);
        assert!((s.median - 50.5).abs() < 1e-9);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert!((s.p90 - 90.1).abs() < 0.2);
        assert_eq!(s.count, 100);
    }

    #[test]
    fn from_pairs_computes_qerrors() {
        let pairs = [(10.0, 100.0), (100.0, 100.0)];
        let s = QErrorSummary::from_pairs(&pairs);
        assert_eq!(s.max, 10.0);
        assert!((s.mean - 5.5).abs() < 1e-9);
    }

    #[test]
    fn table_row_is_aligned_and_sig3() {
        let s = QErrorSummary::from_qerrors(&[3.8234, 78.41, 362.4, 927.2, 1110.0]);
        let row = s.table_row("Deep Sketch");
        assert!(row.starts_with("Deep Sketch"));
        assert!(row.contains("1110"));
        let header = QErrorSummary::table_header();
        assert!(header.contains("median") && header.contains("99th"));
    }

    #[test]
    fn sig3_formatting() {
        assert_eq!(sig3(3.8234), "3.82");
        assert_eq!(sig3(78.44), "78.4");
        assert_eq!(sig3(362.4), "362");
        assert_eq!(sig3(1110.0), "1110");
        assert_eq!(sig3(0.0), "0");
    }

    #[test]
    #[should_panic(expected = "zero q-errors")]
    fn empty_summary_panics() {
        QErrorSummary::from_qerrors(&[]);
    }
}
